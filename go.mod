module github.com/olaplab/gmdj

go 1.22
