package gmdj

import (
	"io"
	"strings"

	"github.com/olaplab/gmdj/internal/obs"
)

// Prometheus exposition of the engine-level telemetry. The serving
// layer (internal/serve) composes these families with its own
// per-tenant request metrics on olapd's /metrics endpoint; olapql's
// -metrics-addr serves them alone via WritePromMetrics. Everything is
// rendered with the repo's dependency-free writer (internal/obs/prom).

// PromContentType is the Content-Type header value for the Prometheus
// text exposition format served by WritePromMetrics.
const PromContentType = obs.PromContentType

// PromCollect appends the engine-level metric families to an
// exposition document under construction:
//
//	gmdj_engine_events_total{event=...}   every process counter from the
//	                                      "gmdj" expvar map (queries per
//	                                      strategy, governance trips,
//	                                      spill traffic, cache churn)
//	gmdj_plan_cache_*_total               plan-cache hits/misses/evictions
//	gmdj_result_cache_*_total             result-memo hits/misses/evictions
//	gmdj_mem_pool_*                       memory-pool gauges (when enabled)
//	gmdj_spill_bytes_{written,read}_total scratch-store traffic
//	gmdj_query_duration_seconds{strategy} latency histograms (observer)
//	gmdj_op_duration_seconds{kind}        per-operator-kind histograms
//
// The concrete writer type is internal; callers outside this module
// use WritePromMetrics instead.
func (db *DB) PromCollect(p *obs.PromWriter) {
	for name, v := range obs.MetricsSnapshot() {
		p.Counter("gmdj_engine_events_total", "Process-wide engine event counters from the gmdj expvar map.",
			map[string]string{"event": name}, v)
	}

	pc := db.PlanCacheStats()
	p.Counter("gmdj_plan_cache_hits_total", "Parameterized plan cache hits.", nil, pc.Hits)
	p.Counter("gmdj_plan_cache_misses_total", "Parameterized plan cache misses.", nil, pc.Misses)
	p.Counter("gmdj_plan_cache_evictions_total", "Parameterized plan cache evictions.", nil, pc.Evictions)
	p.Counter("gmdj_plan_cache_invalidations_total", "Parameterized plan cache schema invalidations.", nil, pc.Invalidations)
	rc := db.ResultCacheStats()
	p.Counter("gmdj_result_cache_hits_total", "Cross-query result memo hits.", nil, rc.Hits)
	p.Counter("gmdj_result_cache_misses_total", "Cross-query result memo misses.", nil, rc.Misses)
	p.Counter("gmdj_result_cache_evictions_total", "Cross-query result memo evictions.", nil, rc.Evictions)
	p.Counter("gmdj_result_cache_invalidations_total", "Cross-query result memo invalidations.", nil, rc.Invalidations)

	// Pool families are emitted unconditionally (zero without a pool):
	// dashboards and promcheck -require can rely on their presence, and
	// a pool enabled mid-fleet does not make series appear from nowhere.
	// gmdj_mem_pool_enabled distinguishes "no pool" from "idle pool".
	ms := db.MemStats()
	enabled := 0.0
	if ms.Enabled {
		enabled = 1
	}
	p.Gauge("gmdj_mem_pool_enabled", "1 when a tracked-state memory pool is configured.", nil, enabled)
	p.Gauge("gmdj_mem_pool_capacity_bytes", "Tracked-state memory pool capacity.", nil, float64(ms.Capacity))
	p.Gauge("gmdj_mem_pool_in_use_bytes", "Tracked-state memory pool bytes in use.", nil, float64(ms.InUse))
	p.Gauge("gmdj_mem_pool_queued", "Queries queued for pool admission (waiting admission waiters).", nil, float64(ms.Queued))
	p.Counter("gmdj_mem_pool_admitted_total", "Queries admitted to the memory pool.", nil, ms.Admitted)
	p.Counter("gmdj_mem_pool_timed_out_total", "Queries shed at the admission deadline.", nil, ms.TimedOut)
	p.Counter("gmdj_mem_reclaimed_bytes_total", "Bytes freed by demoting result-cache entries under pressure.", nil, ms.ReclaimedBytes)
	p.Counter("gmdj_spill_bytes_written_total", "Bytes written to the scratch spill store.", nil, ms.SpillBytesWritten)
	p.Counter("gmdj_spill_bytes_read_total", "Bytes read back from the scratch spill store.", nil, ms.SpillBytesRead)
	p.Gauge("gmdj_spill_live_files", "Live files in the scratch spill store.", nil, float64(ms.SpillLiveFiles))

	// Storage families appear only when a data directory is configured,
	// mirroring how the serving layer gates optional families: a purely
	// in-memory deployment's exposition (and the golden test pinning it)
	// stays byte-stable, while any persistent deployment always exports
	// the full set (zeros included).
	if ss := db.StorageStats(); ss.Enabled {
		p.Gauge("olap_storage_generation", "Committed manifest generation of the durable store.", nil, float64(ss.Generation))
		p.Gauge("olap_storage_tables", "Tables in the committed generation.", nil, float64(ss.Tables))
		p.Gauge("olap_storage_quarantined_tables", "Tables currently quarantined by segment verification failures.", nil, float64(ss.QuarantinedTables))
		p.Counter("olap_storage_segments_written_total", "Segment files persisted by checkpoints.", nil, ss.SegmentsWritten)
		p.Counter("olap_storage_segments_recovered_total", "Segment files read back intact during recovery.", nil, ss.SegmentsRecovered)
		p.Counter("olap_storage_segments_quarantined_total", "Segment verification failures that quarantined a table.", nil, ss.Quarantined)
		p.Counter("olap_storage_checkpoints_total", "Committed checkpoint generations.", nil, ss.Checkpoints)
		p.Counter("olap_storage_recoveries_total", "Data-directory opens (recovery passes).", nil, ss.Recoveries)
		p.Counter("olap_storage_manifests_skipped_total", "Torn manifest commits recovery walked past.", nil, ss.SkippedManifests)
		p.Counter("olap_storage_bytes_written_total", "Bytes written to the durable store.", nil, ss.BytesWritten)
		p.Counter("olap_storage_bytes_read_total", "Bytes read back from the durable store.", nil, ss.BytesRead)
	}

	for key, snap := range db.eng.Observer().Histograms() {
		switch {
		case strings.HasPrefix(key, "query_ns."):
			p.Histogram("gmdj_query_duration_seconds", "Query wall time by strategy.",
				map[string]string{"strategy": strings.TrimPrefix(key, "query_ns.")}, snap, 1e-9)
		case strings.HasPrefix(key, "op_ns."):
			p.Histogram("gmdj_op_duration_seconds", "Inclusive operator wall time by operator kind.",
				map[string]string{"kind": strings.TrimPrefix(key, "op_ns.")}, snap, 1e-9)
		}
	}
}

// WritePromMetrics writes the engine-level metric families as one
// Prometheus text-format (0.0.4) exposition document — what olapql's
// -metrics-addr serves at /metrics. olapd embedders get these plus the
// serving-layer families from the server's own /metrics endpoint.
func (db *DB) WritePromMetrics(w io.Writer) error {
	p := obs.NewPromWriter()
	db.PromCollect(p)
	if err := p.Err(); err != nil {
		return err
	}
	_, err := p.WriteTo(w)
	return err
}
