package gmdj

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/govern"
)

// The governance tests exercise every evaluation strategy: a governed
// abort must carry the same typed error no matter which physical plan
// was running.
var allStrategies = []Strategy{Native, Unnest, GMDJ, GMDJOpt}

// governQuery is a correlated aggregate subquery — the paper's core
// construct — so each strategy produces a genuinely different plan
// (tuple iteration, outer-join unnesting, GMDJ).
const governQuery = `
  SELECT h.hr FROM hours h
  WHERE 0 < (SELECT AVG(f.bytes) FROM flows f
             WHERE f.start >= h.lo AND f.start < h.hi)`

// governDB builds hours windows [i*10, i*10+10) and flows whose start
// times cover every window, so governQuery returns all `hours` rows.
func governDB(t testing.TB, hours, flows int) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("hours", Col("hr", Int), Col("lo", Int), Col("hi", Int))
	rows := make([][]any, 0, hours)
	for i := 0; i < hours; i++ {
		rows = append(rows, []any{i, i * 10, (i + 1) * 10})
	}
	db.MustInsert("hours", rows...)
	db.MustCreateTable("flows", Col("start", Int), Col("proto", String), Col("bytes", Int))
	rows = rows[:0]
	span := hours * 10
	for i := 0; i < flows; i++ {
		proto := "HTTP"
		if i%3 == 0 {
			proto = "FTP"
		}
		rows = append(rows, []any{i % span, proto, i%100 + 1})
	}
	db.MustInsert("flows", rows...)
	return db
}

// waitGoroutines polls until the goroutine count settles back to at
// most want, tolerating runtime background goroutines that wind down
// asynchronously after a canceled query.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines did not settle: %d running, want <= %d", n, want)
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBudgetAbortsAllStrategies: each budget kind aborts each strategy
// with its matching typed error, promptly, without leaking goroutines.
func TestBudgetAbortsAllStrategies(t *testing.T) {
	db := governDB(t, 50, 4000)
	db.SetParallelism(4) // exercise the GMDJ worker pool's abort path too
	cases := []struct {
		name   string
		budget Budget
		want   error
	}{
		{"timeout", Budget{Timeout: time.Nanosecond}, ErrTimeout},
		{"max-rows", Budget{MaxRows: 10}, ErrRowBudget},
		{"max-mem", Budget{MaxMemBytes: 512}, ErrMemBudget},
	}
	before := runtime.NumGoroutine()
	for _, s := range allStrategies {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%v/%s", s, c.name), func(t *testing.T) {
				db.SetBudget(c.budget)
				defer db.SetBudget(Budget{})
				start := time.Now()
				_, err := db.QueryStrategy(governQuery, s)
				elapsed := time.Since(start)
				if !errors.Is(err, c.want) {
					t.Fatalf("err = %v, want %v", err, c.want)
				}
				if elapsed > 5*time.Second {
					t.Errorf("abort took %v, not prompt", elapsed)
				}
			})
		}
	}
	waitGoroutines(t, before)

	// Budget errors carry the observed and configured limits.
	db.SetBudget(Budget{MaxRows: 10})
	defer db.SetBudget(Budget{})
	_, err := db.Query(governQuery)
	var be *govern.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *govern.BudgetError", err)
	}
	if be.Limit != 10 || be.Observed != 11 {
		t.Errorf("BudgetError = limit %d observed %d, want 10/11", be.Limit, be.Observed)
	}
}

// TestCancelAllStrategies: a context canceled before the query starts
// aborts every strategy with ErrCanceled.
func TestCancelAllStrategies(t *testing.T) {
	db := governDB(t, 20, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range allStrategies {
		if _, err := db.QueryStrategyContext(ctx, governQuery, s); !errors.Is(err, ErrCanceled) {
			t.Errorf("%v: err = %v, want ErrCanceled", s, err)
		}
	}
}

// TestMidFlightCancelAllStrategies: cancellation arriving while the
// query is running aborts it promptly. A 10s delay fault at exec.scan
// pins every strategy mid-flight deterministically; the query must
// return long before the delay would expire.
func TestMidFlightCancelAllStrategies(t *testing.T) {
	db := governDB(t, 20, 500)
	db.eng.SetFaultInjector(govern.NewInjector(map[string]string{"exec.scan": "delay:10s"}))
	defer db.eng.SetFaultInjector(nil)
	before := runtime.NumGoroutine()
	for _, s := range allStrategies {
		t.Run(fmt.Sprint(s), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := db.QueryStrategyContext(ctx, governQuery, s)
			elapsed := time.Since(start)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if elapsed > 2*time.Second {
				t.Errorf("cancel took %v, not prompt", elapsed)
			}
		})
	}
	waitGoroutines(t, before)
}

// TestInjectedPanicAllStrategies: an operator panic is recovered at
// the engine boundary and surfaces as a typed ErrInternal — under
// every strategy — and the database stays usable afterwards.
func TestInjectedPanicAllStrategies(t *testing.T) {
	db := governDB(t, 20, 500)
	db.eng.SetFaultInjector(govern.NewInjector(map[string]string{"exec.scan": "panic"}))
	for _, s := range allStrategies {
		_, err := db.QueryStrategy(governQuery, s)
		if !errors.Is(err, ErrInternal) {
			t.Errorf("%v: err = %v, want ErrInternal", s, err)
		}
		var ie *govern.InternalError
		if !errors.As(err, &ie) {
			t.Errorf("%v: err = %v, want *govern.InternalError", s, err)
		} else if ie.Node == "" || len(ie.Stack) == 0 {
			t.Errorf("%v: InternalError missing node (%q) or stack", s, ie.Node)
		}
	}
	db.eng.SetFaultInjector(nil)
	if _, err := db.Query(governQuery); err != nil {
		t.Fatalf("database unusable after recovered panics: %v", err)
	}
}

// TestWorkerPanicIsolated: a panic on a parallel GMDJ worker goroutine
// is recovered on that goroutine (the engine-boundary recover cannot
// shield it), stops the pool, and surfaces as ErrInternal without
// leaking the other workers.
func TestWorkerPanicIsolated(t *testing.T) {
	db := governDB(t, 50, 4000)
	db.SetParallelism(4)
	db.eng.SetFaultInjector(govern.NewInjector(map[string]string{"gmdj.worker": "panic"}))
	defer db.eng.SetFaultInjector(nil)
	before := runtime.NumGoroutine()
	for _, s := range []Strategy{GMDJ, GMDJOpt} {
		if _, err := db.QueryStrategy(governQuery, s); !errors.Is(err, ErrInternal) {
			t.Errorf("%v: err = %v, want ErrInternal", s, err)
		}
	}
	waitGoroutines(t, before)
}

// TestFaultSitesPerStrategy: every named injection site in the plan a
// strategy actually runs aborts the query with ErrInjected, proving
// the error path is wired through each operator.
func TestFaultSitesPerStrategy(t *testing.T) {
	db := governDB(t, 20, 500)
	db.SetParallelism(2)
	defer db.eng.SetFaultInjector(nil)
	cases := []struct {
		site       string
		strategies []Strategy
	}{
		{"exec.scan", allStrategies},
		{"exec.restrict", allStrategies},
		{"exec.project", allStrategies},
		{"exec.subquery", []Strategy{Native}},
		{"exec.join", []Strategy{Unnest}},
		{"exec.groupby", []Strategy{Unnest}},
		{"gmdj.compile", []Strategy{GMDJ, GMDJOpt}},
		{"gmdj.emit", []Strategy{GMDJ, GMDJOpt}},
		{"gmdj.worker", []Strategy{GMDJ, GMDJOpt}},
	}
	for _, c := range cases {
		db.eng.SetFaultInjector(govern.NewInjector(map[string]string{c.site: "error"}))
		for _, s := range c.strategies {
			t.Run(fmt.Sprintf("%s/%v", c.site, s), func(t *testing.T) {
				_, err := db.QueryStrategy(governQuery, s)
				if !errors.Is(err, govern.ErrInjected) {
					t.Fatalf("err = %v, want ErrInjected", err)
				}
			})
		}
	}
}

// TestUngovernedQueriesUnaffected: with no budget and a background
// context, queries take the ungoverned fast path and still agree
// across strategies.
func TestUngovernedQueriesUnaffected(t *testing.T) {
	db := governDB(t, 20, 500)
	want := -1
	for _, s := range allStrategies {
		res, err := db.QueryStrategy(governQuery, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if want < 0 {
			want = res.Len()
		} else if res.Len() != want {
			t.Errorf("%v: %d rows, other strategies returned %d", s, res.Len(), want)
		}
	}
	if want != 20 {
		t.Errorf("governQuery returned %d rows, want 20", want)
	}
}
