package gmdj

import (
	"context"
	"fmt"
	"sync"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/sql"
	"github.com/olaplab/gmdj/internal/value"
)

// Stmt is a prepared statement: a query compiled once — parsed,
// resolved, and strategy-rewritten into a physical plan template —
// and executed many times with different parameter values. Statements
// follow database/sql's shape: placeholders are '?' (ordinal by
// position) or '$n' (explicit ordinals, reusable), arguments are
// ordinary Go values, and a Stmt is safe for concurrent Query calls.
//
//	stmt, err := db.Prepare(`SELECT name FROM users WHERE ip = ?`)
//	defer stmt.Close()
//	res, err := stmt.Query("10.0.0.1")
//
// A catalog change (DDL, a write to any table, index builds) after
// Prepare does not invalidate the Stmt: the next Query transparently
// recompiles against the current catalog.
type Stmt struct {
	db       *DB
	text     string
	strategy Strategy

	mu          sync.Mutex
	plan        algebra.Node // physical template containing expr.Param leaves
	nparams     int
	schemaEpoch uint64
	closed      bool
}

// Prepare compiles a query (which may contain '?' or '$n'
// placeholders) under the GMDJOpt strategy.
func (db *DB) Prepare(query string) (*Stmt, error) {
	return db.PrepareStrategy(query, GMDJOpt)
}

// PrepareStrategy is Prepare with an explicit evaluation strategy.
func (db *DB) PrepareStrategy(query string, s Strategy) (*Stmt, error) {
	st := &Stmt{db: db, text: query, strategy: s}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.compileLocked(); err != nil {
		return nil, err
	}
	return st, nil
}

// compileLocked (re)builds the physical plan template from the
// statement text against the current catalog.
func (st *Stmt) compileLocked() error {
	plan, err := sql.ParseAndResolve(st.text, st.db.eng)
	if err != nil {
		return err
	}
	phys, err := st.db.eng.Plan(plan, st.strategy)
	if err != nil {
		return err
	}
	st.plan = phys
	st.nparams = algebra.ParamCount(phys)
	st.schemaEpoch = st.db.cat.SchemaEpoch()
	return nil
}

// NumParams returns the number of placeholders the statement expects.
func (st *Stmt) NumParams() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nparams
}

// Text returns the statement's SQL text as given to Prepare.
func (st *Stmt) Text() string { return st.text }

// Query binds args to the statement's placeholders and executes it.
// Arguments are converted like Insert values (int, int64, float64,
// string, bool, nil); a count mismatch or unsupported value fails with
// an error matching ErrBadParam.
func (st *Stmt) Query(args ...any) (*Result, error) {
	return st.QueryContext(context.Background(), args...)
}

// QueryContext is Query honoring the caller's context.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	bound, err := st.bind(args)
	if err != nil {
		return nil, err
	}
	rel, err := st.db.eng.RunPlannedContext(ctx, st.text, bound, st.strategy)
	if err != nil {
		return nil, err
	}
	return toResult(rel), nil
}

// bind snapshots the (possibly recompiled) template and substitutes
// the arguments, returning an executable plan.
func (st *Stmt) bind(args []any) (algebra.Node, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, fmt.Errorf("gmdj: statement is closed")
	}
	if st.schemaEpoch != st.db.cat.SchemaEpoch() {
		if err := st.compileLocked(); err != nil {
			st.mu.Unlock()
			return nil, err
		}
	}
	plan := st.plan
	st.mu.Unlock()

	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("gmdj: argument %d: %v: %w", i+1, err, ErrBadParam)
		}
		vals[i] = v
	}
	return algebra.BindParams(plan, vals)
}

// Close releases the statement. Further Query calls fail; Close is
// idempotent.
func (st *Stmt) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	st.plan = nil
	return nil
}
