package gmdj

import (
	"time"
)

// Memory-adaptive execution. WithMemoryLimit bounds the bytes of
// tracked operator state (GMDJ base-side hash state, materialized
// subquery sources, the result memo) across all concurrent queries on
// the DB. Under the limit, the engine degrades instead of failing:
//
//   - A GMDJ node whose state does not fit its reservation partitions
//     its base state by hash prefix and spills cold partitions to temp
//     files, re-probing each spilled partition with one extra detail
//     scan (the paper's one-scan guarantee relaxes to 1+k scans;
//     EXPLAIN ANALYZE reports the spill counters honestly).
//   - The cross-query result memo demotes its LRU tail to disk under
//     pressure and promotes entries back on demand.
//   - A query that cannot be admitted to the pool queues until capacity
//     frees, and is shed with ErrAdmissionTimeout as a last resort.
//
// Spill files live in a per-DB scratch directory that is janitored on
// Open (stale leftovers from crashed runs are removed) and deleted on
// Close, when a query finishes, or when it is canceled.
//
// The GMDJ_MEM environment variable ("limit=64MiB,spill=/tmp/x,
// admission=2s") supplies defaults for all three knobs; explicit
// options override it.

// WithMemoryLimit bounds tracked operator state across all concurrent
// queries to maxBytes (<= 0 leaves memory untracked and unlimited, the
// default). Spilling to the default scratch directory is enabled;
// combine with WithSpillDir to move or disable it.
func WithMemoryLimit(maxBytes int64) Option {
	return func(db *DB) { db.eng.SetMemoryLimit(maxBytes) }
}

// WithSpillDir sets the scratch root under which the DB's spill
// directory is created. The empty string disables spilling entirely:
// memory exhaustion then aborts the query with ErrMemBudget instead of
// degrading to disk (the "kill" regime).
func WithSpillDir(dir string) Option {
	return func(db *DB) { db.eng.SetSpillDir(dir) }
}

// WithAdmissionTimeout bounds how long a query may queue for pool
// memory before being shed with ErrAdmissionTimeout (0 keeps the 10s
// default). Only meaningful together with WithMemoryLimit.
func WithAdmissionTimeout(d time.Duration) Option {
	return func(db *DB) { db.eng.SetAdmissionTimeout(d) }
}

// MemStats is a point-in-time snapshot of the DB's memory posture.
type MemStats struct {
	// Enabled reports whether WithMemoryLimit (or GMDJ_MEM) installed a
	// pool; every other field is zero when false.
	Enabled bool
	// Capacity and InUse are the pool bounds, in bytes.
	Capacity, InUse int64
	// Queued is the number of queries currently waiting for admission;
	// Admitted and TimedOut count queries granted and shed so far.
	Queued             int
	Admitted, TimedOut int64
	// ReclaimedBytes counts bytes freed by demoting result-cache
	// entries to disk under pressure.
	ReclaimedBytes int64
	// SpillEnabled reports whether exhaustion degrades to disk;
	// SpillDir is the DB's scratch directory.
	SpillEnabled bool
	SpillDir     string
	// SpillLiveFiles, SpillWrites, SpillReads, SpillBytesWritten, and
	// SpillBytesRead describe scratch-store traffic.
	SpillLiveFiles                    int
	SpillWrites, SpillReads           int64
	SpillBytesWritten, SpillBytesRead int64
}

// MemStats snapshots the memory pool and spill store.
func (db *DB) MemStats() MemStats {
	ms := db.eng.MemStatus()
	return MemStats{
		Enabled:           ms.Enabled,
		Capacity:          ms.Pool.Capacity,
		InUse:             ms.Pool.InUse,
		Queued:            ms.Pool.Queued,
		Admitted:          ms.Pool.Admitted,
		TimedOut:          ms.Pool.TimedOut,
		ReclaimedBytes:    ms.Pool.ReclaimedBytes,
		SpillEnabled:      ms.SpillEnabled,
		SpillDir:          ms.Spill.Dir,
		SpillLiveFiles:    ms.Spill.LiveFiles,
		SpillWrites:       ms.Spill.Writes,
		SpillReads:        ms.Spill.Reads,
		SpillBytesWritten: ms.Spill.BytesWritten,
		SpillBytesRead:    ms.Spill.BytesRead,
	}
}

// MemPressure reports the memory pool's in-use fraction in [0, 1]
// (0 when no pool is configured) — the signal behind the flight
// recorder's mem_pressure trigger.
func (db *DB) MemPressure() float64 {
	return db.eng.MemStatus().Pool.Utilization()
}

// Close releases the DB's disk state (its scratch spill directory)
// and shuts the memory-admission queue: queries still queued for pool
// capacity are shed promptly with an error matching ErrClosed rather
// than deadlocking or waiting out their admission deadlines. The DB
// remains usable afterwards — purely in-memory and unaccounted
// (spilling and admission control are disabled once closed). Safe to
// call more than once, concurrently with queued queries, and a no-op
// for databases that never enabled a memory limit.
func (db *DB) Close() error {
	return db.eng.Close()
}
