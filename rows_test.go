package gmdj

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/govern"
)

func TestQueryRowsIterate(t *testing.T) {
	db := usersDB(t)
	rows, err := db.QueryRows(`SELECT name, score FROM users ORDER BY score`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "name" || cols[1] != "score" {
		t.Fatalf("Columns = %v", cols)
	}
	var names []string
	var last int64 = -1
	for rows.Next() {
		var name string
		var score int64
		if err := rows.Scan(&name, &score); err != nil {
			t.Fatal(err)
		}
		if score < last {
			t.Fatalf("rows out of order: %d after %d", score, last)
		}
		last = score
		names = append(names, name)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "ann,bob,cat" {
		t.Fatalf("names = %v", names)
	}
}

func TestQueryRowsScanAny(t *testing.T) {
	db := usersDB(t)
	rows, err := db.QueryRows(`SELECT name, score FROM users WHERE name = 'ann'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var name, score any
	if err := rows.Scan(&name, &score); err != nil {
		t.Fatal(err)
	}
	if name != "ann" || score != int64(10) {
		t.Fatalf("got (%v, %v)", name, score)
	}
	// Type mismatch is an error, not a panic.
	if rows.Next() {
		t.Fatal("expected one row")
	}
}

func TestQueryRowsScanErrors(t *testing.T) {
	db := usersDB(t)
	rows, err := db.QueryRows(`SELECT name FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var s string
	if err := rows.Scan(&s); err == nil {
		t.Fatal("Scan before Next should fail")
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var n int64
	if err := rows.Scan(&n); err == nil {
		t.Fatal("Scan string into *int64 should fail")
	}
	var a, b string
	if err := rows.Scan(&a, &b); err == nil {
		t.Fatal("Scan arity mismatch should fail")
	}
}

func TestQueryRowsParseErrorIsSynchronous(t *testing.T) {
	db := usersDB(t)
	if _, err := db.QueryRows(`SELEC name FROM users`); err == nil {
		t.Fatal("parse error should surface from QueryRows, not Next")
	}
}

func TestQueryRowsCloseCancelsRunningQuery(t *testing.T) {
	db := Open()
	db.MustCreateTable("big", Col("x", Int))
	rows := make([][]any, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows = append(rows, []any{int64(i)})
	}
	db.MustInsert("big", rows...)
	// A quadratic NOT EXISTS under Native keeps the engine busy long
	// enough for Close to land mid-flight on most runs; the asserts
	// below hold either way.
	r, err := db.QueryRowsStrategy(`SELECT a.x FROM big a WHERE NOT EXISTS (
		SELECT * FROM big b WHERE b.x = a.x + 3001)`, Native)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Next() {
		t.Fatal("Next after Close should be false")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil (cancellation is not a failure)", err)
	}
	// The database remains fully usable.
	res, err := db.Query(`SELECT COUNT(*) AS n FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3000) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestQueryRowsRealError(t *testing.T) {
	db := usersDB(t)
	db.SetBudget(Budget{MaxRows: 1})
	r, err := db.QueryRows(`SELECT name FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for r.Next() {
	}
	if err := r.Err(); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("Err = %v, want ErrRowBudget", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("x", Int))
	if err := db.CreateTable("t", Col("x", Int)); !errors.Is(err, ErrTableExists) {
		t.Fatalf("CreateTable dup: %v, want ErrTableExists", err)
	}
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); !errors.Is(err, ErrTableExists) {
		t.Fatalf("SQL CREATE dup: %v, want ErrTableExists", err)
	}
	if err := db.Insert("missing", []any{int64(1)}); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("Insert missing: %v, want ErrUnknownTable", err)
	}
	if _, err := db.Query(`SELECT x FROM missing`); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("Query missing: %v, want ErrUnknownTable", err)
	}
	if err := fmt.Errorf("wrap: %w", ErrUnknownTable); !errors.Is(err, ErrUnknownTable) {
		t.Fatal("sentinel does not survive wrapping")
	}
}

// Abandoning a cursor — no Next, no Close, just dropping it — must not
// leak the runner goroutine or its governor: the runner's own deferred
// cancel releases the query context without the caller's help.
func TestQueryRowsAbandonedNoLeak(t *testing.T) {
	db := usersDB(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := db.QueryRows(`SELECT name FROM users`); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, baseline+2)
}

// opaqueCtx hides its parent's identity from the context package, the
// way any third-party context implementation does: context.WithCancel
// on it must spawn a propagation goroutine that lives until the parent
// finishes or the CHILD is canceled. That makes the runner's deferred
// cancel goroutine-observable.
type opaqueCtx struct{ inner context.Context }

func (c opaqueCtx) Deadline() (time.Time, bool) { return c.inner.Deadline() }
func (c opaqueCtx) Done() <-chan struct{}       { return c.inner.Done() }
func (c opaqueCtx) Err() error                  { return c.inner.Err() }
func (c opaqueCtx) Value(any) any               { return nil }

// The same with the queries still running at abandon time, issued
// under a long-lived caller context the caller never cancels: the
// runner's own deferred cancel must release each query's derived
// context (and its propagation goroutine) the moment evaluation stops
// — cleanup must not depend on the caller calling Next or Close, nor
// on the caller's context ever ending.
func TestQueryRowsAbandonedMidQueryNoLeak(t *testing.T) {
	db := usersDB(t)
	// No deferred injector reset: the DB is test-local, and resetting
	// while a straggler runner is still mid-delay would race.
	db.eng.SetFaultInjector(govern.NewInjector(map[string]string{"exec.scan": "delay:100ms"}))
	parent, cancel := context.WithCancel(context.Background())
	defer cancel()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		if _, err := db.QueryRowsContext(opaqueCtx{parent}, `SELECT name FROM users`); err != nil {
			t.Fatal(err)
		}
	}
	// All 8 runners are mid-delay now; none gets a Next or Close, and
	// parent stays alive past the check.
	waitGoroutines(t, baseline+2)
}
