package gmdj

import (
	"github.com/olaplab/gmdj/internal/plancache"
)

// Option configures a DB at Open time. Options replace the historical
// Set* mutators (still available, deprecated) so a fully configured
// database is built in one expression:
//
//	db := gmdj.Open(
//		gmdj.WithParallelism(4),
//		gmdj.WithBudget(gmdj.Budget{Timeout: time.Second}),
//		gmdj.WithResultCache(0),
//	)
type Option func(*DB)

// WithParallelism sets the database's morsel-driven execution degree:
// how many workers each parallel operator pipeline may use. Table
// scans are split into morsels (fixed row ranges) that workers claim
// and push through filter/projection pipelines; hash-join build and
// probe, and GMDJ detail scans, parallelize the same way. Results are
// byte-identical to serial execution at any degree.
//
//	n > 1  — run up to n workers per query
//	n == 1 — force serial execution
//	n <= 0 — keep the default
//
// The default is runtime.GOMAXPROCS(0), overridable process-wide by
// the GMDJ_PARALLEL environment variable (which explicit options and
// setters in turn override). When a memory limit is configured the
// effective degree is additionally clamped so per-worker pipeline
// scratch fits the limit. Small inputs run serial regardless — the
// morsel scheduler only spins up workers when there is enough work to
// split.
func WithParallelism(n int) Option {
	return func(db *DB) {
		if n > 0 {
			db.eng.SetParallelism(n)
		}
	}
}

// WithBudget bounds every query on the DB; see Budget.
func WithBudget(b Budget) Option {
	return func(db *DB) { db.eng.SetBudget(b) }
}

// WithUseIndexes toggles secondary-index use by the Native strategy
// (on by default).
func WithUseIndexes(on bool) Option {
	return func(db *DB) { db.eng.SetUseIndexes(on) }
}

// WithMemoizeSubqueries toggles per-query invariant reuse (Rao & Ross)
// in the Native strategy.
func WithMemoizeSubqueries(on bool) Option {
	return func(db *DB) { db.eng.SetMemoizeSubqueries(on) }
}

// WithPlanCache sets the parameterized plan cache's byte budget. The
// cache is on by default (see Open); 0 keeps the default budget, a
// negative value disables plan caching entirely.
func WithPlanCache(maxBytes int64) Option {
	return func(db *DB) {
		if maxBytes < 0 {
			db.eng.SetPlanCache(nil)
			return
		}
		db.eng.SetPlanCache(plancache.New(maxBytes))
	}
}

// WithResultCache enables cross-query memoization: uncorrelated
// subquery source materializations and GMDJ detail-side hash vectors
// are cached across queries, keyed by table versions so any write to a
// dependency invalidates them. maxBytes bounds the memo (0 = 64 MiB
// default); a negative value disables it (the Open default).
func WithResultCache(maxBytes int64) Option {
	return func(db *DB) {
		if maxBytes < 0 {
			db.eng.SetResultCache(nil)
			return
		}
		db.eng.SetResultCache(plancache.NewResults(maxBytes))
	}
}

// CacheStats snapshots one cache's counters (PlanCacheStats,
// ResultCacheStats).
type CacheStats struct {
	// Hits and Misses count lookups.
	Hits, Misses int64
	// Evictions counts entries dropped for space (LRU order).
	Evictions int64
	// Invalidations counts plan-cache entries dropped because the
	// catalog changed under them. (The result cache invalidates by key
	// construction, so this stays 0 there.)
	Invalidations int64
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
}

func toCacheStats(s plancache.Stats) CacheStats {
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses,
		Evictions: s.Evictions, Invalidations: s.Invalidations,
		Entries: s.Entries, Bytes: s.Bytes,
	}
}

// PlanCacheStats snapshots the plan cache's counters. All zeros when
// plan caching is disabled.
func (db *DB) PlanCacheStats() CacheStats {
	if c := db.eng.PlanCache(); c != nil {
		return toCacheStats(c.Stats())
	}
	return CacheStats{}
}

// ResultCacheStats snapshots the cross-query memo's counters. All
// zeros unless WithResultCache enabled it.
func (db *DB) ResultCacheStats() CacheStats {
	if c := db.eng.ResultCache(); c != nil {
		return toCacheStats(c.Stats())
	}
	return CacheStats{}
}
