package gmdj

import (
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/storage"
)

// OpenNetflowSample opens a database pre-loaded with the paper's
// motivating IP-flow schema: Flow(SourceIP, DestIP, StartTime,
// Protocol, NumBytes), Hours(HourDsc, StartInterval, EndInterval), and
// User(Name, IPAddress). flows controls the fact-table size (0 uses a
// 50k-row default); generation is deterministic.
func OpenNetflowSample(flows int, opts ...Option) *DB {
	gen := datagen.DefaultNetflow()
	if flows > 0 {
		gen.Flows = flows
	}
	return newDB(datagen.Netflow(gen), opts)
}

// OpenTPCRSample opens a database pre-loaded with a TPC-R-like
// warehouse (region, nation, supplier, part, customer, orders,
// lineitem), matching the data the paper benchmarked against. scale
// multiplies the default sizes (1000 customers / 10k orders / 40k
// lineitems); scale <= 0 uses 1.
func OpenTPCRSample(scale float64, opts ...Option) *DB {
	gen := datagen.DefaultTPCR()
	if scale > 0 {
		gen.Customers = int(float64(gen.Customers) * scale)
		gen.Orders = int(float64(gen.Orders) * scale)
		gen.Lineitems = int(float64(gen.Lineitems) * scale)
	}
	return newDB(datagen.TPCR(gen), opts)
}

// SaveDir persists every table of the database into dir as CSV files
// with schema sidecars; OpenDir restores such a directory.
func (db *DB) SaveDir(dir string) error { return storage.SaveDir(db.cat, dir) }

// OpenDir opens a database previously written with SaveDir.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	cat, err := storage.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return newDB(cat, opts), nil
}
