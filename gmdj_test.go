package gmdj

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

func flowDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("flows",
		Col("src", String), Col("dst", String), Col("start", Int),
		Col("proto", String), Col("bytes", Int))
	db.MustInsert("flows",
		[]any{"10.0.0.1", "167.167.167.0", 43, "HTTP", 12},
		[]any{"10.0.0.2", "168.168.168.0", 86, "HTTP", 36},
		[]any{"10.0.0.1", "10.0.0.2", 99, "FTP", 48},
		[]any{"10.0.0.3", "168.168.168.0", 132, "HTTP", 24},
		[]any{"10.0.0.2", "10.0.0.1", 156, "HTTP", 24},
		[]any{"10.0.0.3", "169.169.169.0", 161, "FTP", 48},
	)
	db.MustCreateTable("hours",
		Col("hr", Int), Col("lo", Int), Col("hi", Int))
	db.MustInsert("hours",
		[]any{1, 0, 60}, []any{2, 61, 120}, []any{3, 121, 180})
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := Open()
	if err := db.CreateTable(""); err == nil {
		t.Error("empty name must fail")
	}
	if err := db.CreateTable("t"); err == nil {
		t.Error("no columns must fail")
	}
	if err := db.CreateTable("t", Col("", Int)); err == nil {
		t.Error("unnamed column must fail")
	}
	if err := db.CreateTable("t", Col("a", Int), Col("a", Int)); err == nil {
		t.Error("duplicate column must fail")
	}
	if err := db.CreateTable("t", Col("a", Int)); err != nil {
		t.Errorf("valid create failed: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("a", Int), Col("b", String))
	if err := db.Insert("missing", []any{1, "x"}); err == nil {
		t.Error("unknown table must fail")
	}
	if err := db.Insert("t", []any{1}); err == nil {
		t.Error("short row must fail")
	}
	if err := db.Insert("t", []any{"oops", "x"}); err == nil {
		t.Error("type mismatch must fail")
	}
	if err := db.Insert("t", []any{1, []byte("nope")}); err == nil {
		t.Error("unsupported Go type must fail")
	}
	if err := db.Insert("t", []any{nil, nil}); err != nil {
		t.Errorf("NULLs must be accepted: %v", err)
	}
	if err := db.Insert("t", []any{int64(5), "ok"}); err != nil {
		t.Errorf("int64 must be accepted: %v", err)
	}
}

func TestInsertIntIntoFloatWidens(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("f", Float))
	db.MustInsert("t", []any{3})
	res, err := db.Query("SELECT f FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.Rows[0][0].(float64); !ok || got != 3.0 {
		t.Errorf("got %v (%T)", res.Rows[0][0], res.Rows[0][0])
	}
}

func TestBasicQuery(t *testing.T) {
	db := flowDB(t)
	res, err := db.Query("SELECT src, bytes FROM flows WHERE proto = 'FTP'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || len(res.Columns) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Columns[0] != "src" || res.Columns[1] != "bytes" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestQueryAllStrategiesAgree(t *testing.T) {
	db := flowDB(t)
	q := `SELECT h.hr FROM hours h WHERE EXISTS (
	        SELECT * FROM flows f
	        WHERE f.start >= h.lo AND f.start < h.hi AND f.proto = 'FTP')`
	var results []string
	for _, s := range []Strategy{Native, Unnest, GMDJ, GMDJOpt} {
		res, err := db.QueryStrategy(q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var keys []string
		for _, row := range res.Rows {
			keys = append(keys, fmt.Sprint(row[0]))
		}
		sort.Strings(keys)
		results = append(results, strings.Join(keys, ","))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("strategy %d result %q differs from %q", i, results[i], results[0])
		}
	}
	if results[0] != "2,3" {
		t.Errorf("FTP hours = %q, want 2,3", results[0])
	}
}

func TestGroupByThroughFacade(t *testing.T) {
	db := flowDB(t)
	res, err := db.Query("SELECT proto, COUNT(*) AS n, SUM(bytes) AS b FROM flows GROUP BY proto")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][2]int64{}
	for _, row := range res.Rows {
		got[row[0].(string)] = [2]int64{row[1].(int64), row[2].(int64)}
	}
	if got["HTTP"] != [2]int64{4, 96} || got["FTP"] != [2]int64{2, 96} {
		t.Errorf("groups = %v", got)
	}
}

func TestExplainShowsGMDJ(t *testing.T) {
	db := flowDB(t)
	q := `SELECT h.hr FROM hours h WHERE EXISTS (
	        SELECT * FROM flows f WHERE f.start >= h.lo AND f.start < h.hi)`
	plan, err := db.Explain(q, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "GMDJ") {
		t.Errorf("GMDJOpt explain lacks a GMDJ node:\n%s", plan)
	}
	nativePlan, err := db.Explain(q, Native)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(nativePlan, "GMDJ") {
		t.Errorf("native explain should not contain GMDJ:\n%s", nativePlan)
	}
}

func TestNullRoundTrip(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("a", Int))
	db.MustInsert("t", []any{nil}, []any{7})
	res, err := db.Query("SELECT a FROM t WHERE a IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != nil {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCSVThroughFacade(t *testing.T) {
	db := flowDB(t)
	var buf bytes.Buffer
	if err := db.DumpCSV("flows", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	db2.MustCreateTable("flows",
		Col("src", String), Col("dst", String), Col("start", Int),
		Col("proto", String), Col("bytes", Int))
	if err := db2.LoadCSV("flows", &buf); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("SELECT COUNT(*) AS n FROM flows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 6 {
		t.Errorf("loaded rows = %v", res.Rows[0][0])
	}
	if err := db2.DumpCSV("missing", &buf); err == nil {
		t.Error("dumping unknown table must fail")
	}
	if err := db2.LoadCSV("missing", &buf); err == nil {
		t.Error("loading unknown table must fail")
	}
}

func TestIndexManagementThroughFacade(t *testing.T) {
	db := flowDB(t)
	if err := db.BuildHashIndex("flows", "src"); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildSortedIndex("flows", "start"); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildHashIndex("flows", "nope"); err == nil {
		t.Error("indexing unknown column must fail")
	}
	if err := db.DropIndexes("flows"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndexes("missing"); err == nil {
		t.Error("dropping on unknown table must fail")
	}
}

func TestTables(t *testing.T) {
	db := flowDB(t)
	names := db.Tables()
	if len(names) != 2 || names[0] != "flows" || names[1] != "hours" {
		t.Errorf("Tables = %v", names)
	}
}

func TestSamples(t *testing.T) {
	nf := OpenNetflowSample(1000)
	res, err := nf.Query("SELECT COUNT(*) AS n FROM Flow")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1000 {
		t.Errorf("netflow rows = %v", res.Rows[0][0])
	}
	tp := OpenTPCRSample(0.1)
	res, err = tp.Query("SELECT COUNT(*) AS n FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 100 {
		t.Errorf("customers = %v", res.Rows[0][0])
	}
}

func TestSubqueryThroughFacadeMatchesPaperSemantics(t *testing.T) {
	db := Open()
	db.MustCreateTable("l", Col("n", Int))
	db.MustCreateTable("r", Col("n", Int))
	db.MustInsert("l", []any{1}, []any{2}, []any{3}, []any{nil})
	db.MustInsert("r", []any{2}, []any{nil})
	res, err := db.Query("SELECT n FROM l WHERE n NOT IN (SELECT n FROM r)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("NOT IN over NULL set = %d rows, want 0", res.Len())
	}
}

func TestParallelQueryEquivalence(t *testing.T) {
	db := OpenNetflowSample(20_000)
	q := `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	        SELECT * FROM Flow f
	        WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	          AND f.Protocol = 'FTP')`
	serial, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.SetParallelism(4)
	par, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != par.Len() {
		t.Errorf("parallel rows %d != serial rows %d", par.Len(), serial.Len())
	}
}

func TestSaveDirOpenDir(t *testing.T) {
	dir := t.TempDir()
	db := flowDB(t)
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Query("SELECT COUNT(*) AS n FROM flows WHERE proto = 'FTP'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("restored DB query = %v", res.Rows[0][0])
	}
	if _, err := OpenDir("/nope/missing"); err == nil {
		t.Error("missing dir must error")
	}
}
