package gmdj_test

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	gmdj "github.com/olaplab/gmdj"
)

const obsTestQuery = `SELECT f.SourceIP FROM Flow f
	WHERE NOT EXISTS (SELECT * FROM Flow g
		WHERE g.SourceIP = f.SourceIP AND g.NumBytes > 400000)`

// TestQueryAnalyzeReconciles runs the same query through QueryAnalyze
// under every strategy and checks that the annotated plan's root
// cardinality matches the returned result — the -explain CLI contract.
func TestQueryAnalyzeReconciles(t *testing.T) {
	for _, s := range []gmdj.Strategy{gmdj.Native, gmdj.Unnest, gmdj.GMDJ, gmdj.GMDJOpt} {
		db := gmdj.OpenNetflowSample(1000)
		res, plan, err := db.QueryAnalyze(obsTestQuery, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !strings.HasPrefix(plan, "strategy: "+s.String()+" (analyzed)") {
			t.Errorf("%v: header missing:\n%s", s, plan)
		}
		// The root operator line is the first line after the header; its
		// actual-cardinality annotation (act= when the cost model
		// attached an estimate, rows= otherwise) must equal the result
		// cardinality.
		lines := strings.Split(plan, "\n")
		if len(lines) < 2 {
			t.Fatalf("%v: short plan:\n%s", s, plan)
		}
		rows := -1
		for _, f := range strings.Fields(lines[1]) {
			v, ok := strings.CutPrefix(f, "act=")
			if !ok {
				v, ok = strings.CutPrefix(f, "rows=")
			}
			if ok {
				rows, _ = strconv.Atoi(strings.TrimRight(v, ")"))
			}
		}
		if rows != res.Len() {
			t.Errorf("%v: plan root rows=%d, result has %d:\n%s", s, rows, res.Len(), plan)
		}
	}
}

// TestTraceRoundTrip checks the full tracing path through the facade:
// enable, run, export, parse.
func TestTraceRoundTrip(t *testing.T) {
	db := gmdj.OpenNetflowSample(500)
	var buf bytes.Buffer
	if err := db.WriteTrace(&buf); err == nil {
		t.Fatal("WriteTrace before EnableTracing must error")
	}
	db.EnableTracing(1 << 10)
	db.SetParallelism(4)
	if _, err := db.Query(obsTestQuery); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := db.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var ops, workers int
	for _, e := range trace.TraceEvents {
		switch e.Cat {
		case "op":
			ops++
		case "gmdj":
			workers++
		}
	}
	if ops == 0 {
		t.Error("trace has no operator spans")
	}
	if workers == 0 {
		t.Error("trace has no GMDJ worker spans (parallelism was 4)")
	}
}

// TestMetricsAccumulate checks the process-counter surface through the
// facade. Metrics are process-global, so assert on deltas.
func TestMetricsAccumulate(t *testing.T) {
	db := gmdj.OpenNetflowSample(500)
	before := db.Metrics()
	if _, err := db.QueryStrategy(obsTestQuery, gmdj.GMDJOpt); err != nil {
		t.Fatal(err)
	}
	after := db.Metrics()
	if d := after["queries.gmdj-opt"] - before["queries.gmdj-opt"]; d != 1 {
		t.Errorf("queries.gmdj-opt delta = %d, want 1", d)
	}
	if d := after["rows_scanned"] - before["rows_scanned"]; d <= 0 {
		t.Errorf("rows_scanned delta = %d, want > 0", d)
	}
	if d := after["gmdj.detail_rows"] - before["gmdj.detail_rows"]; d <= 0 {
		t.Errorf("gmdj.detail_rows delta = %d, want > 0", d)
	}
}
