package gmdj

import (
	"github.com/olaplab/gmdj/internal/storage"
)

// Durable storage. A DB is in-memory by default; WithDataDir (or
// SetDataDir, or the GMDJ_DATA_DIR environment variable) attaches a
// directory of immutable columnar segment files committed by
// generation-numbered manifests. Checkpointing is transparent: the
// first query after any write flushes the tables that changed and
// commits a new generation, so a crash at any instant loses at most
// the writes since the last completed query boundary. Opening a
// directory recovers the newest committed generation; a segment whose
// bytes fail checksum or structural verification quarantines its
// table — the rest of the catalog keeps serving, and queries touching
// the quarantined table return an error matching ErrSegmentCorrupt
// until the table is re-created.

// WithDataDir enables durable storage rooted at dir, recovering
// whatever a previous run committed there. Intended for setup code: it
// panics when the directory cannot be opened at all (use SetDataDir to
// handle that error; corrupt data never panics — it quarantines).
func WithDataDir(dir string) Option {
	return func(db *DB) {
		if _, err := db.eng.SetDataDir(dir); err != nil {
			panic(err)
		}
	}
}

// QuarantinedSegment describes one table recovery had to quarantine:
// its segment file failed verification, so the table answers queries
// with ErrSegmentCorrupt instead of silently serving wrong bytes.
type QuarantinedSegment struct {
	// Table is the quarantined table's name.
	Table string
	// File is the segment file that failed verification.
	File string
	// Reason is the verification failure, human-readable.
	Reason string
}

// RecoveryReport summarizes what opening a data directory found.
type RecoveryReport struct {
	// Generation is the recovered manifest generation (0 for a fresh
	// directory).
	Generation uint64
	// Tables lists the tables recovered intact, sorted.
	Tables []string
	// Quarantined lists the tables whose segments failed verification.
	Quarantined []QuarantinedSegment
	// SkippedManifests counts newer manifests skipped because they
	// failed verification (torn commits) before a valid generation was
	// found.
	SkippedManifests int
}

func toRecoveryReport(r *storage.RecoveryReport) *RecoveryReport {
	if r == nil {
		return nil
	}
	out := &RecoveryReport{
		Generation:       r.Generation,
		Tables:           append([]string(nil), r.Tables...),
		SkippedManifests: r.SkippedManifests,
	}
	for _, q := range r.Quarantined {
		out.Quarantined = append(out.Quarantined, QuarantinedSegment{Table: q.Table, File: q.File, Reason: q.Reason})
	}
	return out
}

// SetDataDir enables durable storage rooted at dir (creating it if
// needed) and recovers the newest committed generation into the
// catalog, returning what it found. Corrupt segments quarantine their
// tables rather than failing the open. The empty string disables
// persistence. Not safe to call concurrently with running queries.
func (db *DB) SetDataDir(dir string) (*RecoveryReport, error) {
	rep, err := db.eng.SetDataDir(dir)
	if err != nil {
		return nil, err
	}
	return toRecoveryReport(rep), nil
}

// DataDir returns the durable store's directory, or "" when the DB is
// purely in-memory.
func (db *DB) DataDir() string { return db.eng.DataDir() }

// Recovery returns the report from the last data-directory open (nil
// when persistence is off).
func (db *DB) Recovery() *RecoveryReport { return toRecoveryReport(db.eng.Recovery()) }

// Checkpoint persists every table whose data changed since the last
// checkpoint and commits a new manifest generation, returning the
// committed generation number. Checkpoints also run transparently
// before the first query after any write; call this explicitly to
// bound data loss without issuing a query (olapql's \checkpoint).
// Errors when no data directory is configured.
func (db *DB) Checkpoint() (uint64, error) { return db.eng.Checkpoint() }

// SegmentInfo describes one table's durable state.
type SegmentInfo struct {
	// Table is the table name; File its committed segment file.
	Table, File string
	// Rows is the committed row count.
	Rows uint64
	// Quarantined marks a table whose segment failed verification;
	// Reason says why.
	Quarantined bool
	Reason      string
}

// Segments reports the durable state of every table in the committed
// generation, sorted by table name (nil when persistence is off).
func (db *DB) Segments() []SegmentInfo {
	ds := db.eng.DiskStore()
	if ds == nil {
		return nil
	}
	infos := ds.Segments(db.cat)
	out := make([]SegmentInfo, len(infos))
	for i, s := range infos {
		out[i] = SegmentInfo{Table: s.Table, File: s.File, Rows: s.Rows, Quarantined: s.Quarantined, Reason: s.Reason}
	}
	return out
}

// StorageStats is a point-in-time snapshot of durable-store activity,
// the source of the olap_storage_* metric families.
type StorageStats struct {
	// Enabled reports whether a data directory is configured; every
	// other field is zero when false.
	Enabled bool
	// Dir is the data directory; Generation the committed manifest
	// generation.
	Dir        string
	Generation uint64
	// Tables counts tables in the committed generation;
	// QuarantinedTables those currently quarantined.
	Tables, QuarantinedTables int
	// SegmentsWritten and SegmentsRecovered count segment files
	// persisted and read back intact; Quarantined counts quarantine
	// events.
	SegmentsWritten, SegmentsRecovered, Quarantined int64
	// Checkpoints and Recoveries count committed generations and
	// directory opens; SkippedManifests counts torn manifest commits
	// recovery had to walk past.
	Checkpoints, Recoveries, SkippedManifests int64
	// BytesWritten and BytesRead total durable I/O traffic.
	BytesWritten, BytesRead int64
}

// StorageStats snapshots the durable store's counters.
func (db *DB) StorageStats() StorageStats {
	ds := db.eng.DiskStore()
	if ds == nil {
		return StorageStats{}
	}
	s := ds.Stats(db.cat)
	return StorageStats{
		Enabled:           true,
		Dir:               s.Dir,
		Generation:        s.Generation,
		Tables:            s.Tables,
		QuarantinedTables: s.QuarantinedTables,
		SegmentsWritten:   s.SegmentsWritten,
		SegmentsRecovered: s.SegmentsRecovered,
		Quarantined:       s.Quarantined,
		Checkpoints:       s.Checkpoints,
		Recoveries:        s.Recoveries,
		SkippedManifests:  s.SkippedManifests,
		BytesWritten:      s.BytesWritten,
		BytesRead:         s.BytesRead,
	}
}
