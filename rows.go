package gmdj

import (
	"context"
	"errors"
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
)

// Rows is a cursor over a query's result, shaped like database/sql's:
//
//	rows, err := db.QueryRows(`SELECT src, bytes FROM flows`)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var src string
//		var n int64
//		if err := rows.Scan(&src, &n); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Evaluation runs concurrently with the caller from the moment
// QueryRows returns; Next blocks until the result is ready. Close is
// governance-aware: closing a cursor whose query is still running
// cancels the query's context, aborting evaluation cooperatively
// within a few hundred rows of any operator loop — abandoning a
// cursor never leaks a running query.
type Rows struct {
	cancel context.CancelFunc
	done   chan struct{}

	// written by the runner goroutine before close(done); read only
	// after <-done.
	rel *relation.Relation
	err error

	i      int // next row index
	closed bool
}

// QueryRows runs a query under the GMDJOpt strategy and returns a
// cursor over its rows. The plan cache applies as in Query.
func (db *DB) QueryRows(query string) (*Rows, error) {
	return db.QueryRowsContext(context.Background(), query)
}

// QueryRowsStrategy is QueryRows with an explicit strategy.
func (db *DB) QueryRowsStrategy(query string, s Strategy) (*Rows, error) {
	return db.QueryRowsStrategyContext(context.Background(), query, s)
}

// QueryRowsContext is QueryRows honoring the caller's context in
// addition to Close's cancellation.
func (db *DB) QueryRowsContext(ctx context.Context, query string) (*Rows, error) {
	return db.QueryRowsStrategyContext(ctx, query, GMDJOpt)
}

// QueryRowsStrategyContext is QueryRowsStrategy honoring the caller's
// context.
func (db *DB) QueryRowsStrategyContext(ctx context.Context, query string, s Strategy) (*Rows, error) {
	// Compile synchronously so syntax and resolution errors surface
	// here, not from Next.
	phys, err := db.physicalPlan(query, s)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithCancel(ctx)
	r := &Rows{cancel: cancel, done: make(chan struct{})}
	go func() {
		// Release the derived context as soon as evaluation stops, even
		// when the caller abandons the cursor without Next or Close: the
		// runner goroutine must not depend on the caller for its cleanup,
		// and an uncancelled child context stays registered on the
		// caller's context tree (pinning a propagation goroutine for
		// non-stdlib parents) for that context's whole lifetime.
		defer close(r.done)
		defer cancel()
		r.rel, r.err = db.eng.RunPlannedContext(cctx, query, phys, s)
	}()
	return r, nil
}

// Next advances to the next row, blocking until it is available. It
// returns false when the rows are exhausted, the query failed (see
// Err), or the cursor is closed.
func (r *Rows) Next() bool {
	<-r.done
	if r.closed || r.err != nil || r.rel == nil || r.i >= r.rel.Len() {
		return false
	}
	r.i++
	return true
}

// Columns returns the result column names. It blocks until the query
// completes and returns nil if it failed.
func (r *Rows) Columns() []string {
	<-r.done
	if r.rel == nil {
		return nil
	}
	cols := make([]string, r.rel.Schema.Len())
	for i, c := range r.rel.Schema.Columns {
		cols[i] = c.Name
	}
	return cols
}

// Scan copies the current row (positioned by Next) into dest, which
// must hold one pointer per result column: *int64, *float64, *string,
// *bool receive exact types (NULL is an error there); *any receives
// the value as Result.Rows cells do, with NULL as nil.
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("gmdj: Scan on closed Rows")
	}
	if r.i == 0 {
		return fmt.Errorf("gmdj: Scan called before Next")
	}
	<-r.done
	if r.err != nil {
		return r.err
	}
	row := r.rel.Rows[r.i-1]
	if len(dest) != len(row) {
		return fmt.Errorf("gmdj: Scan got %d destinations, row has %d columns", len(dest), len(row))
	}
	for j, d := range dest {
		v := row[j]
		switch p := d.(type) {
		case *any:
			*p = fromValue(v)
		case *int64:
			x, ok := fromValue(v).(int64)
			if !ok {
				return fmt.Errorf("gmdj: Scan column %d: cannot store %s into *int64", j+1, v)
			}
			*p = x
		case *float64:
			switch x := fromValue(v).(type) {
			case float64:
				*p = x
			case int64:
				*p = float64(x)
			default:
				return fmt.Errorf("gmdj: Scan column %d: cannot store %s into *float64", j+1, v)
			}
		case *string:
			x, ok := fromValue(v).(string)
			if !ok {
				return fmt.Errorf("gmdj: Scan column %d: cannot store %s into *string", j+1, v)
			}
			*p = x
		case *bool:
			x, ok := fromValue(v).(bool)
			if !ok {
				return fmt.Errorf("gmdj: Scan column %d: cannot store %s into *bool", j+1, v)
			}
			*p = x
		default:
			return fmt.Errorf("gmdj: Scan column %d: unsupported destination type %T", j+1, d)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. An error
// caused solely by Close canceling a still-running query is not
// reported — abandoning a cursor is not a failure.
func (r *Rows) Err() error {
	select {
	case <-r.done:
	default:
		// Query still running and not yet iterated: no error to report.
		return nil
	}
	if r.closed && errors.Is(r.err, ErrCanceled) {
		return nil
	}
	return r.err
}

// Close releases the cursor. If the query is still running its
// context is canceled and Close blocks until evaluation has fully
// stopped — including the removal of any spill files the query had in
// flight (see WithMemoryLimit). Close is idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cancel()
	<-r.done
	return nil
}
