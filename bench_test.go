// Benchmarks regenerating the paper's evaluation (Figures 2–5), plus
// operator micro-benchmarks and ablations. Each figure benchmark
// sweeps the paper's table sizes (at 1/16 scale so a full -bench run
// stays laptop-friendly; cmd/benchfig runs any scale) across the
// evaluation strategies:
//
//	go test -bench=Fig -benchmem
//
// The reported ns/op of sub-benchmarks named Fig<k>/<variant>/<size>
// are the series of the corresponding paper figure.
package gmdj

import (
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"testing"
	"time"

	iagg "github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/benchlab"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/expr"
	igmdj "github.com/olaplab/gmdj/internal/gmdj"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/obs/profile"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/sql"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// benchScale keeps `go test -bench=.` runs in the minutes range; use
// cmd/benchfig -scale 1.0 for the paper's full row counts.
const benchScale = 1.0 / 16.0

func benchFigure(b *testing.B, id string) {
	// GMDJ_OBS=1 runs the timed loop with per-operator stats collection
	// on; GMDJ_OBS=2 additionally attaches a full workload observer
	// (latency histograms, live-query registry, slow-query log). CI
	// compares both against the plain run (the disabled-hooks overhead
	// guard in scripts/obs_overhead.sh).
	obsMode := os.Getenv("GMDJ_OBS")
	observed := obsMode == "1" || obsMode == "2"
	// GMDJ_PROF=1 runs the timed loop under the continuous-profiling
	// posture: pprof query labels on every iteration (goroutine-local
	// label push/pop, inherited by GMDJ workers) plus a live cadence
	// profiler sampling CPU in the background — the profiler-on
	// overhead guard in scripts/obs_overhead.sh.
	profMode := os.Getenv("GMDJ_PROF") == "1"
	r := &benchlab.Runner{Scale: benchScale, Repeat: 1, Verify: false}
	exp, err := r.Experiment(id)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range exp.Sizes {
		for _, v := range exp.Variants {
			if v.MaxInner > 0 && size.Inner > v.MaxInner {
				continue // DNF by construction (see benchlab notes)
			}
			name := fmt.Sprintf("%s/%s", v.Name, size.Label)
			b.Run(name, func(b *testing.B) {
				cat := exp.Build(size)
				if exp.Prepare != nil {
					if err := exp.Prepare(cat); err != nil {
						b.Fatal(err)
					}
				}
				eng := engine.New(cat)
				eng.SetUseIndexes(v.UseIndexes)
				if obsMode == "2" {
					eng.SetObserver(obs.NewObserver(obs.ObserverConfig{}))
				}
				physical, err := eng.Plan(exp.Query(size), v.Strategy)
				if err != nil {
					b.Fatal(err)
				}
				if profMode {
					prof, err := profile.New(profile.Config{Dir: b.TempDir(), Interval: 2 * time.Second, CPUDuration: time.Second})
					if err != nil {
						b.Fatal(err)
					}
					prof.Start()
					b.Cleanup(func() { prof.Close() })
				}
				runOne := func() {
					if observed {
						if _, _, err := eng.RunObserved(context.Background(), physical, engine.Native); err != nil {
							b.Fatal(err)
						}
					} else if _, err := eng.Run(physical, engine.Native); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if profMode {
						pprof.Do(context.Background(), profile.QueryLabels("bench", "", v.Name, "execute"), func(context.Context) {
							runOne()
						})
					} else {
						runOne()
					}
				}
			})
		}
	}
}

// BenchmarkFig2 — EXISTS subquery (paper Figure 2).
func BenchmarkFig2(b *testing.B) { benchFigure(b, "fig2") }

// BenchmarkFig3 — comparison against an aggregate subquery (Figure 3).
func BenchmarkFig3(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig4 — quantified ALL with ≠ correlation (Figure 4).
func BenchmarkFig4(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5 — two tree-nested EXISTS subqueries (Figure 5).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "fig5") }

// ---------------------------------------------------------------------------
// Operator micro-benchmarks and ablations

// BenchmarkGMDJOperator measures the raw GMDJ evaluator: one indexed
// condition over a 100k-row detail relation, 1k base rows.
func BenchmarkGMDJOperator(b *testing.B) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 1000; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	rng := datagen.NewPRNG(5)
	for i := 0; i < 100_000; i++ {
		detail.Append(relation.Tuple{value.Int(rng.Int63n(1000)), value.Int(rng.Int63n(1000))})
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs: []iagg.Spec{
			{Func: iagg.CountStar, As: "cnt"},
			{Func: iagg.Sum, Arg: expr.C("R.v"), As: "s"},
		},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igmdj.Evaluate(base, detail, conds, igmdj.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGMDJParallel is the parallel-scan ablation of the same
// workload (the paper's conclusion notes GMDJ suits parallel DBMSs).
func BenchmarkGMDJParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			base := relation.New(relation.NewSchema(
				relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
			))
			for i := int64(0); i < 1000; i++ {
				base.Append(relation.Tuple{value.Int(i)})
			}
			detail := relation.New(relation.NewSchema(
				relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
			))
			rng := datagen.NewPRNG(6)
			for i := 0; i < 200_000; i++ {
				detail.Append(relation.Tuple{value.Int(rng.Int63n(1000))})
			}
			conds := []algebra.GMDJCond{{
				Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
				Aggs:  []iagg.Spec{{Func: iagg.CountStar, As: "cnt"}},
			}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := igmdj.Evaluate(base, detail, conds, igmdj.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoalescingAblation compares the Example 2.3 plan with and
// without Proposition 4.1 coalescing: 3 subqueries over the same detail
// table become 1 scan instead of 4.
func BenchmarkCoalescingAblation(b *testing.B) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 100_000, Hours: 24, Users: 40, Seed: 9})
	q := `SELECT u.IPAddress FROM User u
	      WHERE NOT EXISTS (SELECT * FROM Flow f1 WHERE f1.SourceIP = u.IPAddress AND f1.DestIP = '167.167.167.0')
	        AND EXISTS     (SELECT * FROM Flow f2 WHERE f2.SourceIP = u.IPAddress AND f2.DestIP = '168.168.168.0')
	        AND NOT EXISTS (SELECT * FROM Flow f3 WHERE f3.SourceIP = u.IPAddress AND f3.DestIP = '169.169.169.0')`
	for _, s := range []engine.Strategy{engine.GMDJ, engine.GMDJOpt} {
		b.Run(s.String(), func(b *testing.B) {
			eng := engine.New(cat)
			plan, err := sql.ParseAndResolve(q, eng)
			if err != nil {
				b.Fatal(err)
			}
			physical, err := eng.Plan(plan, s)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(physical, engine.Native); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompletionAblation isolates §4.2 tuple completion on the
// Figure 4 workload at a fixed size.
func BenchmarkCompletionAblation(b *testing.B) {
	cat := datagen.KeyPair(datagen.KeyPairOpts{Rows: 4000, Seed: 13})
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key"))},
		OutCol: expr.C("B.b_val"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("A", "A"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE, Left: expr.C("A.a_val"), Sub: sub})
	for _, s := range []engine.Strategy{engine.GMDJ, engine.GMDJOpt} {
		b.Run(s.String(), func(b *testing.B) {
			eng := engine.New(cat)
			physical, err := eng.Plan(plan, s)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(physical, engine.Native); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoin measures the join executor on a 100k ⋈ 100k
// equi-join (the unnest baseline's workhorse).
func BenchmarkHashJoin(b *testing.B) {
	mk := func(q string, n int, seed uint64) *relation.Relation {
		r := relation.New(relation.NewSchema(
			relation.Column{Qualifier: q, Name: "k", Type: value.KindInt},
		))
		rng := datagen.NewPRNG(seed)
		for i := 0; i < n; i++ {
			r.Append(relation.Tuple{value.Int(rng.Int63n(50_000))})
		}
		return r
	}
	cat := storage.NewCatalog()
	cat.Register(storage.NewTable("L", mk("L", 100_000, 1)))
	cat.Register(storage.NewTable("R", mk("R", 100_000, 2)))
	eng := exec.New(cat)
	plan := algebra.NewJoin(algebra.SemiJoin,
		algebra.NewScan("L", "L"), algebra.NewScan("R", "R"),
		expr.Eq(expr.C("L.k"), expr.C("R.k")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures front-end overhead.
func BenchmarkSQLParse(b *testing.B) {
	q := `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	        SELECT * FROM Flow f
	        WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	          AND f.Protocol = 'HTTP') AND h.HourDsc > 2`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoizationAblation isolates Rao-Ross invariant reuse on a
// workload with heavily duplicated correlation keys: 2000 outer rows
// over only 40 distinct keys.
func BenchmarkMemoizationAblation(b *testing.B) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 2000, Hours: 24, Users: 40, Seed: 10})
	flowTbl, err := cat.Table("Flow")
	if err != nil {
		b.Fatal(err)
	}
	sub := &algebra.Subquery{
		Source: algebra.NewScan("User", "U"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("U.IPAddress"), expr.C("F.SourceIP"))},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Flow", "F"), algebra.ExistsPred(sub))
	_ = flowTbl
	for _, memo := range []bool{false, true} {
		name := "plain"
		if memo {
			name = "memoized"
		}
		b.Run(name, func(b *testing.B) {
			ex := exec.New(cat)
			ex.UseIndexes = false
			ex.MemoizeSubqueries = memo
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionedGMDJ measures the memory-bounded base-partition
// regime: same work, bounded base structure, extra detail scans.
func BenchmarkPartitionedGMDJ(b *testing.B) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 10_000; i++ {
		base.Append(relation.Tuple{value.Int(i % 500)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	rng := datagen.NewPRNG(8)
	for i := 0; i < 100_000; i++ {
		detail.Append(relation.Tuple{value.Int(rng.Int63n(500))})
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []iagg.Spec{{Func: iagg.CountStar, As: "cnt"}},
	}}
	for _, maxBase := range []int{0, 1000, 2500} {
		name := "unbounded"
		if maxBase > 0 {
			name = fmt.Sprintf("maxbase=%d", maxBase)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := igmdj.Evaluate(base, detail, conds, igmdj.Options{MaxBaseRows: maxBase}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedReplay measures the redesigned API on the paper's
// Example 2.3 workload replayed with rotating constants — the
// dashboard-replay pattern the plan cache and prepared statements
// exist for:
//
//	unprepared    — Query against a DB with the plan cache disabled:
//	                every replay parses, resolves, and rewrites.
//	plancache     — plain Query (Open's default): constants are lifted
//	                into parameters and the compiled template is shared.
//	prepared      — an explicit prepared statement, bound per replay.
//	prepared-memo — prepared plus WithResultCache: replays also reuse
//	                GMDJ detail-side hash vectors across queries.
func BenchmarkPreparedReplay(b *testing.B) {
	const flows = 125
	tmpl := `SELECT u.IPAddress FROM User u
	 WHERE NOT EXISTS (SELECT * FROM Flow f1 WHERE f1.SourceIP = u.IPAddress AND f1.DestIP = %s)
	   AND EXISTS     (SELECT * FROM Flow f2 WHERE f2.SourceIP = u.IPAddress AND f2.DestIP = %s)
	   AND NOT EXISTS (SELECT * FROM Flow f3 WHERE f3.SourceIP = u.IPAddress AND f3.DestIP = %s)`
	dests := [][3]string{
		{"167.167.167.0", "168.168.168.0", "169.169.169.0"},
		{"168.168.168.0", "169.169.169.0", "167.167.167.0"},
		{"169.169.169.0", "167.167.167.0", "168.168.168.0"},
	}

	b.Run("unprepared", func(b *testing.B) {
		db := OpenNetflowSample(flows, WithPlanCache(-1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := dests[i%len(dests)]
			q := fmt.Sprintf(tmpl, "'"+d[0]+"'", "'"+d[1]+"'", "'"+d[2]+"'")
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plancache", func(b *testing.B) {
		db := OpenNetflowSample(flows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := dests[i%len(dests)]
			q := fmt.Sprintf(tmpl, "'"+d[0]+"'", "'"+d[1]+"'", "'"+d[2]+"'")
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		db := OpenNetflowSample(flows)
		stmt, err := db.Prepare(fmt.Sprintf(tmpl, "$1", "$2", "$3"))
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := dests[i%len(dests)]
			if _, err := stmt.Query(d[0], d[1], d[2]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-memo", func(b *testing.B) {
		db := OpenNetflowSample(flows, WithResultCache(0))
		stmt, err := db.Prepare(fmt.Sprintf(tmpl, "$1", "$2", "$3"))
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := dests[i%len(dests)]
			if _, err := stmt.Query(d[0], d[1], d[2]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
