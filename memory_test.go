package gmdj

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/govern"
)

// memGovernDB is governDB plus memory options applied after open (the
// setters rebuild the pool and scratch store, so order is irrelevant).
func memGovernDB(t *testing.T, hours, flows int, opts ...Option) *DB {
	t.Helper()
	db := governDB(t, hours, flows)
	for _, o := range opts {
		o(db)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// memSpillLimit is small enough that governDB(800, ...)'s GMDJ base
// state (~150 KiB estimated) cannot fit and must spill.
const memSpillLimit = 32 << 10

// TestMemSpillParityAllStrategies: with a reservation forcing the GMDJ
// base state to spill across partitions, every strategy must return
// byte-identical rows to the unlimited run, serially and in parallel.
func TestMemSpillParityAllStrategies(t *testing.T) {
	plain := governDB(t, 800, 4000)
	memdb := memGovernDB(t, 800, 4000,
		WithMemoryLimit(memSpillLimit), WithSpillDir(t.TempDir()))
	for _, workers := range []int{1, 4} {
		plain.SetParallelism(workers)
		memdb.SetParallelism(workers)
		for _, s := range allStrategies {
			t.Run(fmt.Sprintf("%v/workers=%d", s, workers), func(t *testing.T) {
				want, err := plain.QueryStrategy(governQuery, s)
				if err != nil {
					t.Fatal(err)
				}
				got, err := memdb.QueryStrategy(governQuery, s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Columns, got.Columns) {
					t.Fatalf("columns %v vs %v", want.Columns, got.Columns)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("rows differ: %d vs %d", len(want.Rows), len(got.Rows))
				}
			})
		}
	}
	ms := memdb.MemStats()
	if !ms.Enabled || !ms.SpillEnabled {
		t.Fatalf("memory posture = %+v, want enabled+spill", ms)
	}
	if ms.SpillWrites == 0 || ms.SpillBytesWritten == 0 {
		t.Errorf("GMDJ runs never spilled: %+v", ms)
	}
	if ms.SpillLiveFiles != 0 {
		t.Errorf("%d spill files leaked", ms.SpillLiveFiles)
	}
	if ms.InUse != 0 {
		t.Errorf("pool bytes leaked: %d in use after queries", ms.InUse)
	}
}

// TestMemSpillReportedInExplain: EXPLAIN ANALYZE must report the spill
// partitions, byte traffic, and the relaxed 1+k scan count.
func TestMemSpillReportedInExplain(t *testing.T) {
	memdb := memGovernDB(t, 800, 4000,
		WithMemoryLimit(memSpillLimit), WithSpillDir(t.TempDir()))
	_, plan, err := memdb.QueryAnalyze(governQuery, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"spill_partitions=", "spill_bytes_written=", "spill_bytes_read=", "extra_detail_scans="} {
		if !containsCounter(plan, counter) {
			t.Errorf("analyzed plan missing %s:\n%s", counter, plan)
		}
	}
}

func containsCounter(plan, prefix string) bool {
	for i := 0; i+len(prefix) < len(plan); i++ {
		if plan[i:i+len(prefix)] == prefix && plan[i+len(prefix)] != '0' {
			return true
		}
	}
	return false
}

// TestMemKillRegime: WithSpillDir("") disables degradation — memory
// exhaustion must surface as the typed budget error, and the database
// must stay usable afterwards.
func TestMemKillRegime(t *testing.T) {
	memdb := memGovernDB(t, 800, 4000,
		WithMemoryLimit(memSpillLimit), WithSpillDir(""))
	if ms := memdb.MemStats(); !ms.Enabled || ms.SpillEnabled {
		t.Fatalf("posture = %+v, want pool without spill", ms)
	}
	for _, s := range []Strategy{GMDJ, GMDJOpt} {
		if _, err := memdb.QueryStrategy(governQuery, s); !errors.Is(err, ErrMemBudget) {
			t.Errorf("%v: err = %v, want ErrMemBudget", s, err)
		}
	}
	if _, err := memdb.Query("SELECT hr FROM hours"); err != nil {
		t.Fatalf("database unusable after memory kill: %v", err)
	}
}

// TestMemAdmissionTimeout: a query that cannot get pool memory within
// the admission deadline is shed with the typed error while the
// holder finishes normally.
func TestMemAdmissionTimeout(t *testing.T) {
	memdb := memGovernDB(t, 20, 500,
		WithMemoryLimit(64<<10),
		WithSpillDir(t.TempDir()),
		WithAdmissionTimeout(50*time.Millisecond))
	// Pin the first query mid-flight so it holds its (whole-pool)
	// reservation while the second tries to get in.
	memdb.eng.SetFaultInjector(govern.NewInjector(map[string]string{"exec.scan": "delay:300ms"}))
	defer memdb.eng.SetFaultInjector(nil)
	done := make(chan error, 1)
	go func() {
		_, err := memdb.Query(governQuery)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := memdb.Query(governQuery); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("holder query failed: %v", err)
	}
	if ms := memdb.MemStats(); ms.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1 (stats %+v)", ms.TimedOut, ms)
	}
}

// TestMemDiskFaultMatrix: every injected disk fault during a spilled
// run must yield the typed spill error and leave the scratch directory
// empty; removing the injector restores normal operation.
func TestMemDiskFaultMatrix(t *testing.T) {
	memdb := memGovernDB(t, 800, 4000,
		WithMemoryLimit(memSpillLimit), WithSpillDir(t.TempDir()))
	for _, site := range []struct{ site, action string }{
		{"spill.write", "enospc"},
		{"spill.write", "shortwrite"},
		{"spill.write", "error"},
		{"spill.read", "corrupt"},
		{"spill.read", "error"},
	} {
		t.Run(site.site+"="+site.action, func(t *testing.T) {
			memdb.eng.SetFaultInjector(govern.NewInjector(map[string]string{site.site: site.action}))
			_, err := memdb.QueryStrategy(governQuery, GMDJOpt)
			if !errors.Is(err, ErrSpillIO) {
				t.Fatalf("err = %v, want ErrSpillIO", err)
			}
			ms := memdb.MemStats()
			if ms.SpillLiveFiles != 0 {
				t.Errorf("%d spill files leaked", ms.SpillLiveFiles)
			}
			entries, err := os.ReadDir(ms.SpillDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				t.Errorf("leftover temp file %s", e.Name())
			}
		})
	}
	memdb.eng.SetFaultInjector(nil)
	if _, err := memdb.QueryStrategy(governQuery, GMDJOpt); err != nil {
		t.Fatalf("database unusable after disk faults: %v", err)
	}
}

// TestMemEnvConfig: GMDJ_MEM supplies the three knobs at Open.
func TestMemEnvConfig(t *testing.T) {
	t.Setenv("GMDJ_MEM", "limit=32KiB,spill="+t.TempDir()+",admission=1s")
	memdb := governDB(t, 800, 4000) // plain Open picks up the env
	defer memdb.Close()
	ms := memdb.MemStats()
	if !ms.Enabled || ms.Capacity != 32<<10 || !ms.SpillEnabled {
		t.Fatalf("env config not applied: %+v", ms)
	}
	if _, err := memdb.QueryStrategy(governQuery, GMDJOpt); err != nil {
		t.Fatal(err)
	}
	if ms := memdb.MemStats(); ms.SpillWrites == 0 {
		t.Errorf("env-configured limit never spilled: %+v", ms)
	}
}

// TestMemCloseRemovesScratch: Close deletes the scratch directory; the
// DB survives for in-memory work.
func TestMemCloseRemovesScratch(t *testing.T) {
	memdb := memGovernDB(t, 800, 4000,
		WithMemoryLimit(memSpillLimit), WithSpillDir(t.TempDir()))
	if _, err := memdb.QueryStrategy(governQuery, GMDJOpt); err != nil {
		t.Fatal(err)
	}
	dir := memdb.MemStats().SpillDir
	if dir == "" {
		t.Fatal("no scratch dir")
	}
	if err := memdb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("scratch dir %s survived Close", dir)
	}
	if err := memdb.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := memdb.Query("SELECT hr FROM hours"); err != nil {
		t.Fatalf("database unusable after Close: %v", err)
	}
}

// TestMemNetflowSpillParity: the paper's Example 2.3-shaped workload
// (netflow hours x flows) agrees between unlimited and spilled runs.
func TestMemNetflowSpillParity(t *testing.T) {
	const q = `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	        SELECT * FROM Flow f
	        WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	          AND f.Protocol = 'FTP')`
	plain := OpenNetflowSample(8000)
	// The Hours base is only 24 rows (~4 KiB of estimated state), so the
	// limit must be tiny to force the spill regime.
	memdb := OpenNetflowSample(8000,
		WithMemoryLimit(2<<10), WithSpillDir(t.TempDir()))
	defer memdb.Close()
	want, err := plain.QueryStrategy(q, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := memdb.QueryStrategy(q, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("netflow rows differ: %d vs %d", len(want.Rows), len(got.Rows))
	}
	if ms := memdb.MemStats(); ms.SpillWrites == 0 {
		t.Errorf("netflow workload never spilled: %+v", ms)
	}
}

// TestMemCloseShedsQueuedQueries: DB.Close while queries sit in the
// admission queue must shed them promptly with the typed ErrClosed —
// not deadlock, and not strand them until their admission deadlines.
func TestMemCloseShedsQueuedQueries(t *testing.T) {
	memdb := memGovernDB(t, 20, 500,
		WithMemoryLimit(64<<10),
		WithSpillDir(t.TempDir()),
		WithAdmissionTimeout(30*time.Second))
	// Pin the first query mid-flight so it holds the whole pool while
	// the others queue behind it.
	memdb.eng.SetFaultInjector(govern.NewInjector(map[string]string{"exec.scan": "delay:500ms"}))
	holder := make(chan error, 1)
	go func() {
		_, err := memdb.Query(governQuery)
		holder <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for memdb.MemStats().InUse == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder query never acquired the pool")
		}
		time.Sleep(time.Millisecond)
	}
	const queued = 4
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, err := memdb.Query(governQuery)
			errs <- err
		}()
	}
	for memdb.MemStats().Queued < queued {
		if time.Now().After(deadline) {
			t.Fatalf("only %d queries queued", memdb.MemStats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := memdb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < queued; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("queued query got %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued query deadlocked across Close")
		}
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("shed took %v; waiters sat out their admission deadline", waited)
	}
	// The holder finishes normally, and the closed DB still answers
	// queries (unaccounted).
	if err := <-holder; err != nil {
		t.Fatalf("holder query failed: %v", err)
	}
	if _, err := memdb.Query(governQuery); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}
