package gmdj

import (
	"strings"
	"testing"
)

func TestExecCreateInsertSelect(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'x', 2.5, TRUE), (-2, 'y', 3, FALSE), (NULL, NULL, NULL, NULL)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT a, b FROM t WHERE a IS NOT NULL ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Rows[0][0].(int64) != -2 || res.Rows[1][1].(string) != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
	// INT literal widened into FLOAT column.
	res, _ = db.Exec(`SELECT c FROM t WHERE b = 'y'`)
	if res.Rows[0][0].(float64) != 3.0 {
		t.Errorf("widened float = %v", res.Rows[0][0])
	}
}

func TestExecCreateValidation(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.Exec(`CREATE TABLE u (a BLOB)`); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := db.Exec(`CREATE TABLE`); err == nil {
		t.Error("truncated CREATE must fail")
	}
}

func TestExecInsertAtomicity(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("a", Int))
	// Second row has a type error; the first must not be applied.
	if _, err := db.Exec(`INSERT INTO t VALUES (1), ('oops')`); err == nil {
		t.Fatal("type error must fail the insert")
	}
	res, _ := db.Exec(`SELECT COUNT(*) AS n FROM t`)
	if res.Rows[0][0].(int64) != 0 {
		t.Errorf("failed INSERT must be atomic, found %v rows", res.Rows[0][0])
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 2)`); err == nil {
		t.Error("width mismatch must fail")
	}
	if _, err := db.Exec(`INSERT INTO missing VALUES (1)`); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestExecDropTable(t *testing.T) {
	db := Open()
	db.MustCreateTable("t", Col("a", Int))
	if _, err := db.Exec(`DROP TABLE t`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec(`DROP TABLE t`); err == nil {
		t.Error("dropping a missing table must fail")
	}
}

func TestExecSelectUsesStrategy(t *testing.T) {
	db := Open()
	db.MustCreateTable("l", Col("n", Int))
	db.MustCreateTable("r", Col("n", Int))
	db.MustInsert("l", []any{1}, []any{2})
	db.MustInsert("r", []any{2})
	q := `SELECT n FROM l WHERE EXISTS (SELECT * FROM r WHERE r.n = l.n)`
	for _, s := range []Strategy{Native, Unnest, GMDJ, GMDJOpt, Auto} {
		res, err := db.ExecStrategy(q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Len() != 1 || res.Rows[0][0].(int64) != 2 {
			t.Errorf("%v: rows = %v", s, res.Rows)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := Open()
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"INSERT INTO t (1)",
		"CREATE TABLE t a INT",
		"INSERT INTO t VALUES (1) garbage",
		"DROP TABLE",
	}
	for _, stmt := range bad {
		if _, err := db.Exec(stmt); err == nil {
			t.Errorf("Exec(%q) should fail", stmt)
		}
	}
}

func TestExecNegativeLiterals(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (a INT, f FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (-5, -2.5)`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec(`SELECT a, f FROM t`)
	if res.Rows[0][0].(int64) != -5 || res.Rows[0][1].(float64) != -2.5 {
		t.Errorf("negative literals wrong: %v", res.Rows)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (-'x', 1)`); err == nil ||
		!strings.Contains(err.Error(), "number") {
		t.Errorf("minus before string should fail: %v", err)
	}
}
