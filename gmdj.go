// Package gmdj is an embeddable in-memory OLAP query engine whose
// subquery processor implements Akinde & Böhlen, "Efficient Computation
// of Subqueries in Complex OLAP" (ICDE 2003): nested query expressions
// are translated into an algebra extended with the GMDJ
// (generalized multi-dimensional join) operator and evaluated in a
// bounded number of scans of the detail relations, with the paper's
// coalescing and tuple-completion optimizations applied on top.
//
// The package is a thin, stable facade over the engine internals:
//
//	db := gmdj.Open()
//	db.MustCreateTable("flows",
//		gmdj.Col("src", gmdj.String), gmdj.Col("bytes", gmdj.Int))
//	db.MustInsert("flows", []any{"10.0.0.1", int64(1200)})
//	res, err := db.Query(`SELECT src FROM flows WHERE bytes > 1000`)
//
// Queries accept the subquery constructs the paper studies — EXISTS,
// NOT EXISTS, IN, NOT IN, comparison against scalar and aggregate
// subqueries, and quantified ANY/SOME/ALL — and can be executed under
// any of four strategies (see Strategy) for comparison.
package gmdj

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/plancache"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/sql"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// Type is a column type.
type Type uint8

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit float column.
	Float
	// String is a string column.
	String
	// Bool is a boolean column.
	Bool
)

func (t Type) kind() value.Kind {
	switch t {
	case Int:
		return value.KindInt
	case Float:
		return value.KindFloat
	case String:
		return value.KindString
	case Bool:
		return value.KindBool
	default:
		return value.KindNull
	}
}

// Column declares one table column.
type Column struct {
	Name string
	Type Type
}

// Col is shorthand for a Column literal.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Strategy selects how subqueries are evaluated. The default for
// Query is GMDJOpt, the paper's optimized translation.
type Strategy = engine.Strategy

// Evaluation strategies.
const (
	// Native is tuple-iteration semantics with index acceleration.
	Native = engine.Native
	// Unnest is classical join/outer-join unnesting.
	Unnest = engine.Unnest
	// GMDJ is the basic SubqueryToGMDJ translation (Theorem 3.5).
	GMDJ = engine.GMDJ
	// GMDJOpt adds coalescing and tuple completion (§4).
	GMDJOpt = engine.GMDJOpt
	// Auto lets the built-in cost model pick among the other four.
	Auto = engine.Auto
)

// Budget bounds one query evaluation: wall-clock timeout, materialized
// rows, and approximate materialized bytes. The zero Budget is
// unlimited. Apply with DB.SetBudget.
type Budget = engine.Budget

// Query-governance errors. A query aborted by its budget, its caller,
// or an internal fault returns an error matching exactly one of these
// with errors.Is; see the "Query governance & failure semantics"
// section of the README for the taxonomy.
var (
	// ErrCanceled: the caller canceled the query's context.
	ErrCanceled = govern.ErrCanceled
	// ErrTimeout: the query exceeded Budget.Timeout (or the caller
	// context's deadline).
	ErrTimeout = govern.ErrTimeout
	// ErrRowBudget: the query materialized more than Budget.MaxRows.
	ErrRowBudget = govern.ErrRowBudget
	// ErrMemBudget: the query exceeded Budget.MaxMemBytes.
	ErrMemBudget = govern.ErrMemBudget
	// ErrInternal: an operator panicked; the panic was recovered at the
	// engine boundary and the process survived.
	ErrInternal = govern.ErrInternal
)

// DB is an in-memory database: a catalog of tables plus the query
// engine. A DB is not safe for concurrent mutation; concurrent
// read-only queries are safe.
type DB struct {
	cat *storage.Catalog
	eng *engine.Engine
}

// Open creates an empty database, configured by options. With no
// options the database has the parameterized plan cache enabled
// (16 MiB LRU; see WithPlanCache), secondary-index use on,
// morsel-driven parallelism at runtime.GOMAXPROCS(0) (see
// WithParallelism), no budget, and no cross-query result memo.
func Open(opts ...Option) *DB {
	return newDB(storage.NewCatalog(), opts)
}

// newDB is the shared constructor behind Open and the sample openers:
// defaults first, then the caller's options in order.
func newDB(cat *storage.Catalog, opts []Option) *DB {
	db := &DB{cat: cat, eng: engine.New(cat)}
	db.eng.SetPlanCache(plancache.New(0))
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// SetParallelism sets the morsel-driven execution degree (0 or 1
// means serial; see WithParallelism for the full contract).
//
// Deprecated: pass WithParallelism to Open.
func (db *DB) SetParallelism(workers int) { db.eng.SetGMDJWorkers(workers) }

// SetBudget bounds every subsequent query on this DB. Exceeding a
// bound aborts that query (typed error; see ErrTimeout, ErrRowBudget,
// ErrMemBudget) without affecting the DB or other queries. Not safe to
// call concurrently with running queries.
//
// Deprecated: pass WithBudget to Open.
func (db *DB) SetBudget(b Budget) { db.eng.SetBudget(b) }

// SetUseIndexes toggles secondary-index use by the Native strategy.
// GMDJ evaluation never depends on it — one of the paper's points.
//
// Deprecated: pass WithUseIndexes to Open.
func (db *DB) SetUseIndexes(on bool) { db.eng.SetUseIndexes(on) }

// SetMemoizeSubqueries toggles invariant reuse (Rao & Ross) in the
// Native strategy: subquery outcomes are cached per distinct outer
// correlation binding, so duplicate bindings share one evaluation.
//
// Deprecated: pass WithMemoizeSubqueries to Open.
func (db *DB) SetMemoizeSubqueries(on bool) { db.eng.SetMemoizeSubqueries(on) }

// CreateTable registers an empty table. Registering a name that
// already exists fails with an error matching ErrTableExists.
func (db *DB) CreateTable(name string, cols ...Column) error {
	if name == "" {
		return fmt.Errorf("gmdj: empty table name")
	}
	if _, err := db.cat.Table(name); err == nil {
		return fmt.Errorf("gmdj: %w: %q", ErrTableExists, name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("gmdj: table %q needs at least one column", name)
	}
	rcols := make([]relation.Column, len(cols))
	seen := map[string]bool{}
	for i, c := range cols {
		if c.Name == "" {
			return fmt.Errorf("gmdj: table %q column %d has no name", name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("gmdj: table %q has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
		rcols[i] = relation.Column{Qualifier: name, Name: c.Name, Type: c.Type.kind()}
	}
	db.cat.Register(storage.NewTable(name, relation.New(relation.NewSchema(rcols...))))
	return nil
}

// MustCreateTable is CreateTable panicking on error (setup code).
func (db *DB) MustCreateTable(name string, cols ...Column) {
	if err := db.CreateTable(name, cols...); err != nil {
		panic(err)
	}
}

// Insert appends rows to a table. Row values may be int, int64,
// float64, string, bool, or nil (NULL); each row must match the table
// width and column types.
func (db *DB) Insert(table string, rows ...[]any) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	for ri, row := range rows {
		if len(row) != t.Rel.Schema.Len() {
			return fmt.Errorf("gmdj: row %d has %d values, table %q has %d columns",
				ri, len(row), table, t.Rel.Schema.Len())
		}
		tup := make(relation.Tuple, len(row))
		for i, v := range row {
			cv, err := toValue(v)
			if err != nil {
				return fmt.Errorf("gmdj: row %d column %q: %w", ri, t.Rel.Schema.Columns[i].Name, err)
			}
			if !cv.IsNull() {
				want := t.Rel.Schema.Columns[i].Type
				if want != value.KindNull && cv.Kind() != want &&
					!(want == value.KindFloat && cv.Kind() == value.KindInt) {
					return fmt.Errorf("gmdj: row %d column %q: cannot store %v into %v",
						ri, t.Rel.Schema.Columns[i].Name, cv.Kind(), want)
				}
				if want == value.KindFloat && cv.Kind() == value.KindInt {
					cv = value.Float(float64(cv.AsInt()))
				}
			}
			tup[i] = cv
		}
		t.Rel.Append(tup)
	}
	if len(rows) > 0 {
		t.BumpVersion()
	}
	return nil
}

// MustInsert is Insert panicking on error (setup code).
func (db *DB) MustInsert(table string, rows ...[]any) {
	if err := db.Insert(table, rows...); err != nil {
		panic(err)
	}
}

func toValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	default:
		return value.Null, fmt.Errorf("unsupported Go value of type %T", v)
	}
}

func fromValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}

// BuildHashIndex creates an equality index on table.col (used by the
// Native strategy).
func (db *DB) BuildHashIndex(table, col string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	return t.BuildHashIndex(col)
}

// BuildSortedIndex creates a range index on table.col.
func (db *DB) BuildSortedIndex(table, col string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	return t.BuildSortedIndex(col)
}

// DropIndexes removes all secondary indexes from a table.
func (db *DB) DropIndexes(table string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	t.DropIndexes()
	return nil
}

// Tables lists registered table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// Result is a materialized query result.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows hold one []any per result row; cell types mirror Insert's.
	Rows [][]any
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Query parses and runs a SQL query under the GMDJOpt strategy.
func (db *DB) Query(query string) (*Result, error) {
	return db.QueryStrategy(query, GMDJOpt)
}

// QueryContext is Query honoring the caller's context: canceling ctx
// aborts the evaluation within a few hundred rows of any operator loop
// and returns an error matching ErrCanceled (or ErrTimeout when the
// context's deadline expired).
func (db *DB) QueryContext(ctx context.Context, query string) (*Result, error) {
	return db.QueryStrategyContext(ctx, query, GMDJOpt)
}

// QueryStrategy parses and runs a SQL query under an explicit
// strategy. All strategies return the same bag of rows; they differ
// only in evaluation cost.
func (db *DB) QueryStrategy(query string, s Strategy) (*Result, error) {
	return db.QueryStrategyContext(context.Background(), query, s)
}

// QueryStrategyContext is QueryStrategy honoring the caller's context.
// When the plan cache is enabled (the Open default), the query's
// literals are lifted into parameters and the resulting template is
// compiled at most once per (normalized text, strategy); replays bind
// the literals back into the cached physical plan and skip parsing,
// resolution, and strategy rewriting entirely.
func (db *DB) QueryStrategyContext(ctx context.Context, query string, s Strategy) (*Result, error) {
	// With tracing on, the compile step gets its own span annotated
	// with the plan-cache outcome (the Peek races a concurrent Put at
	// worst into a false "miss" label — telemetry only, never behavior).
	t := db.eng.Tracer()
	var planStart time.Time
	var hit bool
	if t != nil {
		planStart = time.Now()
		hit = db.planCached(query, s)
	}
	phys, err := db.physicalPlan(query, s)
	if t != nil {
		arg := "cache=miss"
		if hit {
			arg = "cache=hit"
		}
		if rid := obs.ContextRequestID(ctx); rid != "" {
			arg = "rid=" + rid + " " + arg
		}
		t.SpanArgs("plan", "plan "+s.String(), 1, planStart, time.Since(planStart), arg)
	}
	if err != nil {
		return nil, err
	}
	rel, err := db.eng.RunPlannedContext(ctx, query, phys, s)
	if err != nil {
		return nil, err
	}
	return toResult(rel), nil
}

// physicalPlan produces an executable (fully bound) physical plan for
// the query, consulting the plan cache when one is installed.
func (db *DB) physicalPlan(query string, s Strategy) (algebra.Node, error) {
	pc := db.eng.PlanCache()
	if pc == nil {
		return db.planUncached(query, s)
	}
	norm, args, explicit, err := sql.Normalize(query)
	if err != nil {
		return nil, err
	}
	if explicit {
		return nil, fmt.Errorf("gmdj: query contains placeholders; use Prepare and pass arguments: %w", ErrBadParam)
	}
	key := plancache.Key{Text: norm, Strategy: uint8(s)}
	epoch := db.cat.SchemaEpoch()
	ent, ok := pc.Get(key, epoch)
	if !ok {
		plan, perr := sql.ParseAndResolve(norm, db.eng)
		if perr != nil {
			// Safety valve: if the canonicalized text fails to compile,
			// fall back to the original, uncached. (A parse error in the
			// original surfaces with its own positions this way.)
			return db.planUncached(query, s)
		}
		phys, perr := db.eng.Plan(plan, s)
		if perr != nil {
			return nil, perr
		}
		ent = &plancache.Entry{
			Plan:        phys,
			NParams:     len(args),
			Tables:      algebra.Tables(phys),
			SchemaEpoch: epoch,
		}
		pc.Put(key, ent)
	}
	bound, berr := algebra.BindParams(ent.Plan, args)
	if berr != nil {
		// A strategy rewrite may in principle drop a lifted literal from
		// the plan; recompile the original text rather than fail.
		return db.planUncached(query, s)
	}
	return bound, nil
}

// planUncached is the pre-cache compile pipeline: parse, resolve,
// strategy-rewrite.
func (db *DB) planUncached(query string, s Strategy) (algebra.Node, error) {
	plan, err := sql.ParseAndResolve(query, db.eng)
	if err != nil {
		return nil, err
	}
	return db.eng.Plan(plan, s)
}

// Explain returns the physical plan a strategy would execute for a
// query, as an indented operator tree. When the query's plan template
// is already resident in the plan cache (a subsequent Query would skip
// compilation), the output leads with a "plan: cached" line.
func (db *DB) Explain(query string, s Strategy) (string, error) {
	plan, err := sql.ParseAndResolve(query, db.eng)
	if err != nil {
		return "", err
	}
	out, err := db.eng.Explain(plan, s)
	if err != nil {
		return "", err
	}
	if db.planCached(query, s) {
		out = "plan: cached\n" + out
	}
	return out, nil
}

// planCached reports whether Query(query) under s would hit the plan
// cache right now.
func (db *DB) planCached(query string, s Strategy) bool {
	pc := db.eng.PlanCache()
	if pc == nil {
		return false
	}
	norm, _, explicit, err := sql.Normalize(query)
	if err != nil || explicit {
		return false
	}
	return pc.Peek(plancache.Key{Text: norm, Strategy: uint8(s)}, db.cat.SchemaEpoch())
}

// ExplainAnalyze parses, runs, and renders the query's plan annotated
// with measured per-operator statistics: wall time, output rows,
// approximate bytes, and operator-specific counters (hash-index
// probes, fallback θ-scans, tuples retired by completion, per-worker
// partition rows). The query's rows are discarded; use QueryAnalyze to
// get both the result and the annotated plan from a single execution.
func (db *DB) ExplainAnalyze(query string, s Strategy) (string, error) {
	return db.ExplainAnalyzeContext(context.Background(), query, s)
}

// ExplainAnalyzeContext is ExplainAnalyze honoring the caller's
// context.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, query string, s Strategy) (string, error) {
	plan, err := sql.ParseAndResolve(query, db.eng)
	if err != nil {
		return "", err
	}
	_, root, err := db.eng.RunObservedQuery(ctx, query, plan, s)
	if err != nil {
		return "", err
	}
	return engine.FormatAnalyzed(s, root), nil
}

// QueryAnalyze runs a query once and returns both its result and the
// EXPLAIN ANALYZE rendering of that same execution.
func (db *DB) QueryAnalyze(query string, s Strategy) (*Result, string, error) {
	return db.QueryAnalyzeContext(context.Background(), query, s)
}

// QueryAnalyzeContext is QueryAnalyze honoring the caller's context.
func (db *DB) QueryAnalyzeContext(ctx context.Context, query string, s Strategy) (*Result, string, error) {
	plan, err := sql.ParseAndResolve(query, db.eng)
	if err != nil {
		return nil, "", err
	}
	rel, root, err := db.eng.RunObservedQuery(ctx, query, plan, s)
	if err != nil {
		return nil, "", err
	}
	return toResult(rel), engine.FormatAnalyzed(s, root), nil
}

// EnableTracing attaches a ring-buffer span recorder to the engine:
// every subsequent query records operator open/close spans, GMDJ
// worker partitions, governance trips, and fault-injection fires.
// capacity bounds the number of retained events (oldest events are
// overwritten); capacity <= 0 selects a default of 65536. Not safe to
// call concurrently with running queries.
func (db *DB) EnableTracing(capacity int) {
	if capacity <= 0 {
		capacity = obs.DefaultTraceCapacity
	}
	db.eng.SetTracer(obs.NewTracer(capacity))
}

// WriteTrace dumps the recorded trace as Chrome trace_event JSON,
// loadable by Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Tracing must have been enabled with EnableTracing.
func (db *DB) WriteTrace(w io.Writer) error {
	t := db.eng.Tracer()
	if t == nil {
		return fmt.Errorf("gmdj: tracing not enabled (call EnableTracing first)")
	}
	return t.WriteJSON(w)
}

// Tracer returns the engine's span recorder (nil until EnableTracing).
// The serving layer records its request-scoped spans — tenant gate,
// execute, serialize — through it, so server and operator events land
// in one timeline. The returned value's concrete type is internal;
// embedders outside this module should treat it as opaque and use
// WriteTrace.
func (db *DB) Tracer() *obs.Tracer { return db.eng.Tracer() }

// Metrics returns a snapshot of the process-wide engine counters
// (queries per strategy, rows scanned, governance trips, GMDJ work).
// The same counters are published under the "gmdj" expvar map for any
// embedder that mounts net/http's /debug/vars.
func (db *DB) Metrics() map[string]int64 { return obs.MetricsSnapshot() }

// ObsConfig configures workload-level observability
// (EnableObservability).
type ObsConfig struct {
	// SlowQueryThreshold admits a query into the slow-query log when
	// its wall time meets or exceeds it. 0 logs every query.
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds slow-log retention (a ring buffer; oldest
	// records are overwritten). <= 0 selects a default of 256.
	SlowLogCapacity int
}

// EnableObservability attaches a workload observer to the engine:
// every subsequent query is registered in a live in-flight registry
// while it runs (with advancing row/byte counters), sampled into
// per-strategy latency and row-count histograms and per-operator-kind
// histograms when it finishes, and recorded — SQL text, strategy,
// outcome, and the full EXPLAIN ANALYZE statistics tree — into the
// slow-query log when it crosses cfg.SlowQueryThreshold. Serve the
// surfaces over HTTP with ObsHTTPHandler, or read them directly with
// FormatSlowLog, WriteSlowLog, FormatHistograms, and
// FormatLiveQueries. Not safe to call concurrently with running
// queries.
func (db *DB) EnableObservability(cfg ObsConfig) {
	db.eng.SetObserver(obs.NewObserver(obs.ObserverConfig{
		SlowQueryThreshold: cfg.SlowQueryThreshold,
		SlowLogCapacity:    cfg.SlowLogCapacity,
	}))
}

// ObsHTTPHandler returns the live observability dashboard: mount it at
// /debug/olap/ to serve /debug/olap/queries (in-flight queries with
// live row counters), /debug/olap/hist (latency and row-count
// histograms), and /debug/olap/slowlog — JSON by default, plain text
// with ?format=text. Before EnableObservability the handler answers
// 503.
func (db *DB) ObsHTTPHandler() http.Handler { return db.eng.Observer().Handler() }

// WriteSlowLog dumps the slow-query log as a JSON array (oldest
// first), each record carrying the query text, strategy, elapsed
// time, outcome, and per-operator statistics tree. Errors before
// EnableObservability.
func (db *DB) WriteSlowLog(w io.Writer) error {
	o := db.eng.Observer()
	if o == nil {
		return fmt.Errorf("gmdj: observability not enabled (call EnableObservability first)")
	}
	return o.SlowLog().WriteJSON(w)
}

// FormatSlowLog renders the slow-query log as text, newest first.
func (db *DB) FormatSlowLog() string { return db.eng.Observer().SlowLog().Format() }

// FormatHistograms renders the workload histograms — query latency
// and result rows per strategy, operator time and rows per operator
// kind — as one summary line each (count, mean, min/p50/p90/p99/max).
func (db *DB) FormatHistograms() string {
	return obs.FormatHistograms(db.eng.Observer().Histograms())
}

// FormatLiveQueries renders the currently in-flight queries with
// their live progress counters.
func (db *DB) FormatLiveQueries() string { return db.eng.Observer().FormatInFlight() }

// LiveQueries snapshots the in-flight query registry (empty without
// EnableObservability). The serving layer sums each query's tracked
// bytes by tenant into the olap_tenant_heap_inuse_bytes gauge.
func (db *DB) LiveQueries() []obs.LiveSnapshot { return db.eng.Observer().InFlight() }

func toResult(rel *relation.Relation) *Result {
	res := &Result{Columns: make([]string, rel.Schema.Len())}
	for i, c := range rel.Schema.Columns {
		res.Columns[i] = c.Name
	}
	res.Rows = make([][]any, rel.Len())
	for i, row := range rel.Rows {
		out := make([]any, len(row))
		for j, v := range row {
			out[j] = fromValue(v)
		}
		res.Rows[i] = out
	}
	return res
}

// LoadCSV bulk-loads CSV (header row of column names, \N for NULL)
// into an existing table; the header must match the table's columns.
func (db *DB) LoadCSV(table string, r io.Reader) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	rel, err := storage.ReadCSV(r, t.Rel.Schema)
	if err != nil {
		return err
	}
	t.Rel.Rows = append(t.Rel.Rows, rel.Rows...)
	t.BumpVersion()
	return nil
}

// DumpCSV writes a table as CSV.
func (db *DB) DumpCSV(table string, w io.Writer) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	return storage.WriteCSV(w, t.Rel)
}
