package gmdj

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func usersDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("users",
		Col("name", String), Col("ip", String), Col("score", Int))
	db.MustInsert("users",
		[]any{"ann", "10.0.0.1", int64(10)},
		[]any{"bob", "10.0.0.2", int64(20)},
		[]any{"cat", "10.0.0.1", int64(30)},
	)
	return db
}

func TestPrepareQuestionMarks(t *testing.T) {
	db := usersDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE ip = ? AND score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.NumParams(); got != 2 {
		t.Fatalf("NumParams = %d, want 2", got)
	}
	res, err := stmt.Query("10.0.0.1", 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != "cat" {
		t.Fatalf("got %v, want [[cat]]", res.Rows)
	}
	// Rebind: same plan, different constants.
	res, err = stmt.Query("10.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rebind got %d rows, want 2", res.Len())
	}
}

func TestPrepareDollarOrdinalsReuse(t *testing.T) {
	db := usersDB(t)
	// $1 used twice: one argument feeds both sites.
	stmt, err := db.Prepare(`SELECT name FROM users WHERE ip = $1 OR name = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d, want 1", got)
	}
	res, err := stmt.Query("bob")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != "bob" {
		t.Fatalf("got %v, want [[bob]]", res.Rows)
	}
}

func TestPrepareMixedPlaceholdersRejected(t *testing.T) {
	db := usersDB(t)
	if _, err := db.Prepare(`SELECT name FROM users WHERE ip = ? AND name = $1`); err == nil {
		t.Fatal("mixing ? and $n placeholders should fail")
	}
}

func TestPrepareArgErrors(t *testing.T) {
	db := usersDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if _, err := stmt.Query(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("missing arg: err = %v, want ErrBadParam", err)
	}
	if _, err := stmt.Query(1, 2); !errors.Is(err, ErrBadParam) {
		t.Fatalf("extra arg: err = %v, want ErrBadParam", err)
	}
	if _, err := stmt.Query(struct{}{}); !errors.Is(err, ErrBadParam) {
		t.Fatalf("bad type: err = %v, want ErrBadParam", err)
	}
}

func TestPrepareInSubquery(t *testing.T) {
	db := usersDB(t)
	db.MustCreateTable("flows", Col("src", String), Col("bytes", Int))
	db.MustInsert("flows",
		[]any{"10.0.0.1", int64(100)},
		[]any{"10.0.0.2", int64(5000)},
	)
	stmt, err := db.Prepare(`SELECT u.name FROM users u WHERE EXISTS (
		SELECT * FROM flows f WHERE f.src = u.ip AND f.bytes > ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	res, err := stmt.Query(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != "bob" {
		t.Fatalf("got %v, want [[bob]]", res.Rows)
	}
	res, err = stmt.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("got %d rows, want 3", res.Len())
	}
}

func TestPrepareSurvivesCatalogChange(t *testing.T) {
	db := usersDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if _, err := stmt.Query(0); err != nil {
		t.Fatal(err)
	}
	// A write bumps the schema epoch; the next Query must recompile and
	// see the new row.
	db.MustInsert("users", []any{"dan", "10.0.0.3", int64(40)})
	res, err := stmt.Query(35)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != "dan" {
		t.Fatalf("after insert got %v, want [[dan]]", res.Rows)
	}
}

func TestPrepareClosed(t *testing.T) {
	db := usersDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stmt.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if _, err := stmt.Query(0); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Query on closed stmt: err = %v", err)
	}
}

func TestPrepareConcurrentQuery(t *testing.T) {
	db := usersDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := stmt.Query(10 * (i % 3))
				if err != nil {
					errs <- err
					return
				}
				if res.Len() == 0 {
					errs <- fmt.Errorf("goroutine %d: empty result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryRejectsBarePlaceholders(t *testing.T) {
	db := usersDB(t)
	if _, err := db.Query(`SELECT name FROM users WHERE score > ?`); !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v, want ErrBadParam", err)
	}
}
