package gmdj

import (
	"strings"
	"testing"
	"time"
)

func TestPlanCacheHitMiss(t *testing.T) {
	db := usersDB(t)
	q := `SELECT name FROM users WHERE score > 15`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	s1 := db.PlanCacheStats()
	if s1.Misses == 0 || s1.Entries == 0 {
		t.Fatalf("first query should miss and populate: %+v", s1)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	s2 := db.PlanCacheStats()
	if s2.Hits != s1.Hits+1 {
		t.Fatalf("second query should hit: before %+v after %+v", s1, s2)
	}
	// Same shape, different constant: the parameterized template is
	// shared, so this is a hit too — and returns the right rows.
	res, err := db.Query(`SELECT name FROM users WHERE score > 25`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != "cat" {
		t.Fatalf("got %v, want [[cat]]", res.Rows)
	}
	s3 := db.PlanCacheStats()
	if s3.Hits != s2.Hits+1 {
		t.Fatalf("constant-only variant should share the template: %+v -> %+v", s2, s3)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := Open(WithPlanCache(-1))
	db.MustCreateTable("t", Col("x", Int))
	db.MustInsert("t", []any{int64(1)})
	if _, err := db.Query(`SELECT x FROM t`); err != nil {
		t.Fatal(err)
	}
	if s := db.PlanCacheStats(); s.Hits+s.Misses != 0 {
		t.Fatalf("disabled cache saw traffic: %+v", s)
	}
}

func TestExplainPlanCachedLine(t *testing.T) {
	db := usersDB(t)
	q := `SELECT name FROM users WHERE score > 15`
	out, err := db.Explain(q, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "plan: cached") {
		t.Fatalf("cold explain claims cached:\n%s", out)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	// Any constant-compatible variant of the text now reports cached.
	out, err = db.Explain(`SELECT name FROM users WHERE score > 99`, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan: cached") {
		t.Fatalf("warm explain lacks plan: cached line:\n%s", out)
	}
}

func TestOpenOptions(t *testing.T) {
	db := Open(
		WithParallelism(2),
		WithBudget(Budget{Timeout: time.Minute}),
		WithUseIndexes(false),
		WithMemoizeSubqueries(true),
		WithResultCache(1<<20),
	)
	db.MustCreateTable("t", Col("x", Int))
	db.MustCreateTable("u", Col("y", Int))
	db.MustInsert("t", []any{int64(7)})
	db.MustInsert("u", []any{int64(7)})
	res, err := db.Query(`SELECT x FROM t WHERE x IN (SELECT y FROM u)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("got %d rows", res.Len())
	}
}

func TestResultCacheSubqueryMemo(t *testing.T) {
	db := Open(WithResultCache(0))
	db.MustCreateTable("flows", Col("src", String), Col("bytes", Int))
	db.MustCreateTable("users", Col("name", String), Col("ip", String))
	db.MustInsert("users", []any{"ann", "10.0.0.1"}, []any{"bob", "10.0.0.2"})
	db.MustInsert("flows", []any{"10.0.0.1", int64(100)}, []any{"10.0.0.2", int64(9000)})
	q := `SELECT u.name FROM users u WHERE EXISTS (
		SELECT * FROM flows f WHERE f.src = u.ip AND f.bytes > 1000)`
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 || r2.Len() != 1 || r2.Rows[0][0] != "bob" {
		t.Fatalf("r1=%v r2=%v", r1.Rows, r2.Rows)
	}
	if s := db.ResultCacheStats(); s.Hits == 0 {
		t.Fatalf("replay produced no result-cache hits: %+v", s)
	}
}
