package gmdj

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// invalidationQueries exercise each cache layer: q1 the parameterized
// plan cache, q2 the GMDJ detail-hash memo, q3 the uncorrelated
// subquery-source memo.
var invalidationQueries = []string{
	`SELECT name FROM users WHERE score > 15`,
	`SELECT u.name FROM users u WHERE EXISTS (
		SELECT * FROM flows f WHERE f.src = u.ip AND f.bytes > 1000)`,
	`SELECT name FROM users WHERE score > (SELECT AVG(bytes) FROM flows WHERE bytes < 50)`,
}

func invalidationDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithResultCache(0))
	db.MustCreateTable("users",
		Col("name", String), Col("ip", String), Col("score", Int))
	db.MustCreateTable("flows", Col("src", String), Col("bytes", Int))
	db.MustInsert("users",
		[]any{"ann", "10.0.0.1", int64(10)},
		[]any{"bob", "10.0.0.2", int64(20)},
		[]any{"cat", "10.0.0.1", int64(30)},
	)
	db.MustInsert("flows",
		[]any{"10.0.0.1", int64(10)},
		[]any{"10.0.0.2", int64(9000)},
	)
	if err := db.BuildHashIndex("flows", "src"); err != nil {
		t.Fatal(err)
	}
	return db
}

func rowsKey(t *testing.T, res *Result) string {
	t.Helper()
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = fmt.Sprint(r...)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestCacheInvalidation is the staleness proof for every cache layer:
// after each kind of write to a referenced table, a warmed database
// (plan cache + result memo populated by two prior runs) must answer
// exactly like a cold database built directly in the post-write state.
func TestCacheInvalidation(t *testing.T) {
	mutations := []struct {
		name  string
		apply func(t *testing.T, db *DB)
	}{
		{"insert-api", func(t *testing.T, db *DB) {
			db.MustInsert("flows", []any{"10.0.0.1", int64(5000)})
		}},
		{"insert-sql", func(t *testing.T, db *DB) {
			if _, err := db.Exec(`INSERT INTO flows VALUES ('10.0.0.1', 5000)`); err != nil {
				t.Fatal(err)
			}
		}},
		{"load-csv", func(t *testing.T, db *DB) {
			csv := "src,bytes\n10.0.0.1,5000\n"
			if err := db.LoadCSV("flows", strings.NewReader(csv)); err != nil {
				t.Fatal(err)
			}
		}},
		{"drop-indexes", func(t *testing.T, db *DB) {
			if err := db.DropIndexes("flows"); err != nil {
				t.Fatal(err)
			}
		}},
		{"build-index", func(t *testing.T, db *DB) {
			if err := db.BuildHashIndex("flows", "bytes"); err != nil {
				t.Fatal(err)
			}
		}},
		{"ddl-drop-recreate", func(t *testing.T, db *DB) {
			if _, err := db.Exec(`DROP TABLE flows`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE flows (src STRING, bytes INT)`); err != nil {
				t.Fatal(err)
			}
			db.MustInsert("flows", []any{"10.0.0.1", int64(5000)})
		}},
	}
	for _, mut := range mutations {
		for _, s := range []Strategy{Native, GMDJOpt} {
			t.Run(mut.name+"/"+s.String(), func(t *testing.T) {
				warm := invalidationDB(t)
				// Warm every cache: two runs so the second is served from
				// the plan cache and the memo.
				for i := 0; i < 2; i++ {
					for _, q := range invalidationQueries {
						if _, err := warm.QueryStrategy(q, s); err != nil {
							t.Fatalf("warmup %q: %v", q, err)
						}
					}
				}
				mut.apply(t, warm)

				cold := invalidationDB(t)
				mut.apply(t, cold)

				for _, q := range invalidationQueries {
					got, err := warm.QueryStrategy(q, s)
					if err != nil {
						t.Fatalf("warm %q: %v", q, err)
					}
					want, err := cold.QueryStrategy(q, s)
					if err != nil {
						t.Fatalf("cold %q: %v", q, err)
					}
					if rowsKey(t, got) != rowsKey(t, want) {
						t.Errorf("stale answer after %s for %q:\nwarm: %v\ncold: %v",
							mut.name, q, got.Rows, want.Rows)
					}
				}
			})
		}
	}
}

// TestCacheInvalidationCounters pins the mechanism, not just the
// outcome: a write bumps the schema epoch, so the next lookup of a
// previously cached plan records an invalidation, and the result
// memo's epoch-tagged keys miss rather than hit.
func TestCacheInvalidationCounters(t *testing.T) {
	db := invalidationDB(t)
	q := invalidationQueries[1]
	for i := 0; i < 2; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	planBefore := db.PlanCacheStats()
	memoBefore := db.ResultCacheStats()
	if planBefore.Hits == 0 || memoBefore.Hits == 0 {
		t.Fatalf("warmup did not hit: plan %+v memo %+v", planBefore, memoBefore)
	}
	db.MustInsert("flows", []any{"10.0.0.3", int64(1)})
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	planAfter := db.PlanCacheStats()
	memoAfter := db.ResultCacheStats()
	if planAfter.Invalidations != planBefore.Invalidations+1 {
		t.Errorf("plan invalidations %d -> %d, want +1", planBefore.Invalidations, planAfter.Invalidations)
	}
	if memoAfter.Hits != memoBefore.Hits {
		t.Errorf("memo served a stale hit after write: %+v -> %+v", memoBefore, memoAfter)
	}
	if memoAfter.Misses == memoBefore.Misses {
		t.Errorf("memo should have missed on new epoch keys: %+v -> %+v", memoBefore, memoAfter)
	}
}
