// Command bundlecheck validates an incident flight-recorder bundle or
// a raw pprof profile — the chaos harness's guard that a forced
// incident produced a complete, internally consistent bundle and that
// CPU profiles captured under load actually carry the per-tenant pprof
// labels.
//
// Usage:
//
//	bundlecheck [-require m1,m2] [-cpu-labels k1,k2] bundle-dir
//	bundlecheck [-labels k1,k2] profile.pprof
//
// A directory argument is checked as a bundle:
//
//   - MANIFEST.json parses, its version is known, and every member it
//     lists exists with the recorded size and FNV-32a checksum; no
//     stray files sit next to the manifest.
//   - Each member's content matches its extension: .prom is a valid
//     Prometheus exposition, .json parses, .pprof parses as a profile,
//     .txt is non-empty.
//   - -require: the named members must be present and captured without
//     error (a member whose source failed is recorded in the manifest
//     and tolerated unless required).
//   - -cpu-labels: the bundle's cpu.pprof must attribute at least one
//     sample to each named label key (vacuously true when the capture
//     holds no samples — an idle process profiles clean).
//
// A file argument is parsed as a pprof profile (gzipped or raw); with
// -labels every named key must appear on at least one sample. This is
// the mode the storm harness uses on a mid-storm /debug/pprof/profile
// fetch, where samples are guaranteed and the label check is strict.
//
// Exit codes: 0 all checks pass, 1 a check failed, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/olaplab/gmdj/internal/obs/profile"
)

func main() {
	os.Exit(run())
}

func run() int {
	require := flag.String("require", "", "comma-separated bundle members that must be present and error-free")
	cpuLabels := flag.String("cpu-labels", "", "comma-separated label keys the bundle's cpu.pprof must carry (when it has samples)")
	labels := flag.String("labels", "", "comma-separated label keys a profile file must carry on at least one sample")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "bundlecheck: exactly one bundle directory or profile file")
		return 2
	}
	target := flag.Arg(0)
	fi, err := os.Stat(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bundlecheck:", err)
		return 2
	}

	if fi.IsDir() {
		return checkBundle(target, splitList(*require), splitList(*cpuLabels))
	}
	return checkProfileFile(target, splitList(*labels))
}

func checkBundle(dir string, required, cpuKeys []string) int {
	if err := profile.ValidateBundle(dir, required); err != nil {
		fmt.Fprintln(os.Stderr, "bundlecheck:", err)
		return 1
	}
	if len(cpuKeys) > 0 {
		if err := profile.CheckCPULabels(dir, cpuKeys); err != nil {
			fmt.Fprintln(os.Stderr, "bundlecheck:", err)
			return 1
		}
	}
	m, err := profile.ReadManifest(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bundlecheck:", err)
		return 1
	}
	fmt.Printf("bundlecheck: ok (trigger %s, %d members)\n", m.Trigger, len(m.Files))
	return 0
}

func checkProfileFile(path string, keys []string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bundlecheck:", err)
		return 2
	}
	p, err := profile.ParseProfile(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bundlecheck: %s: %v\n", path, err)
		return 1
	}
	if len(keys) > 0 && len(p.Samples) == 0 {
		fmt.Fprintf(os.Stderr, "bundlecheck: %s: no samples to carry labels\n", path)
		return 1
	}
	status := 0
	for _, k := range keys {
		if !p.HasLabelKey(k) {
			fmt.Fprintf(os.Stderr, "bundlecheck: %s: no sample carries label %q\n", path, k)
			status = 1
		}
	}
	if status == 0 {
		fmt.Printf("bundlecheck: ok (%d samples)\n", len(p.Samples))
	}
	return status
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
