// Command storetort is the crash/recovery torture driver for the
// durable columnar store. It writes a fully deterministic corpus —
// the Figure 4 key-pair tables and a Figure 5 TPC-R-like warehouse,
// both derived from (-rows, -seed, round) — so that after the harness
// kills the process at an arbitrary instant, a fresh run can rebuild
// the exact in-memory oracle for whatever round the store last
// committed and compare byte-for-byte.
//
// Usage:
//
//	storetort -dir DIR load  [-rows n] [-seed s]
//	storetort -dir DIR churn [-rows n] [-seed s] [-rounds r] [-sleep-ms m]
//	storetort -dir DIR verify [-rows n] [-seed s] [-expect-quarantine t1,t2]
//
// load initializes round 0 and checkpoints it. churn recovers the
// store, then per round re-creates every table from the round-derived
// seed, runs one GMDJ query (exercising the transparent-checkpoint
// and packed-hash read paths), checkpoints, and prints one
// "round=<r> gen=<g>" line per committed generation — the harness
// kill -9s it mid-stream. A failed checkpoint (injected disk fault)
// logs to stderr and prints no round line: the previous generation
// stays the committed one and the on-disk state remains a valid
// earlier round.
//
// verify recovers, reads the committed round from the tort_meta
// table, rebuilds the oracle for that round, and asserts (a) every
// non-quarantined table is row-for-row identical to the oracle,
// (b) the Figure 4 and Figure 5 queries return identical results on
// the recovered and oracle engines, (c) each -expect-quarantine table
// is quarantined and scanning it fails with the segment-corrupt error
// while the remaining tables still answer. Any violation exits 1.
//
// GMDJ_FAULTS applies to every subcommand, so the harness can aim
// enospc/shortwrite/corrupt/torn at storage.{write,read,manifest}
// during both churn and recovery.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", "", "durable store directory (required)")
	rows := flag.Int("rows", 8_000, "corpus cardinality: key-pair rows and warehouse orders per round")
	seed := flag.Uint64("seed", 1, "corpus base seed")
	rounds := flag.Int("rounds", 50, "churn: rounds to run")
	sleepMS := flag.Int("sleep-ms", 0, "churn: pause between rounds (widens the kill window)")
	expectQuarantine := flag.String("expect-quarantine", "", "verify: comma-separated tables that must be quarantined")
	allowQuarantine := flag.Bool("allow-quarantine", false, "verify: tolerate quarantined tables (torn-write churn legitimately loses tables to quarantine)")
	flag.Parse()

	// Flags may appear on either side of the subcommand: re-parse
	// whatever followed it against the same flag set.
	cmd := flag.Arg(0)
	if flag.NArg() >= 1 {
		flag.CommandLine.Parse(flag.Args()[1:])
	}
	if *dir == "" || cmd == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: storetort -dir DIR {load|churn|verify} [flags]")
		return 2
	}
	var err error
	switch cmd {
	case "load":
		err = load(*dir, *rows, *seed)
	case "churn":
		err = churn(*dir, *rows, *seed, *rounds, time.Duration(*sleepMS)*time.Millisecond)
	case "verify":
		err = verify(*dir, *rows, *seed, splitList(*expectQuarantine), *allowQuarantine)
	default:
		err = fmt.Errorf("unknown subcommand %q (want load, churn, or verify)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "storetort:", err)
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// mix derives the per-round corpus seed. Every table of a round is a
// pure function of (seed, rows, round) and nothing else.
func mix(seed uint64, round int) uint64 {
	return seed*1_000_003 + uint64(round)*7919 + 1
}

// buildCorpus constructs the full deterministic corpus for one round:
// the Figure 4 key-pair tables, the Figure 5 warehouse, and the
// tort_meta bookkeeping row verify uses to learn which round the
// store committed.
func buildCorpus(rows int, seed uint64, round int) *storage.Catalog {
	cat := storage.NewCatalog()
	merge(cat, datagen.KeyPair(datagen.KeyPairOpts{Rows: rows, Seed: mix(seed, round)}))
	customers := rows / 20
	if customers < 50 {
		customers = 50
	}
	merge(cat, datagen.TPCR(datagen.TPCROpts{
		Customers: customers,
		Orders:    rows,
		Lineitems: 0,
		Suppliers: 10,
		Parts:     100,
		Seed:      mix(seed, round) + 1,
	}))
	meta := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "tort_meta", Name: "round", Type: value.KindInt},
		relation.Column{Qualifier: "tort_meta", Name: "rows", Type: value.KindInt},
		relation.Column{Qualifier: "tort_meta", Name: "seed", Type: value.KindInt},
	))
	meta.Append(relation.Tuple{value.Int(int64(round)), value.Int(int64(rows)), value.Int(int64(seed))})
	cat.Register(storage.NewTable("tort_meta", meta))
	return cat
}

func merge(dst, src *storage.Catalog) {
	for _, name := range src.Names() {
		if t, err := src.Table(name); err == nil {
			dst.Register(t)
		}
	}
}

// registerCorpus replaces every table of the engine's catalog with the
// given round's corpus (recovered tables from older rounds are
// overwritten, clearing any quarantine).
func registerCorpus(e *engine.Engine, rows int, seed uint64, round int) {
	merge(e.Catalog(), buildCorpus(rows, seed, round))
}

// fig4Query is the quantified-ALL shape of Figure 4: A-rows whose
// value differs from every B-value carried by a different key.
func fig4Query() algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key"))},
		OutCol: expr.C("B.b_val"),
	}
	return algebra.NewRestrict(algebra.NewScan("A", "A"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE, Left: expr.C("A.a_val"), Sub: sub})
}

// fig5Query is the tree-nested EXISTS shape of Figure 5 over the
// warehouse tables; its literal comparisons also exercise zone-map
// pruning on the recovered segments.
func fig5Query() algebra.Node {
	mk := func(alias, status string, op value.CmpOp, price float64) *algebra.Subquery {
		return &algebra.Subquery{
			Source: algebra.NewScan("orders", alias),
			Where: &algebra.Atom{E: expr.NewAnd(
				expr.Eq(expr.C(alias+".o_custkey"), expr.C("C.c_custkey")),
				expr.Eq(expr.C(alias+".o_orderstatus"), expr.StrLit(status)),
				expr.NewCmp(op, expr.C(alias+".o_totalprice"), expr.FloatLit(price)),
			)},
		}
	}
	return algebra.NewRestrict(algebra.NewScan("customer", "C"),
		algebra.And(
			algebra.ExistsPred(mk("O1", "O", value.GT, 300_000)),
			algebra.ExistsPred(mk("O2", "F", value.LT, 150_000)),
		))
}

// openStore builds an engine over the durable directory, recovering
// whatever the last run committed. GMDJ_FAULTS is honored so the
// harness can inject recovery-time faults.
func openStore(dir string) (*engine.Engine, *storage.RecoveryReport, error) {
	e := engine.New(storage.NewCatalog())
	e.SetFaultInjector(govern.FromEnv())
	rep, err := e.SetDataDir(dir)
	if err != nil {
		return nil, nil, err
	}
	return e, rep, nil
}

func load(dir string, rows int, seed uint64) error {
	e, _, err := openStore(dir)
	if err != nil {
		return err
	}
	registerCorpus(e, rows, seed, 0)
	gen, err := e.Checkpoint()
	if err != nil {
		return fmt.Errorf("load checkpoint: %v", err)
	}
	fmt.Printf("gen=%d round=0\n", gen)
	return nil
}

func churn(dir string, rows int, seed uint64, rounds int, sleep time.Duration) error {
	e, rep, err := openStore(dir)
	if err != nil {
		return err
	}
	start := committedRound(e.Catalog()) + 1
	fmt.Fprintf(os.Stderr, "storetort: churn from round %d (recovered gen=%d, %d quarantined)\n",
		start, rep.Generation, len(rep.Quarantined))
	for r := start; r < start+rounds; r++ {
		registerCorpus(e, rows, seed, r)
		// One query per round drives the read path (and the transparent
		// maybeCheckpoint hook) between explicit checkpoints.
		if _, err := e.Run(fig5Query(), engine.GMDJOpt); err != nil {
			fmt.Fprintf(os.Stderr, "storetort: round %d query: %v\n", r, err)
		}
		gen, err := e.Checkpoint()
		if err != nil {
			// Not committed: the previous generation remains the durable
			// truth, which is still a valid earlier round. Keep churning —
			// rate-limited injected faults let later rounds succeed.
			fmt.Fprintf(os.Stderr, "storetort: round %d checkpoint: %v\n", r, err)
			continue
		}
		fmt.Printf("round=%d gen=%d\n", r, gen)
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
	return nil
}

// committedRound reads the round number out of the recovered
// tort_meta table, or -1 when the store holds none (fresh directory
// or quarantined meta).
func committedRound(cat *storage.Catalog) int {
	t, err := cat.Table("tort_meta")
	if err != nil {
		return -1
	}
	if _, quarantined := t.QuarantineReason(); quarantined {
		return -1
	}
	if t.Rel.Len() != 1 {
		return -1
	}
	return int(t.Rel.Rows[0][0].AsInt())
}

func verify(dir string, rows int, seed uint64, expectQuarantine []string, allowQuarantine bool) error {
	e, rep, err := openStore(dir)
	if err != nil {
		return err
	}
	cat := e.Catalog()
	round := committedRound(cat)
	if round < 0 {
		if allowQuarantine && rep.Generation > 0 {
			// The torn write landed on tort_meta itself: the committed
			// round is unknowable, so the structural comparison cannot
			// run. Recovery still succeeded, which is all that can be
			// asserted here.
			fmt.Printf("verified round=unknown gen=%d (tort_meta quarantined) quarantined=%d skipped_manifests=%d\n",
				rep.Generation, len(rep.Quarantined), rep.SkippedManifests)
			return nil
		}
		return fmt.Errorf("no committed round recovered (gen=%d, %d quarantined, %d manifests skipped)",
			rep.Generation, len(rep.Quarantined), rep.SkippedManifests)
	}
	meta, _ := cat.Table("tort_meta")
	metaRows, metaSeed := int(meta.Rel.Rows[0][1].AsInt()), uint64(meta.Rel.Rows[0][2].AsInt())
	if metaRows != rows || metaSeed != seed {
		return fmt.Errorf("store was written with -rows %d -seed %d, verify ran with -rows %d -seed %d",
			metaRows, metaSeed, rows, seed)
	}

	quarantined := map[string]bool{}
	for _, q := range expectQuarantine {
		quarantined[q] = true
	}
	if allowQuarantine {
		// A torn segment write (lying fsync) commits a manifest whose
		// table cannot be read back; recovery quarantining it is the
		// contract, not a failure. Fold whatever recovery quarantined
		// into the tolerated set.
		for _, name := range cat.Names() {
			if t, err := cat.Table(name); err == nil {
				if _, ok := t.QuarantineReason(); ok {
					quarantined[name] = true
				}
			}
		}
	}
	// (c) quarantine semantics: each expected table is quarantined and
	// scanning it yields the typed corruption error.
	for _, name := range expectQuarantine {
		t, err := cat.Table(name)
		if err != nil {
			return fmt.Errorf("expected quarantined table %s missing: %v", name, err)
		}
		if _, ok := t.QuarantineReason(); !ok {
			return fmt.Errorf("table %s: expected quarantine, but it recovered intact", name)
		}
		if _, err := e.Run(algebra.NewScan(name, name), engine.GMDJOpt); !errors.Is(err, storage.ErrSegmentCorrupt) {
			return fmt.Errorf("table %s: scan of quarantined table returned %v, want ErrSegmentCorrupt", name, err)
		}
	}

	// (a) byte-identical recovery: every non-quarantined table matches
	// the oracle row for row, in order.
	oracle := buildCorpus(rows, seed, round)
	checked := 0
	for _, name := range oracle.Names() {
		if quarantined[name] {
			continue
		}
		ot, err := oracle.Table(name)
		if err != nil {
			return err
		}
		want := ot.Rel
		t, err := cat.Table(name)
		if err != nil {
			return fmt.Errorf("table %s: missing after recovery: %v", name, err)
		}
		if reason, ok := t.QuarantineReason(); ok {
			return fmt.Errorf("table %s: unexpectedly quarantined: %s", name, reason)
		}
		got := t.Rel
		if !got.Schema.Equal(want.Schema) {
			return fmt.Errorf("table %s: recovered schema differs from oracle", name)
		}
		if got.Len() != want.Len() {
			return fmt.Errorf("table %s: recovered %d rows, oracle has %d", name, got.Len(), want.Len())
		}
		for i := range want.Rows {
			if !got.Rows[i].Equal(want.Rows[i]) {
				return fmt.Errorf("table %s: row %d differs from oracle\n got %v\nwant %v", name, i, got.Rows[i], want.Rows[i])
			}
		}
		checked++
	}

	// (b) query equivalence: the paper's Figure 4 and Figure 5 shapes
	// answer identically on the recovered store and the oracle.
	oe := engine.New(oracle)
	queries := 0
	for _, q := range []struct {
		name   string
		plan   func() algebra.Node
		tables []string
	}{
		{"fig4", fig4Query, []string{"A", "B"}},
		{"fig5", fig5Query, []string{"customer", "orders"}},
	} {
		touched := false
		for _, t := range q.tables {
			if quarantined[t] {
				touched = true
			}
		}
		if touched {
			continue
		}
		got, err := e.Run(q.plan(), engine.GMDJOpt)
		if err != nil {
			return fmt.Errorf("%s on recovered store: %v", q.name, err)
		}
		want, err := oe.Run(q.plan(), engine.GMDJOpt)
		if err != nil {
			return fmt.Errorf("%s on oracle: %v", q.name, err)
		}
		if !got.EqualBag(want) {
			return fmt.Errorf("%s: recovered store and oracle disagree (%d vs %d rows)", q.name, got.Len(), want.Len())
		}
		queries++
	}

	fmt.Printf("verified round=%d gen=%d tables=%d queries=%d quarantined=%d skipped_manifests=%d\n",
		round, rep.Generation, checked, queries, len(quarantined), rep.SkippedManifests)
	return nil
}
