// Command dbgen writes the synthetic experiment datasets as CSV files
// (one per table), mirroring the role of the TPC-R dbgen program the
// paper derived its test databases from.
//
// Usage:
//
//	dbgen -schema tpcr -out ./data -scale 1.0 [-seed 7]
//	dbgen -schema netflow -out ./data -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/storage"
)

func main() {
	schema := flag.String("schema", "tpcr", "dataset schema: tpcr or netflow")
	out := flag.String("out", ".", "output directory")
	scale := flag.Float64("scale", 1.0, "size multiplier over the defaults")
	seed := flag.Uint64("seed", 7, "PRNG seed")
	flag.Parse()

	var cat *storage.Catalog
	switch *schema {
	case "tpcr":
		opts := datagen.DefaultTPCR()
		opts.Customers = int(float64(opts.Customers) * *scale)
		opts.Orders = int(float64(opts.Orders) * *scale)
		opts.Lineitems = int(float64(opts.Lineitems) * *scale)
		opts.Seed = *seed
		cat = datagen.TPCR(opts)
	case "netflow":
		opts := datagen.DefaultNetflow()
		opts.Flows = int(float64(opts.Flows) * *scale)
		opts.Seed = *seed
		cat = datagen.Netflow(opts)
	default:
		fmt.Fprintf(os.Stderr, "dbgen: unknown schema %q\n", *schema)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		if err := storage.WriteCSV(f, t.Rel); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.Rel.Len())
	}
}
