// Command promcheck validates a Prometheus text exposition (format
// 0.0.4) captured from olapd's /metrics — the chaos harness's guard
// that the endpoint stays parseable and honest under storm load.
//
// Usage:
//
//	promcheck [-reconcile] [-quiesced] [-max-tenant-labels n]
//	          [-require fam1,fam2] [-storage] [file]
//
// With no file the exposition is read from stdin. Checks, in order:
//
//   - The document parses: TYPE declarations precede samples, counter
//     names end in _total, histogram buckets are cumulative with the
//     +Inf bucket equal to _count, label syntax and sample values are
//     well-formed (obs.ValidateExposition).
//   - -require: every named family has a TYPE declaration.
//   - -reconcile: per tenant, the response-funnel counters reconcile —
//     sum over kinds of olap_responses_total never exceeds
//     olap_requests_total (requests increment at handler entry,
//     responses at exit, so the difference is the in-flight count).
//     With -quiesced the two must be exactly equal (no traffic in
//     flight — scrape after the storm drains).
//   - -max-tenant-labels: the tenant label carries at most n distinct
//     values across the olap_* families (the server's cardinality cap
//     held, counting the "_other" fold-over series).
//   - -storage: the olap_storage_* families are exported all-or-nothing
//     (a data directory exports the full set, an in-memory server none
//     of it — a partial set means a family was added to prom.go without
//     updating this list) and, when present, reconcile: a store serving
//     tables has a committed generation, and an opened store has
//     recorded at least one recovery pass.
//
// Exit codes: 0 all checks pass, 1 a check failed, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/olaplab/gmdj/internal/obs"
)

// storageFamilies mirrors the olap_storage_* set prom.go exports when
// a data directory is configured. -storage enforces it all-or-nothing.
var storageFamilies = []string{
	"olap_storage_generation",
	"olap_storage_tables",
	"olap_storage_quarantined_tables",
	"olap_storage_segments_written_total",
	"olap_storage_segments_recovered_total",
	"olap_storage_segments_quarantined_total",
	"olap_storage_checkpoints_total",
	"olap_storage_recoveries_total",
	"olap_storage_manifests_skipped_total",
	"olap_storage_bytes_written_total",
	"olap_storage_bytes_read_total",
}

func main() {
	os.Exit(run())
}

func run() int {
	reconcile := flag.Bool("reconcile", false, "check per-tenant requests >= sum of responses")
	quiesced := flag.Bool("quiesced", false, "with -reconcile: require exact equality (no in-flight requests)")
	maxTenantLabels := flag.Int("max-tenant-labels", 0, "fail when the tenant label has more distinct values (0 = unchecked)")
	require := flag.String("require", "", "comma-separated metric families that must be declared")
	storage := flag.Bool("storage", false, "check olap_storage_* families are all-or-nothing and reconcile")
	flag.Parse()

	var raw []byte
	var err error
	switch flag.NArg() {
	case 0:
		raw, err = io.ReadAll(os.Stdin)
	case 1:
		raw, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		return 2
	}

	if err := obs.ValidateExposition(raw); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: invalid exposition:", err)
		return 1
	}

	declared := map[string]bool{}
	requests := map[string]float64{}    // tenant -> olap_requests_total
	responses := map[string]float64{}   // tenant -> sum over kinds
	storageVals := map[string]float64{} // olap_storage_* family -> value
	tenants := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				declared[fields[2]] = true
			}
			continue
		}
		name, labels, v, err := obs.ParsePromSample(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck: bad sample:", err)
			return 1
		}
		if t, ok := labels["tenant"]; ok && strings.HasPrefix(name, "olap_") {
			tenants[t] = true
		}
		switch name {
		case "olap_requests_total":
			requests[labels["tenant"]] += v
		case "olap_responses_total":
			responses[labels["tenant"]] += v
		}
		if strings.HasPrefix(name, "olap_storage_") {
			storageVals[name] = v
		}
	}

	status := 0
	for _, fam := range strings.Split(*require, ",") {
		fam = strings.TrimSpace(fam)
		if fam != "" && !declared[fam] {
			fmt.Fprintf(os.Stderr, "promcheck: required family %q not declared\n", fam)
			status = 1
		}
	}

	if *reconcile {
		names := make([]string, 0, len(requests))
		for t := range requests {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			req, resp := requests[t], responses[t]
			switch {
			case resp > req:
				fmt.Fprintf(os.Stderr, "promcheck: tenant %q: responses %.0f exceed requests %.0f\n", t, resp, req)
				status = 1
			case *quiesced && resp != req:
				fmt.Fprintf(os.Stderr, "promcheck: tenant %q: quiesced but %0.f requests unaccounted (requests %.0f, responses %.0f)\n",
					t, req-resp, req, resp)
				status = 1
			}
		}
		for t := range responses {
			if _, ok := requests[t]; !ok {
				fmt.Fprintf(os.Stderr, "promcheck: tenant %q: responses with no requests series\n", t)
				status = 1
			}
		}
	}

	if *storage {
		known := map[string]bool{}
		for _, fam := range storageFamilies {
			known[fam] = true
		}
		for fam := range storageVals {
			if !known[fam] {
				fmt.Fprintf(os.Stderr, "promcheck: storage family %q not in promcheck's list — update both ends\n", fam)
				status = 1
			}
		}
		if len(storageVals) > 0 {
			for _, fam := range storageFamilies {
				if _, ok := storageVals[fam]; !ok {
					fmt.Fprintf(os.Stderr, "promcheck: storage families are partial: %q missing\n", fam)
					status = 1
				}
			}
			if storageVals["olap_storage_tables"] > 0 && storageVals["olap_storage_generation"] < 1 {
				fmt.Fprintf(os.Stderr, "promcheck: store serves %.0f tables at generation %.0f\n",
					storageVals["olap_storage_tables"], storageVals["olap_storage_generation"])
				status = 1
			}
			if storageVals["olap_storage_recoveries_total"] < 1 {
				fmt.Fprintln(os.Stderr, "promcheck: storage exported without a recorded recovery pass")
				status = 1
			}
		}
	}

	if *maxTenantLabels > 0 && len(tenants) > *maxTenantLabels {
		names := make([]string, 0, len(tenants))
		for t := range tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "promcheck: %d tenant label values exceed cap %d: %s\n",
			len(tenants), *maxTenantLabels, strings.Join(names, ", "))
		status = 1
	}

	if status == 0 {
		fmt.Printf("promcheck: ok (%d families, %d tenant labels)\n", len(declared), len(tenants))
	}
	return status
}
