// Command benchfig regenerates the paper's evaluation figures: for
// each figure it sweeps the paper's table sizes (scaled by -scale) over
// every evaluation strategy and prints the timing table.
//
// Usage:
//
//	benchfig                 # all figures at 1/16 scale
//	benchfig -fig fig4       # one figure
//	benchfig -scale 1.0      # the paper's full row counts
//	benchfig -workers 8      # parallel GMDJ scans (extension)
//
// Cells marked DNF* are skipped by construction: the strategy is known
// to be combinatorially infeasible at that size (the paper reports the
// corresponding runs as >7 hours).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/olaplab/gmdj/internal/benchlab"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: all, fig2, fig3, fig4, fig5, ext-coalesce")
	scale := flag.Float64("scale", 1.0/16.0, "row-count multiplier over the paper's sizes (1.0 = paper scale)")
	repeat := flag.Int("repeat", 1, "measurements per cell (minimum is reported)")
	workers := flag.Int("workers", 0, "GMDJ scan parallelism (0 = serial)")
	verify := flag.Bool("verify", true, "cross-check that all strategies agree per size")
	flag.Parse()

	r := &benchlab.Runner{Scale: *scale, Repeat: *repeat, Workers: *workers, Verify: *verify}

	exps := r.Experiments()
	if *fig != "all" {
		exp, err := r.Experiment(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(2)
		}
		exps = []*benchlab.Experiment{exp}
	}

	fmt.Printf("benchfig: scale=%.4g repeat=%d workers=%d\n\n", *scale, *repeat, *workers)
	for _, exp := range exps {
		fmt.Printf("== %s — %s ==\n", exp.ID, exp.Title)
		results, err := r.RunExperiment(exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		fmt.Print(benchlab.FormatTable(results))
		fmt.Println()
	}
}
