// Command benchfig regenerates the paper's evaluation figures: for
// each figure it sweeps the paper's table sizes (scaled by -scale) over
// every evaluation strategy and prints the timing table.
//
// Usage:
//
//	benchfig                 # all figures at 1/16 scale
//	benchfig -fig fig4       # one figure
//	benchfig -scale 1.0      # the paper's full row counts
//	benchfig -workers 8      # parallel GMDJ scans (extension)
//	benchfig -json out.json  # bench-trajectory JSON: per-cell timing,
//	                         # rows scanned, and probe counts (implies
//	                         # stats collection)
//	benchfig -stats-json o.json  # full machine-readable results with
//	                             # per-operator statistics trees
//	benchfig -stats          # capture per-operator counters per cell
//
// Trajectory mode powers scripts/bench_trajectory.sh: -json writes one
// object per figure with schema
//
//	{commit, figure, scale, cells: [{strategy, label, ns_per_op,
//	 rows_scanned, probes}]}
//
// (an array of objects when multiple figures run), and -baseline
// compares the fresh run against a committed BENCH_<fig>.json, exiting
// 3 when any matching cell is slower than
// baseline*(1+tolerance)+slack.
//
// Cells marked DNF* are skipped by construction: the strategy is known
// to be combinatorially infeasible at that size (the paper reports the
// corresponding runs as >7 hours).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/benchlab"
)

// exitRegression signals a trajectory regression against -baseline,
// distinct from usage (2) and run (1) failures so CI can tell them
// apart.
const exitRegression = 3

func main() {
	fig := flag.String("fig", "all", "figure to run: all, fig2, fig3, fig4, fig5, ext-coalesce, prepared, memory, parallel")
	scale := flag.Float64("scale", 1.0/16.0, "row-count multiplier over the paper's sizes (1.0 = paper scale)")
	repeat := flag.Int("repeat", 1, "measurements per cell (minimum is reported)")
	workers := flag.Int("workers", 0, "GMDJ scan parallelism (0 = serial)")
	verify := flag.Bool("verify", true, "cross-check that all strategies agree per size")
	stats := flag.Bool("stats", false, "capture per-operator statistics per cell (one extra untimed run)")
	jsonOut := flag.String("json", "", "write bench-trajectory JSON to this file; - for stdout (implies stats collection)")
	statsJSONOut := flag.String("stats-json", "", "write full results with per-operator statistics trees to this file; - for stdout")
	baseline := flag.String("baseline", "", "compare the run against this committed trajectory JSON; exit 3 on regression")
	tolerance := flag.Float64("tolerance", 0.15, "with -baseline: allowed relative slowdown per cell")
	slack := flag.Duration("slack", 2*time.Millisecond, "with -baseline: absolute per-cell slack added to the tolerance band")
	commit := flag.String("commit", "", "commit id stamped into trajectory JSON (default: git rev-parse --short HEAD)")
	flag.Parse()

	r := &benchlab.Runner{Scale: *scale, Repeat: *repeat, Workers: *workers, Verify: *verify,
		CollectStats: *stats || *jsonOut != "" || *statsJSONOut != "" || *baseline != ""}

	exps := r.Experiments()
	if *fig != "all" {
		exp, err := r.Experiment(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(2)
		}
		exps = []*benchlab.Experiment{exp}
	}

	fmt.Printf("benchfig: scale=%.4g repeat=%d workers=%d\n\n", *scale, *repeat, *workers)
	var all []benchlab.Result
	var trajectories []benchlab.Trajectory
	id := commitID(*commit)
	for _, exp := range exps {
		fmt.Printf("== %s — %s ==\n", exp.ID, exp.Title)
		results, err := r.RunExperiment(exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		all = append(all, results...)
		trajectories = append(trajectories, benchlab.BuildTrajectory(exp.ID, id, *scale, results))
		fmt.Print(benchlab.FormatTable(results))
		if r.CollectStats {
			fmt.Print(benchlab.FormatCounters(results))
		}
		fmt.Println()
	}
	if *statsJSONOut != "" {
		writeOut(*statsJSONOut, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(all)
		})
	}
	if *jsonOut != "" {
		writeOut(*jsonOut, func(f *os.File) error {
			if len(trajectories) == 1 {
				return benchlab.WriteTrajectory(f, trajectories[0])
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(trajectories)
		})
	}
	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		base, err := benchlab.ReadTrajectory(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		var regressed bool
		for _, t := range trajectories {
			if t.Figure != base.Figure {
				continue
			}
			regs := benchlab.CompareTrajectories(base, t, *tolerance, *slack)
			for _, reg := range regs {
				fmt.Fprintf(os.Stderr, "benchfig: REGRESSION %s %s (baseline commit %s, tolerance %.0f%%+%v)\n",
					t.Figure, reg, base.Commit, *tolerance*100, *slack)
				regressed = true
			}
			if len(regs) == 0 {
				fmt.Printf("trajectory %s: within %.0f%%+%v of baseline %s\n",
					t.Figure, *tolerance*100, *slack, base.Commit)
			}
		}
		if regressed {
			os.Exit(exitRegression)
		}
	}
}

// commitID resolves the commit stamp for trajectory JSON.
func commitID(override string) string {
	if override != "" {
		return override
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeOut writes to path ("-" = stdout), exiting on failure.
func writeOut(path string, write func(*os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}
