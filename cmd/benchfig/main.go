// Command benchfig regenerates the paper's evaluation figures: for
// each figure it sweeps the paper's table sizes (scaled by -scale) over
// every evaluation strategy and prints the timing table.
//
// Usage:
//
//	benchfig                 # all figures at 1/16 scale
//	benchfig -fig fig4       # one figure
//	benchfig -scale 1.0      # the paper's full row counts
//	benchfig -workers 8      # parallel GMDJ scans (extension)
//	benchfig -json out.json  # machine-readable results with per-operator
//	                         # statistics (implies -stats)
//	benchfig -stats          # capture per-operator counters per cell
//
// Cells marked DNF* are skipped by construction: the strategy is known
// to be combinatorially infeasible at that size (the paper reports the
// corresponding runs as >7 hours).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/olaplab/gmdj/internal/benchlab"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: all, fig2, fig3, fig4, fig5, ext-coalesce")
	scale := flag.Float64("scale", 1.0/16.0, "row-count multiplier over the paper's sizes (1.0 = paper scale)")
	repeat := flag.Int("repeat", 1, "measurements per cell (minimum is reported)")
	workers := flag.Int("workers", 0, "GMDJ scan parallelism (0 = serial)")
	verify := flag.Bool("verify", true, "cross-check that all strategies agree per size")
	stats := flag.Bool("stats", false, "capture per-operator statistics per cell (one extra untimed run)")
	jsonOut := flag.String("json", "", "write machine-readable results (with statistics) to this file; - for stdout")
	flag.Parse()

	r := &benchlab.Runner{Scale: *scale, Repeat: *repeat, Workers: *workers, Verify: *verify,
		CollectStats: *stats || *jsonOut != ""}

	exps := r.Experiments()
	if *fig != "all" {
		exp, err := r.Experiment(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(2)
		}
		exps = []*benchlab.Experiment{exp}
	}

	fmt.Printf("benchfig: scale=%.4g repeat=%d workers=%d\n\n", *scale, *repeat, *workers)
	var all []benchlab.Result
	for _, exp := range exps {
		fmt.Printf("== %s — %s ==\n", exp.ID, exp.Title)
		results, err := r.RunExperiment(exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		all = append(all, results...)
		fmt.Print(benchlab.FormatTable(results))
		if r.CollectStats {
			fmt.Print(benchlab.FormatCounters(results))
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchfig:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
	}
}
