// Command olapql is an interactive SQL shell over the gmdj engine.
//
// Usage:
//
//	olapql [-data netflow|tpcr|none] [-scale f] [-strategy s] [-parallel n]
//	       [-timeout d] [-max-rows n] [-max-mem bytes]
//	       [-mem-limit bytes] [-spill-dir dir] [-admission-timeout d]
//	       [-data-dir dir] [-plancache bytes] [-resultcache bytes]
//	       [-explain] [-trace out.json] [-metrics-addr :8080]
//	       [-slowlog out.json] [-slow-ms n] [-profile-dir dir]
//
// Durability: -data-dir persists every table as checksummed columnar
// segments under the given directory and recovers whatever a previous
// run committed there on startup (corrupt segments quarantine their
// tables instead of failing the open; the recovery summary is printed
// on stderr). Checkpoints are transparent — the first query after any
// write commits a new manifest generation — and explicit via
// \checkpoint; \segments shows each table's durable state.
//
// Caching: the parameterized plan cache is on by default (-plancache
// sets its byte budget; negative disables it); -resultcache enables
// the cross-query memo of uncorrelated subquery results and GMDJ
// detail-side hash vectors, invalidated by table version on any write
// (negative, the default, leaves it off). \caches shows both caches'
// hit/miss/eviction counters.
//
// Memory-adaptive execution: -mem-limit bounds tracked operator state
// across all concurrent queries; under the limit, GMDJ state and cached
// results spill to temp files under -spill-dir instead of failing
// (an empty -spill-dir disables spilling, turning exhaustion into a
// hard abort), and queries queue up to -admission-timeout for pool capacity
// before being shed. \mem shows the pool and spill-store counters.
//
// Observability: -explain (with -e) prints the EXPLAIN ANALYZE plan —
// per-operator wall time, act=/est= cardinalities with cost-model
// drift flags, bytes, and counters — alongside the result; -trace
// records spans for every query and writes Chrome trace_event JSON on
// exit (load in https://ui.perfetto.dev); -metrics-addr serves the
// engine's expvar counters at /debug/vars, the Prometheus text
// exposition of the gmdj_* families at /metrics, plus the live
// workload dashboard at /debug/olap/queries (in-flight queries with
// advancing row counters), /debug/olap/hist (latency/row histograms),
// and /debug/olap/slowlog (append ?format=text for plain text); -slowlog
// writes the slow-query log — SQL, strategy, outcome, full stats tree
// per query at least -slow-ms slow — as JSON on exit.
//
// Meta commands inside the shell:
//
//	\tables              list tables
//	\strategy <name>     switch evaluation strategy (native, unnest, gmdj, gmdj-opt)
//	\explain <query>     show the physical plan for the current strategy
//	\explain analyze <q> run the query, show the plan annotated with runtime stats
//	\prepare <query>     compile a statement with ? or $n placeholders
//	\execute <args...>   run the prepared statement with bound arguments
//	                     ('quoted' strings, numbers, true/false, null)
//	\caches              show plan-cache and result-memo counters
//	\mem                 show memory-pool and spill-store counters
//	\stats               show process-wide engine counters
//	\hist                show workload latency/row histograms (p50/p90/p99)
//	\slowlog             show the slow-query log, newest first
//	\live                show in-flight queries with live progress counters
//	\profile             capture CPU/heap/goroutine/mutex profiles now
//	                     (needs -profile-dir; prints the ring paths)
//	\checkpoint          commit a manifest generation now (needs -data-dir)
//	\segments            show each table's durable segment state
//	\quit                exit
//
// Any other input line is executed as SQL.
//
// Exit codes (one-shot -e mode), so scripts can tell a governed abort
// from a crash:
//
//	0  success
//	1  query or statement error
//	2  usage error
//	3  query exceeded -timeout
//	4  query canceled (interrupt)
//	5  query exceeded -max-rows
//	6  query exceeded -max-mem
//	7  internal error (operator panic, recovered)
//	8  spill I/O failure (disk full, corrupt spill file)
//	9  admission timeout (memory pool contended; query shed)
//	10 database closed while the query waited for admission
//	13 durable segment corrupt (query touched a quarantined table)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/obs/profile"
)

// Exit codes for governed failures; see the package comment.
const (
	exitErr       = 1
	exitUsage     = 2
	exitTimeout   = 3
	exitCanceled  = 4
	exitRowCap    = 5
	exitMemCap    = 6
	exitInternal  = 7
	exitSpillIO   = 8
	exitAdmission = 9
	exitClosed    = 10
	// 11 and 12 belong to the serving layer (unavailable) and olapd's
	// shutdown leak check; the shell skips them so codes stay aligned
	// across binaries.
	exitSegmentCorrupt = 13
)

// exitCode maps a query error onto the CLI's exit-code contract.
func exitCode(err error) int {
	switch {
	case errors.Is(err, gmdj.ErrTimeout):
		return exitTimeout
	case errors.Is(err, gmdj.ErrCanceled):
		return exitCanceled
	case errors.Is(err, gmdj.ErrRowBudget):
		return exitRowCap
	case errors.Is(err, gmdj.ErrMemBudget):
		return exitMemCap
	case errors.Is(err, gmdj.ErrSegmentCorrupt):
		return exitSegmentCorrupt
	case errors.Is(err, gmdj.ErrSpillIO):
		return exitSpillIO
	case errors.Is(err, gmdj.ErrAdmissionTimeout):
		return exitAdmission
	case errors.Is(err, gmdj.ErrClosed):
		return exitClosed
	case errors.Is(err, gmdj.ErrInternal):
		return exitInternal
	default:
		return exitErr
	}
}

func main() {
	data := flag.String("data", "netflow", "sample dataset to preload: netflow, tpcr, or none")
	scale := flag.Float64("scale", 1.0, "sample dataset scale factor")
	strategy := flag.String("strategy", "gmdj-opt", "evaluation strategy: native, unnest, gmdj, gmdj-opt")
	parallel := flag.Int("parallel", 0, "morsel-driven execution degree (1 = serial, 0 = default: GOMAXPROCS or GMDJ_PARALLEL)")
	workers := flag.Int("workers", 0, "deprecated alias for -parallel")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock budget (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query cap on materialized rows (0 = none)")
	maxMem := flag.Int64("max-mem", 0, "per-query cap on approximate materialized bytes (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "engine-wide tracked-state memory pool in bytes; queries spill or queue under pressure (0 = untracked)")
	spillDir := flag.String("spill-dir", "auto", "spill scratch root ('auto' = system temp dir, '' disables spilling: exhaustion kills the query)")
	admission := flag.Duration("admission-timeout", 0, "how long a query may queue for pool memory before being shed (0 = 10s default)")
	dataDir := flag.String("data-dir", "", "persist tables as columnar segments under this directory, recovering committed state on startup ('' = in-memory only)")
	planCacheBytes := flag.Int64("plancache", 0, "parameterized plan cache byte budget (0 = default 16 MiB, negative disables)")
	resultCacheBytes := flag.Int64("resultcache", -1, "cross-query result memo byte budget (0 = default 64 MiB, negative = off)")
	execQuery := flag.String("e", "", "execute one query and exit")
	explain := flag.Bool("explain", false, "with -e: print the EXPLAIN ANALYZE plan alongside the result")
	traceOut := flag.String("trace", "", "record query spans and write Chrome trace_event JSON to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve engine metrics over HTTP at this address (expvar at /debug/vars, live dashboard at /debug/olap/)")
	slowlogOut := flag.String("slowlog", "", "write the slow-query log as JSON to this file on exit")
	slowMS := flag.Int64("slow-ms", 0, "slow-query threshold in milliseconds (0 logs every query)")
	profileDir := flag.String("profile-dir", "", "run the continuous profiler with its on-disk ring rooted here ('' disables); \\profile captures on demand")
	flag.Parse()

	if *parallel == 0 {
		*parallel = *workers
	}
	opts := []gmdj.Option{
		gmdj.WithParallelism(*parallel),
		gmdj.WithBudget(gmdj.Budget{Timeout: *timeout, MaxRows: *maxRows, MaxMemBytes: *maxMem}),
		gmdj.WithPlanCache(*planCacheBytes),
		gmdj.WithResultCache(*resultCacheBytes),
	}
	if *memLimit > 0 {
		opts = append(opts, gmdj.WithMemoryLimit(*memLimit))
		if *admission > 0 {
			opts = append(opts, gmdj.WithAdmissionTimeout(*admission))
		}
	}
	if *spillDir != "auto" {
		opts = append(opts, gmdj.WithSpillDir(*spillDir))
	}
	var db *gmdj.DB
	switch *data {
	case "netflow":
		db = gmdj.OpenNetflowSample(int(50_000**scale), opts...)
	case "tpcr":
		db = gmdj.OpenTPCRSample(*scale, opts...)
	case "none":
		db = gmdj.Open(opts...)
	default:
		fmt.Fprintf(os.Stderr, "olapql: unknown dataset %q\n", *data)
		os.Exit(exitUsage)
	}

	strat, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "olapql: unknown strategy %q\n", *strategy)
		os.Exit(exitUsage)
	}

	if *dataDir != "" {
		// Recovery happens after the sample loaders so a recovered table
		// wins over (replaces) a same-named sample.
		rep, err := db.SetDataDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
			db.Close()
			os.Exit(exitUsage)
		}
		fmt.Fprintf(os.Stderr, "olapql: recovered generation %d: %d tables, %d quarantined, %d manifests skipped\n",
			rep.Generation, len(rep.Tables), len(rep.Quarantined), rep.SkippedManifests)
		for _, q := range rep.Quarantined {
			fmt.Fprintf(os.Stderr, "olapql: quarantined %s (%s): %s\n", q.Table, q.File, q.Reason)
		}
	}

	if *traceOut != "" {
		db.EnableTracing(0)
	}
	// Workload observability is wanted by the slow-query log flags and
	// by the live dashboard the metrics server mounts. An explicit
	// -slow-ms 0 means "log every query", so distinguish it from the
	// unset default.
	slowMSSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "slow-ms" {
			slowMSSet = true
		}
	})
	if *slowlogOut != "" || slowMSSet || *metricsAddr != "" {
		db.EnableObservability(gmdj.ObsConfig{
			SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
	}
	// writeTrace and writeSlowLog flush before any exit path (os.Exit
	// skips defers).
	writeTrace := func() {
		if *traceOut == "" {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
			return
		}
		defer f.Close()
		if err := db.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
		}
	}
	writeSlowLog := func() {
		if *slowlogOut == "" {
			return
		}
		f, err := os.Create(*slowlogOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
			return
		}
		defer f.Close()
		if err := db.WriteSlowLog(f); err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
		}
	}
	var profiler *profile.Profiler
	if *profileDir != "" {
		var err error
		profiler, err = profile.New(profile.Config{Dir: *profileDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
			db.Close()
			os.Exit(exitUsage)
		}
		profiler.Start()
	}
	// flush also closes the DB so the scratch spill directory (if any)
	// is removed on every exit path, and stops the profiler so its last
	// capture cycle finishes before the ring is read.
	flush := func() {
		writeTrace()
		writeSlowLog()
		if profiler != nil {
			profiler.Close()
		}
		db.Close()
	}
	if *metricsAddr != "" {
		// The expvar handler registers itself on the default mux (the
		// engine's "gmdj" map appears at /debug/vars); the live workload
		// dashboard mounts next to it under /debug/olap/, and the
		// Prometheus text exposition of the engine families at /metrics.
		http.Handle("/debug/olap/", db.ObsHTTPHandler())
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", gmdj.PromContentType)
			if err := db.WritePromMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "olapql: metrics server:", err)
			}
		}()
	}

	if *execQuery != "" {
		// Interrupt cancels the running query (exit 4) rather than
		// killing the process mid-evaluation.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSignals()
		var res *gmdj.Result
		var err error
		if *explain {
			var plan string
			res, plan, err = db.QueryAnalyzeContext(ctx, *execQuery, strat)
			if err == nil {
				fmt.Print(plan)
				fmt.Println()
			}
		} else {
			res, err = db.ExecStrategyContext(ctx, *execQuery, strat)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapql:", err)
			flush()
			os.Exit(exitCode(err))
		}
		if res != nil {
			printResult(res)
		}
		flush()
		return
	}

	fmt.Printf("olapql — GMDJ subquery engine (strategy: %v)\n", strat)
	fmt.Printf("tables: %s\n", strings.Join(db.Tables(), ", "))
	fmt.Println(`type SQL, or \tables, \strategy <s>, \explain [analyze] <q>, \prepare <q>, \execute <args>, \caches, \mem, \stats, \hist, \slowlog, \live, \profile, \checkpoint, \segments, \quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	defer flush()
	var prepared *gmdj.Stmt
	for {
		fmt.Print("olap> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range db.Tables() {
				fmt.Println(" ", t)
			}
		case line == `\stats`:
			printMetrics(db.Metrics())
		case line == `\caches`:
			printCacheStats(db)
		case line == `\mem`:
			printMemStats(db)
		case line == `\checkpoint`:
			gen, err := db.Checkpoint()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  committed generation %d\n", gen)
		case line == `\segments`:
			printSegments(db)
		case line == `\hist`:
			fmt.Print(db.FormatHistograms())
		case line == `\slowlog`:
			fmt.Print(db.FormatSlowLog())
		case line == `\live`:
			fmt.Print(db.FormatLiveQueries())
		case line == `\profile`:
			if profiler == nil {
				fmt.Println("  profiling off (run with -profile-dir)")
				continue
			}
			paths, err := profiler.CaptureNow(time.Second)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, p := range paths {
				fmt.Println(" ", p)
			}
		case strings.HasPrefix(line, `\strategy`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\strategy`))
			if s, ok := parseStrategy(arg); ok {
				strat = s
				fmt.Printf("strategy: %v\n", strat)
			} else {
				fmt.Printf("unknown strategy %q (native, unnest, gmdj, gmdj-opt)\n", arg)
			}
		case strings.HasPrefix(line, `\explain analyze`):
			q := strings.TrimSpace(strings.TrimPrefix(line, `\explain analyze`))
			out, err := db.ExplainAnalyze(q, strat)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, `\explain`):
			q := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
			plan, err := db.Explain(q, strat)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(plan)
		case strings.HasPrefix(line, `\prepare`):
			q := strings.TrimSpace(strings.TrimPrefix(line, `\prepare`))
			if q == "" {
				fmt.Println(`usage: \prepare <query with ? or $n placeholders>`)
				continue
			}
			st, err := db.PrepareStrategy(q, strat)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if prepared != nil {
				prepared.Close()
			}
			prepared = st
			fmt.Printf("prepared (%d params); run \\execute <args...>\n", st.NumParams())
		case strings.HasPrefix(line, `\execute`):
			if prepared == nil {
				fmt.Println(`no prepared statement; run \prepare <query> first`)
				continue
			}
			args, err := splitArgs(strings.TrimSpace(strings.TrimPrefix(line, `\execute`)))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			res, err := prepared.Query(args...)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
		default:
			res, err := db.ExecStrategy(line, strat)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if res == nil {
				fmt.Println("ok")
				continue
			}
			printResult(res)
		}
	}
}

func printMemStats(db *gmdj.DB) {
	m := db.MemStats()
	if !m.Enabled {
		fmt.Println("  memory tracking off (run with -mem-limit)")
		return
	}
	fmt.Printf("  pool:  capacity=%d in_use=%d queued=%d admitted=%d timed_out=%d reclaimed=%d\n",
		m.Capacity, m.InUse, m.Queued, m.Admitted, m.TimedOut, m.ReclaimedBytes)
	if !m.SpillEnabled {
		fmt.Println("  spill: disabled (exhaustion aborts the query)")
		return
	}
	fmt.Printf("  spill: dir=%s live_files=%d writes=%d reads=%d bytes_written=%d bytes_read=%d\n",
		m.SpillDir, m.SpillLiveFiles, m.SpillWrites, m.SpillReads, m.SpillBytesWritten, m.SpillBytesRead)
}

func printSegments(db *gmdj.DB) {
	ss := db.StorageStats()
	if !ss.Enabled {
		fmt.Println("  persistence off (run with -data-dir)")
		return
	}
	fmt.Printf("  dir=%s generation=%d checkpoints=%d bytes_written=%d bytes_read=%d\n",
		ss.Dir, ss.Generation, ss.Checkpoints, ss.BytesWritten, ss.BytesRead)
	for _, s := range db.Segments() {
		status := "ok"
		if s.Quarantined {
			status = "QUARANTINED: " + s.Reason
		}
		fmt.Printf("  %-20s rows=%-8d file=%s %s\n", s.Table, s.Rows, s.File, status)
	}
}

func printCacheStats(db *gmdj.DB) {
	p, r := db.PlanCacheStats(), db.ResultCacheStats()
	fmt.Printf("  plan cache:  hits=%d misses=%d evictions=%d invalidations=%d entries=%d bytes=%d\n",
		p.Hits, p.Misses, p.Evictions, p.Invalidations, p.Entries, p.Bytes)
	fmt.Printf("  result memo: hits=%d misses=%d evictions=%d entries=%d bytes=%d\n",
		r.Hits, r.Misses, r.Evictions, r.Entries, r.Bytes)
}

// splitArgs parses \execute arguments: whitespace- or comma-separated
// tokens; 'quoted' strings (” escapes a quote), integers, floats,
// true/false, and null; any other bare token is a string.
func splitArgs(s string) ([]any, error) {
	var args []any
	i := 0
	for i < len(s) {
		switch c := s[i]; {
		case c == ' ' || c == '\t' || c == ',':
			i++
		case c == '\'':
			var b strings.Builder
			i++
			for {
				j := strings.IndexByte(s[i:], '\'')
				if j < 0 {
					return nil, fmt.Errorf("unterminated string in arguments")
				}
				b.WriteString(s[i : i+j])
				i += j + 1
				if i < len(s) && s[i] == '\'' {
					b.WriteByte('\'')
					i++
					continue
				}
				break
			}
			args = append(args, b.String())
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != ',' {
				j++
			}
			tok := s[i:j]
			i = j
			switch strings.ToLower(tok) {
			case "true":
				args = append(args, true)
			case "false":
				args = append(args, false)
			case "null":
				args = append(args, nil)
			default:
				if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
					args = append(args, n)
				} else if f, err := strconv.ParseFloat(tok, 64); err == nil {
					args = append(args, f)
				} else {
					args = append(args, tok)
				}
			}
		}
	}
	return args, nil
}

func printMetrics(snap map[string]int64) {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %d\n", k, snap[k])
	}
}

func parseStrategy(s string) (gmdj.Strategy, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "native":
		return gmdj.Native, true
	case "unnest":
		return gmdj.Unnest, true
	case "gmdj":
		return gmdj.GMDJ, true
	case "gmdj-opt", "gmdjopt", "opt":
		return gmdj.GMDJOpt, true
	default:
		return gmdj.Native, false
	}
}

func printResult(res *gmdj.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	const maxRows = 40
	n := len(res.Rows)
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for i := 0; i < shown; i++ {
		row := make([]string, len(res.Rows[i]))
		for j, v := range res.Rows[i] {
			if v == nil {
				row[j] = "NULL"
			} else {
				row[j] = fmt.Sprint(v)
			}
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		cells[i] = row
	}
	line := func(parts []string) {
		for j, p := range parts {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[j], p)
		}
		fmt.Println()
	}
	line(res.Columns)
	for j, w := range widths {
		if j > 0 {
			fmt.Print("-+-")
		}
		fmt.Print(strings.Repeat("-", w))
	}
	fmt.Println()
	for _, row := range cells {
		line(row)
	}
	if n > shown {
		fmt.Printf("... (%d more rows)\n", n-shown)
	}
	fmt.Printf("(%d rows)\n", n)
}
