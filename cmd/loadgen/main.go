// Command loadgen drives olapd with a declarative YAML scenario: a
// sequence of steps, each a worker pool issuing a weighted query mix
// with optional concurrency ramps, per-request timeouts, think time,
// and client-abort storms (a fraction of requests hang up early, the
// cancellation-storm case).
//
// Usage:
//
//	loadgen -scenario scenarios/cancel_storm.yaml [-target http://127.0.0.1:8080]
//	        [-bench BENCH_serve.json] [-commit sha] [-q]
//
// Outcome accounting is the point: every response must be either 200
// or a typed error from the serving taxonomy (kind, exit_code,
// retryable). Any other outcome — a panic page, a truncated body, a
// hung connection not explained by a client abort — counts as
// non-typed and fails the run with exit 1. Client aborts and shed
// requests (429/503) are expected outcomes under chaos, not failures.
//
// -bench writes per-step p50/p99/mean latency cells in the repo's
// bench-trajectory JSON format for plots over commits.
//
// Exit codes: 0 all steps completed with zero non-typed outcomes,
// 1 non-typed outcomes or run error, 2 usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/olaplab/gmdj/internal/loadflow"
	"github.com/olaplab/gmdj/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	scenarioPath := flag.String("scenario", "", "scenario YAML file (required)")
	target := flag.String("target", "", "olapd base URL (overrides the scenario's target)")
	benchOut := flag.String("bench", "", "write per-step latency cells as bench-trajectory JSON to this file")
	commit := flag.String("commit", "", "commit sha recorded in -bench output")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scenario is required")
		return 2
	}
	src, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}
	sc, err := loadflow.ParseScenario(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	r := &loadflow.Runner{
		Target:     *target,
		KnownKinds: serve.KnownKinds(),
	}
	if !*quiet {
		r.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		}
	}
	res, err := r.Run(ctx, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	_ = out.Encode(res)

	if *benchOut != "" {
		if err := writeBench(*benchOut, *commit, res); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
	}

	var nonTyped int64
	for _, st := range res.Steps {
		nonTyped += st.NonTyped
		for _, s := range st.NonTypedSamples {
			fmt.Fprintf(os.Stderr, "loadgen: non-typed outcome in %q: %s\n", st.Name, s)
		}
	}
	if nonTyped > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d non-typed outcomes\n", nonTyped)
		return 1
	}
	return 0
}

// benchCell matches the repo's bench-trajectory format (see
// scripts/bench_trajectory.sh): one cell per (step, percentile).
type benchCell struct {
	Strategy    string `json:"strategy"`
	Label       string `json:"label"`
	NsPerOp     int64  `json:"ns_per_op"`
	RowsScanned int64  `json:"rows_scanned"`
	Probes      int64  `json:"probes"`
}

type benchDoc struct {
	Commit string      `json:"commit"`
	Figure string      `json:"figure"`
	Scale  float64     `json:"scale"`
	Cells  []benchCell `json:"cells"`
}

func writeBench(path, commit string, res *loadflow.Result) error {
	doc := benchDoc{Commit: commit, Figure: "serve:" + res.Scenario, Scale: 1}
	for _, st := range res.Steps {
		mean := int64(0)
		if st.Latency.Count > 0 {
			mean = st.Latency.Sum / st.Latency.Count
		}
		for _, cell := range []struct {
			label string
			v     int64
		}{
			{"p50", st.Latency.P50},
			{"p99", st.Latency.P99},
			{"mean", mean},
		} {
			doc.Cells = append(doc.Cells, benchCell{
				Strategy:    st.Name,
				Label:       cell.label,
				NsPerOp:     cell.v,
				RowsScanned: st.Requests,
				Probes:      st.OK,
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
