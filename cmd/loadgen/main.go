// Command loadgen drives olapd with a declarative YAML scenario: a
// sequence of steps, each a worker pool issuing a weighted query mix
// with optional concurrency ramps, per-request timeouts, think time,
// and client-abort storms (a fraction of requests hang up early, the
// cancellation-storm case).
//
// Usage:
//
//	loadgen -scenario scenarios/cancel_storm.yaml [-target http://127.0.0.1:8080]
//	        [-bench out/BENCH_serve.json] [-baseline BENCH_serve.json]
//	        [-tolerance 0.5] [-commit sha] [-q]
//
// Outcome accounting is the point: every response must be either 200
// or a typed error from the serving taxonomy (kind, exit_code,
// retryable). Any other outcome — a panic page, a truncated body, a
// hung connection not explained by a client abort — counts as
// non-typed and fails the run with exit 1. Client aborts and shed
// requests (429/503) are expected outcomes under chaos, not failures.
//
// A scenario may declare per-tenant SLOs (availability target, p99
// bound, max error-budget burn); loadgen evaluates them against the
// run's typed outcomes — the client-side twin of the server's
// /metrics burn gauges — and fails with exit 4 when an objective is
// violated.
//
// -bench writes per-step p50/p99/mean latency cells in the repo's
// bench-trajectory JSON format for plots over commits; -baseline
// compares the fresh cells against a committed trajectory with the
// same exit-3 regression contract as scripts/bench_trajectory.sh
// (cells slower than base*(1+tolerance)+5ms flag).
//
// Exit codes: 0 all steps completed with zero non-typed outcomes and
// all objectives held, 1 non-typed outcomes or run error, 2 usage,
// 3 latency regression against -baseline, 4 SLO violation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/olaplab/gmdj/internal/benchlab"
	"github.com/olaplab/gmdj/internal/loadflow"
	"github.com/olaplab/gmdj/internal/serve"
)

const (
	exitOK      = 0
	exitFail    = 1
	exitUsage   = 2
	exitRegress = 3
	exitSLO     = 4
)

// regressionSlack is the absolute per-cell grace on top of the
// relative tolerance: serve-side latencies ride the OS scheduler and
// the network stack, so sub-5ms baseline cells would otherwise flag on
// noise alone.
const regressionSlack = 5 * time.Millisecond

func main() {
	os.Exit(run())
}

func run() int {
	scenarioPath := flag.String("scenario", "", "scenario YAML file (required)")
	target := flag.String("target", "", "olapd base URL (overrides the scenario's target)")
	benchOut := flag.String("bench", "", "write per-step latency cells as bench-trajectory JSON to this file")
	baseline := flag.String("baseline", "", "compare fresh latency cells against this bench-trajectory JSON (exit 3 on regression)")
	tolerance := flag.Float64("tolerance", 0.5, "relative slowdown tolerated by -baseline before a cell flags (0.5 = 50%)")
	commit := flag.String("commit", "", "commit sha recorded in -bench output")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scenario is required")
		return exitUsage
	}
	src, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return exitUsage
	}
	sc, err := loadflow.ParseScenario(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	r := &loadflow.Runner{
		Target:     *target,
		KnownKinds: serve.KnownKinds(),
	}
	if !*quiet {
		r.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		}
	}
	res, err := r.Run(ctx, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return exitFail
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	_ = out.Encode(res)

	traj := buildTrajectory(*commit, res)
	if *benchOut != "" {
		if err := writeBench(*benchOut, traj); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return exitFail
		}
	}

	var nonTyped int64
	for _, st := range res.Steps {
		nonTyped += st.NonTyped
		for _, s := range st.NonTypedSamples {
			fmt.Fprintf(os.Stderr, "loadgen: non-typed outcome in %q: %s\n", st.Name, s)
		}
	}
	if nonTyped > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d non-typed outcomes\n", nonTyped)
		return exitFail
	}

	// SLO objectives, evaluated before the latency baseline: burning the
	// error budget is a correctness-of-service failure, a slow step is
	// "only" a regression.
	violated := false
	for _, o := range loadflow.EvaluateSLOs(sc, res, serve.ServerFailureKinds()) {
		fmt.Fprintf(os.Stderr, "loadgen: slo %q: availability %.4f burn %.2f p99 %v over %d requests\n",
			o.Tenant, o.Availability, o.Burn, o.P99, o.Requests)
		for _, v := range o.Violations {
			violated = true
			fmt.Fprintln(os.Stderr, "loadgen: SLO VIOLATION:", v)
		}
	}
	if violated {
		return exitSLO
	}

	if *baseline != "" {
		regs, err := compareBaseline(*baseline, traj, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return exitFail
		}
		if len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintln(os.Stderr, "loadgen: REGRESSION:", reg)
			}
			return exitRegress
		}
		fmt.Fprintf(os.Stderr, "loadgen: baseline %s held (tolerance %.0f%% + %v)\n",
			*baseline, *tolerance*100, regressionSlack)
	}
	return exitOK
}

// buildTrajectory reduces the run to the repo's bench-trajectory
// shape: one cell per (step, percentile), with the step name as the
// strategy axis and the request/ok counts riding the work counters.
func buildTrajectory(commit string, res *loadflow.Result) benchlab.Trajectory {
	traj := benchlab.Trajectory{Commit: commit, Figure: "serve:" + res.Scenario, Scale: 1}
	for _, st := range res.Steps {
		mean := int64(0)
		if st.Latency.Count > 0 {
			mean = st.Latency.Sum / st.Latency.Count
		}
		for _, cell := range []struct {
			label string
			v     int64
		}{
			{"p50", st.Latency.P50},
			{"p99", st.Latency.P99},
			{"mean", mean},
		} {
			traj.Cells = append(traj.Cells, benchlab.TrajectoryCell{
				Strategy:    st.Name,
				Label:       cell.label,
				NsPerOp:     cell.v,
				RowsScanned: st.Requests,
				Probes:      st.OK,
			})
		}
	}
	return traj
}

func writeBench(path string, traj benchlab.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return benchlab.WriteTrajectory(f, traj)
}

func compareBaseline(path string, current benchlab.Trajectory, tolerance float64) ([]benchlab.Regression, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base, err := benchlab.ReadTrajectory(f)
	if err != nil {
		return nil, err
	}
	if base.Figure != current.Figure {
		return nil, fmt.Errorf("baseline figure %q does not match run figure %q", base.Figure, current.Figure)
	}
	return benchlab.CompareTrajectories(base, current, tolerance, regressionSlack), nil
}
