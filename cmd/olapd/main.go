// Command olapd serves the gmdj engine over HTTP/JSON: a concurrent
// query server with per-tenant admission quotas, per-request deadlines,
// typed structured errors, and graceful drain on SIGTERM.
//
// Usage:
//
//	olapd [-addr :8080] [-data netflow|tpcr|none] [-scale f] [-parallel n]
//	      [-data-dir dir] [-timeout d] [-max-timeout d]
//	      [-mem-limit bytes] [-spill-dir dir] [-admission-timeout d]
//	      [-plancache bytes] [-resultcache bytes]
//	      [-quota spec] [-tenants spec] [-slo spec] [-drain-timeout d]
//	      [-admin] [-slow-ms n] [-slowlog out.json] [-leak-check]
//	      [-trace-cap n] [-log-level debug|info|warn|error|off]
//	      [-profile-dir dir] [-profile-interval d] [-profile-cpu d]
//	      [-profile-retain n] [-incident-slow-ms n] [-incident-burn f]
//	      [-incident-queue n] [-incident-mem f] [-incident-min-interval d]
//
// The API is one endpoint:
//
//	POST /query
//	  {"sql": "...", "strategy": "gmdj-opt", "timeout_ms": 500, "args": [...]}
//	  200 → {"columns": [...], "rows": [...], "row_count": n,
//	         "request_id": "...", ...}
//	  else → {"error": "...", "kind": "...", "exit_code": n,
//	          "http_status": n, "request_id": "...",
//	          "retryable": bool, "retry_after_ms": n}
//
// plus GET /healthz (accepting/draining + counters) and GET /metrics
// (Prometheus text exposition: per-tenant request/response counters
// and latency histograms, admission-gate state, SLO burn gauges, and
// the engine-level gmdj_* families). The tenant is named by the
// X-OLAP-Tenant header (default "default").
//
// Request telemetry: every request carries an ID — the client's
// X-Request-Id header (sanitized) or a freshly minted one — echoed as
// a response header, in every JSON body, on each structured log line,
// in the live query registry and slow-query log, and on the request's
// trace spans. -slo declares per-tenant objectives published on
// /metrics ("paying:avail=0.999,p99=250ms;batch:avail=0.99").
// -trace-cap sizes the in-memory trace ring (0 disables tracing);
// with -admin the recorded trace downloads from /debug/olap/trace,
// ready for Perfetto. -log-level selects the threshold for the JSON
// request log on stderr ("off" silences it).
//
// Quotas: -quota is the default tenant envelope, -tenants grants
// per-tenant overrides, e.g.
//
//	-quota inflight=64,admission=2s
//	-tenants 'alice:inflight=8,mem=32MiB;bob:inflight=2,admission=500ms'
//
// A tenant over its in-flight cap queues FIFO and is shed with HTTP
// 429 + Retry-After at its admission deadline; a draining server
// answers 503 + Retry-After.
//
// Shutdown: SIGTERM or SIGINT starts the drain — stop accepting, let
// in-flight queries finish within -drain-timeout, then hard-cancel
// stragglers through their governor contexts. A drained exit is code
// 0 even when the hard phase fired. -leak-check verifies at exit that
// the goroutine count returned to its pre-serving baseline (code 12
// and a stack dump otherwise) — the chaos harness runs with it on.
//
// Durability: -data-dir roots crash-safe columnar storage. On startup
// the server recovers the latest committed manifest generation,
// logging one "storage recovered" line (generation, table count,
// quarantine count) plus one warning per quarantined segment; tables
// whose on-disk bytes fail verification are quarantined — queries on
// them answer 500 with kind "segment_corrupt" while every other table
// keeps serving. Tables checkpoint transparently after DDL/loads. The
// olap_storage_* /metrics families are published when persistence is
// on. Recovery runs after the -data sample loaders, so a recovered
// table replaces a same-named sample.
//
// Fault injection: GMDJ_FAULTS covers the server sites serve.accept,
// serve.write, and serve.cancel alongside the engine sites, with an
// optional @N rate suffix ("serve.accept=error@25" fails one accept
// in 25). Injected serving faults degrade to typed 503 responses.
//
// -admin mounts the live dashboard (/debug/olap/queries, /hist,
// /slowlog, /mem), the admission snapshot (/debug/serve), expvar
// (/debug/vars), and the net/http/pprof handlers (/debug/pprof/*) on
// the same listener.
//
// Continuous profiling: -profile-dir enables a background profiler
// that captures CPU, heap, goroutine, and mutex profiles every
// -profile-interval into a bounded on-disk ring (-profile-retain per
// kind), attributing CPU samples to tenants via pprof labels — the
// per-tenant olap_tenant_cpu_seconds_total family on /metrics comes
// from those captures. With -admin the ring is browsable at
// /debug/olap/profiles. The same directory hosts the incident flight
// recorder: when a query exceeds -incident-slow-ms, an SLO's error-
// budget burn reaches -incident-burn, an admission queue reaches
// -incident-queue waiters, or memory-pool utilization reaches
// -incident-mem, it writes one self-contained bundle (profiles, trace
// ring, slow-query log, /metrics scrape, goroutine dump, config
// snapshot) under <profile-dir>/incidents, rate-limited to one per
// -incident-min-interval. POST /debug/olap/incident forces a bundle.
// cmd/bundlecheck validates bundles offline.
//
// Exit codes: 0 clean shutdown, 1 server error, 2 usage,
// 12 goroutine leak detected (with -leak-check).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs/profile"
	"github.com/olaplab/gmdj/internal/serve"
)

const (
	exitClean = 0
	exitErr   = 1
	exitUsage = 2
	exitLeak  = 12
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "netflow", "sample dataset to preload: netflow, tpcr, or none")
	dataDir := flag.String("data-dir", "", "durable storage root: segments checkpoint here and recover on restart ('' = in-memory only)")
	scale := flag.Float64("scale", 1.0, "sample dataset scale factor")
	parallel := flag.Int("parallel", 0, "morsel-driven execution degree (1 = serial, 0 = default: GOMAXPROCS or GMDJ_PARALLEL)")
	workers := flag.Int("workers", 0, "deprecated alias for -parallel")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline when the request carries none (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "clamp on client-requested timeouts (0 = unclamped)")
	memLimit := flag.Int64("mem-limit", 0, "engine-wide tracked-state memory pool in bytes (0 = untracked)")
	spillDir := flag.String("spill-dir", "auto", "spill scratch root ('auto' = system temp dir, '' disables spilling)")
	admission := flag.Duration("admission-timeout", 0, "memory-pool admission deadline (0 = 10s default)")
	planCacheBytes := flag.Int64("plancache", 0, "parameterized plan cache byte budget (0 = default, negative disables)")
	resultCacheBytes := flag.Int64("resultcache", -1, "cross-query result memo byte budget (negative = off)")
	quota := flag.String("quota", "", "default tenant quota spec, e.g. inflight=64,mem=64MiB,admission=2s")
	tenants := flag.String("tenants", "", "per-tenant quota specs, e.g. 'a:inflight=8;b:inflight=2'")
	sloSpec := flag.String("slo", "", "per-tenant SLOs published on /metrics, e.g. 'a:avail=0.999,p99=250ms;b:avail=0.99'")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long in-flight queries may finish after SIGTERM before being hard-canceled")
	admin := flag.Bool("admin", false, "mount /debug/olap/*, /debug/serve, and /debug/vars")
	slowMS := flag.Int64("slow-ms", 100, "slow-query threshold in milliseconds (0 logs every query)")
	slowlogOut := flag.String("slowlog", "", "write the slow-query log as JSON to this file on exit")
	leakCheck := flag.Bool("leak-check", false, "verify the goroutine count returns to baseline at exit (exit 12 on leak)")
	traceCap := flag.Int("trace-cap", 65536, "in-memory trace ring capacity in events (0 disables tracing)")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, error, or off")
	profileDir := flag.String("profile-dir", "", "continuous-profiling root: cadence CPU/heap/goroutine/mutex profiles land in a bounded ring here ('' disables)")
	profileInterval := flag.Duration("profile-interval", 30*time.Second, "cadence between profile captures")
	profileCPU := flag.Duration("profile-cpu", 2*time.Second, "CPU profiling window per capture cycle (clamped to half the interval)")
	profileRetain := flag.Int("profile-retain", 8, "profiles retained per kind in the ring")
	incidentSlowMS := flag.Int64("incident-slow-ms", 0, "flight-recorder trigger: query wall time in milliseconds (0 disables)")
	incidentBurn := flag.Float64("incident-burn", 0, "flight-recorder trigger: SLO error-budget burn rate (0 disables; needs -slo)")
	incidentQueue := flag.Int("incident-queue", 0, "flight-recorder trigger: admission-gate queue depth (0 disables)")
	incidentMem := flag.Float64("incident-mem", 0, "flight-recorder trigger: memory-pool utilization in [0,1] (0 disables; needs -mem-limit)")
	incidentMinInterval := flag.Duration("incident-min-interval", 5*time.Minute, "minimum spacing between incident bundles (rate limit)")
	flag.Parse()

	defaultQuota, err := serve.ParseQuota(*quota)
	if err != nil {
		fmt.Fprintln(os.Stderr, "olapd:", err)
		return exitUsage
	}
	tenantQuotas, err := serve.ParseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "olapd:", err)
		return exitUsage
	}
	slos, err := serve.ParseSLOs(*sloSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "olapd:", err)
		return exitUsage
	}
	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "olapd:", err)
		return exitUsage
	}

	if *parallel == 0 {
		*parallel = *workers
	}
	opts := []gmdj.Option{
		gmdj.WithParallelism(*parallel),
		gmdj.WithPlanCache(*planCacheBytes),
		gmdj.WithResultCache(*resultCacheBytes),
	}
	if *memLimit > 0 {
		opts = append(opts, gmdj.WithMemoryLimit(*memLimit))
		if *admission > 0 {
			opts = append(opts, gmdj.WithAdmissionTimeout(*admission))
		}
	}
	if *spillDir != "auto" {
		opts = append(opts, gmdj.WithSpillDir(*spillDir))
	}
	var db *gmdj.DB
	switch *data {
	case "netflow":
		db = gmdj.OpenNetflowSample(int(50_000**scale), opts...)
	case "tpcr":
		db = gmdj.OpenTPCRSample(*scale, opts...)
	case "none":
		db = gmdj.Open(opts...)
	default:
		fmt.Fprintf(os.Stderr, "olapd: unknown dataset %q\n", *data)
		return exitUsage
	}
	// Durable storage attaches after the sample loaders so a recovered
	// table replaces a same-named sample rather than the reverse.
	if *dataDir != "" {
		rep, err := db.SetDataDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapd:", err)
			db.Close()
			return exitErr
		}
		logEvent(logger, slog.LevelInfo, "storage recovered",
			"dir", *dataDir, "generation", rep.Generation,
			"tables", len(rep.Tables), "quarantined", len(rep.Quarantined),
			"manifests_skipped", rep.SkippedManifests)
		for _, q := range rep.Quarantined {
			logEvent(logger, slog.LevelWarn, "segment quarantined",
				"table", q.Table, "file", q.File, "reason", q.Reason)
		}
	}
	db.EnableObservability(gmdj.ObsConfig{
		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
	})
	if *traceCap > 0 {
		db.EnableTracing(*traceCap)
	}

	// Continuous profiler + flight recorder. Both are optional and each
	// owns exactly one goroutine; they are closed before the leak check.
	var profiler *profile.Profiler
	var recorder *profile.Recorder
	if *profileDir != "" {
		profiler, err = profile.New(profile.Config{
			Dir:         *profileDir,
			Interval:    *profileInterval,
			CPUDuration: *profileCPU,
			Retain:      *profileRetain,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapd:", err)
			db.Close()
			return exitErr
		}
		profiler.Start()
		recorder, err = profile.NewRecorder(profile.RecorderConfig{
			Dir:         filepath.Join(*profileDir, profile.IncidentsDirName),
			MinInterval: *incidentMinInterval,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "olapd:", err)
			profiler.Close()
			db.Close()
			return exitErr
		}
	}

	srv := serve.NewServer(db, serve.Config{
		DefaultQuota:        defaultQuota,
		Tenants:             tenantQuotas,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		Admin:               *admin,
		Faults:              govern.FromEnv(),
		Logger:              logger,
		SLOs:                slos,
		Profiler:            profiler,
		Recorder:            recorder,
		IncidentSlowQuery:   time.Duration(*incidentSlowMS) * time.Millisecond,
		IncidentBurn:        *incidentBurn,
		IncidentQueueDepth:  *incidentQueue,
		IncidentMemPressure: *incidentMem,
	})
	if recorder != nil {
		recorder.Start()
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *admin {
		mux.Handle("/debug/vars", expvar.Handler())
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	// The leak baseline is taken before the serving goroutines start,
	// so a clean shutdown must return all of them.
	baseline := runtime.NumGoroutine()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logEvent(logger, slog.LevelInfo, "serving",
		"addr", *addr, "data", *data, "scale", *scale, "drain_budget", drainTimeout.String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "olapd:", err)
		db.Close()
		return exitErr
	case s := <-sig:
		logEvent(logger, slog.LevelInfo, "signal received",
			"signal", s.String(), "drain_budget", drainTimeout.String(), "in_flight", srv.InFlight())
	}
	signal.Stop(sig)

	// Drain state machine: reject new queries, wait out in-flight ones
	// within the budget, hard-cancel stragglers, then close the
	// listener and the DB.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Drain(drainCtx)
	cancel()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	shutErr := hs.Shutdown(shutCtx)
	cancel()
	if err := writeSlowLog(db, *slowlogOut); err != nil {
		fmt.Fprintln(os.Stderr, "olapd:", err)
	}
	db.Close()
	// The profiler and recorder goroutines are part of the serving
	// footprint; stop them before the leak check so only a real leak
	// fails it. The recorder itself stays usable for DumpGoroutines
	// below (that path writes synchronously, no goroutine needed).
	if recorder != nil {
		recorder.Close()
	}
	if profiler != nil {
		profiler.Close()
	}

	st := srv.Stats()
	logEvent(logger, slog.LevelInfo, "drained",
		"accepted", st.Accepted, "completed", st.Completed, "rejected", st.Rejected,
		"hard_canceled", st.HardCanceled, "faults_fired", st.FaultsFired)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "olapd:", drainErr)
		return exitErr
	}
	if shutErr != nil && !errors.Is(shutErr, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "olapd: shutdown:", shutErr)
		return exitErr
	}
	if *leakCheck {
		if n, ok := awaitGoroutineBaseline(baseline, 10*time.Second); !ok {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "olapd: goroutine leak: %d live, baseline %d\n%s\n", n, baseline, buf)
			// Keep the evidence: a labeled goroutine profile in the
			// flight-recorder directory outlives the process and carries
			// pprof labels the plain stack dump above cannot show.
			if recorder != nil {
				reason := fmt.Sprintf("leak check failed: %d live, baseline %d", n, baseline)
				if path, derr := recorder.DumpGoroutines(reason); derr != nil {
					fmt.Fprintln(os.Stderr, "olapd: goroutine dump:", derr)
				} else {
					fmt.Fprintln(os.Stderr, "olapd: goroutine dump written to", path)
				}
			}
			return exitLeak
		}
		logEvent(logger, slog.LevelInfo, "leak check passed", "goroutines", runtime.NumGoroutine())
	}
	return exitClean
}

// newLogger builds the stderr JSON logger, or nil for "off".
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "off":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error, or off)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// logEvent emits one structured line, tolerating a nil (-log-level
// off) logger.
func logEvent(l *slog.Logger, level slog.Level, msg string, args ...any) {
	if l == nil {
		return
	}
	l.Log(context.Background(), level, msg, args...)
}

// awaitGoroutineBaseline polls until the goroutine count returns to
// baseline (+2 of slack for runtime helpers) or the deadline passes.
func awaitGoroutineBaseline(baseline int, wait time.Duration) (int, bool) {
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func writeSlowLog(db *gmdj.DB, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.WriteSlowLog(f)
}
