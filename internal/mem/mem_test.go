package mem

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var p *Pool
	if p.Capacity() != 0 || p.free() != 0 || p.inUse() != 0 {
		t.Fatal("nil pool not zero")
	}
	p.SetReclaim(func(int64) int64 { return 0 })
	if got := p.Stats(); got != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", got)
	}
	res, err := p.Acquire(context.Background(), 100)
	if res != nil || err != nil {
		t.Fatalf("nil pool Acquire = %v, %v", res, err)
	}

	var r *Reservation
	if tr := r.Tracker("x"); tr != nil {
		t.Fatal("nil reservation tracker not nil")
	}
	if r.Available() <= 0 || r.Used() != 0 || r.Granted() != 0 {
		t.Fatal("nil reservation accessors wrong")
	}
	r.Release()

	var tr *Tracker
	if err := tr.Grow(1 << 40); err != nil {
		t.Fatalf("nil tracker Grow: %v", err)
	}
	tr.Shrink(5)
	if tr.Used() != 0 {
		t.Fatal("nil tracker Used != 0")
	}
	if tr.Available() <= 0 {
		t.Fatal("nil tracker Available not huge")
	}
	tr.Release()
}

func TestNewPoolDisabled(t *testing.T) {
	if NewPool(0, 0) != nil || NewPool(-5, 0) != nil {
		t.Fatal("non-positive capacity must disable the pool")
	}
}

func TestAcquireAndGrow(t *testing.T) {
	p := NewPool(1000, time.Second)
	res, err := p.Acquire(context.Background(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Granted(); got != 400 {
		t.Fatalf("granted = %d, want 400", got)
	}
	tr := res.Tracker("op")
	if err := tr.Grow(300); err != nil {
		t.Fatal(err)
	}
	// Within the grant: pool usage unchanged.
	if got := p.inUse(); got != 400 {
		t.Fatalf("pool in use = %d, want 400", got)
	}
	// Beyond the grant: reservation grows from the pool.
	if err := tr.Grow(300); err != nil {
		t.Fatal(err)
	}
	if got := p.inUse(); got != 600 {
		t.Fatalf("pool in use after growth = %d, want 600", got)
	}
	// Beyond the pool: typed exhaustion.
	if err := tr.Grow(1000); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overgrow err = %v, want ErrExhausted", err)
	}
	tr.Shrink(600)
	if got := res.Used(); got != 0 {
		t.Fatalf("used after shrink = %d, want 0", got)
	}
	res.Release()
	if got := p.inUse(); got != 0 {
		t.Fatalf("pool in use after release = %d, want 0", got)
	}
	res.Release() // idempotent
	if got := p.inUse(); got != 0 {
		t.Fatalf("double release leaked: %d", got)
	}
}

func TestAcquireClampsToCapacity(t *testing.T) {
	p := NewPool(100, time.Second)
	res, err := p.Acquire(context.Background(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if got := res.Granted(); got != 100 {
		t.Fatalf("granted = %d, want clamp to 100", got)
	}
}

func TestAdmissionQueueFIFO(t *testing.T) {
	p := NewPool(100, time.Minute)
	first, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		order int
		res   *Reservation
	}
	results := make(chan result, 2)
	var started sync.WaitGroup
	started.Add(1)
	go func() {
		started.Done()
		r, err := p.Acquire(context.Background(), 60)
		if err != nil {
			t.Error(err)
		}
		results <- result{1, r}
	}()
	started.Wait()
	waitQueued(t, p, 1)
	go func() {
		r, err := p.Acquire(context.Background(), 60)
		if err != nil {
			t.Error(err)
		}
		results <- result{2, r}
	}()
	waitQueued(t, p, 2)

	// Releasing frees 100: only the first waiter (60) fits; the second
	// must wait even though it would also fit alone — strict FIFO.
	first.Release()
	got := <-results
	if got.order != 1 {
		t.Fatalf("waiter %d admitted first, want 1", got.order)
	}
	select {
	case r := <-results:
		t.Fatalf("second waiter admitted early: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	got.res.Release()
	second := <-results
	if second.order != 2 {
		t.Fatalf("waiter %d admitted second, want 2", second.order)
	}
	second.res.Release()
}

func waitQueued(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (stats %+v)", n, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionTimeout(t *testing.T) {
	p := NewPool(100, 10*time.Millisecond)
	res, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	_, err = p.Acquire(context.Background(), 50)
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if s := p.Stats(); s.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", s.TimedOut)
	}
}

func TestAdmissionCancellation(t *testing.T) {
	p := NewPool(100, time.Minute)
	res, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx, 50)
		errc <- err
	}()
	waitQueued(t, p, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := p.Stats(); s.TimedOut != 0 {
		t.Fatalf("cancellation counted as timeout: %+v", s)
	}
}

func TestReclaimHook(t *testing.T) {
	p := NewPool(100, time.Second)
	var asked int64
	p.SetReclaim(func(n int64) int64 {
		asked = n
		// Model a cache spilling down: pretend the pool's user released
		// bytes (the real hook demotes cache entries whose reservation
		// releases them).
		p.release(n)
		return n
	})
	res, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	tr := res.Tracker("op")
	if err := tr.Grow(100); err != nil {
		t.Fatal(err)
	}
	// Pool full; growing further must invoke reclaim for the shortfall.
	if err := tr.Grow(30); err != nil {
		t.Fatalf("grow with reclaim: %v", err)
	}
	if asked != 30 {
		t.Fatalf("reclaim asked for %d, want 30", asked)
	}
	if s := p.Stats(); s.ReclaimedBytes != 30 {
		t.Fatalf("ReclaimedBytes = %d, want 30", s.ReclaimedBytes)
	}
}

func TestAvailable(t *testing.T) {
	p := NewPool(1000, time.Second)
	res, err := p.Acquire(context.Background(), 400)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if got := res.Available(); got != 1000 {
		t.Fatalf("available = %d, want 1000 (400 headroom + 600 pool)", got)
	}
	tr := res.Tracker("op")
	if err := tr.Grow(400); err != nil {
		t.Fatal(err)
	}
	if got := res.Available(); got != 600 {
		t.Fatalf("available after charge = %d, want 600", got)
	}
}

func TestConcurrentTrackers(t *testing.T) {
	p := NewPool(1<<20, time.Second)
	res, err := p.Acquire(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := res.Tracker("op")
			for j := 0; j < 100; j++ {
				if err := tr.Grow(64); err != nil {
					t.Error(err)
					return
				}
				tr.Shrink(64)
			}
			tr.Release()
		}()
	}
	wg.Wait()
	if got := res.Used(); got != 0 {
		t.Fatalf("used after concurrent churn = %d, want 0", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1024", 1024, true},
		{"8KiB", 8 << 10, true},
		{"16MiB", 16 << 20, true},
		{"2GiB", 2 << 30, true},
		{"64kb", 0, false},
		{"1.5MiB", 0, false},
		{"", 0, false},
		{"junk", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBytes(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseEnv(t *testing.T) {
	cfg, err := ParseEnv("limit=8MiB,spill=/tmp/x,admission=2s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Limit != 8<<20 || cfg.SpillDir != "/tmp/x" || cfg.Admission != 2*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := ParseEnv("limit=8MiB,bogus=1"); err == nil {
		t.Fatal("bogus key accepted")
	}
	if _, err := ParseEnv("limit=nope"); err == nil {
		t.Fatal("bad limit accepted")
	}
}

func TestCloseShedsQueuedWaiters(t *testing.T) {
	p := NewPool(100, time.Minute)
	held, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := p.Acquire(context.Background(), 100)
			errs <- err
		}()
	}
	waitQueued(t, p, n)
	p.Close()
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("queued waiter got %v, want ErrPoolClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter deadlocked across Close")
		}
	}
	// Post-close admission is the unlimited, unaccounted regime — the
	// DB stays usable after Close.
	res, err := p.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("Acquire on closed pool: %v", err)
	}
	if res != nil {
		t.Fatalf("Acquire on closed pool granted a tracked reservation")
	}
	held.Release()
	p.Close() // idempotent
}

func TestCloseConcurrentWithAcquire(t *testing.T) {
	// Close racing a stream of Acquire/Release pairs: every call must
	// resolve (grant, typed shed, or nil post-close grant) — no
	// deadlock, no panic, clean under -race.
	p := NewPool(200, 50*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := p.Acquire(context.Background(), 100)
				if err != nil {
					if !errors.Is(err, ErrPoolClosed) && !errors.Is(err, ErrAdmissionTimeout) {
						t.Errorf("Acquire: %v", err)
						return
					}
					continue
				}
				res.Release()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	p.Close()
	wg.Wait()
}
