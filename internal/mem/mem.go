// Package mem is the engine's hierarchical byte accountant — the
// substrate that turns the govern package's memory budget from a
// tripwire into a control signal. It tracks three levels:
//
//	Pool        — one per engine: total bytes the engine may hold in
//	              operator state, with queue-based admission control
//	              for new queries when the pool is contended;
//	Reservation — one per query: bytes granted to that query out of
//	              the pool, acquired at admission and released when
//	              the query finishes;
//	Tracker     — one per operator instance: bytes charged against
//	              the query's reservation, so a memory-hungry
//	              operator (the GMDJ base-state hash map, a subquery
//	              materialization) learns it is out of budget *before*
//	              allocating, and can spill instead of erroring.
//
// Every method on every type is safe on a nil receiver and degrades to
// "unlimited, unaccounted" — exactly as govern's nil Governor does —
// so ungoverned evaluation pays one nil check.
//
// When the pool cannot satisfy a grow request it first invokes an
// optional reclaim hook (the engine wires this to the result cache's
// spill-down, which pushes cold cached values to disk), then retries;
// only then does the request fail and the operator fall back to its
// own spill path.
package mem

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// ErrAdmissionTimeout reports that a query waited in the admission
// queue for the engine memory pool and was shed because its deadline
// (the admission timeout, or the query context's own deadline if
// sooner) expired before capacity freed up.
var ErrAdmissionTimeout = errors.New("admission queue timed out")

// ErrExhausted is the internal signal that a reservation (and the pool
// behind it) cannot supply the requested bytes. Operators that can
// degrade treat it as "spill now"; operators that cannot map it to
// govern.ErrMemBudget.
var ErrExhausted = errors.New("memory reservation exhausted")

// ErrPoolClosed reports that the pool was closed while the query
// waited in the admission queue: the engine is shutting down (or its
// disk state was released with DB.Close), so the wait can never be
// satisfied and the query is shed instead of deadlocking.
var ErrPoolClosed = errors.New("memory pool closed")

// DefaultAdmissionTimeout bounds how long a query waits for pool
// capacity before being shed, when the engine does not configure one.
const DefaultAdmissionTimeout = 10 * time.Second

// DefaultQueryReserve is the reservation requested per query at
// admission (clamped to the pool capacity, so a pool smaller than this
// still admits one query at a time).
const DefaultQueryReserve = 1 << 20

// Pool is an engine-wide byte budget with admission control. All
// methods are safe for concurrent use; a nil Pool is unlimited.
type Pool struct {
	mu        sync.Mutex
	capacity  int64
	used      int64
	waiters   []*waiter // FIFO admission queue
	reclaim   func(int64) int64
	admission time.Duration
	closed    bool

	admitted  int64
	queued    int64
	timeouts  int64
	reclaimed int64
}

type waiter struct {
	need    int64
	granted chan struct{}
	done    bool  // set under Pool.mu when granted or abandoned
	err     error // set under Pool.mu before close(granted) when shed by Close
}

// NewPool creates a pool of capacity bytes. admission bounds the
// admission-queue wait (<= 0 selects DefaultAdmissionTimeout).
// capacity <= 0 returns nil — an unlimited pool is no pool.
func NewPool(capacity int64, admission time.Duration) *Pool {
	if capacity <= 0 {
		return nil
	}
	if admission <= 0 {
		admission = DefaultAdmissionTimeout
	}
	return &Pool{capacity: capacity, admission: admission}
}

// SetReclaim installs the memory-pressure valve: when a grow request
// finds the pool short by n bytes, fn(n) is invoked (outside the pool
// lock) and should return how many bytes it freed — e.g. by spilling
// cold cache entries to disk. Not safe to call concurrently with
// running queries.
func (p *Pool) SetReclaim(fn func(int64) int64) {
	if p == nil {
		return
	}
	p.reclaim = fn
}

// Capacity returns the pool capacity (0 for a nil pool).
func (p *Pool) Capacity() int64 {
	if p == nil {
		return 0
	}
	return p.capacity
}

// Acquire admits one query: it reserves want bytes (clamped to the
// pool capacity) and returns the query's Reservation. When the pool is
// contended the caller queues FIFO and blocks with deadline-aware
// backoff — it wakes when capacity frees or when the earlier of the
// admission timeout and ctx's own deadline expires, in which case the
// query is shed with ErrAdmissionTimeout (or ctx.Err() when the
// context itself was canceled). A nil pool grants an unlimited (nil)
// reservation immediately.
func (p *Pool) Acquire(ctx context.Context, want int64) (*Reservation, error) {
	if p == nil {
		return nil, nil
	}
	if want <= 0 {
		want = DefaultQueryReserve
	}
	if want > p.capacity {
		want = p.capacity
	}
	p.mu.Lock()
	if p.closed {
		// Closed pool: no admission control, no accounting (the engine
		// released its disk state; see Close). Unlimited grant, as if the
		// DB had never configured a limit.
		p.mu.Unlock()
		return nil, nil
	}
	if p.used+want <= p.capacity && len(p.waiters) == 0 {
		p.used += want
		p.admitted++
		p.mu.Unlock()
		obs.MetricAdd("mem.admitted", 1)
		return &Reservation{pool: p, granted: want}, nil
	}
	w := &waiter{need: want, granted: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.queued++
	p.mu.Unlock()
	obs.MetricAdd("mem.queued", 1)

	deadline := time.NewTimer(p.admission)
	defer deadline.Stop()
	select {
	case <-w.granted:
		return p.granted(w, want)
	case <-ctx.Done():
		if p.abandon(w, false) {
			return nil, ctx.Err()
		}
		// Granted (or shed by Close) concurrently with cancellation: keep
		// the outcome uniform with the undisturbed path.
		<-w.granted
		return p.granted(w, want)
	case <-deadline.C:
		if p.abandon(w, true) {
			obs.MetricAdd("mem.admission_timeouts", 1)
			return nil, fmt.Errorf("%w after %v (pool %d/%d bytes in use)",
				ErrAdmissionTimeout, p.admission, p.inUse(), p.capacity)
		}
		<-w.granted
		return p.granted(w, want)
	}
}

// granted resolves a waiter whose channel closed: either a real FIFO
// grant or a typed shed from Close. w.err is written under Pool.mu
// before close(w.granted), so reading it after the receive is safe.
func (p *Pool) granted(w *waiter, want int64) (*Reservation, error) {
	if w.err != nil {
		return nil, w.err
	}
	obs.MetricAdd("mem.admitted", 1)
	return &Reservation{pool: p, granted: want}, nil
}

// Close sheds every queued waiter with an error wrapping ErrPoolClosed
// and marks the pool closed: subsequent Acquire calls return an
// unlimited (nil) reservation, so an engine that released its disk
// state keeps answering purely in-memory queries without admission
// control. In-flight reservations release normally. Idempotent and
// safe to call concurrently with Acquire — closing while waiters are
// queued wakes all of them promptly instead of deadlocking.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ws := p.waiters
	p.waiters = nil
	for _, w := range ws {
		w.done = true
		w.err = fmt.Errorf("%w: query shed from admission queue", ErrPoolClosed)
	}
	p.mu.Unlock()
	for _, w := range ws {
		close(w.granted)
	}
	if n := len(ws); n > 0 {
		obs.MetricAdd("mem.closed_sheds", int64(n))
	}
}

// abandon removes w from the queue; it reports false when w was
// already granted (the grant then must be consumed by the caller).
func (p *Pool) abandon(w *waiter, timedOut bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.done {
		return false
	}
	w.done = true
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	if timedOut {
		p.timeouts++
	}
	return true
}

// tryGrow attempts to take n more bytes, invoking the reclaim hook
// once when short. It never blocks.
func (p *Pool) tryGrow(n int64) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	if p.used+n <= p.capacity {
		p.used += n
		p.mu.Unlock()
		return true
	}
	short := p.used + n - p.capacity
	fn := p.reclaim
	p.mu.Unlock()
	if fn == nil {
		return false
	}
	freed := fn(short)
	if freed <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reclaimed += freed
	obs.MetricAdd("mem.reclaimed_bytes", freed)
	if p.used+n <= p.capacity {
		p.used += n
		return true
	}
	return false
}

// release returns n bytes to the pool and grants queued waiters FIFO.
func (p *Pool) release(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.used -= n
	if p.used < 0 {
		p.used = 0
	}
	// Grant waiters strictly in arrival order; stop at the first that
	// does not fit so admission stays fair under contention.
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		if p.used+w.need > p.capacity {
			break
		}
		p.used += w.need
		w.done = true
		p.waiters = p.waiters[1:]
		close(w.granted)
	}
	p.mu.Unlock()
}

// free returns the currently unreserved bytes.
func (p *Pool) free() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.used
}

func (p *Pool) inUse() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// PoolStats is a point-in-time snapshot of the pool.
type PoolStats struct {
	// Capacity and InUse describe the byte budget.
	Capacity int64 `json:"capacity"`
	InUse    int64 `json:"in_use"`
	// Queued is the current admission-queue length; Admitted, TimedOut
	// count queries over the pool's lifetime.
	Queued   int   `json:"queued"`
	Admitted int64 `json:"admitted"`
	TimedOut int64 `json:"timed_out"`
	// ReclaimedBytes counts bytes freed by the reclaim hook (cache
	// spill-down) under pressure.
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
}

// Utilization is the pool's in-use fraction in [0, 1] (0 for an
// unbounded or absent pool) — the flight recorder's memory-pressure
// trigger compares it against a threshold.
func (s PoolStats) Utilization() float64 {
	if s.Capacity <= 0 {
		return 0
	}
	u := float64(s.InUse) / float64(s.Capacity)
	if u > 1 {
		u = 1
	}
	return u
}

// Stats snapshots the pool (zero value for a nil pool).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Capacity:       p.capacity,
		InUse:          p.used,
		Queued:         len(p.waiters),
		Admitted:       p.admitted,
		TimedOut:       p.timeouts,
		ReclaimedBytes: p.reclaimed,
	}
}

// Reservation is one query's slice of the pool. Trackers charge
// against it; when it is exhausted it grows from the pool
// (non-blocking — a running query never re-queues for admission). A
// nil Reservation is unlimited.
type Reservation struct {
	pool *Pool

	mu      sync.Mutex
	granted int64 // bytes held from the pool
	used    int64 // bytes charged by trackers
}

// Tracker returns a per-operator tracker charging this reservation.
// Safe on a nil reservation (returns a nil, unlimited tracker).
func (r *Reservation) Tracker(name string) *Tracker {
	if r == nil {
		return nil
	}
	return &Tracker{res: r, name: name}
}

// grow charges n bytes, growing the grant from the pool when needed.
func (r *Reservation) grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	if r.used+n <= r.granted {
		r.used += n
		r.mu.Unlock()
		return nil
	}
	need := r.used + n - r.granted
	r.mu.Unlock()
	if !r.pool.tryGrow(need) {
		return fmt.Errorf("%w: need %d more bytes (reservation %d used of %d granted, pool %d/%d)",
			ErrExhausted, need, r.Used(), r.Granted(), r.pool.inUse(), r.pool.Capacity())
	}
	r.mu.Lock()
	r.granted += need
	r.used += n
	r.mu.Unlock()
	return nil
}

// shrink returns n charged bytes. Surplus grant above the original
// admission grant is returned to the pool eagerly so contended
// neighbors can use it.
func (r *Reservation) shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.used -= n
	if r.used < 0 {
		r.used = 0
	}
	r.mu.Unlock()
}

// Available estimates how many more bytes a grow could obtain right
// now: reservation headroom plus the pool's free capacity. Operators
// use it to size spill partitions. Unlimited (nil) reservations report
// a conservatively huge value.
func (r *Reservation) Available() int64 {
	if r == nil {
		return 1 << 60
	}
	r.mu.Lock()
	head := r.granted - r.used
	r.mu.Unlock()
	return head + r.pool.free()
}

// Used returns the bytes currently charged by trackers.
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Granted returns the bytes currently held from the pool.
func (r *Reservation) Granted() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.granted
}

// Release returns the whole grant to the pool. The query is over;
// outstanding tracker charges are forgotten with it. Idempotent.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.mu.Lock()
	g := r.granted
	r.granted, r.used = 0, 0
	r.mu.Unlock()
	r.pool.release(g)
}

// Tracker charges one operator's state bytes against a query
// reservation. Not safe for concurrent use by multiple goroutines
// (operators grow on the query goroutine); a nil Tracker is unlimited.
type Tracker struct {
	res  *Reservation
	name string
	used int64
}

// Grow charges n more bytes; ErrExhausted means the reservation and
// pool cannot supply them and the operator should spill (or abort with
// govern.ErrMemBudget if it cannot).
func (t *Tracker) Grow(n int64) error {
	if t == nil || n <= 0 {
		return nil
	}
	if err := t.res.grow(n); err != nil {
		return err
	}
	t.used += n
	return nil
}

// Shrink returns n bytes (clamped to the tracker's own charge).
func (t *Tracker) Shrink(n int64) {
	if t == nil || n <= 0 {
		return
	}
	if n > t.used {
		n = t.used
	}
	t.used -= n
	t.res.shrink(n)
}

// Used returns the tracker's outstanding charge.
func (t *Tracker) Used() int64 {
	if t == nil {
		return 0
	}
	return t.used
}

// Available estimates how much more this tracker could grow by.
func (t *Tracker) Available() int64 {
	if t == nil {
		return 1 << 60
	}
	return t.res.Available()
}

// Release returns everything the tracker still holds (operator done).
func (t *Tracker) Release() {
	if t == nil {
		return
	}
	t.res.shrink(t.used)
	t.used = 0
}

// EnvMem is the environment variable read by FromEnv: a comma-
// separated spec configuring a constrained-memory engine for a whole
// test run, e.g.
//
//	GMDJ_MEM="limit=8MiB,spill=/tmp/scratch,admission=2s"
//
// Fields: limit (pool capacity; required for the spec to take effect),
// spill (scratch root; empty keeps the default), admission (queue
// timeout). Sizes accept KiB/MiB/GiB suffixes or raw bytes.
const EnvMem = "GMDJ_MEM"

// EnvConfig is the parsed GMDJ_MEM spec.
type EnvConfig struct {
	Limit     int64
	SpillDir  string
	Admission time.Duration
}

// FromEnv parses GMDJ_MEM; ok is false when unset or malformed
// (malformed specs are reported on stderr and ignored, mirroring
// govern.FromEnv).
func FromEnv() (EnvConfig, bool) {
	spec := strings.TrimSpace(os.Getenv(EnvMem))
	if spec == "" {
		return EnvConfig{}, false
	}
	cfg, err := ParseEnv(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mem: ignoring %s: %v\n", EnvMem, err)
		return EnvConfig{}, false
	}
	return cfg, true
}

// ParseEnv parses a GMDJ_MEM spec (see EnvMem).
func ParseEnv(spec string) (EnvConfig, error) {
	var cfg EnvConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("mem: spec %q is not key=value", part)
		}
		switch k {
		case "limit":
			n, err := ParseBytes(v)
			if err != nil {
				return cfg, fmt.Errorf("mem: limit: %w", err)
			}
			cfg.Limit = n
		case "spill":
			cfg.SpillDir = v
		case "admission":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("mem: admission: %w", err)
			}
			cfg.Admission = d
		default:
			return cfg, fmt.Errorf("mem: unknown key %q", k)
		}
	}
	if cfg.Limit <= 0 {
		return cfg, fmt.Errorf("mem: spec needs limit=<bytes>")
	}
	return cfg, nil
}

// ParseBytes parses "4096", "64KiB", "8MiB", "1GiB".
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

// PerWorkerBytes is the pipeline scratch footprint budgeted per morsel
// worker when clamping parallelism against an engine memory limit:
// each worker holds a couple of fixed-capacity batches (row-reference
// and columnar vectors), a concatenated scratch tuple, and per-morsel
// output buffers in flight. An estimate — what an admission-style
// clamp needs — not an allocation count. Kept well above the measured
// steady-state footprint (a few tens of KiB) so the clamp errs toward
// serial under tight limits, and well below typical pool sizes so
// moderate limits still parallelize alongside spilling state.
const PerWorkerBytes = 256 << 10

// ClampParallelism bounds a requested morsel-parallel degree by the
// engine memory limit: with a pool of `limit` bytes shared by every
// concurrent query, more than limit/PerWorkerBytes workers could not
// all hold their pipeline scratch resident at once. No limit (<= 0)
// or a serial request passes through unchanged; the result is always
// at least 1.
func ClampParallelism(limit int64, n int) int {
	if limit <= 0 || n <= 1 {
		return n
	}
	max := int(limit / PerWorkerBytes)
	if max < 1 {
		max = 1
	}
	if n > max {
		return max
	}
	return n
}
