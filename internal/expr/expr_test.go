package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func schemaFA() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Qualifier: "F", Name: "A", Type: value.KindInt},
		relation.Column{Qualifier: "F", Name: "B", Type: value.KindString},
		relation.Column{Qualifier: "G", Name: "A", Type: value.KindInt},
	)
}

func mustBind(t *testing.T, e Expr, s *relation.Schema) Expr {
	t.Helper()
	b, err := e.Bind(s)
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return b
}

func mustEval(t *testing.T, e Expr, row relation.Tuple) value.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColBindEval(t *testing.T) {
	s := schemaFA()
	row := relation.Tuple{value.Int(7), value.Str("x"), value.Int(9)}
	b := mustBind(t, C("F.A"), s)
	if got := mustEval(t, b, row); got.AsInt() != 7 {
		t.Errorf("F.A = %v", got)
	}
	b = mustBind(t, C("G.A"), s)
	if got := mustEval(t, b, row); got.AsInt() != 9 {
		t.Errorf("G.A = %v", got)
	}
	b = mustBind(t, C("B"), s)
	if got := mustEval(t, b, row); got.AsString() != "x" {
		t.Errorf("B = %v", got)
	}
}

func TestColUnboundErrors(t *testing.T) {
	if _, err := C("F.A").Eval(relation.Tuple{value.Int(1)}); err == nil {
		t.Error("Eval on unbound Col should error")
	}
	if _, err := C("A").Bind(schemaFA()); err == nil {
		t.Error("bare A is ambiguous, Bind should fail")
	}
	if _, err := C("Z.Q").Bind(schemaFA()); err == nil {
		t.Error("unknown column should fail to bind")
	}
}

func TestColOutOfRangeRow(t *testing.T) {
	b := mustBind(t, C("G.A"), schemaFA())
	if _, err := b.Eval(relation.Tuple{value.Int(1)}); err == nil {
		t.Error("short row should error, not panic")
	}
}

func TestLiterals(t *testing.T) {
	row := relation.Tuple{}
	if mustEval(t, IntLit(3), row).AsInt() != 3 {
		t.Error("IntLit")
	}
	if mustEval(t, FloatLit(1.5), row).AsFloat() != 1.5 {
		t.Error("FloatLit")
	}
	if mustEval(t, StrLit("q"), row).AsString() != "q" {
		t.Error("StrLit")
	}
	if !mustEval(t, BoolLit(true), row).AsBool() {
		t.Error("BoolLit")
	}
	if !mustEval(t, NullLit(), row).IsNull() {
		t.Error("NullLit")
	}
	if StrLit("q").String() != "'q'" {
		t.Errorf("StrLit.String() = %q", StrLit("q").String())
	}
}

func TestArithEval(t *testing.T) {
	s := schemaFA()
	row := relation.Tuple{value.Int(6), value.Str("x"), value.Int(4)}
	e := mustBind(t, NewArith(OpAdd, C("F.A"), C("G.A")), s)
	if mustEval(t, e, row).AsInt() != 10 {
		t.Error("add")
	}
	e = mustBind(t, NewArith(OpDiv, C("F.A"), C("G.A")), s)
	if mustEval(t, e, row).AsFloat() != 1.5 {
		t.Error("div")
	}
	e = mustBind(t, NewArith(OpMul, C("F.A"), NullLit()), s)
	if !mustEval(t, e, row).IsNull() {
		t.Error("null propagation through arith")
	}
}

func TestCmpThreeValued(t *testing.T) {
	s := schemaFA()
	rowNull := relation.Tuple{value.Null, value.Str("x"), value.Int(4)}
	e := mustBind(t, NewCmp(value.GT, C("F.A"), IntLit(0)), s)
	if !mustEval(t, e, rowNull).IsNull() {
		t.Error("NULL > 0 must be Unknown (NULL)")
	}
	tr, err := EvalTri(e, rowNull)
	if err != nil || tr != value.Unknown {
		t.Errorf("EvalTri = %v, %v", tr, err)
	}
	row := relation.Tuple{value.Int(5), value.Str("x"), value.Int(4)}
	if !mustEval(t, e, row).AsBool() {
		t.Error("5 > 0")
	}
}

func TestEvalTriRejectsNonBoolean(t *testing.T) {
	if _, err := EvalTri(IntLit(3), relation.Tuple{}); err == nil {
		t.Error("EvalTri on INT should error")
	}
}

func TestAndOrShortCircuitAndKleene(t *testing.T) {
	s := schemaFA()
	rowNull := relation.Tuple{value.Null, value.Str("x"), value.Int(4)}
	unknown := NewCmp(value.EQ, C("F.A"), IntLit(1))
	// false AND unknown = false (short-circuit means the unknown term
	// must not force Unknown).
	e := mustBind(t, NewAnd(BoolLit(false), unknown), s)
	if v := mustEval(t, e, rowNull); v.IsNull() || v.AsBool() {
		t.Errorf("false AND unknown = %v, want false", v)
	}
	// true AND unknown = unknown.
	e = mustBind(t, NewAnd(BoolLit(true), unknown), s)
	if !mustEval(t, e, rowNull).IsNull() {
		t.Error("true AND unknown should be unknown")
	}
	// true OR unknown = true.
	e = mustBind(t, NewOr(BoolLit(true), unknown), s)
	if v := mustEval(t, e, rowNull); v.IsNull() || !v.AsBool() {
		t.Errorf("true OR unknown = %v, want true", v)
	}
	// false OR unknown = unknown.
	e = mustBind(t, NewOr(BoolLit(false), unknown), s)
	if !mustEval(t, e, rowNull).IsNull() {
		t.Error("false OR unknown should be unknown")
	}
}

func TestNewAndOrSingleTermTransparent(t *testing.T) {
	inner := BoolLit(true)
	if NewAnd(inner) != Expr(inner) {
		t.Error("NewAnd with one term should return it")
	}
	if NewOr(inner) != Expr(inner) {
		t.Error("NewOr with one term should return it")
	}
}

func TestNotAndIsNull(t *testing.T) {
	s := schemaFA()
	rowNull := relation.Tuple{value.Null, value.Str("x"), value.Int(4)}
	e := mustBind(t, NewNot(NewCmp(value.EQ, C("F.A"), IntLit(1))), s)
	if !mustEval(t, e, rowNull).IsNull() {
		t.Error("NOT unknown = unknown")
	}
	e = mustBind(t, NewIsNull(C("F.A"), false), s)
	if !mustEval(t, e, rowNull).AsBool() {
		t.Error("NULL IS NULL = true")
	}
	e = mustBind(t, NewIsNull(C("F.A"), true), s)
	if mustEval(t, e, rowNull).AsBool() {
		t.Error("NULL IS NOT NULL = false")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewAnd(
		NewCmp(value.GE, C("F.A"), IntLit(1)),
		NewOr(NewCmp(value.EQ, C("F.B"), StrLit("x")), NewNot(BoolLit(false))),
	)
	s := e.String()
	for _, want := range []string{"F.A >= 1", "F.B = 'x'", "NOT", "AND", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestConjuncts(t *testing.T) {
	a := NewCmp(value.EQ, C("F.A"), IntLit(1))
	b := NewCmp(value.EQ, C("F.B"), StrLit("x"))
	c := NewCmp(value.GT, C("G.A"), IntLit(0))
	e := NewAnd(a, NewAnd(b, c))
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("Conjuncts len = %d, want 3", len(cj))
	}
	// Non-AND is a single conjunct.
	if len(Conjuncts(c)) != 1 {
		t.Error("single conjunct")
	}
	// Conj round-trips.
	if got := Conj(cj); len(Conjuncts(got)) != 3 {
		t.Error("Conj lost terms")
	}
	if Conj(nil).String() != "true" {
		t.Errorf("Conj(nil) = %s", Conj(nil))
	}
}

func TestColsAndQualifiers(t *testing.T) {
	e := NewAnd(
		NewCmp(value.EQ, C("F.A"), C("G.A")),
		NewCmp(value.GT, NewArith(OpAdd, C("F.A"), IntLit(1)), IntLit(0)),
	)
	cols := Cols(e)
	if len(cols) != 3 {
		t.Fatalf("Cols len = %d", len(cols))
	}
	q := Qualifiers(e)
	if !q["F"] || !q["G"] || len(q) != 2 {
		t.Errorf("Qualifiers = %v", q)
	}
	if !RefersOnly(e, map[string]bool{"F": true, "G": true}) {
		t.Error("RefersOnly false negative")
	}
	if RefersOnly(e, map[string]bool{"F": true}) {
		t.Error("RefersOnly false positive")
	}
}

func TestSplitBindings(t *testing.T) {
	b := map[string]bool{"B": true}
	r := map[string]bool{"R": true}
	theta := NewAnd(
		NewCmp(value.EQ, C("B.x"), C("R.y")),    // binding
		NewCmp(value.EQ, C("R.z"), C("B.w")),    // binding (flipped)
		NewCmp(value.NE, C("B.x"), C("R.q")),    // residual: not EQ
		NewCmp(value.EQ, C("R.p"), StrLit("v")), // residual: literal side
		NewCmp(value.EQ, C("R.a"), C("R.b")),    // residual: same side
	)
	bindings, residual := SplitBindings(theta, b, r)
	if len(bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(bindings))
	}
	if bindings[0].Left.String() != "B.x" || bindings[0].Right.String() != "R.y" {
		t.Errorf("binding 0 = %s=%s", bindings[0].Left, bindings[0].Right)
	}
	if bindings[1].Left.String() != "B.w" || bindings[1].Right.String() != "R.z" {
		t.Errorf("binding 1 = %s=%s (flip not applied)", bindings[1].Left, bindings[1].Right)
	}
	if len(residual) != 3 {
		t.Errorf("residual = %d, want 3", len(residual))
	}
}

func TestRenameQualifier(t *testing.T) {
	e := NewAnd(
		NewCmp(value.EQ, C("F.A"), C("G.A")),
		NewCmp(value.GT, C("F.A"), IntLit(0)),
	)
	r := RenameQualifier(e, "F", "H")
	q := Qualifiers(r)
	if q["F"] || !q["H"] || !q["G"] {
		t.Errorf("Qualifiers after rename = %v", q)
	}
	// Original untouched.
	if !Qualifiers(e)["F"] {
		t.Error("RenameQualifier mutated original")
	}
}

func TestCloneDropsBinding(t *testing.T) {
	s := schemaFA()
	e := mustBind(t, NewCmp(value.EQ, C("F.A"), IntLit(1)), s)
	cl := Clone(e)
	cmp := cl.(*Cmp)
	if cmp.L.(*Col).Index() != -1 {
		t.Error("Clone should drop bound index")
	}
	// Clone is deep: rebinding the clone does not affect the original.
	if _, err := cl.Bind(s); err != nil {
		t.Errorf("rebinding clone: %v", err)
	}
}

// Property: And/Or over randomly-built boolean rows agree with a naive
// fold of the Kleene tables.
func TestAndOrProperty(t *testing.T) {
	toTri := func(x uint8) value.Tri { return value.Tri(x % 3) }
	lit := func(tr value.Tri) Expr {
		switch tr {
		case value.True:
			return BoolLit(true)
		case value.False:
			return BoolLit(false)
		default:
			return NullLit()
		}
	}
	f := func(xs []uint8) bool {
		if len(xs) == 0 {
			return true
		}
		terms := make([]Expr, len(xs))
		accAnd, accOr := value.True, value.False
		for i, x := range xs {
			tr := toTri(x)
			terms[i] = lit(tr)
			accAnd = accAnd.And(tr)
			accOr = accOr.Or(tr)
		}
		gotAnd, err1 := EvalTri(NewAnd(terms...), relation.Tuple{})
		gotOr, err2 := EvalTri(NewOr(terms...), relation.Tuple{})
		return err1 == nil && err2 == nil && gotAnd == accAnd && gotOr == accOr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkPruning(t *testing.T) {
	e := NewAnd(
		NewCmp(value.EQ, C("F.A"), IntLit(1)),
		NewCmp(value.EQ, C("F.B"), IntLit(2)),
	)
	var visited int
	Walk(e, func(x Expr) bool {
		visited++
		_, isCmp := x.(*Cmp)
		return !isCmp // do not descend into comparisons
	})
	// AND node + 2 Cmp nodes, no literals or columns.
	if visited != 3 {
		t.Errorf("visited = %d, want 3", visited)
	}
}
