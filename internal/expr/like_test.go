package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"HTTP", "H%", true},
		{"HTTP", "%P", true},
		{"HTTP", "%TT%", true},
		{"HTTP", "_TT_", true},
		{"HTTP", "H_T", false},
		{"HTTP", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"abc", "a_c", true},
		{"abc", "a__c", false},
		{"aXbXc", "a%c", true},
		{"mississippi", "m%iss%pi", true},
		{"mississippi", "m%iss%x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestLikeEvalSemantics(t *testing.T) {
	s := relation.NewSchema(relation.Column{Qualifier: "T", Name: "s", Type: value.KindString})
	like, err := NewLike(C("T.s"), "a%", false).Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := like.Eval(relation.Tuple{value.Str("abc")})
	if err != nil || !v.AsBool() {
		t.Errorf("abc LIKE a%% = %v, %v", v, err)
	}
	v, err = like.Eval(relation.Tuple{value.Null})
	if err != nil || !v.IsNull() {
		t.Errorf("NULL LIKE = %v, want NULL", v)
	}
	if _, err := like.Eval(relation.Tuple{value.Int(3)}); err == nil {
		t.Error("LIKE over INT should error")
	}
	neg, _ := NewLike(C("T.s"), "a%", true).Bind(s)
	v, _ = neg.Eval(relation.Tuple{value.Str("abc")})
	if v.AsBool() {
		t.Error("NOT LIKE should negate")
	}
}

func TestLikeString(t *testing.T) {
	if NewLike(C("s"), "a%", false).String() != "s LIKE 'a%'" {
		t.Error("String wrong")
	}
	if !strings.Contains(NewLike(C("s"), "a%", true).String(), "NOT LIKE") {
		t.Error("negated String wrong")
	}
}

// Property: % alone matches everything; exact patterns (no wildcards)
// match only equal strings.
func TestLikeProperties(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, "%") && likeMatch(s, s) &&
			(s == "" || likeMatch(s, "%"+s)) && (s == "" || likeMatch(s, s+"%"))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeCloneAndWalk(t *testing.T) {
	e := NewLike(C("T.s"), "x%", false)
	cl := Clone(e)
	if cl.String() != e.String() {
		t.Error("Clone changed LIKE")
	}
	if len(Cols(e)) != 1 {
		t.Error("Cols should find the operand column")
	}
}
