package expr

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Like is the SQL LIKE predicate with % (any run) and _ (any single
// character) wildcards. A NULL operand yields Unknown; a non-string
// non-NULL operand is an evaluation error.
type Like struct {
	E       Expr
	Pattern string
	Negated bool
}

// NewLike builds E [NOT] LIKE pattern.
func NewLike(e Expr, pattern string, negated bool) *Like {
	return &Like{E: e, Pattern: pattern, Negated: negated}
}

// Bind binds the operand.
func (l *Like) Bind(s *relation.Schema) (Expr, error) {
	b, err := l.E.Bind(s)
	if err != nil {
		return nil, err
	}
	return &Like{E: b, Pattern: l.Pattern, Negated: l.Negated}, nil
}

// Eval matches the pattern under 3VL.
func (l *Like) Eval(row relation.Tuple) (value.Value, error) {
	v, err := l.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	if v.Kind() != value.KindString {
		return value.Null, fmt.Errorf("expr: LIKE over %s", v.Kind())
	}
	m := likeMatch(v.AsString(), l.Pattern)
	return value.Bool(m != l.Negated), nil
}

// Children returns the operand.
func (l *Like) Children() []Expr { return []Expr{l.E} }

func (l *Like) String() string {
	if l.Negated {
		return fmt.Sprintf("%s NOT LIKE '%s'", l.E, l.Pattern)
	}
	return fmt.Sprintf("%s LIKE '%s'", l.E, l.Pattern)
}

// likeMatch implements %-and-_ glob matching iteratively (the classic
// two-pointer algorithm, linear in practice, no backtracking blow-up).
func likeMatch(s, pat string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
