// Package expr implements scalar and boolean expression trees over
// tuples: column references, literals, arithmetic, comparisons, and
// Kleene boolean connectives. Expressions are built unbound (columns
// addressed by name), then Bind resolves references against a schema,
// producing an immutable tree that evaluates positionally.
//
// Predicates evaluate under SQL three-valued logic: a boolean-valued
// expression yields value.Bool(...) or value.Null (= Unknown). EvalTri
// converts that to value.Tri for WHERE-clause truncation.
package expr

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Expr is a node of an expression tree. Bind returns a copy of the
// tree with all column references resolved against the schema; only
// bound trees may be evaluated.
type Expr interface {
	fmt.Stringer
	// Bind resolves column references against s and returns the bound
	// tree. The receiver is not modified.
	Bind(s *relation.Schema) (Expr, error)
	// Eval evaluates the (bound) expression over row. Calling Eval on
	// an unbound column reference returns an error.
	Eval(row relation.Tuple) (value.Value, error)
	// Children returns the direct sub-expressions (nil for leaves).
	Children() []Expr
}

// EvalTri evaluates a predicate expression and converts the result to
// three-valued logic: NULL ⇒ Unknown, BOOL ⇒ its truth value. A
// non-boolean non-NULL result is an error (the planner guarantees
// predicates are boolean-typed, so this indicates a bug upstream).
func EvalTri(e Expr, row relation.Tuple) (value.Tri, error) {
	v, err := e.Eval(row)
	if err != nil {
		return value.Unknown, err
	}
	switch v.Kind() {
	case value.KindNull:
		return value.Unknown, nil
	case value.KindBool:
		return value.TriOf(v.AsBool()), nil
	default:
		return value.Unknown, fmt.Errorf("expr: predicate %s evaluated to non-boolean %s", e, v.Kind())
	}
}

// Col references a column by qualifier and name. Its zero index value
// (-1 after construction) marks it unbound.
type Col struct {
	Qualifier string
	Name      string
	idx       int
}

// NewCol builds an unbound column reference. qualifier may be empty.
func NewCol(qualifier, name string) *Col {
	return &Col{Qualifier: qualifier, Name: name, idx: -1}
}

// C is shorthand for NewCol, accepting "Q.Name" or "Name".
func C(ref string) *Col {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return NewCol(ref[:i], ref[i+1:])
	}
	return NewCol("", ref)
}

// Bind resolves the reference.
func (c *Col) Bind(s *relation.Schema) (Expr, error) {
	i, err := s.Find(c.Qualifier, c.Name)
	if err != nil {
		return nil, err
	}
	return &Col{Qualifier: c.Qualifier, Name: c.Name, idx: i}, nil
}

// Index returns the bound position, or -1 if unbound.
func (c *Col) Index() int { return c.idx }

// Eval returns the referenced cell.
func (c *Col) Eval(row relation.Tuple) (value.Value, error) {
	if c.idx < 0 {
		return value.Null, fmt.Errorf("expr: unbound column %s", c)
	}
	if c.idx >= len(row) {
		return value.Null, fmt.Errorf("expr: column %s index %d out of range for row width %d", c, c.idx, len(row))
	}
	return row[c.idx], nil
}

// Children returns nil.
func (c *Col) Children() []Expr { return nil }

func (c *Col) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Lit is a literal constant.
type Lit struct {
	V value.Value
}

// IntLit, FloatLit, StrLit and NullLit build literal nodes.
func IntLit(i int64) *Lit     { return &Lit{V: value.Int(i)} }
func FloatLit(f float64) *Lit { return &Lit{V: value.Float(f)} }
func StrLit(s string) *Lit    { return &Lit{V: value.Str(s)} }
func BoolLit(b bool) *Lit     { return &Lit{V: value.Bool(b)} }
func NullLit() *Lit           { return &Lit{V: value.Null} }

// Bind returns the literal unchanged.
func (l *Lit) Bind(*relation.Schema) (Expr, error) { return l, nil }

// Eval returns the constant.
func (l *Lit) Eval(relation.Tuple) (value.Value, error) { return l.V, nil }

// Children returns nil.
func (l *Lit) Children() []Expr { return nil }

func (l *Lit) String() string {
	if l.V.Kind() == value.KindString {
		return "'" + l.V.AsString() + "'"
	}
	return l.V.String()
}

// ArithOp enumerates arithmetic operators.
type ArithOp byte

// Arithmetic operators.
const (
	OpAdd ArithOp = '+'
	OpSub ArithOp = '-'
	OpMul ArithOp = '*'
	OpDiv ArithOp = '/'
)

// Arith is a binary arithmetic node with SQL NULL propagation.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Bind binds both operands.
func (a *Arith) Bind(s *relation.Schema) (Expr, error) {
	l, err := a.L.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Bind(s)
	if err != nil {
		return nil, err
	}
	return &Arith{Op: a.Op, L: l, R: r}, nil
}

// Eval applies the operator.
func (a *Arith) Eval(row relation.Tuple) (value.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return value.Null, err
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return value.Null, err
	}
	switch a.Op {
	case OpAdd:
		return value.Add(l, r)
	case OpSub:
		return value.Sub(l, r)
	case OpMul:
		return value.Mul(l, r)
	case OpDiv:
		return value.Div(l, r)
	default:
		return value.Null, fmt.Errorf("expr: unknown arithmetic op %q", a.Op)
	}
}

// Children returns the operands.
func (a *Arith) Children() []Expr { return []Expr{a.L, a.R} }

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R)
}

// Cmp is a comparison predicate l φ r evaluating under 3VL.
type Cmp struct {
	Op   value.CmpOp
	L, R Expr
}

// NewCmp builds a comparison node.
func NewCmp(op value.CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eq is shorthand for an equality comparison.
func Eq(l, r Expr) *Cmp { return NewCmp(value.EQ, l, r) }

// Bind binds both operands.
func (c *Cmp) Bind(s *relation.Schema) (Expr, error) {
	l, err := c.L.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Bind(s)
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: c.Op, L: l, R: r}, nil
}

// Eval yields Bool or Null (Unknown).
func (c *Cmp) Eval(row relation.Tuple) (value.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return value.Null, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return value.Null, err
	}
	switch c.Op.Apply(l, r) {
	case value.True:
		return value.Bool(true), nil
	case value.False:
		return value.Bool(false), nil
	default:
		return value.Null, nil
	}
}

// Children returns the operands.
func (c *Cmp) Children() []Expr { return []Expr{c.L, c.R} }

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is Kleene conjunction over a list of operands (n-ary to keep
// rewriter output flat and readable).
type And struct {
	Terms []Expr
}

// NewAnd builds a conjunction; with one term it is transparent.
func NewAnd(terms ...Expr) Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	return &And{Terms: terms}
}

// Bind binds all terms.
func (a *And) Bind(s *relation.Schema) (Expr, error) {
	out := make([]Expr, len(a.Terms))
	for i, t := range a.Terms {
		b, err := t.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return &And{Terms: out}, nil
}

// Eval folds Kleene AND with short-circuit on False.
func (a *And) Eval(row relation.Tuple) (value.Value, error) {
	acc := value.True
	for _, t := range a.Terms {
		tr, err := EvalTri(t, row)
		if err != nil {
			return value.Null, err
		}
		acc = acc.And(tr)
		if acc == value.False {
			return value.Bool(false), nil
		}
	}
	return triValue(acc), nil
}

// Children returns the terms.
func (a *And) Children() []Expr { return a.Terms }

func (a *And) String() string { return joinTerms(a.Terms, " AND ") }

// Or is Kleene disjunction over a list of operands.
type Or struct {
	Terms []Expr
}

// NewOr builds a disjunction; with one term it is transparent.
func NewOr(terms ...Expr) Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	return &Or{Terms: terms}
}

// Bind binds all terms.
func (o *Or) Bind(s *relation.Schema) (Expr, error) {
	out := make([]Expr, len(o.Terms))
	for i, t := range o.Terms {
		b, err := t.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return &Or{Terms: out}, nil
}

// Eval folds Kleene OR with short-circuit on True.
func (o *Or) Eval(row relation.Tuple) (value.Value, error) {
	acc := value.False
	for _, t := range o.Terms {
		tr, err := EvalTri(t, row)
		if err != nil {
			return value.Null, err
		}
		acc = acc.Or(tr)
		if acc == value.True {
			return value.Bool(true), nil
		}
	}
	return triValue(acc), nil
}

// Children returns the terms.
func (o *Or) Children() []Expr { return o.Terms }

func (o *Or) String() string { return joinTerms(o.Terms, " OR ") }

// Not is Kleene negation.
type Not struct {
	E Expr
}

// NewNot builds a negation node.
func NewNot(e Expr) *Not { return &Not{E: e} }

// Bind binds the operand.
func (n *Not) Bind(s *relation.Schema) (Expr, error) {
	b, err := n.E.Bind(s)
	if err != nil {
		return nil, err
	}
	return &Not{E: b}, nil
}

// Eval negates under 3VL.
func (n *Not) Eval(row relation.Tuple) (value.Value, error) {
	tr, err := EvalTri(n.E, row)
	if err != nil {
		return value.Null, err
	}
	return triValue(tr.Not()), nil
}

// Children returns the operand.
func (n *Not) Children() []Expr { return []Expr{n.E} }

func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// IsNull tests E IS [NOT] NULL; unlike comparisons it always yields a
// definite boolean.
type IsNull struct {
	E       Expr
	Negated bool
}

// NewIsNull builds an IS NULL (negated=false) or IS NOT NULL test.
func NewIsNull(e Expr, negated bool) *IsNull { return &IsNull{E: e, Negated: negated} }

// Bind binds the operand.
func (n *IsNull) Bind(s *relation.Schema) (Expr, error) {
	b, err := n.E.Bind(s)
	if err != nil {
		return nil, err
	}
	return &IsNull{E: b, Negated: n.Negated}, nil
}

// Eval returns a definite boolean.
func (n *IsNull) Eval(row relation.Tuple) (value.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	return value.Bool(v.IsNull() != n.Negated), nil
}

// Children returns the operand.
func (n *IsNull) Children() []Expr { return []Expr{n.E} }

func (n *IsNull) String() string {
	if n.Negated {
		return fmt.Sprintf("%s IS NOT NULL", n.E)
	}
	return fmt.Sprintf("%s IS NULL", n.E)
}

func triValue(t value.Tri) value.Value {
	switch t {
	case value.True:
		return value.Bool(true)
	case value.False:
		return value.Bool(false)
	default:
		return value.Null
	}
}

func joinTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// TrueExpr returns a predicate that is always true (the GMDJ's default
// θ when a condition list entry is unconstrained).
func TrueExpr() Expr { return BoolLit(true) }
