package expr

import (
	"github.com/olaplab/gmdj/internal/value"
)

// Conjuncts flattens nested conjunctions into a list of terms. A
// non-AND expression is its own single conjunct. The rewriter and the
// GMDJ's binding extractor both work conjunct-by-conjunct.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, t := range a.Terms {
			out = append(out, Conjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

// Conj rebuilds a conjunction from terms; an empty list yields TRUE.
func Conj(terms []Expr) Expr {
	switch len(terms) {
	case 0:
		return TrueExpr()
	case 1:
		return terms[0]
	default:
		return &And{Terms: terms}
	}
}

// Walk visits e and all descendants in pre-order, stopping a branch
// when fn returns false.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Cols returns every column reference in e, in visit order.
func Cols(e Expr) []*Col {
	var out []*Col
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Col); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Qualifiers returns the set of distinct qualifiers referenced by e.
func Qualifiers(e Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range Cols(e) {
		out[c.Qualifier] = true
	}
	return out
}

// RefersOnly reports whether every column in e has a qualifier in the
// allowed set. Used to detect free references / correlation predicates
// (a predicate with a qualifier outside the local scope is correlated).
func RefersOnly(e Expr, allowed map[string]bool) bool {
	for _, c := range Cols(e) {
		if !allowed[c.Qualifier] {
			return false
		}
	}
	return true
}

// EquiBinding is an equality conjunct "left.x = right.y" split by side.
// The GMDJ evaluator hashes base tuples on Left and probes with Right.
type EquiBinding struct {
	Left  *Col // column of the base (outer) side
	Right *Col // column of the detail (inner) side
}

// SplitBindings partitions the conjuncts of theta into equi-bindings
// between the two given qualifier sets and a residual predicate.
// A conjunct qualifies as a binding when it is `a = b` with a referring
// only to leftQuals and b only to rightQuals (either order). Everything
// else — non-equality comparisons, complex terms — lands in residual.
//
// This mirrors the paper's hash-index GMDJ strategy: bindings feed the
// hash index over the base values; the residual is checked per probed
// pair. When no binding exists the evaluator degrades to scanning the
// active base entries (the Fig. 4 situation).
func SplitBindings(theta Expr, leftQuals, rightQuals map[string]bool) (bindings []EquiBinding, residual []Expr) {
	for _, c := range Conjuncts(theta) {
		cmp, ok := c.(*Cmp)
		if !ok || cmp.Op != value.EQ {
			residual = append(residual, c)
			continue
		}
		lc, lok := cmp.L.(*Col)
		rc, rok := cmp.R.(*Col)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case leftQuals[lc.Qualifier] && rightQuals[rc.Qualifier]:
			bindings = append(bindings, EquiBinding{Left: lc, Right: rc})
		case leftQuals[rc.Qualifier] && rightQuals[lc.Qualifier]:
			bindings = append(bindings, EquiBinding{Left: rc, Right: lc})
		default:
			residual = append(residual, c)
		}
	}
	return bindings, residual
}

// RenameQualifier returns a copy of e with every column reference whose
// qualifier is `from` re-qualified to `to`. Bound indices are
// discarded (the caller re-binds against the new schema).
func RenameQualifier(e Expr, from, to string) Expr {
	return Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(*Col); ok && c.Qualifier == from {
			return NewCol(to, c.Name)
		}
		return x
	})
}

// Rewrite rebuilds the tree bottom-up, replacing each node by fn(node).
// fn receives a node whose children are already rewritten.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *Col, *Lit, *Param:
		return fn(e)
	case *Arith:
		return fn(&Arith{Op: n.Op, L: Rewrite(n.L, fn), R: Rewrite(n.R, fn)})
	case *Cmp:
		return fn(&Cmp{Op: n.Op, L: Rewrite(n.L, fn), R: Rewrite(n.R, fn)})
	case *And:
		terms := make([]Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = Rewrite(t, fn)
		}
		return fn(&And{Terms: terms})
	case *Or:
		terms := make([]Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = Rewrite(t, fn)
		}
		return fn(&Or{Terms: terms})
	case *Not:
		return fn(&Not{E: Rewrite(n.E, fn)})
	case *IsNull:
		return fn(&IsNull{E: Rewrite(n.E, fn), Negated: n.Negated})
	case *Like:
		return fn(&Like{E: Rewrite(n.E, fn), Pattern: n.Pattern, Negated: n.Negated})
	default:
		return fn(e)
	}
}

// Clone deep-copies an expression tree, dropping bound indices on
// columns (use Bind to re-resolve).
func Clone(e Expr) Expr {
	return Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(*Col); ok {
			return NewCol(c.Qualifier, c.Name)
		}
		return x
	})
}
