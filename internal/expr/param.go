package expr

import (
	"errors"
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// ErrBadParam reports a statement-parameter problem: an unbound
// placeholder reached evaluation, an argument count mismatched the
// statement, or an argument value could not be converted. The root
// package re-exports it so callers can errors.Is without depending on
// internals.
var ErrBadParam = errors.New("bad statement parameter")

// Param is a statement placeholder ($1, $2, ... — the parser assigns
// ordinals to `?` left to right). Plans containing Params are
// templates: algebra.BindParams substitutes literals for them before
// execution, so an evaluated Param is always a bug or a missing
// argument, and Eval reports it as ErrBadParam.
type Param struct {
	// Ordinal is the 1-based parameter position.
	Ordinal int
}

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Ordinal) }

// Bind is a no-op: placeholders carry no column references.
func (p *Param) Bind(*relation.Schema) (Expr, error) { return p, nil }

func (p *Param) Eval(relation.Tuple) (value.Value, error) {
	return value.Value{}, fmt.Errorf("expr: unbound placeholder $%d: %w", p.Ordinal, ErrBadParam)
}

func (p *Param) Children() []Expr { return nil }
