package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// fig4Plan is the paper's Figure 4 quantified-ALL shape over the
// key-pair corpus — the restart round-trip property runs it on both
// sides of a crash.
func fig4Plan() algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key"))},
		OutCol: expr.C("B.b_val"),
	}
	return algebra.NewRestrict(algebra.NewScan("A", "A"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE, Left: expr.C("A.a_val"), Sub: sub})
}

// fig5Plan is the Figure 5 tree-nested EXISTS shape over the TPC-R
// warehouse; its literal comparisons drive zone-map pruning.
func fig5Plan() algebra.Node {
	mk := func(alias, status string, op value.CmpOp, price float64) *algebra.Subquery {
		return &algebra.Subquery{
			Source: algebra.NewScan("orders", alias),
			Where: &algebra.Atom{E: expr.NewAnd(
				expr.Eq(expr.C(alias+".o_custkey"), expr.C("C.c_custkey")),
				expr.Eq(expr.C(alias+".o_orderstatus"), expr.StrLit(status)),
				expr.NewCmp(op, expr.C(alias+".o_totalprice"), expr.FloatLit(price)),
			)},
		}
	}
	return algebra.NewRestrict(algebra.NewScan("customer", "C"),
		algebra.And(
			algebra.ExistsPred(mk("O1", "O", value.GT, 300_000)),
			algebra.ExistsPred(mk("O2", "F", value.LT, 150_000)),
		))
}

func durableCorpus() *storage.Catalog {
	cat := datagen.KeyPair(datagen.KeyPairOpts{Rows: 2_000, Seed: 11})
	tpcr := datagen.TPCR(datagen.TPCROpts{
		Customers: 150, Orders: 2_000, Lineitems: 0, Suppliers: 10, Parts: 50, Seed: 12,
	})
	for _, name := range tpcr.Names() {
		if t, err := tpcr.Table(name); err == nil {
			cat.Register(t)
		}
	}
	return cat
}

// TestDurableRestartRoundTrip is the write → crash → reopen → compare
// property over the fig4/fig5 corpus: a second engine recovering the
// same directory must hold byte-identical tables and answer both
// benchmark queries identically.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := New(durableCorpus())
	if _, err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	base4, err := e.Run(fig4Plan(), GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	base5, err := e.Run(fig5Plan(), GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// No clean shutdown: the next engine sees whatever the checkpoint
	// committed, exactly the crash-recovery contract.

	e2 := New(storage.NewCatalog())
	rep, err := e2.SetDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 || rep.SkippedManifests != 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	for _, name := range e.Catalog().Names() {
		want, _ := e.Catalog().Table(name)
		got, err := e2.Catalog().Table(name)
		if err != nil {
			t.Fatalf("table %s missing after restart", name)
		}
		if got.Rel.Len() != want.Rel.Len() {
			t.Fatalf("table %s: %d rows, want %d", name, got.Rel.Len(), want.Rel.Len())
		}
		for i := range want.Rel.Rows {
			if !got.Rel.Rows[i].Equal(want.Rel.Rows[i]) {
				t.Fatalf("table %s row %d differs after restart", name, i)
			}
		}
	}
	for _, q := range []struct {
		name string
		plan algebra.Node
		want *relation.Relation
	}{{"fig4", fig4Plan(), base4}, {"fig5", fig5Plan(), base5}} {
		got, err := e2.Run(q.plan, GMDJOpt)
		if err != nil {
			t.Fatalf("%s after restart: %v", q.name, err)
		}
		if d := q.want.Diff(got); d != "" {
			t.Fatalf("%s differs after restart: %s", q.name, d)
		}
	}
}

// TestTransparentCheckpoint: with a data dir configured, running any
// query flushes dirty tables first — no explicit Checkpoint call.
func TestTransparentCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := New(datagen.KeyPair(datagen.KeyPairOpts{Rows: 300, Seed: 5}))
	if _, err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(fig4Plan(), GMDJOpt); err != nil {
		t.Fatal(err)
	}
	e2 := New(storage.NewCatalog())
	rep, err := e2.SetDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation == 0 {
		t.Fatal("query did not trigger a transparent checkpoint")
	}
	if _, err := e2.Catalog().Table("A"); err != nil {
		t.Fatal("table A not recovered from the transparent checkpoint")
	}
}

// TestQuarantinedTableFailsTyped: recovery over a corrupt segment
// quarantines that table; queries touching it fail with
// ErrSegmentCorrupt while the other tables keep answering.
func TestQuarantinedTableFailsTyped(t *testing.T) {
	dir := t.TempDir()
	e := New(datagen.KeyPair(datagen.KeyPairOpts{Rows: 500, Seed: 7}))
	if _, err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var aFile string
	for _, s := range e.DiskStore().Segments(e.Catalog()) {
		if s.Table == "A" {
			aFile = s.File
		}
	}
	path := filepath.Join(dir, aFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(storage.NewCatalog())
	rep, err := e2.SetDataDir(dir)
	if err != nil {
		t.Fatalf("recovery must quarantine, not fail: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Table != "A" {
		t.Fatalf("quarantined %+v", rep.Quarantined)
	}
	if _, err := e2.Run(algebra.NewScan("A", "A"), GMDJOpt); !errors.Is(err, storage.ErrSegmentCorrupt) {
		t.Fatalf("scan of quarantined table: %v, want ErrSegmentCorrupt", err)
	}
	if _, err := e2.Run(fig4Plan(), GMDJOpt); !errors.Is(err, storage.ErrSegmentCorrupt) {
		t.Fatalf("fig4 over quarantined A: %v, want ErrSegmentCorrupt", err)
	}
	got, err := e2.Run(algebra.NewScan("B", "B"), GMDJOpt)
	if err != nil {
		t.Fatalf("unaffected table must keep serving: %v", err)
	}
	if got.Len() != 500 {
		t.Fatalf("table B answered %d rows, want 500", got.Len())
	}
}

// TestEnvDataDirLifecycle: GMDJ_DATA_DIR claims a fresh per-process
// subdirectory and removes it on Close.
func TestEnvDataDirLifecycle(t *testing.T) {
	root := t.TempDir()
	t.Setenv(EnvDataDir, root)
	e := New(datagen.KeyPair(datagen.KeyPairOpts{Rows: 50, Seed: 3}))
	sub := e.DataDir()
	if sub == "" || !strings.HasPrefix(sub, root) {
		t.Fatalf("env data dir = %q, want under %q", sub, root)
	}
	if _, err := e.Run(algebra.NewScan("A", "A"), GMDJOpt); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sub); err != nil {
		t.Fatalf("data dir missing while engine open: %v", err)
	}
	e.Close()
	if _, err := os.Stat(sub); !os.IsNotExist(err) {
		t.Fatalf("env-owned data dir not removed on Close: %v", err)
	}
}

// TestZonePruningProvesBlocksAndAgrees: a selective literal predicate
// over a sorted column must report pruned blocks in EXPLAIN ANALYZE
// and return exactly the rows an unpruned scan filter would.
func TestZonePruningProvesBlocksAndAgrees(t *testing.T) {
	rows := 8 * storage.ZoneBlockRows
	rel := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "t", Name: "x", Type: value.KindInt},
		relation.Column{Qualifier: "t", Name: "y", Type: value.KindInt},
	))
	for i := 0; i < rows; i++ {
		rel.Append(relation.Tuple{value.Int(int64(i)), value.Int(int64(i % 97))})
	}
	cat := storage.NewCatalog()
	cat.Register(storage.NewTable("t", rel))
	e := New(cat)

	threshold := int64(rows - storage.ZoneBlockRows/2) // keeps only the last block
	plan := algebra.NewRestrict(algebra.NewScan("t", "t"),
		&algebra.Atom{E: expr.NewCmp(value.GE, expr.C("t.x"), expr.IntLit(threshold))})

	got, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if want := rows - int(threshold); got.Len() != want {
		t.Fatalf("pruned scan returned %d rows, want %d", got.Len(), want)
	}
	for _, row := range got.Rows {
		if row[0].AsInt() < threshold {
			t.Fatalf("pruned scan leaked row x=%d", row[0].AsInt())
		}
	}

	analyzed, err := e.ExplainAnalyze(context.Background(), plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyzed, "segments_pruned=7") {
		t.Fatalf("EXPLAIN ANALYZE missing segments_pruned=7:\n%s", analyzed)
	}
	if !strings.Contains(analyzed, "segments_total=8") {
		t.Fatalf("EXPLAIN ANALYZE missing segments_total=8:\n%s", analyzed)
	}

	// An unprunable predicate (column vs column) records nothing.
	noprune := algebra.NewRestrict(algebra.NewScan("t", "t"),
		&algebra.Atom{E: expr.NewCmp(value.LT, expr.C("t.y"), expr.C("t.x"))})
	analyzed, err = e.ExplainAnalyze(context.Background(), noprune, Native)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(analyzed, "segments_pruned") {
		t.Fatalf("column-vs-column predicate should not prune:\n%s", analyzed)
	}
}

// TestZonePruningCorrelatedOuterNameDoesNotPrune: a conjunct whose
// column resolves in the outer environment must not prune the inner
// scan — the binding belongs to the enclosing block.
func TestZonePruningCorrelatedOuterNameDoesNotPrune(t *testing.T) {
	e := New(datagen.KeyPair(datagen.KeyPairOpts{Rows: 3 * storage.ZoneBlockRows, Seed: 9}))
	// EXISTS (B where B.b_key = A.a_key and B.b_val >= 0): the b_val
	// literal conjunct may prune, but A.a_key must never be treated as
	// a B column even though pruning runs inside B's restrict.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.Eq(expr.C("B.b_key"), expr.C("A.a_key")),
			expr.NewCmp(value.GE, expr.C("B.b_val"), expr.IntLit(0)),
		)},
	}
	plan := algebra.NewRestrict(algebra.NewScan("A", "A"), algebra.ExistsPred(sub))
	base, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Unnest, GMDJ, GMDJOpt} {
		got, err := e.Run(plan, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := base.Diff(got); d != "" {
			t.Fatalf("%v differs: %s", s, d)
		}
	}
}
