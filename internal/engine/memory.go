package engine

import (
	"time"

	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/spill"
)

// Memory-adaptive execution: the engine owns one byte pool shared by
// every concurrent query and one scratch spill store shared by every
// operator. A query acquires a reservation from the pool on admission
// (queueing with a deadline when the pool is contended), carries it on
// its governor, and operators charge per-operator trackers against it.
// When a GMDJ node's state estimate does not fit its reservation, the
// node partitions its base state and spills cold partitions to the
// store instead of failing; with spilling disabled (SetSpillDir("")),
// exhaustion is a hard govern.ErrMemBudget — the "kill" regime the
// benchmark trajectories compare against.

// SetMemoryLimit installs (or removes, with n <= 0) the engine-wide
// memory pool bounding tracked operator state across all concurrent
// queries. Not safe to call concurrently with running queries.
func (e *Engine) SetMemoryLimit(n int64) {
	e.memLimit = n
	e.reconfigureMemory()
}

// SetSpillDir sets the scratch root for spill files (a per-engine
// subdirectory is created beneath it, and stale siblings from crashed
// runs are janitored away). The empty string disables spilling
// entirely: memory exhaustion then kills the query instead of
// degrading it. Not safe to call concurrently with running queries.
func (e *Engine) SetSpillDir(dir string) {
	e.spillRoot = dir
	e.spillDirSet = true
	e.reconfigureMemory()
}

// SetAdmissionTimeout bounds how long a query waits for pool memory
// before being shed with mem.ErrAdmissionTimeout (0 uses
// mem.DefaultAdmissionTimeout). Not safe to call concurrently with
// running queries.
func (e *Engine) SetAdmissionTimeout(d time.Duration) {
	e.admission = d
	e.reconfigureMemory()
}

// MemStatus reports the engine's memory posture.
type MemStatus struct {
	// Enabled is true when a memory pool bounds tracked state.
	Enabled bool
	// Pool is the pool snapshot (zero when disabled).
	Pool mem.PoolStats
	// SpillEnabled is true when exhaustion degrades to disk instead of
	// killing the query.
	SpillEnabled bool
	// Spill is the scratch-store snapshot (zero when disabled).
	Spill spill.StoreStats
}

// MemStatus snapshots the memory pool and spill store.
func (e *Engine) MemStatus() MemStatus {
	return MemStatus{
		Enabled:      e.pool != nil,
		Pool:         e.pool.Stats(),
		SpillEnabled: e.spillStore != nil,
		Spill:        e.spillStore.Stats(),
	}
}

// Close releases engine-owned disk state (the scratch spill directory
// and any env-derived data directory; an explicitly configured data
// directory stays committed on disk) and closes the memory pool:
// queries queued for admission are shed promptly with a typed error
// wrapping mem.ErrPoolClosed instead of waiting out their deadlines,
// and subsequent queries run unaccounted (purely in-memory). Safe to
// call more than once and concurrently with queries waiting for
// admission.
func (e *Engine) Close() error {
	e.pool.Close()
	var err error
	if e.spillStore != nil {
		err = e.spillStore.RemoveAll()
		e.spillStore = nil
		e.exec.Spill = nil
	}
	e.closeDataDir()
	return err
}

// applyEnvMem folds GMDJ_MEM defaults under any explicit configuration
// (explicit setters run after New and override).
func (e *Engine) applyEnvMem() {
	cfg, ok := mem.FromEnv()
	if !ok {
		return
	}
	if cfg.Limit > 0 {
		e.memLimit = cfg.Limit
	}
	if cfg.SpillDir != "" {
		e.spillRoot = cfg.SpillDir
		e.spillDirSet = true
	}
	if cfg.Admission > 0 {
		e.admission = cfg.Admission
	}
	e.reconfigureMemory()
}

// reconfigureMemory rebuilds the pool and scratch store from the
// current knobs. It tears down any previous store (removing its
// directory), so it must not run while queries are in flight.
func (e *Engine) reconfigureMemory() {
	// The memory limit bounds the morsel-parallel degree too: re-clamp
	// whenever the limit changes.
	e.applyParallelism()
	if e.spillStore != nil {
		e.spillStore.RemoveAll()
		e.spillStore = nil
		e.exec.Spill = nil
	}
	// Shed anything still queued on a previous pool so reconfiguration
	// can never strand a waiter (typed error, not a deadlock).
	e.pool.Close()
	e.pool = nil
	if e.memLimit <= 0 {
		return
	}
	e.pool = mem.NewPool(e.memLimit, e.admission)
	if e.results != nil {
		// Memory pressure first drains the result cache's resident tier
		// before any query is forced to spill or die.
		e.pool.SetReclaim(e.results.SpillDown)
	}
	if e.spillDirSet && e.spillRoot == "" {
		return // kill regime: no spill store, exhaustion is fatal
	}
	store, err := spill.NewScratch(e.spillRoot, e.exec.Faults)
	if err != nil {
		// A broken scratch dir degrades to the kill regime rather than
		// failing engine construction; the metric makes it visible.
		obs.MetricAdd("spill.scratch_errors", 1)
		return
	}
	e.spillStore = store
	e.exec.Spill = store
	if e.results != nil {
		e.results.EnableSpill(store)
	}
}
