package engine

import (
	"math"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// The paper's conclusion argues the GMDJ has a "well-defined cost" and
// is therefore easy to place inside a cost-based optimizer that picks
// among joins, set operations, and GMDJs per query. This file is that
// framework in miniature: a textbook cardinality/cost estimator over
// the logical algebra, used by the Auto strategy to choose between the
// Native, Unnest, GMDJ, and GMDJOpt rewritings of the same query.
//
// The model is deliberately simple (System-R-style constants, fixed
// selectivities); its job is ranking alternatives, not predicting
// wall-clock time.

// costModel estimates plan cost in abstract "tuple visits".
type costModel struct {
	res algebra.SchemaResolver
	// card returns the row count of a named base table.
	card func(table string) float64
}

// estimate is the cost and output cardinality of a subplan.
type estimate struct {
	cost float64 // cumulative work
	rows float64 // output cardinality
}

// Selectivity and cost constants (System-R flavoured).
const (
	selEq       = 0.05 // equality predicate
	selRange    = 0.33 // range predicate
	selDefault  = 0.50 // anything else
	cpuPerTuple = 1.0
	hashBuild   = 1.2 // per build-side tuple
	hashProbe   = 1.0 // per probe-side tuple
	nlPerPair   = 0.6 // nested-loop pair visit (cheaper than a full tuple copy)
)

func (m *costModel) node(n algebra.Node) estimate {
	switch node := n.(type) {
	case *algebra.Scan:
		rows := m.card(node.Table)
		return estimate{cost: rows * cpuPerTuple, rows: rows}
	case *algebra.Raw:
		rows := float64(node.Rel.Len())
		return estimate{cost: rows * cpuPerTuple, rows: rows}
	case *algebra.Alias:
		return m.node(node.Input)
	case *algebra.Number:
		in := m.node(node.Input)
		return estimate{cost: in.cost + in.rows, rows: in.rows}
	case *algebra.Restrict:
		in := m.node(node.Input)
		sel, extra := m.predSel(node.Where, in.rows)
		return estimate{cost: in.cost + in.rows*cpuPerTuple + extra, rows: in.rows * sel}
	case *algebra.Project:
		in := m.node(node.Input)
		rows := in.rows
		if node.Distinct {
			rows *= 0.6
		}
		return estimate{cost: in.cost + in.rows*cpuPerTuple, rows: rows}
	case *algebra.Distinct:
		in := m.node(node.Input)
		return estimate{cost: in.cost + in.rows*cpuPerTuple, rows: in.rows * 0.6}
	case *algebra.Sort:
		in := m.node(node.Input)
		nlogn := in.rows * math.Log2(math.Max(in.rows, 2))
		rows := in.rows
		if node.Limit >= 0 && float64(node.Limit) < rows {
			rows = float64(node.Limit)
		}
		return estimate{cost: in.cost + nlogn, rows: rows}
	case *algebra.Join:
		return m.join(node)
	case *algebra.GroupBy:
		in := m.node(node.Input)
		groups := in.rows * 0.2
		if len(node.Keys) == 0 {
			groups = 1
		}
		return estimate{cost: in.cost + in.rows*cpuPerTuple, rows: math.Max(groups, 1)}
	case *algebra.GMDJ:
		return m.gmdj(node)
	case *algebra.SetOp:
		l, r := m.node(node.Left), m.node(node.Right)
		rows := l.rows + r.rows
		switch node.Kind {
		case algebra.Except:
			rows = l.rows * 0.5
		case algebra.Intersect:
			rows = math.Min(l.rows, r.rows) * 0.5
		case algebra.Union:
			rows = (l.rows + r.rows) * 0.6
		}
		return estimate{cost: l.cost + r.cost + (l.rows+r.rows)*cpuPerTuple, rows: rows}
	default:
		return estimate{cost: 1, rows: 1}
	}
}

// join distinguishes hash-joinable predicates from nested loops, and
// accounts for semi/anti early exit.
func (m *costModel) join(j *algebra.Join) estimate {
	l, r := m.node(j.Left), m.node(j.Right)
	equi := hasEquiConjunct(j.On)
	var cost, rows float64
	sel := m.exprSel(j.On)
	pairRows := l.rows * r.rows * sel
	switch {
	case equi:
		cost = l.cost + r.cost + r.rows*hashBuild + l.rows*hashProbe + pairRows*0.1
	default:
		cost = l.cost + r.cost + l.rows*r.rows*nlPerPair
	}
	switch j.Kind {
	case algebra.SemiJoin:
		rows = l.rows * clampSel(sel*r.rows)
		if !equi {
			cost = l.cost + r.cost + l.rows*r.rows*nlPerPair*0.5 // early exit
		}
	case algebra.AntiJoin:
		rows = l.rows * (1 - clampSel(sel*r.rows))
		if !equi {
			cost = l.cost + r.cost + l.rows*r.rows*nlPerPair*0.5
		}
	case algebra.LeftOuterJoin:
		rows = math.Max(pairRows, l.rows)
	default:
		rows = pairRows
	}
	return estimate{cost: cost, rows: math.Max(rows, 0)}
}

// gmdj captures the paper's cost argument: one scan of the detail per
// GMDJ; bindingless conditions degrade to |base| visits per detail
// tuple unless completion can retire base tuples.
func (m *costModel) gmdj(g *algebra.GMDJ) estimate {
	b, d := m.node(g.Base), m.node(g.Detail)
	cost := b.cost + d.cost + b.rows*hashBuild
	for _, c := range g.Conds {
		if hasEquiConjunct(c.Theta) {
			cost += d.rows * hashProbe
			continue
		}
		// Fallback scan: |detail| × |active base|. Completion shrinks
		// the active set geometrically; model it as a constant-factor
		// discount (empirically far larger, but ranking only needs the
		// order of magnitude).
		factor := b.rows
		if g.Completion != nil {
			factor = math.Max(math.Sqrt(b.rows), 1)
		}
		cost += d.rows * factor * nlPerPair
	}
	rows := b.rows
	if g.Completion != nil {
		rows *= 0.8
	}
	return estimate{cost: cost, rows: rows}
}

// predSel estimates the selectivity of a predicate tree; subquery
// predicates contribute their evaluation cost through extra.
func (m *costModel) predSel(p algebra.Pred, outerRows float64) (sel float64, extra float64) {
	switch n := p.(type) {
	case *algebra.Atom:
		return m.exprSel(n.E), 0
	case *algebra.PredAnd:
		sel = 1
		for _, t := range n.Terms {
			s, e := m.predSel(t, outerRows)
			sel *= s
			extra += e
		}
		return sel, extra
	case *algebra.PredOr:
		sel = 0
		for _, t := range n.Terms {
			s, e := m.predSel(t, outerRows)
			sel = sel + s - sel*s
			extra += e
		}
		return sel, extra
	case *algebra.PredNot:
		s, e := m.predSel(n.P, outerRows)
		return 1 - s, e
	case *algebra.SubPred:
		inner := m.node(n.Sub.Source)
		// Tuple-iteration: the inner block is visited once per outer
		// row (early exits modelled as half a scan).
		extra = outerRows * inner.rows * nlPerPair * 0.5
		switch n.Kind {
		case algebra.Exists, algebra.CmpSome:
			return 0.5, extra
		case algebra.NotExists, algebra.CmpAll:
			return 0.5, extra
		default:
			return selEq, extra
		}
	default:
		return selDefault, 0
	}
}

// exprSel estimates the selectivity of a boolean expression.
func (m *costModel) exprSel(e expr.Expr) float64 {
	switch n := e.(type) {
	case *expr.Cmp:
		switch n.Op {
		case value.EQ:
			return selEq
		case value.NE:
			return 1 - selEq
		default:
			return selRange
		}
	case *expr.And:
		s := 1.0
		for _, t := range n.Terms {
			s *= m.exprSel(t)
		}
		return s
	case *expr.Or:
		s := 0.0
		for _, t := range n.Terms {
			st := m.exprSel(t)
			s = s + st - s*st
		}
		return s
	case *expr.Not:
		return 1 - m.exprSel(n.E)
	case *expr.Lit:
		if n.V.Kind() == value.KindBool && n.V.AsBool() {
			return 1
		}
		return selDefault
	case *expr.IsNull:
		return 0.05
	case *expr.Like:
		return 0.15
	default:
		return selDefault
	}
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// hasEquiConjunct reports whether a predicate contains a column=column
// equality conjunct (the enabler for hash evaluation).
func hasEquiConjunct(e expr.Expr) bool {
	for _, cj := range expr.Conjuncts(e) {
		if cmp, ok := cj.(*expr.Cmp); ok && cmp.Op == value.EQ {
			_, lok := cmp.L.(*expr.Col)
			_, rok := cmp.R.(*expr.Col)
			if lok && rok {
				return true
			}
		}
	}
	return false
}

// EstimateCost prices a plan under the engine's catalog statistics.
func (e *Engine) EstimateCost(plan algebra.Node) float64 {
	m := e.model()
	return m.node(plan).cost
}

func (e *Engine) model() *costModel {
	return &costModel{
		res: e.exec,
		card: func(table string) float64 {
			t, err := e.cat.Table(table)
			if err != nil {
				return 1000
			}
			return math.Max(float64(t.Rel.Len()), 1)
		},
	}
}
