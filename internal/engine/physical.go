package engine

import (
	"context"
	"runtime/pprof"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/obs/profile"
	"github.com/olaplab/gmdj/internal/relation"
)

// Sink consumes a query's result as a stream of columnar batches in
// result order. Run calls Open exactly once (before any Push) with the
// result schema, then Push zero or more times with non-empty batches.
// The batch passed to Push is reused after the call returns: a sink
// that retains rows beyond the call must copy them out (tuple
// references are enough — result tuples are immutable once emitted;
// Batch.AppendTo does exactly this).
type Sink interface {
	Open(schema *relation.Schema) error
	Push(b *relation.Batch) error
}

// RelationSink materializes the batch stream back into a Relation —
// the adapter every row-oriented caller (Run, QueryRows) sits on.
type RelationSink struct {
	Rel *relation.Relation
}

// Open creates the output relation.
func (s *RelationSink) Open(schema *relation.Schema) error {
	s.Rel = relation.New(schema)
	return nil
}

// Push appends the batch's rows by reference.
func (s *RelationSink) Push(b *relation.Batch) error {
	b.AppendTo(s.Rel)
	return nil
}

// PhysicalPlan is a strategy-rewritten plan bound to its engine: the
// single execution contract every entry point (Run, RunContext,
// RunObserved, ExplainAnalyze, prepared statements, QueryRows) funnels
// through. All cross-cutting wiring — per-operator stats collection,
// tracer spans, the observer's live registry and slow-query log,
// pprof tenant labels, cost-estimate annotation, budget/memory
// governance — lives in its Run method, in one place, rather than
// being repeated per strategy or per entry point.
type PhysicalPlan struct {
	eng      *Engine
	root     algebra.Node
	strategy Strategy
	// text is the query's source SQL ("" for hand-built plans); it
	// labels the live registry and the slow-query log.
	text string
	// collect forces per-operator stats collection even without a
	// tracer or observer attached (the EXPLAIN ANALYZE path).
	collect bool
	// stats is the root of the per-operator stats tree from the last
	// Run, when collection was on.
	stats *obs.Op
}

// Physical rewrites a logical plan under the strategy and binds it to
// the engine as a runnable PhysicalPlan.
func (e *Engine) Physical(plan algebra.Node, s Strategy) (*PhysicalPlan, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return nil, err
	}
	return &PhysicalPlan{eng: e, root: p, strategy: s}, nil
}

// PhysicalFromPlanned wraps an already-rewritten plan (a plan-cache
// hit or a bound prepared statement) without re-running the strategy
// rewrite. The strategy only labels the run for the observer and
// metrics.
func (e *Engine) PhysicalFromPlanned(phys algebra.Node, s Strategy) *PhysicalPlan {
	return &PhysicalPlan{eng: e, root: phys, strategy: s}
}

// SetText attaches the query's source SQL for the observer surfaces.
func (p *PhysicalPlan) SetText(text string) { p.text = text }

// CollectStats forces per-operator statistics collection on the next
// Run even when no tracer or observer is attached.
func (p *PhysicalPlan) CollectStats() { p.collect = true }

// Stats returns the per-operator stats tree from the last Run, or nil
// when collection was off.
func (p *PhysicalPlan) Stats() *obs.Op { return p.stats }

// Strategy reports the strategy the plan was rewritten under.
func (p *PhysicalPlan) Strategy() Strategy { return p.strategy }

// Root returns the physical operator tree.
func (p *PhysicalPlan) Root() algebra.Node { return p.root }

// Run executes the plan under the caller's context and the engine
// budget, delivering the result to the sink in relation.DefaultBatchCap
// chunks. Cancellation and budget violations abort evaluation
// cooperatively and surface as the govern package's typed errors;
// operator panics are recovered and returned as *govern.InternalError.
// Every observability surface is wired here: the per-operator stats
// collector (forced by CollectStats, or wanted by an attached tracer
// or observer), the observer's live in-flight registry, cost-model
// estimate annotation (the est= drift column), the workload
// histograms, and the slow-query log. With none of those attached the
// collector stays nil and each executor hook is one nil check.
func (p *PhysicalPlan) Run(ctx context.Context, sink Sink) error {
	e := p.eng
	var col *obs.Collector
	if p.collect || e.tracer != nil || e.observer != nil {
		col = obs.NewCollector(e.tracer)
	}
	live := e.observer.QueryStart(ctx, p.text, p.strategy.String())
	start := time.Now()
	var rel *relation.Relation
	var err error
	// pprof labels attribute CPU samples to the query's tenant, request
	// ID, and strategy. Go propagates labels to child goroutines, so
	// morsel worker pools inherit them — profiles bill parallel scan
	// work to the tenant that scheduled it. Unattributed queries (no
	// request identity on the context) skip the label plumbing
	// entirely, keeping the benchmark hot path label-free.
	tenant, rid := obs.ContextTenant(ctx), obs.ContextRequestID(ctx)
	if tenant != "" || rid != "" {
		pprof.Do(ctx, profile.QueryLabels(tenant, rid, p.strategy.String(), "execute"), func(lctx context.Context) {
			rel, err = e.execute(lctx, p.root, col, live)
		})
	} else {
		rel, err = e.execute(ctx, p.root, col, live)
	}
	elapsed := time.Since(start)
	e.finishQuery(p.strategy, err)
	root := col.Root()
	if root != nil {
		root.RequestID = obs.ContextRequestID(ctx)
	}
	e.annotateEstimates(p.root, root)
	p.stats = root
	var rows int64
	if rel != nil {
		rows = int64(rel.Len())
	}
	outcome, errText := "ok", ""
	if err != nil {
		outcome, errText = errKind(err), err.Error()
	}
	e.observer.QueryEnd(live, elapsed, rows, root, outcome, errText)
	if err != nil {
		return err
	}
	return p.drain(rel, sink)
}

// drain streams a materialized result into the sink batch by batch,
// reusing one Batch worth of scratch for the whole relation.
func (p *PhysicalPlan) drain(rel *relation.Relation, sink Sink) error {
	if err := sink.Open(rel.Schema); err != nil {
		return err
	}
	if rel.Len() == 0 {
		return nil
	}
	b := relation.NewBatch(rel.Schema, relation.DefaultBatchCap)
	for _, row := range rel.Rows {
		b.AppendRef(row)
		if b.Full() {
			if err := sink.Push(b); err != nil {
				return err
			}
			b.Reset()
		}
	}
	if b.Len() > 0 {
		return sink.Push(b)
	}
	return nil
}
