package engine

import (
	"context"
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/obs"
)

// TestRunObservedReconciliation cross-checks the stats tree against
// the returned relation for every strategy: the root operator's
// reported cardinality must equal the result's, and the GMDJ
// operator's detail accounting must cover the whole detail relation
// (rows fed + rows short-circuited = detail size, serial execution).
func TestRunObservedReconciliation(t *testing.T) {
	e := testEngine() // 300-flow netflow catalog
	plan := existsPlan()
	const detailSize = 300

	for _, s := range Strategies() {
		rel, root, err := e.RunObserved(context.Background(), plan, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if root == nil {
			t.Fatalf("%v: no stats tree", s)
		}
		if root.Rows != int64(rel.Len()) {
			t.Errorf("%v: root rows = %d, result rows = %d", s, root.Rows, rel.Len())
		}
		if s == GMDJ || s == GMDJOpt {
			gm := root.Find("GMDJ")
			if gm == nil {
				t.Fatalf("%v: stats tree lacks a GMDJ operator:\n%s", s, obs.FormatTree(root))
			}
			fed, skipped := gm.Get("detail_rows"), gm.Get("short_circuit_rows")
			if fed+skipped != detailSize {
				t.Errorf("%v: detail_rows(%d) + short_circuit_rows(%d) != %d:\n%s",
					s, fed, skipped, detailSize, obs.FormatTree(root))
			}
			if s == GMDJ && skipped != 0 {
				t.Errorf("basic gmdj has no completion, short_circuit_rows = %d", skipped)
			}
			if s == GMDJOpt && gm.Get("completed") == 0 {
				t.Errorf("gmdj-opt should retire tuples by completion:\n%s", obs.FormatTree(root))
			}
		}
	}
}

// TestExplainAnalyzeAgreesWithExplain: both renderings must name the
// same operators in the same tree positions (shared algebra.Describe),
// so a plan read from EXPLAIN can be matched line-by-line against its
// EXPLAIN ANALYZE run.
func TestExplainAnalyzeAgreesWithExplain(t *testing.T) {
	e := testEngine()
	plan := existsPlan()
	for _, s := range Strategies() {
		plain, err := e.Explain(plan, s)
		if err != nil {
			t.Fatal(err)
		}
		analyzed, err := e.ExplainAnalyze(context.Background(), plan, s)
		if err != nil {
			t.Fatal(err)
		}
		pl := strings.Split(strings.TrimRight(plain, "\n"), "\n")
		al := strings.Split(strings.TrimRight(analyzed, "\n"), "\n")
		if len(pl) != len(al) {
			t.Fatalf("%v: line counts differ\nEXPLAIN:\n%s\nANALYZE:\n%s", s, plain, analyzed)
		}
		for i := 1; i < len(pl); i++ { // skip the strategy header
			label := strings.TrimRight(pl[i], " ")
			got := al[i]
			// The analyzed line is the plain line plus a " (...)" suffix.
			if got != label && !strings.HasPrefix(got, label+" (") {
				t.Errorf("%v line %d: %q does not extend %q", s, i, got, label)
			}
		}
	}
}

const goldenExplain = `strategy: gmdj-opt
Project [H.HourDsc, H.StartInterval, H.EndInterval]
  Select [cnt1 > 0]
    GMDJ +completion+freeze (1 conditions)
      cond: (count(*) -> cnt1 | θ: (F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval AND F.Protocol = 'FTP'))
      Scan Hours->H
      Scan Flow->F
`

const goldenAnalyze = `strategy: gmdj-opt (analyzed)
Project [H.HourDsc, H.StartInterval, H.EndInterval] (time=X act=4 est=1 bytes=576 workers=1 batches=1)
  Select [cnt1 > 0] (time=X act=4 est=1 bytes=736 workers=1 batches=1)
    GMDJ +completion+freeze (1 conditions) (time=X act=4 est=3 bytes=736 workers=1 batches=1 detail_rows=33 probes=12 matches=4 completed=4 short_circuit_rows=267 fallback_conds=1)
      cond: (count(*) -> cnt1 | θ: (F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval AND F.Protocol = 'FTP'))
      Scan Hours->H (time=X act=4 est=4 bytes=576)
      Scan Flow->F (time=X act=300 est=300 bytes=75000)
`

const goldenAnalyzeNative = `strategy: native (analyzed)
Select [∃(σ[(F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval AND F.Protocol = 'FTP')](Flow->F))] (time=X act=4 est=2 bytes=576 workers=1 batches=1)
  Scan Hours->H (time=X act=4 est=4 bytes=576)
  Scan Flow->F (time=X act=300 est=300 bytes=75000)
`

// TestExplainGolden pins the exact EXPLAIN / EXPLAIN ANALYZE text on
// the deterministic 300-flow catalog (timings normalized): counters,
// cardinalities, and tree shape are all part of the contract.
func TestExplainGolden(t *testing.T) {
	e := testEngine()
	plan := existsPlan()

	plain, err := e.Explain(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if plain != goldenExplain {
		t.Errorf("EXPLAIN drifted:\n--- got ---\n%s--- want ---\n%s", plain, goldenExplain)
	}

	analyzed, err := e.ExplainAnalyze(context.Background(), plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.NormalizeTimings(analyzed); got != goldenAnalyze {
		t.Errorf("EXPLAIN ANALYZE drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenAnalyze)
	}

	native, err := e.ExplainAnalyze(context.Background(), plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.NormalizeTimings(native); got != goldenAnalyzeNative {
		t.Errorf("native EXPLAIN ANALYZE drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenAnalyzeNative)
	}
}

// TestTracerRecordsQuerySpans: with a tracer attached, a plain
// RunContext records operator spans; without one, it records nothing
// and costs nothing.
func TestTracerRecordsQuerySpans(t *testing.T) {
	e := testEngine()
	plan := existsPlan()

	if _, err := e.RunContext(context.Background(), plan, GMDJOpt); err != nil {
		t.Fatal(err)
	}
	if e.Tracer().Len() != 0 {
		t.Fatal("no tracer attached, nothing should record")
	}

	tr := obs.NewTracer(1 << 10)
	e.SetTracer(tr)
	if _, err := e.RunContext(context.Background(), plan, GMDJOpt); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer attached but no spans recorded")
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"displayTimeUnit":"ms"`, `"ph":"X"`, "GMDJ"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("trace JSON lacks %q:\n%s", want, b.String())
		}
	}
}
