package engine

import (
	"math"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/obs"
)

// Estimate drift: after a query runs, the cost model's predicted
// cardinalities are attached to the collected stats tree, so EXPLAIN
// ANALYZE renders each operator as "act=N est=M" (with a misest=Kx
// flag past obs.MisestimateFactor). This is the feedback loop the
// Auto strategy needs to be trusted — when the model that picked the
// plan is off by 10×, the plan it picked is suspect, and the drift
// column says so on the very line that misbehaved.

// annotateEstimates walks the physical plan and the collected stats
// tree in lockstep, attaching the model's row estimate to every
// operator the two trees share. Safe on a nil root (no collection).
func (e *Engine) annotateEstimates(p algebra.Node, root *obs.Op) {
	if p == nil || root == nil {
		return
	}
	annotateOp(e.model(), p, root)
}

// annotateOp matches one plan node to one stats node by label
// (algebra.Describe — the same labels both EXPLAIN renderings use)
// and recurses. Plan children are matched to the first unused stats
// child with the same label: the stats tree can carry extra children
// with no plan counterpart (a native subquery's inner block evaluated
// under its enclosing Select), which simply keep their plain rows=
// rendering.
func annotateOp(m *costModel, n algebra.Node, op *obs.Op) {
	label, _ := algebra.Describe(n)
	if op.Label != label {
		return
	}
	op.SetEst(int64(math.Round(m.node(n).rows)))
	used := make([]bool, len(op.Children))
	for _, ch := range n.Children() {
		chLabel, _ := algebra.Describe(ch)
		for i, oc := range op.Children {
			if used[i] || oc.Label != chLabel {
				continue
			}
			used[i] = true
			annotateOp(m, ch, oc)
			break
		}
	}
}
