package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/storage"
)

// Durable storage: the engine optionally owns a storage.DiskStore that
// persists every table as an immutable columnar segment and commits
// checkpoints as manifest generations. Checkpointing is transparent —
// the first query after any write (the catalog's schema epoch moves on
// every insert, DDL, or index change) flushes dirty tables before
// executing — and explicit via Checkpoint for \checkpoint and
// shutdown paths.

// EnvDataDir is the environment variable enabling durable storage for
// a whole process, e.g. GMDJ_DATA_DIR=/var/lib/gmdj. Because several
// engines (and several test processes) may share that root, each
// engine claims a fresh per-process subdirectory beneath it and
// removes it on Close — the env knob exercises the durable write path
// everywhere without leaking state across hermetic tests. Explicit
// SetDataDir calls use the given directory as-is, recover whatever the
// previous run committed, and never remove it.
const EnvDataDir = "GMDJ_DATA_DIR"

// dataSeq distinguishes multiple env-derived data dirs in one process.
var dataSeq atomic.Int64

// SetDataDir opens (creating if needed) the durable store rooted at
// dir, recovers the newest committed generation into the catalog —
// quarantining, not failing on, corrupt segments — and enables
// transparent checkpointing. The empty string disables persistence.
// Not safe to call concurrently with running queries.
func (e *Engine) SetDataDir(dir string) (*storage.RecoveryReport, error) {
	e.store = nil
	e.recovery = nil
	e.dataDirOwned = false
	if dir == "" {
		return nil, nil
	}
	ds, err := storage.OpenDiskStore(dir, e.exec.Faults)
	if err != nil {
		return nil, err
	}
	rep, err := ds.Recover(e.cat)
	if err != nil {
		return nil, err
	}
	e.store = ds
	e.recovery = rep
	e.lastCkptEpoch.Store(-1) // force a checkpoint on the first query
	obs.MetricAdd("storage.opens", 1)
	return rep, nil
}

// DataDir returns the durable store's directory ("" when persistence
// is off).
func (e *Engine) DataDir() string {
	if e.store == nil {
		return ""
	}
	return e.store.Dir()
}

// Recovery returns the report from the last SetDataDir recovery (nil
// when persistence is off).
func (e *Engine) Recovery() *storage.RecoveryReport { return e.recovery }

// DiskStore exposes the durable store (nil when persistence is off).
func (e *Engine) DiskStore() *storage.DiskStore { return e.store }

// Checkpoint persists every table whose data changed since the last
// checkpoint and commits a new manifest generation, returning the
// committed generation. It is an error when no data directory is
// configured.
func (e *Engine) Checkpoint() (uint64, error) {
	if e.store == nil {
		return 0, errors.New("engine: no data directory configured")
	}
	epoch := int64(e.cat.SchemaEpoch())
	gen, err := e.store.Checkpoint(e.cat)
	if err != nil {
		obs.MetricAdd("storage.checkpoint_errors", 1)
		return gen, err
	}
	e.lastCkptEpoch.Store(epoch)
	return gen, nil
}

// maybeCheckpoint runs at query start: when the catalog's schema epoch
// moved since the last successful checkpoint (any write), dirty tables
// are flushed before the query executes, so a crash at any instant
// loses at most the writes since the last completed query boundary. A
// checkpoint failure (disk full, injected fault) degrades durability
// but never fails the read — the error is counted and the query runs
// on the in-memory data.
func (e *Engine) maybeCheckpoint() {
	if e.store == nil {
		return
	}
	epoch := int64(e.cat.SchemaEpoch())
	if e.lastCkptEpoch.Load() == epoch {
		return
	}
	if _, err := e.store.Checkpoint(e.cat); err != nil {
		obs.MetricAdd("storage.checkpoint_errors", 1)
		return
	}
	e.lastCkptEpoch.Store(epoch)
}

// applyEnvData folds the GMDJ_DATA_DIR default in at construction: a
// fresh per-process subdirectory under the root, removed on Close.
func (e *Engine) applyEnvData() {
	root := strings.TrimSpace(os.Getenv(EnvDataDir))
	if root == "" {
		return
	}
	dir := filepath.Join(root, fmt.Sprintf("gmdj-data-%d-%d", os.Getpid(), dataSeq.Add(1)))
	if _, err := e.SetDataDir(dir); err != nil {
		fmt.Fprintf(os.Stderr, "engine: ignoring %s: %v\n", EnvDataDir, err)
		return
	}
	e.dataDirOwned = true
}

// closeDataDir releases engine-owned durable state on Close: an
// env-derived directory is deleted (it exists to exercise the write
// path in hermetic tests), an explicitly configured one is left fully
// committed on disk.
func (e *Engine) closeDataDir() {
	if e.store != nil && e.dataDirOwned {
		os.RemoveAll(e.store.Dir())
	}
	e.store = nil
	e.recovery = nil
	e.dataDirOwned = false
}
