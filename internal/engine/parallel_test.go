package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// TestParallelismConfig pins the configuration precedence: the default
// is GOMAXPROCS, GMDJ_PARALLEL overrides the default, explicit
// SetParallelism overrides the environment, and non-positive or
// malformed environment values are ignored.
func TestParallelismConfig(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 10, Hours: 2, Users: 2, Seed: 1})

	// Isolate from any ambient GMDJ_PARALLEL (CI runs the whole suite
	// under a forced degree); empty means unset.
	t.Setenv(EnvParallel, "")

	if got, want := New(cat).Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default parallelism = %d, want GOMAXPROCS = %d", got, want)
	}

	t.Setenv(EnvParallel, "3")
	e := New(cat)
	if got := e.Parallelism(); got != 3 {
		t.Errorf("with %s=3, parallelism = %d", EnvParallel, got)
	}
	e.SetParallelism(5)
	if got := e.Parallelism(); got != 5 {
		t.Errorf("SetParallelism(5) over env: parallelism = %d", got)
	}
	e.SetParallelism(0)
	if got, want := e.Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("SetParallelism(0) = %d, want GOMAXPROCS = %d", got, want)
	}

	for _, bad := range []string{"zero", "-2", "0"} {
		t.Setenv(EnvParallel, bad)
		if got, want := New(cat).Parallelism(), runtime.GOMAXPROCS(0); got != want {
			t.Errorf("with %s=%q, parallelism = %d, want default %d", EnvParallel, bad, got, want)
		}
	}
}

// TestParallelismMemClamp: the memory accountant bounds the effective
// degree at mem.PerWorkerBytes of pool per worker, re-clamping
// whenever either knob moves.
func TestParallelismMemClamp(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 10, Hours: 2, Users: 2, Seed: 1})
	e := New(cat)
	e.SetParallelism(8)
	e.SetMemoryLimit(2 * mem.PerWorkerBytes)
	defer e.Close()
	if got := e.exec.Parallelism; got != 2 {
		t.Errorf("effective degree under a 2-worker pool = %d, want 2", got)
	}
	if got := e.Parallelism(); got != 8 {
		t.Errorf("configured degree should survive the clamp, got %d", got)
	}
	e.SetMemoryLimit(0)
	if got := e.exec.Parallelism; got != 8 {
		t.Errorf("removing the limit should restore the configured degree, got %d", got)
	}
}

// TestCancellationMidMorsel cancels a context while morsel workers are
// mid-scan over a large table and requires the typed govern.ErrCanceled
// promptly — the cooperative-cancellation path inside the parallel
// filter pipeline, not just between operators.
func TestCancellationMidMorsel(t *testing.T) {
	const rows = 500_000
	rel := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "big", Name: "x", Type: value.KindInt},
	))
	for i := 0; i < rows; i++ {
		rel.Append(relation.Tuple{value.Int(int64(i))})
	}
	cat := storage.NewCatalog()
	cat.Register(storage.NewTable("big", rel))
	e := New(cat)
	e.SetParallelism(8)
	plan := algebra.NewRestrict(algebra.NewScan("big", "b"),
		&algebra.Atom{E: expr.NewCmp(value.GE, expr.C("b.x"), expr.IntLit(0))})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Microsecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.RunContext(ctx, plan, Native)
	if err == nil {
		t.Fatal("query completed before mid-morsel cancellation; grow the table")
	}
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("canceled parallel scan returned %v, want govern.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; workers are not ticking the governor", elapsed)
	}
}

// TestSpillUnderParallelism runs the hour/flow EXISTS workload with a
// pool small enough to force the GMDJ base state to spill but large
// enough that the clamp still grants two morsel workers — spilling and
// parallelism composing, with rows byte-identical to the unlimited
// serial run.
func TestSpillUnderParallelism(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 5_000, Hours: 5_000, Users: 40, Seed: 11})
	plan := existsPlan()

	serial := New(cat)
	serial.SetParallelism(1)
	want, err := serial.RunContext(context.Background(), plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}

	e := New(cat)
	e.SetParallelism(4)
	e.SetMemoryLimit(2 * mem.PerWorkerBytes)
	e.SetSpillDir(t.TempDir())
	defer e.Close()
	if got := e.exec.Parallelism; got != 2 {
		t.Fatalf("effective degree = %d, want 2 (spill and parallelism must coexist)", got)
	}
	stats := e.GMDJStats() // install the collector before running
	got, err := e.RunContext(context.Background(), plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("spilled parallel run differs from unlimited serial run:\n%s", want.Diff(got))
	}
	if stats.SpillPartitions == 0 {
		t.Error("pool sized below the base-state estimate, yet nothing spilled")
	}
}

// batchRecorder is a Sink that records everything Run delivers.
type batchRecorder struct {
	schema *relation.Schema
	rows   []relation.Tuple
	pushes int
	maxLen int
}

func (r *batchRecorder) Open(s *relation.Schema) error { r.schema = s; return nil }

func (r *batchRecorder) Push(b *relation.Batch) error {
	r.pushes++
	if b.Len() > r.maxLen {
		r.maxLen = b.Len()
	}
	r.rows = append(r.rows, b.Rows()...)
	return nil
}

// TestPhysicalPlanSink drives the batched PhysicalPlan.Run contract
// directly: the sink sees the result schema once, then the result rows
// in order in bounded batches; stats collection rides along when
// requested.
func TestPhysicalPlanSink(t *testing.T) {
	e := testEngine()
	plan := existsPlan()
	want, err := e.Run(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}

	pp, err := e.Physical(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	pp.CollectStats()
	var sink batchRecorder
	if err := pp.Run(context.Background(), &sink); err != nil {
		t.Fatal(err)
	}
	if sink.schema == nil {
		t.Fatal("sink never opened")
	}
	if sink.maxLen > relation.DefaultBatchCap {
		t.Errorf("batch of %d rows exceeds DefaultBatchCap", sink.maxLen)
	}
	if len(sink.rows) != want.Len() {
		t.Fatalf("sink got %d rows, want %d", len(sink.rows), want.Len())
	}
	for i, row := range sink.rows {
		if row.String() != want.Rows[i].String() {
			t.Fatalf("row %d: %s != %s", i, row, want.Rows[i])
		}
	}
	if pp.Stats() == nil {
		t.Error("CollectStats was on but no stats tree recorded")
	}
	if pp.Strategy() != GMDJOpt || pp.Root() == nil {
		t.Error("plan accessors lost the strategy or root")
	}
}
