package engine

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

func testEngine() *Engine {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 300, Hours: 4, Users: 6, Seed: 3})
	return New(cat)
}

func existsPlan() algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
			expr.Eq(expr.C("F.Protocol"), expr.StrLit("FTP")),
		)},
	}
	return algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{Native: "native", Unnest: "unnest", GMDJ: "gmdj", GMDJOpt: "gmdj-opt"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if len(Strategies()) != 4 {
		t.Error("Strategies() should list all four")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	e := testEngine()
	plan := existsPlan()
	base, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Unnest, GMDJ, GMDJOpt} {
		got, err := e.Run(plan, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := base.Diff(got); d != "" {
			t.Errorf("%v differs: %s", s, d)
		}
	}
}

func TestPlanShapesPerStrategy(t *testing.T) {
	e := testEngine()
	plan := existsPlan()

	native, err := e.Plan(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if native != plan {
		t.Error("native planning must be the identity")
	}

	un, err := e.Plan(plan, Unnest)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(un.String(), "⋉") {
		t.Errorf("unnest plan lacks a semi-join: %s", un)
	}

	g, err := e.Plan(plan, GMDJ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "MD(") {
		t.Errorf("gmdj plan lacks a GMDJ: %s", g)
	}

	opt, err := e.Plan(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.String(), "completion") {
		t.Errorf("gmdj-opt plan lacks completion: %s", opt)
	}

	if _, err := e.Plan(plan, Strategy(99)); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestExplainOutputs(t *testing.T) {
	e := testEngine()
	plan := existsPlan()
	for _, s := range Strategies() {
		out, err := e.Explain(plan, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !strings.Contains(out, "strategy: "+s.String()) {
			t.Errorf("%v explain lacks header:\n%s", s, out)
		}
		if !strings.Contains(out, "Scan") {
			t.Errorf("%v explain lacks scans:\n%s", s, out)
		}
	}
	out, _ := e.Explain(plan, GMDJOpt)
	if !strings.Contains(out, "GMDJ +completion") {
		t.Errorf("gmdj-opt explain should flag completion:\n%s", out)
	}
}

func TestGMDJStatsCollection(t *testing.T) {
	e := testEngine()
	stats := e.GMDJStats()
	if _, err := e.Run(existsPlan(), GMDJ); err != nil {
		t.Fatal(err)
	}
	if stats.DetailRows == 0 {
		t.Error("stats should record detail rows scanned")
	}
}

func TestSetUseIndexesAffectsOnlyNative(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 500, Hours: 4, Users: 6, Seed: 4})
	flow, _ := cat.Table("Flow")
	if err := flow.BuildSortedIndex("StartTime"); err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	plan := existsPlan()
	a, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	e.SetUseIndexes(false)
	b, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("index toggle changed native results: %s", d)
	}
	g1, err := e.Run(plan, GMDJ)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(g1); d != "" {
		t.Errorf("gmdj differs: %s", d)
	}
}

func TestParallelWorkersAgree(t *testing.T) {
	e := testEngine()
	plan := existsPlan()
	serial, err := e.Run(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	e.SetGMDJWorkers(4)
	par, err := e.Run(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if d := serial.Diff(par); d != "" {
		t.Errorf("parallel GMDJ differs: %s", d)
	}
}

func TestTableSchemaResolver(t *testing.T) {
	e := testEngine()
	s, err := e.TableSchema("Flow")
	if err != nil || s.Len() != 5 {
		t.Errorf("TableSchema(Flow) = %v, %v", s, err)
	}
	if _, err := e.TableSchema("Missing"); err == nil {
		t.Error("unknown table must error")
	}
}
