package engine

import (
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

func TestEstimateCostMonotoneInTableSize(t *testing.T) {
	small := New(datagen.Netflow(datagen.NetflowOpts{Flows: 100, Hours: 4, Users: 4, Seed: 1}))
	big := New(datagen.Netflow(datagen.NetflowOpts{Flows: 10_000, Hours: 4, Users: 4, Seed: 1}))
	plan := existsPlan()
	if small.EstimateCost(plan) >= big.EstimateCost(plan) {
		t.Error("cost must grow with table size")
	}
}

func TestCostPrefersGMDJOverNestedLoopNative(t *testing.T) {
	// Equality correlation + large outer block: the GMDJ answers the
	// whole query in one hash-bound scan, while tuple iteration pays
	// |outer| × |inner|. The model must rank accordingly.
	e := New(datagen.Netflow(datagen.NetflowOpts{Flows: 50_000, Hours: 24, Users: 200, Seed: 2}))
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("F.SourceIP"), expr.C("U.IPAddress"))},
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.ExistsPred(sub))
	native := e.EstimateCost(plan)
	g, err := e.Plan(plan, GMDJ)
	if err != nil {
		t.Fatal(err)
	}
	if e.EstimateCost(g) >= native {
		t.Errorf("GMDJ plan (%g) should be cheaper than native (%g) on a big detail table",
			e.EstimateCost(g), native)
	}
	// And Auto should therefore not pick Native here.
	_, strat, err := e.PlanAuto(plan)
	if err != nil {
		t.Fatal(err)
	}
	if strat == Native {
		t.Error("auto picked native despite the quadratic tuple-iteration cost")
	}
}

func TestCostRanksCompletionAboveBasicOnBindingless(t *testing.T) {
	e := New(datagen.KeyPair(datagen.KeyPairOpts{Rows: 10_000, Seed: 3}))
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key"))},
		OutCol: expr.C("B.b_val"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("A", "A"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE, Left: expr.C("A.a_val"), Sub: sub})
	basic, err := e.Plan(plan, GMDJ)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.Plan(plan, GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	if e.EstimateCost(opt) >= e.EstimateCost(basic) {
		t.Errorf("optimized plan (%g) should price below basic (%g) on the Figure 4 workload",
			e.EstimateCost(opt), e.EstimateCost(basic))
	}
}

func TestAutoStrategyPicksAndRuns(t *testing.T) {
	e := New(datagen.Netflow(datagen.NetflowOpts{Flows: 2_000, Hours: 6, Users: 6, Seed: 4}))
	plan := existsPlan()
	chosen, strat, err := e.PlanAuto(plan)
	if err != nil {
		t.Fatal(err)
	}
	if chosen == nil {
		t.Fatal("no plan chosen")
	}
	t.Logf("auto chose %v", strat)
	// Auto must agree with every explicit strategy.
	want, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(plan, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("auto strategy wrong: %s", d)
	}
	if Auto.String() != "auto" {
		t.Error("Auto name")
	}
}

func TestAutoSurvivesUnnestFailure(t *testing.T) {
	// Disjunctive subqueries break the Unnest rewriting; Auto must
	// skip it and still deliver a correct plan.
	e := New(datagen.Netflow(datagen.NetflowOpts{Flows: 500, Hours: 4, Users: 4, Seed: 5}))
	mk := func(alias, proto string) *algebra.Subquery {
		return &algebra.Subquery{
			Source: algebra.NewScan("Flow", alias),
			Where: &algebra.Atom{E: expr.NewAnd(
				expr.NewCmp(value.GE, expr.C(alias+".StartTime"), expr.C("H.StartInterval")),
				expr.NewCmp(value.LT, expr.C(alias+".StartTime"), expr.C("H.EndInterval")),
				expr.Eq(expr.C(alias+".Protocol"), expr.StrLit(proto)),
			)},
		}
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.Or(
		algebra.ExistsPred(mk("F1", "FTP")),
		algebra.ExistsPred(mk("F2", "DNS")),
	))
	want, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(plan, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("auto differs: %s", d)
	}
}

func TestCostSubqueryPenalizesTupleIteration(t *testing.T) {
	// A plan containing a raw subquery predicate must price in the
	// per-outer-row inner scans.
	e := New(datagen.Netflow(datagen.NetflowOpts{Flows: 20_000, Hours: 24, Users: 8, Seed: 6}))
	withSub := e.EstimateCost(existsPlan())
	plain := e.EstimateCost(algebra.Filter(algebra.NewScan("Hours", "H"),
		expr.NewCmp(value.GT, expr.C("H.HourDsc"), expr.IntLit(1))))
	if withSub < plain*10 {
		t.Errorf("subquery cost (%g) should dwarf a plain filter (%g)", withSub, plain)
	}
}
