// Package engine is the query-engine facade: it owns a catalog, plans
// nested-algebra queries under a chosen evaluation strategy, executes
// them, and explains the resulting physical plans. The four strategies
// are the paper's experimental contenders:
//
//	Native   — tuple-iteration semantics with vendor-style refinements
//	           (index lookups, first-match EXISTS, smart-nested-loop ALL)
//	Unnest   — classical join/outer-join unnesting
//	GMDJ     — Algorithm SubqueryToGMDJ, basic (Theorem 3.5)
//	GMDJOpt  — GMDJ plus coalescing and tuple completion (§4)
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/rewrite"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/unnest"
)

// Strategy selects how subqueries are evaluated.
type Strategy uint8

const (
	// Native evaluates subquery predicates with tuple-iteration
	// semantics (plus index acceleration when available).
	Native Strategy = iota
	// Unnest rewrites subqueries into joins/outer-joins first.
	Unnest
	// GMDJ rewrites subqueries into GMDJ expressions (basic algorithm).
	GMDJ
	// GMDJOpt additionally applies coalescing and tuple completion.
	GMDJOpt
	// Auto prices the four rewritings with the built-in cost model and
	// runs the cheapest — the cost-based integration the paper's
	// conclusion sketches.
	Auto
)

// String names the strategy as used in benchmark output.
func (s Strategy) String() string {
	switch s {
	case Native:
		return "native"
	case Unnest:
		return "unnest"
	case GMDJ:
		return "gmdj"
	case GMDJOpt:
		return "gmdj-opt"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Strategies lists all strategies in presentation order.
func Strategies() []Strategy { return []Strategy{Native, Unnest, GMDJ, GMDJOpt} }

// Engine executes queries against a catalog.
type Engine struct {
	cat  *storage.Catalog
	exec *exec.Executor
	// budget bounds every query run through this engine; see SetBudget.
	budget Budget
	// tracer, when non-nil, receives span and instant events for every
	// query run through this engine; see SetTracer.
	tracer *obs.Tracer
}

// Budget bounds one query evaluation: wall clock, materialized rows,
// and approximate materialized bytes. The zero Budget is unlimited.
type Budget struct {
	// Timeout is the wall-clock budget (0 = none). Exceeding it aborts
	// the query with govern.ErrTimeout.
	Timeout time.Duration
	// MaxRows caps rows materialized across all intermediate and final
	// relations (0 = unlimited); violation is govern.ErrRowBudget.
	MaxRows int64
	// MaxMemBytes caps approximate materialized bytes (0 = unlimited);
	// violation is govern.ErrMemBudget.
	MaxMemBytes int64
}

// New creates an engine over a catalog, with index use enabled. Fault
// injection honors the GMDJ_FAULTS environment variable (see
// govern.EnvFaults); production deployments leave it unset.
func New(cat *storage.Catalog) *Engine {
	ex := exec.New(cat)
	ex.Faults = govern.FromEnv()
	return &Engine{cat: cat, exec: ex}
}

// SetBudget applies a per-query budget to every subsequent Run and
// RunContext call. Not safe to call concurrently with running queries.
func (e *Engine) SetBudget(b Budget) { e.budget = b }

// SetFaultInjector installs a fault injector (tests of failure paths);
// nil disables injection.
func (e *Engine) SetFaultInjector(in *govern.Injector) { e.exec.Faults = in }

// Catalog returns the underlying catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// SetUseIndexes toggles index use by the native strategy (the
// "unindexed" benchmark variants). GMDJ plans are unaffected.
func (e *Engine) SetUseIndexes(on bool) { e.exec.UseIndexes = on }

// SetGMDJWorkers sets GMDJ scan parallelism (0/1 = serial).
func (e *Engine) SetGMDJWorkers(n int) { e.exec.GMDJWorkers = n }

// SetMemoizeSubqueries toggles Rao-Ross invariant reuse in the native
// strategy: subquery outcomes are cached per distinct correlation
// binding.
func (e *Engine) SetMemoizeSubqueries(on bool) { e.exec.MemoizeSubqueries = on }

// GMDJStats exposes the GMDJ operator counters collector.
func (e *Engine) GMDJStats() *gmdj.Stats {
	if e.exec.GMDJStats == nil {
		e.exec.GMDJStats = &gmdj.Stats{}
	}
	return e.exec.GMDJStats
}

// TableSchema implements algebra.SchemaResolver.
func (e *Engine) TableSchema(name string) (*relation.Schema, error) {
	return e.exec.TableSchema(name)
}

// Plan rewrites a logical plan according to the strategy, returning
// the plan that will actually execute.
func (e *Engine) Plan(plan algebra.Node, s Strategy) (algebra.Node, error) {
	switch s {
	case Native:
		return plan, nil
	case Unnest:
		return unnest.Unnest(plan, e.exec)
	case GMDJ:
		return rewrite.SubqueryToGMDJ(plan, e.exec)
	case GMDJOpt:
		p, err := rewrite.SubqueryToGMDJOpts(plan, e.exec, rewrite.Options{AllCounterexample: true})
		if err != nil {
			return nil, err
		}
		return rewrite.Optimize(p, e.exec)
	case Auto:
		p, _, err := e.PlanAuto(plan)
		return p, err
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", s)
	}
}

// PlanAuto prices the Native, Unnest, GMDJ, and GMDJOpt rewritings of
// the plan and returns the cheapest along with the strategy chosen.
// Rewritings that fail (e.g. Unnest on disjunctive subqueries) are
// simply not considered; Native always succeeds.
func (e *Engine) PlanAuto(plan algebra.Node) (algebra.Node, Strategy, error) {
	m := e.model()
	best, bestStrategy := plan, Native
	bestCost := math.Inf(1)
	for _, s := range Strategies() {
		p, err := e.Plan(plan, s)
		if err != nil {
			continue
		}
		if c := m.node(p).cost; c < bestCost {
			best, bestStrategy, bestCost = p, s, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return plan, Native, nil
	}
	return best, bestStrategy, nil
}

// Run plans and executes with no caller context; the engine budget
// (SetBudget) still applies.
func (e *Engine) Run(plan algebra.Node, s Strategy) (*relation.Relation, error) {
	return e.RunContext(context.Background(), plan, s)
}

// RunContext plans and executes under the caller's context and the
// engine budget. Cancellation and budget violations abort evaluation
// cooperatively (checks every few hundred rows in every operator loop,
// including parallel GMDJ workers) and surface as the govern package's
// typed errors: ErrCanceled, ErrTimeout, ErrRowBudget, ErrMemBudget.
// An operator panic is recovered at this boundary and returned as a
// *govern.InternalError wrapping govern.ErrInternal.
func (e *Engine) RunContext(ctx context.Context, plan algebra.Node, s Strategy) (*relation.Relation, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return nil, err
	}
	// When a tracer is attached, every query is observed so its spans
	// land in the ring buffer; otherwise the collector is nil and each
	// hook is one nil check.
	var col *obs.Collector
	if e.tracer != nil {
		col = obs.NewCollector(e.tracer)
	}
	rel, err := e.execute(ctx, p, col)
	e.finishQuery(s, err)
	return rel, err
}

// SetTracer attaches a span recorder: every subsequent query's
// operator spans, governance trips, and fault fires are recorded into
// t's ring buffer (see obs.Tracer.WriteJSON for export). nil disables
// tracing. Not safe to call concurrently with running queries.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Explain renders the physical plan chosen for a strategy as an
// indented operator tree.
func (e *Engine) Explain(plan algebra.Node, s Strategy) (string, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", s)
	explainNode(&b, p, 0)
	return b.String(), nil
}

// explainNode prints the static operator tree using the same labels
// the runtime stats tree carries (algebra.Describe), so EXPLAIN and
// EXPLAIN ANALYZE line up operator by operator.
func explainNode(b *strings.Builder, n algebra.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	label, extras := algebra.Describe(n)
	fmt.Fprintf(b, "%s%s\n", indent, label)
	for _, x := range extras {
		fmt.Fprintf(b, "%s  %s\n", indent, x)
	}
	for _, ch := range n.Children() {
		explainNode(b, ch, depth+1)
	}
}

// ExplainAnalyze plans, executes, and renders the plan annotated with
// per-operator runtime statistics: actual wall time, output rows,
// approximate bytes, and operator-specific counters (hash-index
// probes, fallback θ-scans, tuples retired by completion, per-worker
// partition row counts). The query's result is discarded; use
// RunObserved to get both.
func (e *Engine) ExplainAnalyze(ctx context.Context, plan algebra.Node, s Strategy) (string, error) {
	_, root, err := e.RunObserved(ctx, plan, s)
	if err != nil {
		return "", err
	}
	return FormatAnalyzed(s, root), nil
}

// FormatAnalyzed renders a stats tree from RunObserved in EXPLAIN
// ANALYZE form.
func FormatAnalyzed(s Strategy, root *obs.Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s (analyzed)\n", s)
	b.WriteString(obs.FormatTree(root))
	return b.String()
}

// RunObserved is RunContext with per-operator statistics collection:
// it returns the result relation together with the root of the stats
// tree mirroring the executed plan. Span events go to the engine
// tracer when one is set (SetTracer).
func (e *Engine) RunObserved(ctx context.Context, plan algebra.Node, s Strategy) (*relation.Relation, *obs.Op, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return nil, nil, err
	}
	col := obs.NewCollector(e.tracer)
	rel, err := e.execute(ctx, p, col)
	e.finishQuery(s, err)
	if err != nil {
		return nil, col.Root(), err
	}
	return rel, col.Root(), nil
}

// execute runs an already-rewritten physical plan under the engine
// budget, the caller's context, and an optional collector.
func (e *Engine) execute(ctx context.Context, p algebra.Node, col *obs.Collector) (*relation.Relation, error) {
	// Fast path: no budget and a context that can never be canceled
	// (Background/TODO) need no governor, so benchmark hot loops skip
	// even the per-row atomic tick.
	if e.budget == (Budget{}) && ctx.Done() == nil {
		return e.exec.RunObserved(p, nil, col)
	}
	if e.budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.budget.Timeout)
		defer cancel()
	}
	gov := govern.New(ctx, govern.Budget{MaxRows: e.budget.MaxRows, MaxMemBytes: e.budget.MaxMemBytes})
	return e.exec.RunObserved(p, gov, col)
}

// finishQuery flushes the per-query process metrics and records
// governance trips into the trace.
func (e *Engine) finishQuery(s Strategy, err error) {
	obs.MetricAdd("queries."+s.String(), 1)
	if err != nil {
		kind := errKind(err)
		obs.MetricAdd("errors."+kind, 1)
		e.tracer.Instant("govern", kind, err.Error())
	}
}

// errKind maps a query error onto the governance taxonomy used by the
// errors.<kind> process metrics.
func errKind(err error) string {
	switch {
	case errors.Is(err, govern.ErrCanceled):
		return "canceled"
	case errors.Is(err, govern.ErrTimeout):
		return "timeout"
	case errors.Is(err, govern.ErrRowBudget):
		return "row_budget"
	case errors.Is(err, govern.ErrMemBudget):
		return "mem_budget"
	case errors.Is(err, govern.ErrInternal):
		return "internal"
	default:
		return "other"
	}
}
