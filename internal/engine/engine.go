// Package engine is the query-engine facade: it owns a catalog, plans
// nested-algebra queries under a chosen evaluation strategy, executes
// them, and explains the resulting physical plans. The four strategies
// are the paper's experimental contenders:
//
//	Native   — tuple-iteration semantics with vendor-style refinements
//	           (index lookups, first-match EXISTS, smart-nested-loop ALL)
//	Unnest   — classical join/outer-join unnesting
//	GMDJ     — Algorithm SubqueryToGMDJ, basic (Theorem 3.5)
//	GMDJOpt  — GMDJ plus coalescing and tuple completion (§4)
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/plancache"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/rewrite"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/unnest"
)

// Strategy selects how subqueries are evaluated.
type Strategy uint8

const (
	// Native evaluates subquery predicates with tuple-iteration
	// semantics (plus index acceleration when available).
	Native Strategy = iota
	// Unnest rewrites subqueries into joins/outer-joins first.
	Unnest
	// GMDJ rewrites subqueries into GMDJ expressions (basic algorithm).
	GMDJ
	// GMDJOpt additionally applies coalescing and tuple completion.
	GMDJOpt
	// Auto prices the four rewritings with the built-in cost model and
	// runs the cheapest — the cost-based integration the paper's
	// conclusion sketches.
	Auto
)

// String names the strategy as used in benchmark output.
func (s Strategy) String() string {
	switch s {
	case Native:
		return "native"
	case Unnest:
		return "unnest"
	case GMDJ:
		return "gmdj"
	case GMDJOpt:
		return "gmdj-opt"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Strategies lists all strategies in presentation order.
func Strategies() []Strategy { return []Strategy{Native, Unnest, GMDJ, GMDJOpt} }

// Engine executes queries against a catalog.
type Engine struct {
	cat  *storage.Catalog
	exec *exec.Executor
	// budget bounds every query run through this engine; see SetBudget.
	budget Budget
	// tracer, when non-nil, receives span and instant events for every
	// query run through this engine; see SetTracer.
	tracer *obs.Tracer
	// observer, when non-nil, receives workload-level signals for every
	// query: live in-flight registration, latency/row histograms, and
	// slow-query log records; see SetObserver.
	observer *obs.Observer
	// fastPath permits the governor-free execution path; see
	// WithGovernorFastPath.
	fastPath bool
	// plans, when non-nil, is the parameterized plan cache consulted by
	// API layers above the engine; the engine itself only hosts it so
	// one cache serves every entry point over this catalog.
	plans *plancache.Cache
	// results, when non-nil, memoizes cross-query invariants (subquery
	// source materializations, GMDJ detail-side hash vectors); it is
	// threaded into the executor.
	results *plancache.ResultCache
	// Memory-adaptive execution knobs (see memory.go). memLimit <= 0
	// leaves tracked allocation unlimited; spillDirSet records whether
	// spillRoot was set explicitly ("" then means spilling disabled —
	// the kill regime — rather than "use the default scratch root").
	memLimit    int64
	admission   time.Duration
	spillRoot   string
	spillDirSet bool
	// parallelism is the configured morsel-driven execution degree
	// (default runtime.GOMAXPROCS(0), overridable by GMDJ_PARALLEL or
	// SetParallelism); the executor receives it clamped by the memory
	// accountant (mem.ClampParallelism) whenever either knob changes.
	parallelism int
	// pool is the engine-wide byte pool queries draw reservations from;
	// spillStore backs spilled operator state and the result cache's
	// cold tier. Both nil when memLimit is unset.
	pool       *mem.Pool
	spillStore *spill.Store
	// store is the durable columnar tier (nil when persistence is off);
	// recovery is the report from opening it, dataDirOwned marks an
	// env-derived directory the engine removes on Close, and
	// lastCkptEpoch is the catalog schema epoch as of the last
	// successful checkpoint (-1 = never), driving transparent
	// checkpointing in maybeCheckpoint.
	store         *storage.DiskStore
	recovery      *storage.RecoveryReport
	dataDirOwned  bool
	lastCkptEpoch atomic.Int64
}

// Budget bounds one query evaluation: wall clock, materialized rows,
// and approximate materialized bytes. The zero Budget is unlimited.
type Budget struct {
	// Timeout is the wall-clock budget (0 = none). Exceeding it aborts
	// the query with govern.ErrTimeout.
	Timeout time.Duration
	// MaxRows caps rows materialized across all intermediate and final
	// relations (0 = unlimited); violation is govern.ErrRowBudget.
	MaxRows int64
	// MaxMemBytes caps approximate materialized bytes (0 = unlimited);
	// violation is govern.ErrMemBudget.
	MaxMemBytes int64
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithGovernorFastPath toggles the governor-free hot path: when on
// (the default) a query with no budget, no memory pool, and an
// uncancelable context (see govern.Uncancelable for the exact
// predicate and its contract) runs without a governor, skipping even
// the per-row atomic tick — what benchmark hot loops want. Turning it
// off forces a governor onto every query, which is useful when an
// operator's cooperative-cancellation path itself is under test, or
// when a deployment wants uniform accounting regardless of budgets.
// The fast path changes only governance, never observability: the
// collector, tracer spans, and live-registry counters flow
// identically on both paths (engine tests assert this equivalence).
func WithGovernorFastPath(on bool) Option {
	return func(e *Engine) { e.fastPath = on }
}

// WithObserver attaches a workload observer at construction; see
// SetObserver.
func WithObserver(o *obs.Observer) Option {
	return func(e *Engine) { e.SetObserver(o) }
}

// New creates an engine over a catalog, with index use enabled and the
// governor fast path on. Fault injection honors the GMDJ_FAULTS
// environment variable (see govern.EnvFaults) and memory limits honor
// GMDJ_MEM (see mem.EnvMem); production deployments configure both
// explicitly or leave them unset.
func New(cat *storage.Catalog, opts ...Option) *Engine {
	ex := exec.New(cat)
	ex.Faults = govern.FromEnv()
	e := &Engine{cat: cat, exec: ex, fastPath: true}
	e.parallelism = runtime.GOMAXPROCS(0)
	e.applyEnvParallelism()
	for _, opt := range opts {
		opt(e)
	}
	e.applyEnvMem()
	e.applyEnvData()
	e.applyParallelism()
	return e
}

// EnvParallel is the environment variable overriding the default
// morsel-driven execution degree for a whole process, e.g.
// GMDJ_PARALLEL=4 (1 = serial). Explicit SetParallelism calls override
// it; malformed or non-positive values are ignored.
const EnvParallel = "GMDJ_PARALLEL"

// applyEnvParallelism folds the GMDJ_PARALLEL default under any
// explicit configuration (explicit setters run after New and
// override).
func (e *Engine) applyEnvParallelism() {
	s := strings.TrimSpace(os.Getenv(EnvParallel))
	if s == "" {
		return
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		fmt.Fprintf(os.Stderr, "engine: ignoring %s=%q: want a positive integer\n", EnvParallel, s)
		return
	}
	e.parallelism = n
}

// SetBudget applies a per-query budget to every subsequent Run and
// RunContext call. Not safe to call concurrently with running queries.
func (e *Engine) SetBudget(b Budget) { e.budget = b }

// SetFaultInjector installs a fault injector (tests of failure paths);
// nil disables injection. The scratch spill store is rebuilt and the
// durable store re-armed so disk sites (spill.write, spill.read,
// storage.write, storage.read, storage.manifest) see the new injector
// too.
func (e *Engine) SetFaultInjector(in *govern.Injector) {
	e.exec.Faults = in
	e.reconfigureMemory()
	if e.store != nil {
		e.store.SetFaults(in)
	}
}

// Catalog returns the underlying catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// SetUseIndexes toggles index use by the native strategy (the
// "unindexed" benchmark variants). GMDJ plans are unaffected.
func (e *Engine) SetUseIndexes(on bool) { e.exec.UseIndexes = on }

// SetParallelism sets the engine's morsel-driven execution degree:
// how many workers each parallel operator pipeline (scan morsels
// through filters and projections, hash-join build/probe, GMDJ detail
// scans) may use. n <= 0 restores the default,
// runtime.GOMAXPROCS(0). 1 forces serial execution. The effective
// degree is clamped by the memory accountant when a pool is installed
// (see mem.ClampParallelism): per-worker pipeline scratch must fit the
// engine memory limit. Not safe to call concurrently with running
// queries.
func (e *Engine) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.parallelism = n
	e.applyParallelism()
}

// Parallelism reports the configured (pre-clamp) execution degree.
func (e *Engine) Parallelism() int { return e.parallelism }

// applyParallelism installs the effective degree on the executor,
// after the memory accountant's clamp.
func (e *Engine) applyParallelism() {
	e.exec.Parallelism = mem.ClampParallelism(e.memLimit, e.parallelism)
}

// SetGMDJWorkers sets GMDJ scan parallelism.
//
// Deprecated: parallelism is engine-wide now; use SetParallelism. This
// alias keeps old callers working (n <= 0 means serial here, matching
// the historical contract).
func (e *Engine) SetGMDJWorkers(n int) {
	if n <= 0 {
		n = 1
	}
	e.SetParallelism(n)
}

// SetMemoizeSubqueries toggles Rao-Ross invariant reuse in the native
// strategy: subquery outcomes are cached per distinct correlation
// binding.
func (e *Engine) SetMemoizeSubqueries(on bool) { e.exec.MemoizeSubqueries = on }

// SetPlanCache installs (or removes, with nil) the parameterized plan
// cache hosted by this engine. Not safe to call concurrently with
// running queries.
func (e *Engine) SetPlanCache(c *plancache.Cache) { e.plans = c }

// PlanCache returns the engine's plan cache, or nil.
func (e *Engine) PlanCache() *plancache.Cache { return e.plans }

// SetResultCache installs (or removes, with nil) the cross-query
// result memo and threads it into the executor, which uses it for
// uncorrelated subquery sources and GMDJ detail-side hash vectors. Not
// safe to call concurrently with running queries.
func (e *Engine) SetResultCache(c *plancache.ResultCache) {
	e.results = c
	e.exec.Results = c
	// Rewire the cache into the memory subsystem: the pool reclaims
	// pressure by demoting the cache's LRU tail, and the cache's cold
	// tier shares the engine scratch store.
	if e.pool != nil {
		if c != nil {
			e.pool.SetReclaim(c.SpillDown)
		} else {
			e.pool.SetReclaim(nil)
		}
	}
	if c != nil && e.spillStore != nil {
		c.EnableSpill(e.spillStore)
	}
}

// ResultCache returns the engine's result memo, or nil.
func (e *Engine) ResultCache() *plancache.ResultCache { return e.results }

// GMDJStats exposes the GMDJ operator counters collector.
func (e *Engine) GMDJStats() *gmdj.Stats {
	if e.exec.GMDJStats == nil {
		e.exec.GMDJStats = &gmdj.Stats{}
	}
	return e.exec.GMDJStats
}

// TableSchema implements algebra.SchemaResolver.
func (e *Engine) TableSchema(name string) (*relation.Schema, error) {
	return e.exec.TableSchema(name)
}

// Plan rewrites a logical plan according to the strategy, returning
// the plan that will actually execute.
func (e *Engine) Plan(plan algebra.Node, s Strategy) (algebra.Node, error) {
	switch s {
	case Native:
		return plan, nil
	case Unnest:
		return unnest.Unnest(plan, e.exec)
	case GMDJ:
		return rewrite.SubqueryToGMDJ(plan, e.exec)
	case GMDJOpt:
		p, err := rewrite.SubqueryToGMDJOpts(plan, e.exec, rewrite.Options{AllCounterexample: true})
		if err != nil {
			return nil, err
		}
		return rewrite.Optimize(p, e.exec)
	case Auto:
		p, _, err := e.PlanAuto(plan)
		return p, err
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", s)
	}
}

// PlanAuto prices the Native, Unnest, GMDJ, and GMDJOpt rewritings of
// the plan and returns the cheapest along with the strategy chosen.
// Rewritings that fail (e.g. Unnest on disjunctive subqueries) are
// simply not considered; Native always succeeds.
func (e *Engine) PlanAuto(plan algebra.Node) (algebra.Node, Strategy, error) {
	m := e.model()
	best, bestStrategy := plan, Native
	bestCost := math.Inf(1)
	for _, s := range Strategies() {
		p, err := e.Plan(plan, s)
		if err != nil {
			continue
		}
		if c := m.node(p).cost; c < bestCost {
			best, bestStrategy, bestCost = p, s, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return plan, Native, nil
	}
	return best, bestStrategy, nil
}

// Run plans and executes with no caller context; the engine budget
// (SetBudget) still applies.
func (e *Engine) Run(plan algebra.Node, s Strategy) (*relation.Relation, error) {
	return e.RunContext(context.Background(), plan, s)
}

// RunContext plans and executes under the caller's context and the
// engine budget. Cancellation and budget violations abort evaluation
// cooperatively (checks every few hundred rows in every operator loop,
// including parallel GMDJ workers) and surface as the govern package's
// typed errors: ErrCanceled, ErrTimeout, ErrRowBudget, ErrMemBudget.
// An operator panic is recovered at this boundary and returned as a
// *govern.InternalError wrapping govern.ErrInternal.
func (e *Engine) RunContext(ctx context.Context, plan algebra.Node, s Strategy) (*relation.Relation, error) {
	return e.RunQueryContext(ctx, "", plan, s)
}

// RunQueryContext is RunContext carrying the query's source text, so
// the observer's live registry and slow-query log can show the SQL
// behind a plan. Callers holding only a hand-built plan pass "".
func (e *Engine) RunQueryContext(ctx context.Context, text string, plan algebra.Node, s Strategy) (*relation.Relation, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return nil, err
	}
	rel, _, err := e.runQuery(ctx, text, p, s, false)
	return rel, err
}

// RunPlannedContext executes a plan that has already been through
// Plan (e.g. a plan-cache hit or a bound prepared statement), skipping
// the strategy rewrite entirely. The strategy argument only labels the
// run for the observer and metrics.
func (e *Engine) RunPlannedContext(ctx context.Context, text string, phys algebra.Node, s Strategy) (*relation.Relation, error) {
	rel, _, err := e.runQuery(ctx, text, phys, s, false)
	return rel, err
}

// SetTracer attaches a span recorder: every subsequent query's
// operator spans, governance trips, and fault fires are recorded into
// t's ring buffer (see obs.Tracer.WriteJSON for export). nil disables
// tracing. Not safe to call concurrently with running queries.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// SetObserver attaches a workload observer: every subsequent query is
// registered in the live in-flight registry while it runs, sampled
// into the latency and row-count histograms when it finishes, and
// offered to the slow-query log. Attaching an observer also forces
// per-operator stats collection (the slow-query log stores the full
// EXPLAIN ANALYZE tree). nil disables workload observation. Not safe
// to call concurrently with running queries.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.observer = o
	// The dashboard's /debug/olap/mem endpoint snapshots the engine's
	// memory posture on demand; the closure reads whatever pool and
	// store are current at request time.
	o.SetMemSource(func() any { return e.MemStatus() })
	// Likewise /debug/olap/trace streams whatever tracer is current —
	// a nil tracer exports a valid empty trace rather than 404ing, so
	// the endpoint's presence tracks observability, not tracing.
	o.SetTraceSource(func(w io.Writer) error { return e.tracer.WriteJSON(w) })
}

// Observer returns the attached observer (nil when workload
// observation is off).
func (e *Engine) Observer() *obs.Observer { return e.observer }

// Explain renders the physical plan chosen for a strategy as an
// indented operator tree.
func (e *Engine) Explain(plan algebra.Node, s Strategy) (string, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", s)
	explainNode(&b, p, 0)
	return b.String(), nil
}

// explainNode prints the static operator tree using the same labels
// the runtime stats tree carries (algebra.Describe), so EXPLAIN and
// EXPLAIN ANALYZE line up operator by operator.
func explainNode(b *strings.Builder, n algebra.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	label, extras := algebra.Describe(n)
	fmt.Fprintf(b, "%s%s\n", indent, label)
	for _, x := range extras {
		fmt.Fprintf(b, "%s  %s\n", indent, x)
	}
	for _, ch := range n.Children() {
		explainNode(b, ch, depth+1)
	}
}

// ExplainAnalyze plans, executes, and renders the plan annotated with
// per-operator runtime statistics: actual wall time, output rows,
// approximate bytes, and operator-specific counters (hash-index
// probes, fallback θ-scans, tuples retired by completion, per-worker
// partition row counts). The query's result is discarded; use
// RunObserved to get both.
func (e *Engine) ExplainAnalyze(ctx context.Context, plan algebra.Node, s Strategy) (string, error) {
	_, root, err := e.RunObserved(ctx, plan, s)
	if err != nil {
		return "", err
	}
	return FormatAnalyzed(s, root), nil
}

// FormatAnalyzed renders a stats tree from RunObserved in EXPLAIN
// ANALYZE form.
func FormatAnalyzed(s Strategy, root *obs.Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s (analyzed)\n", s)
	b.WriteString(obs.FormatTree(root))
	return b.String()
}

// RunObserved is RunContext with per-operator statistics collection:
// it returns the result relation together with the root of the stats
// tree mirroring the executed plan. Span events go to the engine
// tracer when one is set (SetTracer).
func (e *Engine) RunObserved(ctx context.Context, plan algebra.Node, s Strategy) (*relation.Relation, *obs.Op, error) {
	return e.RunObservedQuery(ctx, "", plan, s)
}

// RunObservedQuery is RunObserved carrying the query's source text for
// the observer's live registry and slow-query log.
func (e *Engine) RunObservedQuery(ctx context.Context, text string, plan algebra.Node, s Strategy) (*relation.Relation, *obs.Op, error) {
	p, err := e.Plan(plan, s)
	if err != nil {
		return nil, nil, err
	}
	return e.runQuery(ctx, text, p, s, true)
}

// runQuery executes an already-rewritten physical plan through the
// single PhysicalPlan.Run contract (see physical.go, where all the
// observability and governance wiring lives), materializing the batch
// stream back into a relation for the row-oriented public surface.
func (e *Engine) runQuery(ctx context.Context, text string, p algebra.Node, s Strategy, forceCollect bool) (*relation.Relation, *obs.Op, error) {
	pp := &PhysicalPlan{eng: e, root: p, strategy: s, text: text, collect: forceCollect}
	var sink RelationSink
	if err := pp.Run(ctx, &sink); err != nil {
		return nil, pp.stats, err
	}
	return sink.Rel, pp.stats, nil
}

// execute runs an already-rewritten physical plan under the engine
// budget, the caller's context, an optional collector, and an optional
// live-registry entry.
func (e *Engine) execute(ctx context.Context, p algebra.Node, col *obs.Collector, live *obs.LiveQuery) (*relation.Relation, error) {
	// Durable tier first: flush any writes since the last checkpoint so
	// the data this query reads is also the data a crash would recover.
	e.maybeCheckpoint()
	// Governor-free hot path (WithGovernorFastPath, on by default): no
	// budget, no pool, and an uncancelable context need no governor, so
	// benchmark hot loops skip even the per-row atomic tick.
	// govern.Uncancelable names the predicate and carries the contract.
	// Observability is independent of governance — the collector and
	// live counters flow on both paths.
	if e.fastPath && e.budget == (Budget{}) && govern.Uncancelable(ctx) && e.pool == nil {
		return e.exec.RunLive(p, nil, col, live)
	}
	if e.budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.budget.Timeout)
		defer cancel()
	}
	gov := govern.New(ctx, govern.Budget{MaxRows: e.budget.MaxRows, MaxMemBytes: e.budget.MaxMemBytes})
	if e.pool != nil {
		// Admission control: block until the pool can seed this query's
		// reservation, shedding with mem.ErrAdmissionTimeout when the
		// deadline passes first. The reservation rides on the governor so
		// every operator can reach it without signature changes.
		res, err := e.pool.Acquire(ctx, mem.DefaultQueryReserve)
		if err != nil {
			return nil, govern.MapContextErr(err)
		}
		defer res.Release()
		gov.AttachReservation(res)
	}
	return e.exec.RunLive(p, gov, col, live)
}

// finishQuery flushes the per-query process metrics and records
// governance trips into the trace.
func (e *Engine) finishQuery(s Strategy, err error) {
	obs.MetricAdd("queries."+s.String(), 1)
	if err != nil {
		kind := errKind(err)
		obs.MetricAdd("errors."+kind, 1)
		e.tracer.Instant("govern", kind, err.Error())
	}
}

// errKind maps a query error onto the governance taxonomy used by the
// errors.<kind> process metrics.
func errKind(err error) string {
	switch {
	case errors.Is(err, govern.ErrCanceled):
		return "canceled"
	case errors.Is(err, govern.ErrTimeout):
		return "timeout"
	case errors.Is(err, govern.ErrRowBudget):
		return "row_budget"
	case errors.Is(err, govern.ErrMemBudget):
		return "mem_budget"
	case errors.Is(err, mem.ErrAdmissionTimeout):
		return "admission_timeout"
	case errors.Is(err, mem.ErrPoolClosed):
		return "closed"
	case errors.Is(err, storage.ErrSegmentCorrupt):
		return "segment_corrupt"
	case errors.Is(err, spill.ErrSpillIO):
		return "spill_io"
	case errors.Is(err, govern.ErrInternal):
		return "internal"
	default:
		return "other"
	}
}
