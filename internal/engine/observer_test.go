package engine

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/value"
)

// TestObserverFastPathRecordsSamples pins the contract of the
// governor-free hot path: a plain Run (no budget, Background context)
// skips the governor but must still feed the observer — histogram
// samples, a slow-query log record carrying the full stats tree, and
// cost-model estimates annotated onto it.
func TestObserverFastPathRecordsSamples(t *testing.T) {
	e := testEngine()
	o := obs.NewObserver(obs.ObserverConfig{})
	e.SetObserver(o)

	rel, err := e.Run(existsPlan(), GMDJOpt)
	if err != nil {
		t.Fatal(err)
	}
	h := o.Histograms()
	if h["query_ns.gmdj-opt"].Count != 1 {
		t.Errorf("fast path did not record a latency sample: %v", h)
	}
	if h["query_rows.gmdj-opt"].P50 != int64(rel.Len()) {
		t.Errorf("row histogram p50 = %d, want %d", h["query_rows.gmdj-opt"].P50, rel.Len())
	}
	if h["op_ns.scan"].Count == 0 || h["op_ns.gmdj"].Count == 0 {
		t.Errorf("operator-kind histograms not sampled: %v", h)
	}
	recs := o.SlowLog().Entries()
	if len(recs) != 1 || recs[0].Stats == nil {
		t.Fatalf("slowlog should capture the stats tree on the fast path: %+v", recs)
	}
	if recs[0].Stats.Find("GMDJ") == nil {
		t.Errorf("slowlog stats tree lacks the GMDJ operator:\n%s", obs.FormatTree(recs[0].Stats))
	}
	if recs[0].Stats.EstRows == nil {
		t.Error("slowlog stats tree lacks cost-model estimates")
	}
	if n := len(o.InFlight()); n != 0 {
		t.Errorf("query still registered in-flight after completion: %d", n)
	}
}

// TestGovernorFastPathOption: results and observer samples are
// identical with the fast path forced off — the option changes only
// whether a (never-tripping) governor rides along.
func TestGovernorFastPathOption(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 300, Hours: 4, Users: 6, Seed: 3})
	var want string
	for _, fast := range []bool{true, false} {
		e := New(cat, WithGovernorFastPath(fast))
		o := obs.NewObserver(obs.ObserverConfig{})
		e.SetObserver(o)
		rel, err := e.Run(existsPlan(), GMDJOpt)
		if err != nil {
			t.Fatalf("fastPath=%v: %v", fast, err)
		}
		if fast {
			want = rel.String()
		} else if rel.String() != want {
			t.Errorf("governed run differs from fast-path run:\n%s\nvs\n%s", rel.String(), want)
		}
		if o.Histograms()["query_ns.gmdj-opt"].Count != 1 {
			t.Errorf("fastPath=%v: no latency sample recorded", fast)
		}
	}
}

// TestLiveQueryDashboardDuringScan is the live-registry acceptance
// test: while a long GMDJ detail scan runs, /debug/olap/queries must
// show the query in flight with advancing row counters; cancellation
// then unregisters it and the slow-query log records the aborted run.
func TestLiveQueryDashboardDuringScan(t *testing.T) {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 250_000, Hours: 24, Users: 6, Seed: 1})
	o := obs.NewObserver(obs.ObserverConfig{})
	e := New(cat, WithObserver(o))
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Overlap θ with no equi-binding and no detail-only filter: every
	// detail row scans the active base set, so the scan is long enough
	// to observe and cancel.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
		)},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))

	const sql = "SELECT * FROM Hours H WHERE EXISTS (SELECT * FROM Flow F WHERE ...)"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := e.RunQueryContext(ctx, sql, plan, GMDJ)
		done <- err
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := http.Get(srv.URL + "/debug/olap/queries")
		if err != nil {
			t.Fatal(err)
		}
		var live []obs.LiveSnapshot
		err = json.NewDecoder(res.Body).Decode(&live)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(live) == 1 && live[0].Scanned > 0 && live[0].DetailRows > 0 {
			if live[0].SQL != sql {
				t.Errorf("dashboard SQL = %q, want %q", live[0].SQL, sql)
			}
			if live[0].Strategy != "gmdj" {
				t.Errorf("dashboard strategy = %q, want gmdj", live[0].Strategy)
			}
			break
		}
		select {
		case err := <-done:
			t.Fatalf("query finished (err=%v) before the dashboard observed it", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("dashboard never showed the in-flight query: %+v", live)
		}
		time.Sleep(200 * time.Microsecond)
	}

	cancel()
	if err := <-done; !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("canceled scan returned %v, want govern.ErrCanceled", err)
	}
	if n := len(o.InFlight()); n != 0 {
		t.Errorf("in-flight registry not drained after cancellation: %d", n)
	}
	recs := o.SlowLog().Entries()
	if len(recs) != 1 || recs[0].Outcome != "canceled" {
		t.Errorf("slowlog should record the canceled run: %+v", recs)
	}
}

// TestSlowLogGoldenJSON pins the slow-query log's exported JSON shape:
// run one query through the observer, normalize the wall-clock fields,
// and compare against the golden document. Breaking this golden means
// breaking every downstream slowlog consumer.
func TestSlowLogGoldenJSON(t *testing.T) {
	e := testEngine()
	o := obs.NewObserver(obs.ObserverConfig{})
	e.SetObserver(o)
	const sql = "SELECT * FROM Hours H WHERE EXISTS (...)"
	if _, err := e.RunQueryContext(context.Background(), sql, existsPlan(), GMDJOpt); err != nil {
		t.Fatal(err)
	}
	recs := obs.NormalizeRecords(o.SlowLog().Entries())
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(buf.String(), "\n"); got != goldenSlowLog {
		t.Errorf("slowlog JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", got, goldenSlowLog)
	}
}

const goldenSlowLog = `[
  {
    "time": "0001-01-01T00:00:00Z",
    "sql": "SELECT * FROM Hours H WHERE EXISTS (...)",
    "strategy": "gmdj-opt",
    "elapsed_ns": 0,
    "rows": 4,
    "outcome": "ok",
    "stats": {
      "label": "Project [H.HourDsc, H.StartInterval, H.EndInterval]",
      "rows": 4,
      "bytes": 576,
      "elapsed_ns": 0,
      "counters": [
        {
          "name": "workers",
          "value": 1
        },
        {
          "name": "batches",
          "value": 1
        }
      ],
      "children": [
        {
          "label": "Select [cnt1 > 0]",
          "rows": 4,
          "bytes": 736,
          "elapsed_ns": 0,
          "counters": [
            {
              "name": "workers",
              "value": 1
            },
            {
              "name": "batches",
              "value": 1
            }
          ],
          "children": [
            {
              "label": "GMDJ +completion+freeze (1 conditions)",
              "extras": [
                "cond: (count(*) -> cnt1 | θ: (F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval AND F.Protocol = 'FTP'))"
              ],
              "rows": 4,
              "bytes": 736,
              "elapsed_ns": 0,
              "counters": [
                {
                  "name": "workers",
                  "value": 1
                },
                {
                  "name": "batches",
                  "value": 1
                },
                {
                  "name": "detail_rows",
                  "value": 33
                },
                {
                  "name": "probes",
                  "value": 12
                },
                {
                  "name": "matches",
                  "value": 4
                },
                {
                  "name": "completed",
                  "value": 4
                },
                {
                  "name": "short_circuit_rows",
                  "value": 267
                },
                {
                  "name": "fallback_conds",
                  "value": 1
                }
              ],
              "children": [
                {
                  "label": "Scan Hours->H",
                  "rows": 4,
                  "bytes": 576,
                  "elapsed_ns": 0,
                  "est_rows": 4
                },
                {
                  "label": "Scan Flow->F",
                  "rows": 300,
                  "bytes": 75000,
                  "elapsed_ns": 0,
                  "est_rows": 300
                }
              ],
              "est_rows": 3
            }
          ],
          "est_rows": 1
        }
      ],
      "est_rows": 1
    }
  }
]`
