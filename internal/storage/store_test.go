package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func testCatalog(t *testing.T, rows int) *Catalog {
	t.Helper()
	cat := NewCatalog()
	cat.Register(NewTable("tricky", trickyRel(rows)))
	small := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "s", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "s", Name: "v", Type: value.KindString},
	))
	small.Append(relation.Tuple{value.Int(1), value.Str("one")})
	small.Append(relation.Tuple{value.Int(2), value.Str("two")})
	cat.Register(NewTable("small", small))
	return cat
}

func mustOpen(t *testing.T, dir string, faults *govern.Injector) *DiskStore {
	t.Helper()
	ds, err := OpenDiskStore(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mustFaults(t *testing.T, spec string) *govern.Injector {
	t.Helper()
	in, err := govern.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func relsIdentical(t *testing.T, name string, got, want *relation.Relation) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("table %s: schema mismatch", name)
	}
	if got.Len() != want.Len() {
		t.Fatalf("table %s: %d rows, want %d", name, got.Len(), want.Len())
	}
	for i := range want.Rows {
		for c := range want.Rows[i] {
			if !cellIdentical(got.Rows[i][c], want.Rows[i][c]) {
				t.Fatalf("table %s cell (%d,%d): got %v want %v", name, i, c, got.Rows[i][c], want.Rows[i][c])
			}
		}
	}
}

func TestDiskStoreCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 2*ZoneBlockRows+31)
	ds := mustOpen(t, dir, nil)
	gen, err := ds.Checkpoint(cat)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first checkpoint committed generation %d, want 1", gen)
	}

	cat2 := NewCatalog()
	ds2 := mustOpen(t, dir, nil)
	rep, err := ds2.Recover(cat2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 || len(rep.Quarantined) != 0 || rep.SkippedManifests != 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("recovered tables %v", rep.Tables)
	}
	for _, name := range cat.Names() {
		want, _ := cat.Table(name)
		got, err := cat2.Table(name)
		if err != nil {
			t.Fatalf("table %s missing after recovery", name)
		}
		relsIdentical(t, name, got.Rel, want.Rel)
	}
}

func TestDiskStoreSkipsUnchangedTables(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 100)
	ds := mustOpen(t, dir, nil)
	if _, err := ds.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for _, s := range ds.Segments(cat) {
		files[s.Table] = s.File
	}

	// Nothing changed: no new generation, no new segment writes.
	written := ds.Stats(cat).SegmentsWritten
	gen, err := ds.Checkpoint(cat)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("no-op checkpoint advanced to generation %d", gen)
	}
	if w := ds.Stats(cat).SegmentsWritten; w != written {
		t.Fatalf("no-op checkpoint wrote %d segments", w-written)
	}

	// Touch one table: only it is rewritten, the other keeps its file.
	small, _ := cat.Table("small")
	small.Rel.Append(relation.Tuple{value.Int(3), value.Str("three")})
	small.BumpVersion()
	if gen, err = ds.Checkpoint(cat); err != nil || gen != 2 {
		t.Fatalf("gen=%d err=%v", gen, err)
	}
	for _, s := range ds.Segments(cat) {
		switch s.Table {
		case "small":
			if s.File == files["small"] {
				t.Fatal("dirty table kept its old segment file")
			}
			if s.Rows != 3 {
				t.Fatalf("small re-persisted with %d rows", s.Rows)
			}
		case "tricky":
			if s.File != files["tricky"] {
				t.Fatal("clean table was rewritten")
			}
		}
	}
}

func TestDiskStoreRecoverQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 600)
	ds := mustOpen(t, dir, nil)
	if _, err := ds.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	var trickyFile string
	for _, s := range ds.Segments(cat) {
		if s.Table == "tricky" {
			trickyFile = s.File
		}
	}
	path := filepath.Join(dir, trickyFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cat2 := NewCatalog()
	ds2 := mustOpen(t, dir, nil)
	rep, err := ds2.Recover(cat2)
	if err != nil {
		t.Fatalf("recovery must not fail on a corrupt segment: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Table != "tricky" {
		t.Fatalf("quarantined %+v, want exactly tricky", rep.Quarantined)
	}
	if len(rep.Tables) != 1 || rep.Tables[0] != "small" {
		t.Fatalf("intact tables %v, want [small]", rep.Tables)
	}
	// The quarantined table exists with its schema and a typed error.
	tab, err := cat2.Table("tricky")
	if err != nil {
		t.Fatal("quarantined table must still be registered")
	}
	if err := tab.CheckQuarantine(); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("CheckQuarantine = %v, want ErrSegmentCorrupt", err)
	}
	origTricky, _ := cat.Table("tricky")
	if !tab.Rel.Schema.Equal(origTricky.Rel.Schema) {
		t.Fatal("quarantined table lost its schema")
	}
	// The unaffected table recovered intact.
	small, _ := cat2.Table("small")
	orig, _ := cat.Table("small")
	relsIdentical(t, "small", small.Rel, orig.Rel)

	// A checkpoint with the quarantine still in place carries the old
	// entry forward rather than clobbering the only copy of the bytes.
	if _, err := ds2.Checkpoint(cat2); err != nil {
		t.Fatal(err)
	}
	for _, s := range ds2.Segments(cat2) {
		if s.Table == "tricky" {
			if s.File != trickyFile {
				t.Fatalf("quarantined table's entry rewritten to %s", s.File)
			}
			if !s.Quarantined {
				t.Fatal("Segments does not report the quarantine")
			}
		}
	}

	// Re-creating the table over its quarantine heals it on the next
	// checkpoint.
	cat2.Register(NewTable("tricky", trickyRel(10)))
	if _, err := ds2.Checkpoint(cat2); err != nil {
		t.Fatal(err)
	}
	cat3 := NewCatalog()
	rep3, err := mustOpen(t, dir, nil).Recover(cat3)
	if err != nil || len(rep3.Quarantined) != 0 {
		t.Fatalf("after heal: err=%v quarantined=%+v", err, rep3.Quarantined)
	}
}

func TestDiskStoreTornManifestFallsBack(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 50)
	ds := mustOpen(t, dir, nil)
	if _, err := ds.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	small, _ := cat.Table("small")
	small.Rel.Append(relation.Tuple{value.Int(9), value.Str("nine")})
	small.BumpVersion()
	if _, err := ds.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	// Tear the newest manifest: recovery must fall back to generation 1
	// and report the skip.
	if err := os.Truncate(filepath.Join(dir, manifestName(2)), 9); err != nil {
		t.Fatal(err)
	}
	cat2 := NewCatalog()
	rep, err := mustOpen(t, dir, nil).Recover(cat2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 || rep.SkippedManifests != 1 {
		t.Fatalf("recovered generation %d with %d skips, want 1/1", rep.Generation, rep.SkippedManifests)
	}
	got, _ := cat2.Table("small")
	if got.Rel.Len() != 2 {
		t.Fatalf("fallback generation has %d small rows, want the pre-append 2", got.Rel.Len())
	}
}

func TestDiskStoreWriteFaultLeavesPreviousGeneration(t *testing.T) {
	for _, action := range []string{"enospc", "shortwrite"} {
		t.Run(action, func(t *testing.T) {
			dir := t.TempDir()
			cat := testCatalog(t, 40)
			ds := mustOpen(t, dir, nil)
			if _, err := ds.Checkpoint(cat); err != nil {
				t.Fatal(err)
			}
			small, _ := cat.Table("small")
			small.Rel.Append(relation.Tuple{value.Int(4), value.Str("four")})
			small.BumpVersion()
			ds.SetFaults(mustFaults(t, SiteWrite+"="+action))
			gen, err := ds.Checkpoint(cat)
			if err == nil {
				t.Fatalf("checkpoint under %s fault succeeded", action)
			}
			if gen != 1 {
				t.Fatalf("failed checkpoint reported generation %d, want previous 1", gen)
			}
			// The store on disk is still the clean generation 1.
			cat2 := NewCatalog()
			rep, err := mustOpen(t, dir, nil).Recover(cat2)
			if err != nil || rep.Generation != 1 || len(rep.Quarantined) != 0 {
				t.Fatalf("recovery after failed checkpoint: gen=%d err=%v %+v", rep.Generation, err, rep.Quarantined)
			}
			got, _ := cat2.Table("small")
			if got.Rel.Len() != 2 {
				t.Fatalf("recovered %d small rows, want 2", got.Rel.Len())
			}
			// Clearing the fault lets the same data commit.
			ds.SetFaults(nil)
			if gen, err := ds.Checkpoint(cat); err != nil || gen != 2 {
				t.Fatalf("post-fault checkpoint: gen=%d err=%v", gen, err)
			}
		})
	}
}

func TestDiskStoreManifestFaultAbortsCommit(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 20)
	ds := mustOpen(t, dir, mustFaults(t, SiteManifest+"=enospc"))
	if _, err := ds.Checkpoint(cat); err == nil {
		t.Fatal("manifest write fault did not fail the checkpoint")
	}
	// Nothing committed: a recovery sees a fresh store even though
	// segment files were written (unreachable garbage).
	cat2 := NewCatalog()
	rep, err := mustOpen(t, dir, nil).Recover(cat2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 0 || len(cat2.Names()) != 0 {
		t.Fatalf("uncommitted checkpoint became visible: gen=%d tables=%v", rep.Generation, cat2.Names())
	}
}

func TestDiskStoreDroppedTableLeavesNextGeneration(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 30)
	ds := mustOpen(t, dir, nil)
	if _, err := ds.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	cat.Drop("small")
	if gen, err := ds.Checkpoint(cat); err != nil || gen != 2 {
		t.Fatalf("gen=%d err=%v", gen, err)
	}
	cat2 := NewCatalog()
	rep, err := mustOpen(t, dir, nil).Recover(cat2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 {
		t.Fatalf("recovered generation %d", rep.Generation)
	}
	if _, err := cat2.Table("small"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	if _, err := cat2.Table("tricky"); err != nil {
		t.Fatal("surviving table lost")
	}
}

func TestDiskStoreGCKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog(t, 25)
	ds := mustOpen(t, dir, nil)
	small, _ := cat.Table("small")
	for i := 0; i < 5; i++ {
		small.Rel.Append(relation.Tuple{value.Int(int64(10 + i)), value.Str("x")})
		small.BumpVersion()
		if _, err := ds.Checkpoint(cat); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var manifests []uint64
	for _, e := range entries {
		if gen, ok := parseManifestName(e.Name()); ok {
			manifests = append(manifests, gen)
		}
	}
	if len(manifests) != 2 {
		t.Fatalf("GC kept %d manifests (%v), want current+previous", len(manifests), manifests)
	}
	// Both retained generations must recover.
	for _, truncateNewest := range []bool{false, true} {
		d2 := t.TempDir()
		copyDir(t, dir, d2)
		if truncateNewest {
			if err := os.Truncate(filepath.Join(d2, manifestName(5)), 5); err != nil {
				t.Fatal(err)
			}
		}
		cat2 := NewCatalog()
		rep, err := mustOpen(t, d2, nil).Recover(cat2)
		if err != nil || len(rep.Quarantined) != 0 {
			t.Fatalf("truncateNewest=%v: err=%v quarantined=%+v", truncateNewest, err, rep.Quarantined)
		}
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCatalogConcurrentDDL exercises the catalog's lock discipline
// under the race detector: concurrent Register/Drop/Table/Names must
// be safe.
func TestCatalogConcurrentDDL(t *testing.T) {
	cat := NewCatalog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					cat.Register(NewTable(name, trickyRel(3)))
				case 1:
					if tab, err := cat.Table(name); err == nil {
						_, _ = tab.QuarantineReason()
					}
				case 2:
					_ = cat.Names()
					_ = cat.SchemaEpoch()
				case 3:
					if g%2 == 0 {
						cat.Drop(name)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
