// Package storage provides named tables, secondary indexes, a catalog,
// CSV import/export, and the durable columnar tier. It is the engine's
// "disk" in both senses: the native evaluation strategy depends on the
// secondary indexes (the paper's Figure 5 contrasts indexed and
// unindexed native/join evaluation), while persistence packs every
// table into an immutable columnar Segment — per-column blocks with
// dictionary/run-length encoding and per-block min/max zone maps —
// written as FNV-checksummed GSPL frames and committed by an atomic,
// generation-numbered manifest (see DiskStore). Recovery quarantines
// corrupt or torn segments instead of failing: unaffected tables keep
// serving and queries touching a quarantined table return
// ErrSegmentCorrupt.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// HashIndex is an equality index over one column, mapping value hashes
// to row positions. Probes verify equality, so hash collisions are
// harmless. NULLs are not indexed (SQL equality never matches NULL).
type HashIndex struct {
	col     int
	rel     *relation.Relation
	buckets map[uint64][]int
}

// NewHashIndex builds an index over column position col of rel.
func NewHashIndex(rel *relation.Relation, col int) *HashIndex {
	ix := &HashIndex{col: col, rel: rel, buckets: make(map[uint64][]int)}
	for i, row := range rel.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		h := v.Hash()
		ix.buckets[h] = append(ix.buckets[h], i)
	}
	return ix
}

// Lookup returns the positions of rows whose indexed column equals v.
// Looking up NULL returns nothing.
func (ix *HashIndex) Lookup(v value.Value) []int {
	if v.IsNull() {
		return nil
	}
	cand := ix.buckets[v.Hash()]
	if len(cand) == 0 {
		return nil
	}
	out := make([]int, 0, len(cand))
	for _, i := range cand {
		if value.Equal(ix.rel.Rows[i][ix.col], v) {
			out = append(out, i)
		}
	}
	return out
}

// Column returns the indexed column position.
func (ix *HashIndex) Column() int { return ix.col }

// SortedIndex orders row positions by one column, enabling range scans
// for non-equality correlation predicates in the native strategy.
// NULLs sort first and are excluded from range results.
type SortedIndex struct {
	col   int
	rel   *relation.Relation
	order []int // row positions sorted by column value, NULLs first
	nulls int   // count of leading NULL entries
}

// NewSortedIndex builds a sorted index over column position col.
func NewSortedIndex(rel *relation.Relation, col int) *SortedIndex {
	ix := &SortedIndex{col: col, rel: rel, order: make([]int, len(rel.Rows))}
	for i := range ix.order {
		ix.order[i] = i
	}
	sort.SliceStable(ix.order, func(a, b int) bool {
		va, vb := rel.Rows[ix.order[a]][col], rel.Rows[ix.order[b]][col]
		if va.IsNull() {
			return !vb.IsNull()
		}
		if vb.IsNull() {
			return false
		}
		c, _ := value.Compare(va, vb)
		return c < 0
	})
	for _, pos := range ix.order {
		if !rel.Rows[pos][col].IsNull() {
			break
		}
		ix.nulls++
	}
	return ix
}

// Range returns the positions of rows whose column value v satisfies
// lo ≤/< v ≤/< hi. A NULL bound means unbounded on that side. NULL
// cells never match.
func (ix *SortedIndex) Range(lo value.Value, loIncl bool, hi value.Value, hiIncl bool) []int {
	vals := ix.order[ix.nulls:]
	at := func(i int) value.Value { return ix.rel.Rows[vals[i]][ix.col] }
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(vals), func(i int) bool {
			c, _ := value.Compare(at(i), lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(vals)
	if !hi.IsNull() {
		end = sort.Search(len(vals), func(i int) bool {
			c, _ := value.Compare(at(i), hi)
			if hiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, end-start)
	copy(out, vals[start:end])
	return out
}

// Table is a named relation plus its secondary indexes. Index presence
// is part of the experimental setup: benchmarks drop indexes to study
// strategy stability, exactly as the paper does.
type Table struct {
	Name string
	Rel  *relation.Relation

	hashIdx   map[string]*HashIndex
	sortedIdx map[string]*SortedIndex

	// id is the process-unique identity assigned at registration;
	// version counts data and index mutations. Cache keys embed
	// "t<id>v<version>", so any write makes older entries unreachable.
	id      uint64
	version atomic.Uint64
	// epochs points at the owning catalog's schema epoch (nil before
	// registration) so index changes invalidate compiled plans too.
	epochs *atomic.Uint64

	// segMu guards the lazily built packed-columnar image of the table;
	// segVersion records which table version it reflects.
	segMu      sync.Mutex
	seg        *Segment
	segVersion uint64

	// quarantine, when set, records why the table's durable segment
	// failed recovery; queries touching the table fail with
	// ErrSegmentCorrupt until it is rewritten.
	quarantine atomic.Pointer[string]
}

// NewTable wraps a relation as a named table.
func NewTable(name string, rel *relation.Relation) *Table {
	return &Table{
		Name:      name,
		Rel:       rel,
		hashIdx:   make(map[string]*HashIndex),
		sortedIdx: make(map[string]*SortedIndex),
	}
}

// BuildHashIndex creates (or rebuilds) a hash index over the named
// column.
func (t *Table) BuildHashIndex(col string) error {
	pos, err := t.Rel.Schema.Find("", col)
	if err != nil {
		return fmt.Errorf("storage: table %s: %w", t.Name, err)
	}
	t.hashIdx[col] = NewHashIndex(t.Rel, pos)
	t.BumpVersion()
	return nil
}

// BuildSortedIndex creates (or rebuilds) a sorted index over the named
// column.
func (t *Table) BuildSortedIndex(col string) error {
	pos, err := t.Rel.Schema.Find("", col)
	if err != nil {
		return fmt.Errorf("storage: table %s: %w", t.Name, err)
	}
	t.sortedIdx[col] = NewSortedIndex(t.Rel, pos)
	t.BumpVersion()
	return nil
}

// HashIndexOn returns the hash index on col, if one exists.
func (t *Table) HashIndexOn(col string) (*HashIndex, bool) {
	ix, ok := t.hashIdx[col]
	return ix, ok
}

// SortedIndexOn returns the sorted index on col, if one exists.
func (t *Table) SortedIndexOn(col string) (*SortedIndex, bool) {
	ix, ok := t.sortedIdx[col]
	return ix, ok
}

// DropIndexes removes all secondary indexes (for the unindexed
// benchmark variants).
func (t *Table) DropIndexes() {
	t.hashIdx = make(map[string]*HashIndex)
	t.sortedIdx = make(map[string]*SortedIndex)
	t.BumpVersion()
}

// ID returns the table's process-unique identity (0 before the table
// is registered in a catalog).
func (t *Table) ID() uint64 { return t.id }

// Version returns the table's mutation counter.
func (t *Table) Version() uint64 { return t.version.Load() }

// BumpVersion records a data or index mutation: it advances the
// table's version (unreaching every memoized result keyed on the old
// one) and the owning catalog's schema epoch (invalidating compiled
// plans, which may have frozen index-based access-path choices).
// Writers must call it after appending rows outside the DDL layer.
func (t *Table) BumpVersion() {
	t.version.Add(1)
	if t.epochs != nil {
		t.epochs.Add(1)
	}
}

// IndexedColumns lists columns that carry any index, sorted for
// deterministic EXPLAIN output.
func (t *Table) IndexedColumns() []string {
	set := map[string]bool{}
	for c := range t.hashIdx {
		set[c] = true
	}
	for c := range t.sortedIdx {
		set[c] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
