package storage

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// ZoneBlockRows is the block granularity of zone maps: every
// ZoneBlockRows consecutive rows of a column share one min/max entry.
const ZoneBlockRows = 1024

// ZoneMap summarizes one block of one column for scan pruning: the
// minimum and maximum non-NULL cell (both value.Null when the block
// holds only NULLs or the column is mixed-kind) and whether any cell
// is NULL.
type ZoneMap struct {
	Min, Max value.Value
	HasNull  bool
	Rows     int
}

// CanPrune reports whether a block summarized by z can be skipped for
// the predicate "cell op lit": true only when no row of the block can
// satisfy it. NULL cells never satisfy a comparison, so a block may be
// pruned even when HasNull is set. It is conservative: absent or
// incomparable statistics keep the block.
func (z ZoneMap) CanPrune(op value.CmpOp, lit value.Value) bool {
	if z.Min.IsNull() || z.Max.IsNull() || lit.IsNull() {
		return false
	}
	cmin, okMin := value.Compare(z.Min, lit)
	cmax, okMax := value.Compare(z.Max, lit)
	if !okMin || !okMax {
		return false
	}
	switch op {
	case value.EQ:
		return cmin > 0 || cmax < 0
	case value.NE:
		return cmin == 0 && cmax == 0
	case value.LT:
		return cmin >= 0
	case value.LE:
		return cmin > 0
	case value.GT:
		return cmax <= 0
	case value.GE:
		return cmax < 0
	}
	return false
}

// Segment is an immutable packed-columnar image of one table: the
// schema, every column as a ColVec, and per-block zone maps. Segments
// are what the durable store persists and what the executor's
// batch-oriented scan and the GMDJ's detail-key hashing read.
type Segment struct {
	Table  string
	Schema *relation.Schema
	Rows   int
	Cols   []*ColVec
	// Zones holds one zone-map slice per column; all columns share the
	// same block boundaries (ZoneBlockRows).
	Zones [][]ZoneMap
}

// BuildSegment packs rel into a segment.
func BuildSegment(table string, rel *relation.Relation) *Segment {
	s := &Segment{
		Table:  table,
		Schema: rel.Schema.Clone(),
		Rows:   len(rel.Rows),
		Cols:   make([]*ColVec, rel.Schema.Len()),
	}
	for c := range s.Cols {
		s.Cols[c] = buildColVec(rel, c)
	}
	s.buildZones()
	return s
}

// buildZones computes the per-block min/max statistics from the packed
// columns. Zone maps are derived data: never persisted, always rebuilt
// (BuildSegment and decodeSegment both end here), so disk corruption
// cannot desynchronize them from the cells.
func (s *Segment) buildZones() {
	s.Zones = make([][]ZoneMap, len(s.Cols))
	nblocks := (s.Rows + ZoneBlockRows - 1) / ZoneBlockRows
	for ci, col := range s.Cols {
		zones := make([]ZoneMap, nblocks)
		for b := range zones {
			lo := b * ZoneBlockRows
			hi := min(lo+ZoneBlockRows, s.Rows)
			z := ZoneMap{Rows: hi - lo}
			for i := lo; i < hi; i++ {
				if col.Nulls[i] {
					z.HasNull = true
					continue
				}
				if col.Boxed != nil {
					// Mixed columns keep no min/max: cross-kind Compare
					// is partial, so the stats could be unsound.
					continue
				}
				v := col.Value(i)
				if z.Min.IsNull() {
					z.Min, z.Max = v, v
					continue
				}
				if c, ok := value.Compare(v, z.Min); ok && c < 0 {
					z.Min = v
				}
				if c, ok := value.Compare(v, z.Max); ok && c > 0 {
					z.Max = v
				}
			}
			zones[b] = z
		}
		s.Zones[ci] = zones
	}
}

// NumBlocks returns how many zone-map blocks the segment spans.
func (s *Segment) NumBlocks() int {
	return (s.Rows + ZoneBlockRows - 1) / ZoneBlockRows
}

// Relation rebuilds the row-oriented relation the segment was packed
// from, cell for cell. Used by recovery to repopulate the catalog.
func (s *Segment) Relation() *relation.Relation {
	rel := relation.New(s.Schema.Clone())
	for i := 0; i < s.Rows; i++ {
		row := make(relation.Tuple, len(s.Cols))
		for c, col := range s.Cols {
			row[c] = col.Value(i)
		}
		rel.Append(row)
	}
	return rel
}

// KeyHashes computes the GMDJ detail-key hash vector straight from the
// packed columns: for each row, the FNV-1a mix of value.Hash over the
// key columns, with ok=false (and hash 0) when any key cell is NULL.
// The result is bit-identical to hashing the row-oriented tuples —
// both sides reduce to value.Hash on structurally equal cells — so the
// GMDJ can consume either interchangeably.
func (s *Segment) KeyHashes(key []int) (h []uint64, ok []bool) {
	h = make([]uint64, s.Rows)
	ok = make([]bool, s.Rows)
	for i := 0; i < s.Rows; i++ {
		acc := uint64(14695981039346656037)
		valid := true
		for _, c := range key {
			col := s.Cols[c]
			if col.Nulls[i] {
				valid = false
				break
			}
			acc ^= col.Value(i).Hash()
			acc *= 1099511628211
		}
		if valid {
			h[i], ok[i] = acc, true
		}
	}
	return h, ok
}

// Segment returns the table's packed columnar image, built lazily and
// cached until the table's version changes (any insert or index
// mutation). Safe for concurrent readers.
func (t *Table) Segment() *Segment {
	t.segMu.Lock()
	defer t.segMu.Unlock()
	v := t.Version()
	if t.seg == nil || t.segVersion != v {
		t.seg = BuildSegment(t.Name, t.Rel)
		t.segVersion = v
	}
	return t.seg
}

// setSegment seeds the cache with a freshly decoded segment (recovery:
// the segment IS the source of the relation, so rebuilding it would be
// wasted work).
func (t *Table) setSegment(s *Segment) {
	t.segMu.Lock()
	defer t.segMu.Unlock()
	t.seg = s
	t.segVersion = t.Version()
}

// Quarantine marks the table's durable image corrupt: queries touching
// it fail with ErrSegmentCorrupt (see CheckQuarantine) while the rest
// of the catalog keeps serving.
func (t *Table) Quarantine(reason string) {
	t.quarantine.Store(&reason)
}

// QuarantineReason returns the quarantine reason, if the table is
// quarantined.
func (t *Table) QuarantineReason() (string, bool) {
	p := t.quarantine.Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// CheckQuarantine returns a typed ErrSegmentCorrupt error when the
// table is quarantined, nil otherwise. Scans call it before reading.
func (t *Table) CheckQuarantine() error {
	if reason, ok := t.QuarantineReason(); ok {
		return fmt.Errorf("storage: table %s: %w: %s", t.Name, ErrSegmentCorrupt, reason)
	}
	return nil
}
