package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
)

// ErrSegmentCorrupt classifies durable-storage corruption: a segment
// that failed checksum or structural verification, or a query touching
// a table quarantined by recovery. Match it with errors.Is. Unlike
// ErrSpillIO it is not retryable — the bytes on disk are wrong and
// stay wrong until the table is rewritten.
var ErrSegmentCorrupt = errors.New("segment corrupt")

// Fault-injection sites interpreted by the durable store (see
// govern.EnvFaults for the disk actions they accept, including "torn").
const (
	// SiteWrite covers segment-file persistence.
	SiteWrite = "storage.write"
	// SiteRead covers segment re-reads during recovery.
	SiteRead = "storage.read"
	// SiteManifest covers manifest commit and recovery-time manifest
	// reads.
	SiteManifest = "storage.manifest"
)

// tableState tracks what the last committed manifest holds for one
// table, so checkpoints skip tables whose id+version are unchanged and
// carry quarantined tables' old entries forward instead of
// overwriting the only copy of their (corrupt but maybe repairable)
// bytes with an empty relation.
type tableState struct {
	entry   manifestEntry
	id      uint64
	version uint64
	carry   bool // quarantined: never rewrite, reference the old file
}

// DiskStore is the durable tier: a directory of immutable segment
// files committed by generation-numbered manifests. One store owns one
// directory; Checkpoint and Recover serialize on an internal mutex.
type DiskStore struct {
	dir    string
	faults *govern.Injector

	mu        sync.Mutex
	gen       uint64
	state     map[string]*tableState
	prevFiles map[string]bool // files of the previous generation (GC keep-set)

	segsWritten   atomic.Int64
	segsRecovered atomic.Int64
	quarantined   atomic.Int64
	checkpoints   atomic.Int64
	recoveries    atomic.Int64
	skippedMans   atomic.Int64
	bytesWritten  atomic.Int64
	bytesRead     atomic.Int64
}

// QuarantinedTable describes one table recovery had to quarantine.
type QuarantinedTable struct {
	Table  string `json:"table"`
	File   string `json:"file"`
	Reason string `json:"reason"`
}

// RecoveryReport summarizes what Recover found.
type RecoveryReport struct {
	// Generation is the recovered manifest generation (0: fresh store).
	Generation uint64 `json:"generation"`
	// Tables lists tables recovered intact, sorted.
	Tables []string `json:"tables"`
	// Quarantined lists tables whose segments failed verification.
	Quarantined []QuarantinedTable `json:"quarantined,omitempty"`
	// SkippedManifests counts newer manifests that failed verification
	// before a valid generation was found (torn manifest commits).
	SkippedManifests int `json:"skipped_manifests"`
}

// DiskStoreStats is a point-in-time snapshot of store activity, the
// source of the olap_storage_* metric families.
type DiskStoreStats struct {
	Dir               string `json:"dir"`
	Generation        uint64 `json:"generation"`
	Tables            int    `json:"tables"`
	QuarantinedTables int    `json:"quarantined_tables"`
	SegmentsWritten   int64  `json:"segments_written"`
	SegmentsRecovered int64  `json:"segments_recovered"`
	Quarantined       int64  `json:"quarantined_total"`
	Checkpoints       int64  `json:"checkpoints"`
	Recoveries        int64  `json:"recoveries"`
	SkippedManifests  int64  `json:"skipped_manifests"`
	BytesWritten      int64  `json:"bytes_written"`
	BytesRead         int64  `json:"bytes_read"`
}

// SegmentInfo describes one table's durable state (olapql \segments).
type SegmentInfo struct {
	Table       string `json:"table"`
	File        string `json:"file"`
	Rows        uint64 `json:"rows"`
	Quarantined bool   `json:"quarantined"`
	Reason      string `json:"reason,omitempty"`
}

// OpenDiskStore opens (creating if needed) the durable store rooted at
// dir. faults may be nil. Call Recover next to load the latest
// committed generation.
func OpenDiskStore(dir string, faults *govern.Injector) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir %s: %v", dir, err)
	}
	return &DiskStore{dir: dir, faults: faults, state: map[string]*tableState{}, prevFiles: map[string]bool{}}, nil
}

// Dir returns the store's directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// Generation returns the last committed generation (0 before any
// checkpoint on a fresh store).
func (ds *DiskStore) Generation() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.gen
}

// SetFaults swaps the fault injector (the engine rebuilds its injector
// when tests reconfigure GMDJ_FAULTS mid-process).
func (ds *DiskStore) SetFaults(faults *govern.Injector) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.faults = faults
}

// Recover replays the newest valid manifest into cat: every entry's
// segment file is read back, checksum-verified, and registered as a
// table; a segment that fails verification quarantines its table (the
// table exists, queries against it return ErrSegmentCorrupt, and the
// next checkpoint carries its old file forward) rather than failing
// recovery. Newer manifests that fail verification are skipped —
// recovery walks back generation by generation until one commits.
func (ds *DiskStore) Recover(cat *Catalog) (*RecoveryReport, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	report := &RecoveryReport{}
	names, err := ds.manifestNamesDesc()
	if err != nil {
		return nil, err
	}
	var m *manifest
	for _, name := range names {
		cand, err := ds.readManifest(name)
		if err != nil {
			report.SkippedManifests++
			ds.skippedMans.Add(1)
			obs.MetricAdd("storage.manifests_skipped", 1)
			continue
		}
		m = cand
		break
	}
	ds.recoveries.Add(1)
	obs.MetricAdd("storage.recoveries", 1)
	if m == nil {
		return report, nil // fresh store (or nothing valid: start empty)
	}
	ds.gen = m.Generation
	report.Generation = m.Generation
	ds.state = map[string]*tableState{}
	ds.prevFiles = map[string]bool{}
	for _, e := range m.Entries {
		ds.prevFiles[e.File] = true
		seg, err := ds.readSegmentFile(e.File)
		if err == nil && (seg.Table != e.Table || uint64(seg.Rows) != e.Rows || !seg.Schema.Equal(e.Schema)) {
			err = fmt.Errorf("%w: %s: segment does not match manifest entry (table %q rows %d)", ErrSegmentCorrupt, e.File, seg.Table, seg.Rows)
		}
		var t *Table
		if err != nil {
			t = NewTable(e.Table, relation.New(e.Schema.Clone()))
			t.Quarantine(err.Error())
			report.Quarantined = append(report.Quarantined, QuarantinedTable{Table: e.Table, File: e.File, Reason: err.Error()})
			ds.quarantined.Add(1)
			obs.MetricAdd("storage.segments_quarantined", 1)
		} else {
			t = NewTable(e.Table, seg.Relation())
			t.setSegment(seg)
			report.Tables = append(report.Tables, e.Table)
			ds.segsRecovered.Add(1)
			obs.MetricAdd("storage.segments_recovered", 1)
		}
		cat.Register(t)
		ds.state[e.Table] = &tableState{entry: e, id: t.ID(), version: t.Version(), carry: err != nil}
	}
	sort.Strings(report.Tables)
	return report, nil
}

// Checkpoint persists every table of cat whose data changed since the
// last checkpoint (or recovery) and commits the result as a new
// generation. Unchanged tables keep their existing segment files;
// quarantined tables carry their old entries forward untouched. On any
// error the previous generation remains the committed one — partial
// segment files are unreachable garbage the next successful
// checkpoint's GC removes.
func (ds *DiskStore) Checkpoint(cat *Catalog) (uint64, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	gen := ds.gen + 1
	var entries []manifestEntry
	newState := map[string]*tableState{}
	dirty := false
	for idx, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue // dropped between Names and Table; the drop marks dirty below
		}
		st := ds.state[name]
		if st != nil && st.carry {
			if _, quarantined := t.QuarantineReason(); quarantined {
				entries = append(entries, st.entry)
				newState[name] = st
				continue
			}
			// The table was re-created over its quarantine: fall through
			// and rewrite it.
		}
		if st != nil && !st.carry && st.id == t.ID() && st.version == t.Version() {
			entries = append(entries, st.entry)
			newState[name] = st
			continue
		}
		seg := t.Segment()
		data := encodeSegment(seg)
		file := fmt.Sprintf("%s-%d-%d.seg", sanitizeFileStem(name), gen, idx)
		if err := writeDurableFile(ds.dir, file, data, SiteWrite, ds.faults); err != nil {
			return ds.gen, err
		}
		ds.segsWritten.Add(1)
		ds.bytesWritten.Add(int64(len(data)))
		obs.MetricAdd("storage.segments_written", 1)
		obs.MetricAdd("storage.bytes_written", int64(len(data)))
		e := manifestEntry{Table: name, File: file, Rows: uint64(seg.Rows), Schema: seg.Schema}
		entries = append(entries, e)
		newState[name] = &tableState{entry: e, id: t.ID(), version: t.Version()}
		dirty = true
	}
	for name := range ds.state {
		if _, ok := newState[name]; !ok {
			dirty = true // dropped table
		}
	}
	if !dirty && ds.gen > 0 {
		return ds.gen, nil // nothing changed since the committed generation
	}
	m := &manifest{Generation: gen, Entries: entries}
	if err := writeDurableFile(ds.dir, manifestName(gen), encodeManifest(m), SiteManifest, ds.faults); err != nil {
		return ds.gen, err
	}
	prev := ds.gen
	prevFiles := map[string]bool{}
	for _, st := range ds.state {
		prevFiles[st.entry.File] = true
	}
	ds.gen = gen
	ds.state = newState
	ds.checkpoints.Add(1)
	obs.MetricAdd("storage.checkpoints", 1)
	ds.gcLocked(prev, prevFiles)
	ds.prevFiles = prevFiles
	return gen, nil
}

// gcLocked removes manifests older than the previous generation and
// segment files referenced by neither the new nor the previous
// generation. Conservative: the previous generation stays fully
// recoverable in case the latest manifest is later found torn.
func (ds *DiskStore) gcLocked(prevGen uint64, prevFiles map[string]bool) {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{}
	for _, st := range ds.state {
		keep[st.entry.File] = true
	}
	for f := range prevFiles {
		keep[f] = true
	}
	for _, e := range entries {
		name := e.Name()
		if gen, ok := parseManifestName(name); ok {
			if gen < prevGen {
				os.Remove(filepath.Join(ds.dir, name))
			}
			continue
		}
		if strings.HasSuffix(name, ".seg") && !keep[name] {
			os.Remove(filepath.Join(ds.dir, name))
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(ds.dir, name))
		}
	}
}

// Segments reports the durable state of every table in the committed
// generation, sorted by table name.
func (ds *DiskStore) Segments(cat *Catalog) []SegmentInfo {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]SegmentInfo, 0, len(ds.state))
	for name, st := range ds.state {
		info := SegmentInfo{Table: name, File: st.entry.File, Rows: st.entry.Rows}
		if t, err := cat.Table(name); err == nil {
			if reason, ok := t.QuarantineReason(); ok {
				info.Quarantined = true
				info.Reason = reason
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// Stats snapshots store activity.
func (ds *DiskStore) Stats(cat *Catalog) DiskStoreStats {
	ds.mu.Lock()
	gen := ds.gen
	tables := len(ds.state)
	ds.mu.Unlock()
	quarantined := 0
	if cat != nil {
		for _, name := range cat.Names() {
			if t, err := cat.Table(name); err == nil {
				if _, ok := t.QuarantineReason(); ok {
					quarantined++
				}
			}
		}
	}
	return DiskStoreStats{
		Dir:               ds.dir,
		Generation:        gen,
		Tables:            tables,
		QuarantinedTables: quarantined,
		SegmentsWritten:   ds.segsWritten.Load(),
		SegmentsRecovered: ds.segsRecovered.Load(),
		Quarantined:       ds.quarantined.Load(),
		Checkpoints:       ds.checkpoints.Load(),
		Recoveries:        ds.recoveries.Load(),
		SkippedManifests:  ds.skippedMans.Load(),
		BytesWritten:      ds.bytesWritten.Load(),
		BytesRead:         ds.bytesRead.Load(),
	}
}

// manifestNamesDesc lists manifest filenames, newest generation first.
func (ds *DiskStore) manifestNamesDesc() ([]string, error) {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading data dir %s: %v", ds.dir, err)
	}
	type cand struct {
		name string
		gen  uint64
	}
	var cands []cand
	for _, e := range entries {
		if gen, ok := parseManifestName(e.Name()); ok {
			cands = append(cands, cand{e.Name(), gen})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gen > cands[j].gen })
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.name
	}
	return names, nil
}

// readManifest loads and verifies one manifest file, enacting
// recovery-time faults at storage.manifest.
func (ds *DiskStore) readManifest(name string) (*manifest, error) {
	if err := ds.faults.Fire(SiteManifest, nil); err != nil {
		return nil, fmt.Errorf("storage: %s: %w", SiteManifest, err)
	}
	path := filepath.Join(ds.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %v", path, err)
	}
	if ds.faults.Disk(SiteManifest) == govern.DiskCorrupt && len(data) > spill.FrameOverhead {
		data = append([]byte(nil), data...)
		data[spill.FrameOverhead] ^= 0xFF
	}
	ds.bytesRead.Add(int64(len(data)))
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	if gen, ok := parseManifestName(name); !ok || gen != m.Generation {
		return nil, fmt.Errorf("storage: %s: generation %d does not match filename", name, m.Generation)
	}
	return m, nil
}

// readSegmentFile loads and verifies one segment file, enacting
// recovery-time faults at storage.read. Every failure wraps
// ErrSegmentCorrupt.
func (ds *DiskStore) readSegmentFile(name string) (*Segment, error) {
	if err := ds.faults.Fire(SiteRead, nil); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, name, err)
	}
	path := filepath.Join(ds.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s: %v", ErrSegmentCorrupt, name, err)
	}
	if ds.faults.Disk(SiteRead) == govern.DiskCorrupt && len(data) > spill.FrameOverhead {
		data = append([]byte(nil), data...)
		data[spill.FrameOverhead] ^= 0xFF
	}
	ds.bytesRead.Add(int64(len(data)))
	obs.MetricAdd("storage.bytes_read", int64(len(data)))
	seg, err := decodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, name, err)
	}
	return seg, nil
}

// sanitizeFileStem maps a table name onto filename-safe bytes;
// uniqueness comes from the generation+index suffix, so collisions
// here are harmless.
func sanitizeFileStem(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "table"
	}
	return b.String()
}
