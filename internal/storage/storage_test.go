package storage

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func sampleRel() *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "id", Type: value.KindInt},
		relation.Column{Name: "name", Type: value.KindString},
		relation.Column{Name: "score", Type: value.KindFloat},
	)
	r := relation.New(s)
	r.Append(relation.Tuple{value.Int(1), value.Str("ann"), value.Float(1.5)})
	r.Append(relation.Tuple{value.Int(2), value.Str("bob"), value.Null})
	r.Append(relation.Tuple{value.Int(3), value.Str("cat"), value.Float(-2)})
	r.Append(relation.Tuple{value.Int(2), value.Str("dup"), value.Float(0)})
	r.Append(relation.Tuple{value.Null, value.Str("nil"), value.Float(9)})
	return r
}

func TestHashIndexLookup(t *testing.T) {
	r := sampleRel()
	ix := NewHashIndex(r, 0)
	got := ix.Lookup(value.Int(2))
	if len(got) != 2 {
		t.Fatalf("Lookup(2) = %v, want 2 rows", got)
	}
	for _, pos := range got {
		if r.Rows[pos][0].AsInt() != 2 {
			t.Errorf("row %d has wrong key", pos)
		}
	}
	if ix.Lookup(value.Int(99)) != nil {
		t.Error("Lookup(99) should be empty")
	}
	if ix.Lookup(value.Null) != nil {
		t.Error("Lookup(NULL) must be empty — SQL equality never matches NULL")
	}
	if ix.Column() != 0 {
		t.Error("Column()")
	}
}

func TestSortedIndexRange(t *testing.T) {
	r := sampleRel()
	ix := NewSortedIndex(r, 0) // ids: NULL,1,2,2,3
	ids := func(pos []int) []int64 {
		out := make([]int64, len(pos))
		for i, p := range pos {
			out[i] = r.Rows[p][0].AsInt()
		}
		return out
	}
	got := ids(ix.Range(value.Int(2), true, value.Null, false))
	if len(got) != 3 {
		t.Fatalf(">=2 gave %v", got)
	}
	got = ids(ix.Range(value.Int(2), false, value.Null, false))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf(">2 gave %v", got)
	}
	got = ids(ix.Range(value.Null, false, value.Int(2), false))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("<2 gave %v", got)
	}
	got = ids(ix.Range(value.Int(1), true, value.Int(2), true))
	if len(got) != 3 {
		t.Fatalf("[1,2] gave %v", got)
	}
	// Unbounded both sides returns all non-NULL.
	if got := ix.Range(value.Null, false, value.Null, false); len(got) != 4 {
		t.Fatalf("unbounded gave %d rows, want 4 (NULL excluded)", len(got))
	}
	// Empty range.
	if got := ix.Range(value.Int(10), true, value.Int(20), true); got != nil {
		t.Fatalf("empty range gave %v", got)
	}
}

func TestSortedIndexRangeProperty(t *testing.T) {
	f := func(raw []int64, lo, hi int64) bool {
		s := relation.NewSchema(relation.Column{Name: "x", Type: value.KindInt})
		r := relation.New(s)
		for _, x := range raw {
			r.Append(relation.Tuple{value.Int(x % 50)})
		}
		if lo %= 50; lo < 0 {
			lo = -lo
		}
		if hi %= 50; hi < 0 {
			hi = -hi
		}
		ix := NewSortedIndex(r, 0)
		got := ix.Range(value.Int(lo), true, value.Int(hi), false)
		want := 0
		for _, x := range raw {
			if v := x % 50; v >= lo && v < hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableIndexManagement(t *testing.T) {
	tbl := NewTable("t", sampleRel())
	if err := tbl.BuildHashIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildSortedIndex("score"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.HashIndexOn("id"); !ok {
		t.Error("hash index missing")
	}
	if _, ok := tbl.SortedIndexOn("score"); !ok {
		t.Error("sorted index missing")
	}
	if _, ok := tbl.HashIndexOn("name"); ok {
		t.Error("unexpected index")
	}
	cols := tbl.IndexedColumns()
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "score" {
		t.Errorf("IndexedColumns = %v", cols)
	}
	tbl.DropIndexes()
	if len(tbl.IndexedColumns()) != 0 {
		t.Error("DropIndexes left indexes behind")
	}
	if err := tbl.BuildHashIndex("missing"); err == nil {
		t.Error("indexing a missing column should fail")
	}
	if err := tbl.BuildSortedIndex("missing"); err == nil {
		t.Error("sorted-indexing a missing column should fail")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Register(NewTable("b", sampleRel()))
	c.Register(NewTable("a", sampleRel()))
	if _, err := c.Table("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("zz"); err == nil {
		t.Error("unknown table should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("a")
	if _, err := c.Table("a"); err == nil {
		t.Error("dropped table still resolvable")
	}
	c.Drop("never-existed") // no-op must not panic
}

func TestCSVRoundTrip(t *testing.T) {
	r := sampleRel()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, r.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Diff(back); d != "" {
		t.Errorf("round trip differs: %s", d)
	}
}

func TestCSVNullVsLiteralBackslashN(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "s", Type: value.KindString})
	r := relation.New(s)
	r.Append(relation.Tuple{value.Null})
	r.Append(relation.Tuple{value.Str("plain")})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Rows[0][0].IsNull() {
		t.Error("NULL did not round-trip")
	}
	if back.Rows[1][0].AsString() != "plain" {
		t.Error("string did not round-trip")
	}
}

func TestCSVErrors(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "id", Type: value.KindInt})
	cases := []struct{ name, in string }{
		{"bad header name", "wrong\n1\n"},
		{"bad header width", "id,extra\n1,2\n"},
		{"bad int", "id\nnope\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), s); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVBoolAndFloatParsing(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "b", Type: value.KindBool},
		relation.Column{Name: "f", Type: value.KindFloat},
	)
	in := "b,f\ntrue,2.5\nfalse,-1\n"
	r, err := ReadCSV(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rows[0][0].AsBool() || r.Rows[0][1].AsFloat() != 2.5 {
		t.Error("row 0 parse wrong")
	}
	if r.Rows[1][0].AsBool() || r.Rows[1][1].AsFloat() != -1 {
		t.Error("row 1 parse wrong")
	}
	if _, err := ReadCSV(strings.NewReader("b,f\nmaybe,1\n"), s); err == nil {
		t.Error("bad bool should error")
	}
}

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := NewCatalog()
	cat.Register(NewTable("t1", sampleRel()))
	small := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "t2", Name: "b", Type: value.KindBool},
	))
	small.Append(relation.Tuple{value.Bool(true)})
	small.Append(relation.Tuple{value.Null})
	cat.Register(NewTable("t2", small))

	if err := SaveDir(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Names()) != 2 {
		t.Fatalf("Names = %v", back.Names())
	}
	t1, _ := cat.Table("t1")
	b1, err := back.Table("t1")
	if err != nil {
		t.Fatal(err)
	}
	if d := t1.Rel.Diff(b1.Rel); d != "" {
		t.Errorf("t1 differs after round trip: %s", d)
	}
	b2, _ := back.Table("t2")
	if !b2.Rel.Rows[1][0].IsNull() {
		t.Error("NULL bool lost in round trip")
	}
	// Types must survive (CSV alone cannot carry them).
	if b1.Rel.Schema.Columns[2].Type != value.KindFloat {
		t.Errorf("score column type = %v", b1.Rel.Schema.Columns[2].Type)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/definitely/missing/dir"); err == nil {
		t.Error("missing dir must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/bad.schema", []byte("onlyonefield\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("malformed schema sidecar must error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(dir2+"/x.schema", []byte("a WEIRD\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2); err == nil {
		t.Error("unknown type must error")
	}
	dir3 := t.TempDir()
	if err := os.WriteFile(dir3+"/y.schema", []byte("a INT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir3); err == nil {
		t.Error("missing csv must error")
	}
}
