package storage

import (
	"errors"
	"math"
	"testing"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// cellIdentical is bit-level equality: stricter than value.Equal so
// round-trip tests catch -0.0 collapsing to +0.0 or NaN payloads being
// rewritten.
func cellIdentical(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case value.KindNull:
		return true
	case value.KindFloat:
		return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
	case value.KindInt:
		return a.AsInt() == b.AsInt()
	case value.KindString:
		return a.AsString() == b.AsString()
	case value.KindBool:
		return a.AsBool() == b.AsBool()
	}
	return false
}

// trickyRel exercises every encoding path: an int column with long
// runs (RLE), a low-cardinality string column (dictionary), a float
// column with ±0.0 / NaN / ±Inf / NULLs, a bool column, and a
// mixed-kind column (boxed, no zone stats).
func trickyRel(rows int) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Qualifier: "t", Name: "run", Type: value.KindInt},
		relation.Column{Qualifier: "t", Name: "dict", Type: value.KindString},
		relation.Column{Qualifier: "t", Name: "f", Type: value.KindFloat},
		relation.Column{Qualifier: "t", Name: "b", Type: value.KindBool},
		relation.Column{Qualifier: "t", Name: "mixed", Type: value.KindInt},
	)
	r := relation.New(s)
	dict := []string{"alpha", "beta", "", "gamma"}
	floats := []value.Value{
		value.Float(0.0), value.Float(math.Copysign(0, -1)), value.Float(math.NaN()),
		value.Float(math.Inf(1)), value.Float(math.Inf(-1)), value.Null,
		value.Float(3.25), value.Float(-1e300),
	}
	mixed := []value.Value{value.Int(7), value.Str("seven"), value.Null, value.Bool(true), value.Float(7.5)}
	for i := 0; i < rows; i++ {
		r.Append(relation.Tuple{
			value.Int(int64(i / 100)), // 100-long runs
			value.Str(dict[i%len(dict)]),
			floats[i%len(floats)],
			value.Bool(i%3 == 0),
			mixed[i%len(mixed)],
		})
	}
	return r
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 7, ZoneBlockRows, ZoneBlockRows + 1, 3*ZoneBlockRows + 17} {
		rel := trickyRel(rows)
		seg := BuildSegment("tricky", rel)
		got, err := decodeSegment(encodeSegment(seg))
		if err != nil {
			t.Fatalf("rows=%d: decode: %v", rows, err)
		}
		if got.Table != "tricky" || got.Rows != rows {
			t.Fatalf("rows=%d: decoded table=%q rows=%d", rows, got.Table, got.Rows)
		}
		if !got.Schema.Equal(rel.Schema) {
			t.Fatalf("rows=%d: schema mismatch", rows)
		}
		back := got.Relation()
		for i := range rel.Rows {
			for c := range rel.Rows[i] {
				if !cellIdentical(rel.Rows[i][c], back.Rows[i][c]) {
					t.Fatalf("rows=%d: cell (%d,%d): got %v want %v", rows, i, c, back.Rows[i][c], rel.Rows[i][c])
				}
			}
		}
	}
}

func TestSegmentRelationRebuild(t *testing.T) {
	rel := trickyRel(500)
	back := BuildSegment("t", rel).Relation()
	if back.Len() != rel.Len() {
		t.Fatalf("rebuilt %d rows, want %d", back.Len(), rel.Len())
	}
	for i := range rel.Rows {
		for c := range rel.Rows[i] {
			if !cellIdentical(rel.Rows[i][c], back.Rows[i][c]) {
				t.Fatalf("cell (%d,%d): got %v want %v", i, c, back.Rows[i][c], rel.Rows[i][c])
			}
		}
	}
}

func TestSegmentDecodeRejectsCorruption(t *testing.T) {
	seg := BuildSegment("t", trickyRel(300))
	clean := encodeSegment(seg)
	if _, err := decodeSegment(clean); err != nil {
		t.Fatalf("clean bytes rejected: %v", err)
	}
	// Every single-byte flip must be rejected: each frame is
	// checksummed, and the header fields are validated.
	step := len(clean)/257 + 1
	for off := 0; off < len(clean); off += step {
		bad := append([]byte(nil), clean...)
		bad[off] ^= 0xA5
		if _, err := decodeSegment(bad); err == nil {
			t.Fatalf("flip at offset %d went undetected", off)
		}
	}
	// Truncations (torn writes) must be rejected too.
	for _, cut := range []int{0, 1, 10, len(clean) / 2, len(clean) - 1} {
		if _, err := decodeSegment(clean[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
	// Trailing garbage is structural corruption, not slack.
	if _, err := decodeSegment(append(append([]byte(nil), clean...), 0x00)); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

func TestZoneMapCanPrune(t *testing.T) {
	z := ZoneMap{Min: value.Int(10), Max: value.Int(20), Rows: 5}
	cases := []struct {
		op   value.CmpOp
		lit  value.Value
		want bool
	}{
		{value.EQ, value.Int(5), true},
		{value.EQ, value.Int(10), false},
		{value.EQ, value.Int(15), false},
		{value.EQ, value.Int(20), false},
		{value.EQ, value.Int(25), true},
		{value.NE, value.Int(15), false},
		{value.LT, value.Int(10), true},
		{value.LT, value.Int(11), false},
		{value.LE, value.Int(9), true},
		{value.LE, value.Int(10), false},
		{value.GT, value.Int(20), true},
		{value.GT, value.Int(19), false},
		{value.GE, value.Int(21), true},
		{value.GE, value.Int(20), false},
		{value.EQ, value.Null, false},         // NULL literal never prunes
		{value.EQ, value.Str("x"), false},     // incomparable domain keeps the block
		{value.EQ, value.Float(20.5), true},   // numeric widening prunes
		{value.EQ, value.Float(19.5), false},  // inside the range
		{value.GT, value.Float(20.25), true},  // max 20 cannot exceed 20.25
		{value.LT, value.Float(9.75), true},   // min 10 cannot be below 9.75
		{value.GE, value.Float(19.75), false}, // max 20 satisfies
	}
	for _, c := range cases {
		if got := z.CanPrune(c.op, c.lit); got != c.want {
			t.Errorf("CanPrune(%v, %v) = %v, want %v", c.op, c.lit, got, c.want)
		}
	}
	// A point block prunes NE at its value.
	pt := ZoneMap{Min: value.Int(7), Max: value.Int(7), Rows: 3}
	if !pt.CanPrune(value.NE, value.Int(7)) {
		t.Error("point block should prune NE at its only value")
	}
	if pt.CanPrune(value.NE, value.Int(8)) {
		t.Error("point block must keep NE at a different value")
	}
	// Missing statistics (all-NULL or boxed block) never prune.
	empty := ZoneMap{Rows: 4, HasNull: true}
	for _, op := range []value.CmpOp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE} {
		if empty.CanPrune(op, value.Int(1)) {
			t.Errorf("stat-less block pruned for %v", op)
		}
	}
}

// TestZoneMapPruningSound is the property behind the executor's scan
// pruning: whenever a block's zone map prunes a predicate, no row of
// that block satisfies it.
func TestZoneMapPruningSound(t *testing.T) {
	rel := trickyRel(3*ZoneBlockRows + 123)
	seg := BuildSegment("t", rel)
	ops := []value.CmpOp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}
	lits := []value.Value{
		value.Int(0), value.Int(3), value.Int(31), value.Int(-1),
		value.Float(2.5), value.Float(0), value.Str("beta"), value.Str(""),
		value.Bool(true), value.Null,
	}
	for ci := range seg.Cols {
		for b, z := range seg.Zones[ci] {
			lo, hi := b*ZoneBlockRows, min((b+1)*ZoneBlockRows, seg.Rows)
			for _, op := range ops {
				for _, lit := range lits {
					if !z.CanPrune(op, lit) {
						continue
					}
					for i := lo; i < hi; i++ {
						v := seg.Cols[ci].Value(i)
						if v.IsNull() {
							continue // NULL never satisfies a comparison
						}
						c, ok := value.Compare(v, lit)
						if !ok {
							t.Fatalf("col %d block %d: pruned %v %v but row %d is incomparable", ci, b, op, lit, i)
						}
						if cmpSatisfied(op, c) {
							t.Fatalf("col %d block %d: pruned %v %v but row %d (=%v) satisfies it", ci, b, op, lit, i, v)
						}
					}
				}
			}
		}
	}
}

func cmpSatisfied(op value.CmpOp, c int) bool {
	switch op {
	case value.EQ:
		return c == 0
	case value.NE:
		return c != 0
	case value.LT:
		return c < 0
	case value.LE:
		return c <= 0
	case value.GT:
		return c > 0
	case value.GE:
		return c >= 0
	}
	return false
}

// TestSegmentKeyHashes pins the packed-column hash vector to the
// row-oriented FNV-1a mix the GMDJ computes: bit-identical hashes,
// ok=false exactly when a key cell is NULL.
func TestSegmentKeyHashes(t *testing.T) {
	rel := trickyRel(700)
	seg := BuildSegment("t", rel)
	keys := [][]int{{0}, {1}, {0, 2}, {4}, {2, 4, 1}, {}}
	for _, key := range keys {
		h, ok := seg.KeyHashes(key)
		if len(h) != rel.Len() || len(ok) != rel.Len() {
			t.Fatalf("key %v: vector lengths %d/%d, want %d", key, len(h), len(ok), rel.Len())
		}
		for i, row := range rel.Rows {
			acc := uint64(14695981039346656037)
			valid := true
			for _, c := range key {
				if row[c].IsNull() {
					valid = false
					break
				}
				acc ^= row[c].Hash()
				acc *= 1099511628211
			}
			if valid != ok[i] {
				t.Fatalf("key %v row %d: ok=%v, want %v", key, i, ok[i], valid)
			}
			if valid && h[i] != acc {
				t.Fatalf("key %v row %d: hash %#x, want %#x", key, i, h[i], acc)
			}
			if !valid && h[i] != 0 {
				t.Fatalf("key %v row %d: null-key hash should be 0, got %#x", key, i, h[i])
			}
		}
	}
}

func TestTableSegmentCachedPerVersion(t *testing.T) {
	tab := NewTable("t", trickyRel(50))
	s1 := tab.Segment()
	if s2 := tab.Segment(); s2 != s1 {
		t.Fatal("segment rebuilt without a version change")
	}
	tab.Rel.Append(make(relation.Tuple, tab.Rel.Schema.Len()))
	tab.BumpVersion()
	s3 := tab.Segment()
	if s3 == s1 {
		t.Fatal("segment not rebuilt after BumpVersion")
	}
	if s3.Rows != 51 {
		t.Fatalf("rebuilt segment has %d rows, want 51", s3.Rows)
	}
}

func TestQuarantine(t *testing.T) {
	tab := NewTable("q", trickyRel(5))
	if err := tab.CheckQuarantine(); err != nil {
		t.Fatalf("fresh table quarantined: %v", err)
	}
	tab.Quarantine("checksum mismatch in q-1-0.seg")
	reason, ok := tab.QuarantineReason()
	if !ok || reason == "" {
		t.Fatal("quarantine reason missing")
	}
	err := tab.CheckQuarantine()
	if err == nil {
		t.Fatal("CheckQuarantine nil on quarantined table")
	}
	if !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("quarantine error %v does not wrap ErrSegmentCorrupt", err)
	}
}

func FuzzSegmentDecode(f *testing.F) {
	f.Add(encodeSegment(BuildSegment("t", trickyRel(40))))
	f.Add(encodeSegment(BuildSegment("", trickyRel(0))))
	f.Add(encodeSegment(BuildSegment("big", trickyRel(ZoneBlockRows+9))))
	f.Add([]byte{})
	f.Add([]byte("GSPL garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := decodeSegment(data)
		if err != nil {
			return
		}
		// Whatever decodes must be internally consistent: column count
		// and lengths match the header, and rebuilding rows is safe.
		if len(seg.Cols) != seg.Schema.Len() {
			t.Fatalf("decoded %d columns for a %d-column schema", len(seg.Cols), seg.Schema.Len())
		}
		for c, col := range seg.Cols {
			if col.Len() != seg.Rows {
				t.Fatalf("column %d has %d rows, header says %d", c, col.Len(), seg.Rows)
			}
		}
		_ = seg.Relation()
		if len(seg.Cols) > 0 {
			_, _ = seg.KeyHashes([]int{0})
		}
	})
}

func FuzzManifestDecode(f *testing.F) {
	seg := BuildSegment("t", trickyRel(3))
	f.Add(encodeManifest(&manifest{Generation: 4, Entries: []manifestEntry{
		{Table: "t", File: "t-4-0.seg", Rows: 3, Schema: seg.Schema},
	}}))
	f.Add(encodeManifest(&manifest{Generation: 1}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		for i, e := range m.Entries {
			if e.Table == "" || e.File == "" {
				t.Fatalf("entry %d decoded with empty table/file", i)
			}
		}
	})
}
