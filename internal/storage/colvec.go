package storage

import (
	"math"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// ColVec is one column of a segment in packed columnar form. For a
// uniformly typed column the payload lives in exactly one of the typed
// slices (indexed by row, with Nulls flagging SQL NULL positions); a
// column whose non-NULL cells mix runtime kinds falls back to Boxed,
// which stores the cells verbatim. Hot paths — zone-map construction,
// GMDJ detail-key hashing — iterate the typed slices and rebuild
// value.Value structs on the stack, so packing never costs a per-cell
// heap allocation.
type ColVec struct {
	// Kind is the runtime kind of every non-NULL cell. KindNull marks a
	// mixed column stored in Boxed.
	Kind value.Kind
	// Nulls flags NULL rows. Always row-indexed, even for Boxed columns.
	Nulls []bool
	// Ints holds KindInt payloads and KindBool payloads (0/1).
	Ints []int64
	// Floats holds KindFloat payloads.
	Floats []float64
	// Strs holds KindString payloads.
	Strs []string
	// Boxed holds the cells of a mixed column verbatim (nil otherwise).
	Boxed []value.Value
}

// Len returns the row count.
func (c *ColVec) Len() int { return len(c.Nulls) }

// Value reconstructs the cell at row i. The returned Value is
// structurally identical to the one the column was built from.
func (c *ColVec) Value(i int) value.Value {
	if c.Boxed != nil {
		return c.Boxed[i]
	}
	if c.Nulls[i] {
		return value.Null
	}
	switch c.Kind {
	case value.KindInt:
		return value.Int(c.Ints[i])
	case value.KindFloat:
		return value.Float(c.Floats[i])
	case value.KindString:
		return value.Str(c.Strs[i])
	case value.KindBool:
		return value.Bool(c.Ints[i] != 0)
	}
	return value.Null
}

// buildColVec packs column col of rel. The packed kind is decided by
// the cells actually present (not the declared schema type) so that
// decoding reproduces every cell exactly; an all-NULL column adopts
// the declared type.
func buildColVec(rel *relation.Relation, col int) *ColVec {
	n := len(rel.Rows)
	kind := value.KindNull
	uniform := true
	for _, row := range rel.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		if kind == value.KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			uniform = false
			break
		}
	}
	if kind == value.KindNull {
		kind = rel.Schema.Columns[col].Type
	}
	if !uniform || kind == value.KindNull {
		c := &ColVec{Kind: value.KindNull, Nulls: make([]bool, n), Boxed: make([]value.Value, n)}
		for i, row := range rel.Rows {
			c.Boxed[i] = row[col]
			c.Nulls[i] = row[col].IsNull()
		}
		return c
	}
	c := &ColVec{Kind: kind, Nulls: make([]bool, n)}
	switch kind {
	case value.KindInt, value.KindBool:
		c.Ints = make([]int64, n)
	case value.KindFloat:
		c.Floats = make([]float64, n)
	case value.KindString:
		c.Strs = make([]string, n)
	}
	for i, row := range rel.Rows {
		v := row[col]
		if v.IsNull() {
			c.Nulls[i] = true
			continue
		}
		switch kind {
		case value.KindInt:
			c.Ints[i] = v.AsInt()
		case value.KindFloat:
			c.Floats[i] = v.AsFloat()
		case value.KindString:
			c.Strs[i] = v.AsString()
		case value.KindBool:
			if v.AsBool() {
				c.Ints[i] = 1
			}
		}
	}
	return c
}

// sameCell reports whether rows i and j of the column hold
// bit-identical cells. Run-length encoding groups by this, not by SQL
// equality: FLOAT 0.0 and -0.0 compare equal but must round-trip to
// their own bit patterns.
func (c *ColVec) sameCell(i, j int) bool {
	if c.Nulls[i] != c.Nulls[j] {
		return false
	}
	if c.Nulls[i] {
		return true
	}
	if c.Boxed != nil {
		a, b := c.Boxed[i], c.Boxed[j]
		if a.Kind() != b.Kind() {
			return false
		}
		switch a.Kind() {
		case value.KindInt:
			return a.AsInt() == b.AsInt()
		case value.KindFloat:
			return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
		case value.KindString:
			return a.AsString() == b.AsString()
		case value.KindBool:
			return a.AsBool() == b.AsBool()
		}
		return false
	}
	switch c.Kind {
	case value.KindInt, value.KindBool:
		return c.Ints[i] == c.Ints[j]
	case value.KindFloat:
		return math.Float64bits(c.Floats[i]) == math.Float64bits(c.Floats[j])
	case value.KindString:
		return c.Strs[i] == c.Strs[j]
	}
	return false
}
