package storage

import (
	"fmt"
	"sort"
)

// Catalog is the registry of named tables a query engine instance
// works against.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds (or replaces) a table.
func (c *Catalog) Register(t *Table) {
	c.tables[t.Name] = t
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Drop removes a table; dropping an absent table is a no-op.
func (c *Catalog) Drop(name string) {
	delete(c.tables, name)
}

// Names lists all table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
