package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Sentinel errors for catalog operations. The root package re-exports
// them so callers can errors.Is instead of matching message strings.
var (
	// ErrUnknownTable reports a lookup of a table the catalog does not
	// hold.
	ErrUnknownTable = errors.New("unknown table")
	// ErrTableExists reports a CREATE of a name already registered.
	ErrTableExists = errors.New("table already exists")
)

// Catalog is the registry of named tables a query engine instance
// works against.
//
// The catalog also carries the epoch machinery cache layers key on:
// every registered table gets a process-unique id (so a drop+recreate
// under the same name can never alias a stale cache entry) and the
// catalog tracks a schema epoch bumped by every registration, drop,
// and index change. Compiled plans are validated against the schema
// epoch; memoized results embed table id@version pairs in their keys,
// making stale entries unreachable rather than merely invalid.
//
// The catalog is safe for concurrent use: lookups take a read lock,
// DDL (Register/Drop) a write lock. Table contents have their own
// concurrency story (immutable rows during queries, atomics for
// version/quarantine); the catalog lock only guards the name → table
// map.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table

	schemaEpoch atomic.Uint64
}

// nextTableID assigns process-unique table ids (catalog-independent so
// results can never collide across catalogs either).
var nextTableID atomic.Uint64

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds (or replaces) a table and bumps the schema epoch.
func (c *Catalog) Register(t *Table) {
	if t.id == 0 {
		t.id = nextTableID.Add(1)
	}
	t.epochs = &c.schemaEpoch
	c.mu.Lock()
	c.tables[t.Name] = t
	c.mu.Unlock()
	c.schemaEpoch.Add(1)
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: %w: %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Drop removes a table; dropping an absent table is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	_, ok := c.tables[name]
	delete(c.tables, name)
	c.mu.Unlock()
	if ok {
		c.schemaEpoch.Add(1)
	}
}

// Names lists all table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SchemaEpoch returns the current schema epoch. It changes whenever a
// table is created or dropped, or any table's index set changes —
// exactly the events that can invalidate a compiled plan.
func (c *Catalog) SchemaEpoch() uint64 {
	return c.schemaEpoch.Load()
}
