package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/olaplab/gmdj/internal/value"
)

// Column block encodings. Each column of a segment is serialized as
// one payload (wrapped in its own GSPL frame by segfile.go):
//
//	enc (1B) | kind (1B) | rows (uvarint) | body
//
// with four encodings chosen per column by simple statistics:
//
//	encPlain  null bitmap, then every non-NULL cell back to back
//	encDict   (STRING only) null bitmap, dictionary, per-cell indexes
//	encRLE    runs of bit-identical cells (NULL runs included)
//	encBoxed  kind-tagged cells verbatim (mixed-kind columns)
//
// Typed cell payloads: INT varint, FLOAT 8B LE IEEE-754 bits, STRING
// uvarint length + bytes, BOOL one byte. Decoding is defensive — any
// malformed input yields an error, never a panic or an oversized
// allocation (FuzzSegmentDecode leans on this).
const (
	encPlain byte = iota
	encDict
	encRLE
	encBoxed
)

// encodeColumn serializes one column, choosing the encoding.
func encodeColumn(c *ColVec) []byte {
	n := c.Len()
	out := []byte{0, byte(c.Kind)}
	out = binary.AppendUvarint(out, uint64(n))
	switch {
	case c.Boxed != nil:
		out[0] = encBoxed
		for _, v := range c.Boxed {
			out = appendTagged(out, v)
		}
	case runCount(c)*2 <= n:
		out[0] = encRLE
		out = appendRLE(out, c)
	case c.Kind == value.KindString && distinctStrings(c)*2 <= nonNullCount(c):
		out[0] = encDict
		out = appendBitmap(out, c.Nulls)
		out = appendDict(out, c)
	default:
		out[0] = encPlain
		out = appendBitmap(out, c.Nulls)
		for i := 0; i < n; i++ {
			if !c.Nulls[i] {
				out = appendTypedCell(out, c, i)
			}
		}
	}
	return out
}

// decodeColumn parses a column payload back into a ColVec. The row
// count is validated against what the encoding's body can possibly
// describe before anything row-sized is allocated, so a forged header
// cannot force an oversized allocation.
func decodeColumn(buf []byte) (*ColVec, error) {
	r := &byteReader{buf: buf}
	enc := r.byteVal()
	kind := value.Kind(r.byteVal())
	n64 := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	switch kind {
	case value.KindNull, value.KindInt, value.KindFloat, value.KindString, value.KindBool:
	default:
		return nil, fmt.Errorf("column kind %d unknown", kind)
	}
	remaining := uint64(len(buf) - r.off)
	switch enc {
	case encBoxed:
		// Every boxed cell takes at least its kind byte.
		if n64 > remaining {
			return nil, fmt.Errorf("boxed row count %d exceeds %d payload bytes", n64, remaining)
		}
	case encPlain, encDict:
		// The null bitmap alone needs (n+7)/8 bytes.
		if n64 > 8*remaining {
			return nil, fmt.Errorf("row count %d exceeds what %d payload bytes can hold", n64, remaining)
		}
	case encRLE:
		// Validated below by summing run lengths before allocating.
	default:
		return nil, fmt.Errorf("column encoding %d unknown", enc)
	}
	n := int(n64)
	c := &ColVec{Kind: kind}
	switch enc {
	case encBoxed:
		if kind != value.KindNull {
			return nil, fmt.Errorf("boxed column with kind %s", kind)
		}
		c.Nulls = make([]bool, n)
		c.Boxed = make([]value.Value, n)
		for i := 0; i < n; i++ {
			c.Boxed[i] = r.tagged()
			c.Nulls[i] = c.Boxed[i].IsNull()
		}
	case encRLE:
		if err := readRLE(r, c, n); err != nil {
			return nil, err
		}
	case encDict:
		if kind != value.KindString {
			return nil, fmt.Errorf("dict column with kind %s", kind)
		}
		c.Nulls = make([]bool, n)
		r.bitmap(c.Nulls)
		if err := readDict(r, c, n); err != nil {
			return nil, err
		}
	case encPlain:
		c.Nulls = make([]bool, n)
		r.bitmap(c.Nulls)
		allocTyped(c, n)
		for i := 0; i < n; i++ {
			if !c.Nulls[i] {
				r.typedCell(c, i)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("column payload has %d trailing bytes", len(r.buf)-r.off)
	}
	return c, nil
}

func nonNullCount(c *ColVec) int {
	n := 0
	for _, isNull := range c.Nulls {
		if !isNull {
			n++
		}
	}
	return n
}

func distinctStrings(c *ColVec) int {
	seen := make(map[string]struct{})
	for i, s := range c.Strs {
		if !c.Nulls[i] {
			seen[s] = struct{}{}
		}
	}
	return len(seen)
}

func runCount(c *ColVec) int {
	n := c.Len()
	if n == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < n; i++ {
		if !c.sameCell(i-1, i) {
			runs++
		}
	}
	return runs
}

func allocTyped(c *ColVec, n int) {
	switch c.Kind {
	case value.KindInt, value.KindBool:
		c.Ints = make([]int64, n)
	case value.KindFloat:
		c.Floats = make([]float64, n)
	case value.KindString:
		c.Strs = make([]string, n)
	}
}

// appendTypedCell appends the payload of non-NULL cell i without a
// kind tag (the column header carries the kind).
func appendTypedCell(dst []byte, c *ColVec, i int) []byte {
	switch c.Kind {
	case value.KindInt:
		return binary.AppendVarint(dst, c.Ints[i])
	case value.KindFloat:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Floats[i]))
	case value.KindString:
		dst = binary.AppendUvarint(dst, uint64(len(c.Strs[i])))
		return append(dst, c.Strs[i]...)
	case value.KindBool:
		if c.Ints[i] != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	return dst
}

// appendTagged appends kind byte + payload (boxed cells, manifest and
// zone values).
func appendTagged(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case value.KindInt:
		return binary.AppendVarint(dst, v.AsInt())
	case value.KindFloat:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case value.KindString:
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case value.KindBool:
		if v.AsBool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	return dst
}

func appendBitmap(dst []byte, nulls []bool) []byte {
	var cur byte
	for i, isNull := range nulls {
		if isNull {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(nulls)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

func appendRLE(dst []byte, c *ColVec) []byte {
	n := c.Len()
	var runs [][2]int // start, length
	for i := 0; i < n; {
		j := i + 1
		for j < n && c.sameCell(i, j) {
			j++
		}
		runs = append(runs, [2]int{i, j - i})
		i = j
	}
	dst = binary.AppendUvarint(dst, uint64(len(runs)))
	for _, run := range runs {
		dst = binary.AppendUvarint(dst, uint64(run[1]))
		if c.Nulls[run[0]] {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = appendTypedCell(dst, c, run[0])
		}
	}
	return dst
}

func readRLE(r *byteReader, c *ColVec, n int) error {
	// Pre-scan the run structure without allocating anything row-sized:
	// the declared row count is only trusted once the runs add up to it.
	start := r.off
	runs := r.count()
	total := uint64(0)
	for ri := 0; ri < runs && r.err == nil; ri++ {
		length := r.uvarint()
		flag := r.byteVal()
		total += length
		if total > uint64(n) {
			return fmt.Errorf("rle runs exceed row count %d", n)
		}
		if flag != 0 {
			r.skipTypedCell(c.Kind)
		}
	}
	if r.err != nil {
		return r.err
	}
	if total != uint64(n) {
		return fmt.Errorf("rle runs cover %d of %d rows", total, n)
	}
	end := r.off
	r.off = start

	c.Nulls = make([]bool, n)
	allocTyped(c, n)
	r.count()
	at := 0
	for ri := 0; ri < runs && r.err == nil; ri++ {
		length := int(r.uvarint())
		flag := r.byteVal()
		if flag == 0 {
			for i := at; i < at+length; i++ {
				c.Nulls[i] = true
			}
		} else {
			r.typedCell(c, at)
			for i := at + 1; i < at+length; i++ {
				copyTypedCell(c, at, i)
			}
		}
		at += length
	}
	if r.err != nil {
		return r.err
	}
	r.off = end
	return nil
}

func copyTypedCell(c *ColVec, from, to int) {
	switch c.Kind {
	case value.KindInt, value.KindBool:
		c.Ints[to] = c.Ints[from]
	case value.KindFloat:
		c.Floats[to] = c.Floats[from]
	case value.KindString:
		c.Strs[to] = c.Strs[from]
	}
}

func appendDict(dst []byte, c *ColVec) []byte {
	index := make(map[string]uint64)
	var dict []string
	for i, s := range c.Strs {
		if c.Nulls[i] {
			continue
		}
		if _, ok := index[s]; !ok {
			index[s] = uint64(len(dict))
			dict = append(dict, s)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, s := range dict {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	for i, s := range c.Strs {
		if !c.Nulls[i] {
			dst = binary.AppendUvarint(dst, index[s])
		}
	}
	return dst
}

func readDict(r *byteReader, c *ColVec, n int) error {
	c.Strs = make([]string, n)
	dictLen := r.count()
	dict := make([]string, 0, min(dictLen, 1024))
	for i := 0; i < dictLen && r.err == nil; i++ {
		dict = append(dict, r.str())
	}
	if r.err != nil {
		return r.err
	}
	for i := 0; i < n; i++ {
		if c.Nulls[i] {
			continue
		}
		idx := r.uvarint()
		if r.err != nil {
			return r.err
		}
		if idx >= uint64(len(dict)) {
			return fmt.Errorf("dict index %d out of range (%d entries)", idx, len(dict))
		}
		c.Strs[i] = dict[idx]
	}
	return nil
}

// byteReader is a defensive cursor over an untrusted payload: every
// getter validates bounds and sets a sticky error instead of
// panicking, and length-prefixed reads are capped by the bytes that
// actually remain so a forged length cannot force a huge allocation.
type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *byteReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("unexpected end of payload at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that counts in-payload items; it can never
// meaningfully exceed the bytes remaining, which caps allocations.
func (r *byteReader) count() int {
	u := r.uvarint()
	if r.err != nil {
		return 0
	}
	if u > uint64(len(r.buf)-r.off)+1 {
		r.fail("count %d exceeds %d remaining payload bytes", u, len(r.buf)-r.off)
		return 0
	}
	return int(u)
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("unexpected end of payload at offset %d (want %d bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) str() string {
	n := r.count()
	return string(r.take(n))
}

func (r *byteReader) float() float64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *byteReader) bitmap(nulls []bool) {
	nbytes := (len(nulls) + 7) / 8
	b := r.take(nbytes)
	if r.err != nil {
		return
	}
	for i := range nulls {
		nulls[i] = b[i/8]&(1<<(i%8)) != 0
	}
}

// skipTypedCell advances past one typed cell payload without storing
// it (the RLE pre-scan).
func (r *byteReader) skipTypedCell(kind value.Kind) {
	switch kind {
	case value.KindInt:
		r.varint()
	case value.KindFloat:
		r.take(8)
	case value.KindString:
		r.take(r.count())
	case value.KindBool:
		r.byteVal()
	}
}

func (r *byteReader) typedCell(c *ColVec, i int) {
	switch c.Kind {
	case value.KindInt:
		c.Ints[i] = r.varint()
	case value.KindFloat:
		c.Floats[i] = r.float()
	case value.KindString:
		c.Strs[i] = r.str()
	case value.KindBool:
		if r.byteVal() != 0 {
			c.Ints[i] = 1
		}
	}
}

func (r *byteReader) tagged() value.Value {
	kind := value.Kind(r.byteVal())
	switch kind {
	case value.KindNull:
		return value.Null
	case value.KindInt:
		return value.Int(r.varint())
	case value.KindFloat:
		return value.Float(r.float())
	case value.KindString:
		return value.Str(r.str())
	case value.KindBool:
		return value.Bool(r.byteVal() != 0)
	default:
		r.fail("unknown value kind %d", kind)
		return value.Null
	}
}
