package storage

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
)

// The manifest is the commit record of the durable store: one GSPL
// frame naming the generation and, for every table, the segment file
// holding its data. A checkpoint writes new segment files first, then
// commits them all at once by renaming MANIFEST-<gen> into place — a
// crash between the two leaves the previous generation intact, and a
// reader never sees a half-committed generation. Manifest filenames
// embed the generation as 16 hex digits so lexical order is numeric
// order.

// manifestFormatVersion versions the manifest payload layout.
const manifestFormatVersion = 1

const manifestPrefix = "MANIFEST-"

// manifestEntry records one table of a committed generation. The
// schema is stored in the manifest too (not only in the segment file)
// so a table whose segment is corrupt can still be quarantined with
// its proper schema.
type manifestEntry struct {
	Table  string
	File   string
	Rows   uint64
	Schema *relation.Schema
}

// manifest is one committed generation.
type manifest struct {
	Generation uint64
	Entries    []manifestEntry
}

// manifestName renders the filename for a generation.
func manifestName(gen uint64) string {
	return fmt.Sprintf("%s%016x", manifestPrefix, gen)
}

// parseManifestName extracts the generation from a manifest filename.
func parseManifestName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, manifestPrefix)
	if !ok || len(rest) != 16 {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(rest, "%016x", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// encodeManifest serializes m as one GSPL frame.
func encodeManifest(m *manifest) []byte {
	payload := binary.AppendUvarint(nil, manifestFormatVersion)
	payload = binary.AppendUvarint(payload, m.Generation)
	payload = binary.AppendUvarint(payload, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		payload = appendString(payload, e.Table)
		payload = appendString(payload, e.File)
		payload = binary.AppendUvarint(payload, e.Rows)
		payload = appendSchema(payload, e.Schema)
	}
	return spill.AppendFrame(nil, payload)
}

// decodeManifest parses manifest-file bytes, verifying the frame
// checksum and the payload structure.
func decodeManifest(buf []byte) (*manifest, error) {
	payload, n, err := spill.DecodeFrame(buf)
	if err != nil {
		return nil, fmt.Errorf("manifest frame: %w", err)
	}
	if n != len(buf) {
		return nil, fmt.Errorf("manifest has %d trailing bytes", len(buf)-n)
	}
	r := &byteReader{buf: payload}
	version := r.uvarint()
	if r.err == nil && version != manifestFormatVersion {
		return nil, fmt.Errorf("manifest format version %d (want %d)", version, manifestFormatVersion)
	}
	m := &manifest{Generation: r.uvarint()}
	nentries := r.count()
	for i := 0; i < nentries && r.err == nil; i++ {
		e := manifestEntry{Table: r.str(), File: r.str(), Rows: r.uvarint()}
		schema, serr := readSchema(r)
		if serr != nil {
			return nil, fmt.Errorf("manifest entry %d: %w", i, serr)
		}
		e.Schema = schema
		if r.err == nil {
			if e.Table == "" || e.File == "" || strings.ContainsAny(e.File, "/\\") {
				return nil, fmt.Errorf("manifest entry %d is malformed (table %q, file %q)", i, e.Table, e.File)
			}
			m.Entries = append(m.Entries, e)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("manifest payload: %w", r.err)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("manifest payload has %d trailing bytes", len(payload)-r.off)
	}
	return m, nil
}
