package storage

import (
	"errors"
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// TestCSVErrorPinpointsLineAndColumn: every malformed input must
// surface a *CSVError naming the exact 1-based line (header = line 1)
// and, for cell failures, the offending column — the operator's first
// question when a bulk load dies halfway through a file.
func TestCSVErrorPinpointsLineAndColumn(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "id", Type: value.KindInt},
		relation.Column{Name: "score", Type: value.KindFloat},
		relation.Column{Name: "ok", Type: value.KindBool},
	)
	cases := []struct {
		name   string
		in     string
		line   int
		column string
	}{
		{"bad int first data row", "id,score,ok\nnope,1.5,true\n", 2, "id"},
		{"bad float later row", "id,score,ok\n1,1.5,true\n2,2.5,false\n3,huh,true\n", 4, "score"},
		{"bad bool", "id,score,ok\n1,1.5,maybe\n", 2, "ok"},
		{"ragged short row", "id,score,ok\n1,1.5,true\n2,2.5\n", 3, ""},
		{"ragged long row", "id,score,ok\n1,1.5,true,extra\n", 2, ""},
		{"unterminated quote", "id,score,ok\n\"1,1.5,true\n", 2, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.in), s)
			if err == nil {
				t.Fatal("expected error")
			}
			var ce *CSVError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v (%T) is not a *CSVError", err, err)
			}
			if ce.Line != c.line || ce.Column != c.column {
				t.Fatalf("error at line %d column %q, want line %d column %q (%v)",
					ce.Line, ce.Column, c.line, c.column, ce)
			}
			if !strings.Contains(ce.Error(), "line") {
				t.Fatalf("message %q does not mention the line", ce.Error())
			}
		})
	}

	// Header-level failures are not cell failures and predate row
	// accounting: they must stay plain errors, not mis-pinned lines.
	for _, in := range []string{"", "wrong,score,ok\n1,1.5,true\n"} {
		if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
			t.Errorf("header input %q: expected error", in)
		}
	}
}

// TestCSVErrorUnwraps: the cause survives the typed wrapper, so
// callers can still match the underlying parse failure.
func TestCSVErrorUnwraps(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "id", Type: value.KindInt})
	_, err := ReadCSV(strings.NewReader("id\n0x12\n"), s)
	var ce *CSVError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CSVError", err)
	}
	if errors.Unwrap(ce) == nil {
		t.Fatal("CSVError hides its cause")
	}
}
