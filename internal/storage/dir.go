package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// SaveDir writes every table of the catalog into dir as
// <table>.csv plus a <table>.schema sidecar recording column names and
// types (CSV alone cannot round-trip types).
func SaveDir(cat *Catalog, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if err := WriteCSV(f, t.Rel); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		var sb strings.Builder
		for _, c := range t.Rel.Schema.Columns {
			fmt.Fprintf(&sb, "%s %s\n", c.Name, c.Type)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".schema"), []byte(sb.String()), 0o644); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	return nil
}

// LoadDir reads a directory written by SaveDir into a fresh catalog.
func LoadDir(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", dir, err)
	}
	cat := NewCatalog()
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".schema") {
			names = append(names, strings.TrimSuffix(e.Name(), ".schema"))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		schemaBytes, err := os.ReadFile(filepath.Join(dir, name+".schema"))
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		schema, err := parseSchemaFile(name, string(schemaBytes))
		if err != nil {
			return nil, err
		}
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		rel, err := ReadCSV(f, schema)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: table %s: %w", name, err)
		}
		cat.Register(NewTable(name, rel))
	}
	return cat, nil
}

// parseSchemaFile parses the "<col> <TYPE>" sidecar lines.
func parseSchemaFile(table, content string) (*relation.Schema, error) {
	var cols []relation.Column
	for ln, line := range strings.Split(strings.TrimSpace(content), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("storage: %s.schema line %d: want \"name TYPE\", got %q", table, ln+1, line)
		}
		var kind value.Kind
		switch strings.ToUpper(fields[1]) {
		case "INT":
			kind = value.KindInt
		case "FLOAT":
			kind = value.KindFloat
		case "STRING":
			kind = value.KindString
		case "BOOL":
			kind = value.KindBool
		default:
			return nil, fmt.Errorf("storage: %s.schema line %d: unknown type %q", table, ln+1, fields[1])
		}
		cols = append(cols, relation.Column{Qualifier: table, Name: fields[0], Type: kind})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: %s.schema declares no columns", table)
	}
	return relation.NewSchema(cols...), nil
}
