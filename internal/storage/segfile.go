package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/value"
)

// segFormatVersion versions the segment file layout.
const segFormatVersion = 1

// A segment file is a sequence of GSPL frames (the spill store's
// checksummed envelope, see spill.AppendFrame):
//
//	frame 0      header: format version, table name, row count, schema
//	frame 1..N   one column payload per schema column (encoding.go)
//
// Zone maps are not persisted — they are derived data, rebuilt from
// the decoded columns — so corruption cannot desynchronize statistics
// from cells.

// encodeSegment serializes s into segment-file bytes.
func encodeSegment(s *Segment) []byte {
	header := binary.AppendUvarint(nil, segFormatVersion)
	header = appendString(header, s.Table)
	header = binary.AppendUvarint(header, uint64(s.Rows))
	header = appendSchema(header, s.Schema)
	buf := spill.AppendFrame(nil, header)
	for _, col := range s.Cols {
		buf = spill.AppendFrame(buf, encodeColumn(col))
	}
	return buf
}

// decodeSegment parses segment-file bytes, verifying every frame
// checksum and cross-checking the header's row count against each
// column. Zone maps are rebuilt.
func decodeSegment(buf []byte) (*Segment, error) {
	header, n, err := spill.DecodeFrame(buf)
	if err != nil {
		return nil, fmt.Errorf("header frame: %w", err)
	}
	r := &byteReader{buf: header}
	version := r.uvarint()
	table := r.str()
	rows := r.uvarint()
	schema, serr := readSchema(r)
	if r.err != nil {
		return nil, fmt.Errorf("segment header: %w", r.err)
	}
	if serr != nil {
		return nil, serr
	}
	if version != segFormatVersion {
		return nil, fmt.Errorf("segment format version %d (want %d)", version, segFormatVersion)
	}
	if r.off != len(header) {
		return nil, fmt.Errorf("segment header has %d trailing bytes", len(header)-r.off)
	}
	s := &Segment{Table: table, Schema: schema, Rows: int(rows), Cols: make([]*ColVec, schema.Len())}
	rest := buf[n:]
	for c := range s.Cols {
		payload, fn, err := spill.DecodeFrame(rest)
		if err != nil {
			return nil, fmt.Errorf("column %d frame: %w", c, err)
		}
		col, err := decodeColumn(payload)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", c, err)
		}
		if col.Len() != s.Rows {
			return nil, fmt.Errorf("column %d has %d rows, header says %d", c, col.Len(), s.Rows)
		}
		s.Cols[c] = col
		rest = rest[fn:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("segment file has %d trailing bytes", len(rest))
	}
	s.buildZones()
	return s, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendSchema(dst []byte, s *relation.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Len()))
	for _, c := range s.Columns {
		dst = appendString(dst, c.Qualifier)
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
	}
	return dst
}

func readSchema(r *byteReader) (*relation.Schema, error) {
	ncols := r.count()
	cols := make([]relation.Column, 0, min(ncols, 256))
	for i := 0; i < ncols && r.err == nil; i++ {
		c := relation.Column{Qualifier: r.str(), Name: r.str(), Type: value.Kind(r.byteVal())}
		switch c.Type {
		case value.KindNull, value.KindInt, value.KindFloat, value.KindString, value.KindBool:
		default:
			return nil, fmt.Errorf("schema column %d has unknown type %d", i, c.Type)
		}
		cols = append(cols, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	return relation.NewSchema(cols...), nil
}

// writeDurableFile persists data at dir/name with crash-safe
// discipline — write to a temp file, fsync it, rename into place,
// fsync the directory — enacting any disk fault configured at site
// (storage.write or storage.manifest):
//
//	enospc      fail as if the device were full; nothing durable
//	shortwrite  a partial temp file, then failure (the partial file
//	            is removed, as a real failed write's would be)
//	corrupt     flip a payload byte but report success — latent
//	            corruption only recovery's checksums notice
//	torn        persist only a prefix at the FINAL name and report
//	            success — a torn write behind a lying fsync
func writeDurableFile(dir, name string, data []byte, site string, faults *govern.Injector) error {
	if err := faults.Fire(site, nil); err != nil {
		return fmt.Errorf("storage: %s: %w", site, err)
	}
	path := filepath.Join(dir, name)
	switch faults.Disk(site) {
	case govern.DiskENOSPC:
		return fmt.Errorf("storage: writing %s: %w", path, syscall.ENOSPC)
	case govern.DiskShortWrite:
		tmp := path + ".tmp"
		_ = os.WriteFile(tmp, data[:len(data)/2], 0o644)
		os.Remove(tmp)
		return fmt.Errorf("storage: writing %s: short write (%d of %d bytes)", path, len(data)/2, len(data))
	case govern.DiskCorrupt:
		if len(data) > spill.FrameOverhead {
			corrupted := make([]byte, len(data))
			copy(corrupted, data)
			corrupted[spill.FrameOverhead] ^= 0xFF
			data = corrupted
		}
	case govern.DiskTorn:
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			return fmt.Errorf("storage: writing %s: %v", path, err)
		}
		obs.MetricAdd("storage.torn_writes", 1)
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating %s: %v", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing %s: %v", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing %s: %v", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: closing %s: %v", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: renaming %s: %v", tmp, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable. Errors
// are swallowed: not every filesystem supports directory fsync, and
// the write itself already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
