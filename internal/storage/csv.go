package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// nullMarker is the CSV representation of SQL NULL, chosen so it cannot
// collide with a real string value starting differently.
const nullMarker = `\N`

// CSVError pinpoints exactly where a CSV load went wrong: the 1-based
// line (the header is line 1) and, for cell-level failures, the column
// name. Ragged rows and unparseable cells both surface as a *CSVError
// instead of silently mis-loading or as an anonymous wrapped string.
// Match the cause with errors.Unwrap / errors.Is.
type CSVError struct {
	// Line is the 1-based input line the failure occurred on.
	Line int
	// Column names the offending column for cell-level failures; empty
	// when the row itself is malformed (ragged width, bad quoting).
	Column string
	// Err is the underlying cause.
	Err error
}

func (e *CSVError) Error() string {
	if e.Column != "" {
		return fmt.Sprintf("storage: csv line %d column %q: %v", e.Line, e.Column, e.Err)
	}
	return fmt.Sprintf("storage: csv line %d: %v", e.Line, e.Err)
}

func (e *CSVError) Unwrap() error { return e.Err }

// WriteCSV writes the relation as CSV: a header of column names
// followed by rows. NULL cells are written as \N.
func WriteCSV(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, rel.Schema.Len())
	for i, c := range rel.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: writing csv header: %w", err)
	}
	rec := make([]string, rel.Schema.Len())
	for _, row := range rel.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = nullMarker
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads CSV produced by WriteCSV (or hand-authored with the
// same header) into a relation typed by schema. The header must match
// the schema's column names in order.
func ReadCSV(r io.Reader, schema *relation.Schema) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading csv header: %w", err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("storage: csv has %d columns, schema wants %d", len(header), schema.Len())
	}
	for i, name := range header {
		if schema.Columns[i].Name != name {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema wants %q", i, name, schema.Columns[i].Name)
		}
	}
	rel := relation.New(schema)
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// encoding/csv reports ragged rows (ErrFieldCount) and quoting
			// failures here; its own line accounting can differ under
			// multi-line quoted fields, so ours is authoritative.
			return nil, &CSVError{Line: lineNo, Err: err}
		}
		if len(rec) != schema.Len() {
			return nil, &CSVError{Line: lineNo, Err: fmt.Errorf("row has %d columns, schema wants %d", len(rec), schema.Len())}
		}
		row := make(relation.Tuple, len(rec))
		for i, cell := range rec {
			v, err := parseCell(cell, schema.Columns[i].Type)
			if err != nil {
				return nil, &CSVError{Line: lineNo, Column: header[i], Err: err}
			}
			row[i] = v
		}
		rel.Append(row)
	}
	return rel, nil
}

func parseCell(cell string, kind value.Kind) (value.Value, error) {
	if cell == nullMarker {
		return value.Null, nil
	}
	switch kind {
	case value.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("parsing %q as INT: %w", cell, err)
		}
		return value.Int(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null, fmt.Errorf("parsing %q as FLOAT: %w", cell, err)
		}
		return value.Float(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return value.Null, fmt.Errorf("parsing %q as BOOL: %w", cell, err)
		}
		return value.Bool(b), nil
	case value.KindString, value.KindNull:
		return value.Str(cell), nil
	default:
		return value.Null, fmt.Errorf("unsupported column kind %v", kind)
	}
}
