package agg

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/value"
)

// Merge folds accumulator src into dst. Both must come from the same
// Spec. The base-sharded parallel GMDJ evaluation no longer needs it —
// each base tuple's accumulators are fed by exactly one worker — but
// any evaluation strategy that folds the same tuple's partials from
// independent scans (e.g. a future detail-sharded path) merges here.
func Merge(dst, src Accumulator) error {
	switch d := dst.(type) {
	case *countAcc:
		s, ok := src.(*countAcc)
		if !ok {
			return mergeMismatch(dst, src)
		}
		d.n += s.n
	case *sumAcc:
		s, ok := src.(*sumAcc)
		if !ok {
			return mergeMismatch(dst, src)
		}
		d.any = d.any || s.any
		d.isFloat = d.isFloat || s.isFloat
		d.i += s.i
		d.f += s.f
	case *avgAcc:
		s, ok := src.(*avgAcc)
		if !ok {
			return mergeMismatch(dst, src)
		}
		d.n += s.n
		d.f += s.f
	case *extremeAcc:
		s, ok := src.(*extremeAcc)
		if !ok || s.want != d.want {
			return mergeMismatch(dst, src)
		}
		if !s.any {
			return nil
		}
		if !d.any {
			d.best, d.any = s.best, true
			return nil
		}
		c, ok := value.Compare(s.best, d.best)
		if !ok {
			return fmt.Errorf("agg: merging min/max over mixed kinds")
		}
		if c == d.want {
			d.best = s.best
		}
	default:
		if handled, err := mergeExtended(dst, src); handled {
			return err
		}
		return mergeMismatch(dst, src)
	}
	return nil
}

func mergeMismatch(dst, src Accumulator) error {
	return fmt.Errorf("agg: cannot merge %T into %T", src, dst)
}
