package agg

import (
	"fmt"
	"math"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Additional aggregate functions beyond the paper's core set; useful
// for the examples and for exercising the accumulator framework.
const (
	// CountDistinct is COUNT(DISTINCT x): distinct non-NULL values.
	CountDistinct Func = iota + 100
	// Var is the population variance of non-NULL numeric values
	// (NULL over fewer than one value).
	Var
	// StdDev is the population standard deviation.
	StdDev
)

func init() {
	// Extend the String and ResultType behaviour via the switch in
	// agg.go being exhaustive only for the core set; the extended
	// functions are handled here through the same entry points.
}

// extendedName returns the SQL name for extended functions.
func extendedName(f Func) (string, bool) {
	switch f {
	case CountDistinct:
		return "count(distinct)", true
	case Var:
		return "var", true
	case StdDev:
		return "stddev", true
	default:
		return "", false
	}
}

// extendedResultType reports output kinds for extended functions.
func extendedResultType(f Func) (value.Kind, bool) {
	switch f {
	case CountDistinct:
		return value.KindInt, true
	case Var, StdDev:
		return value.KindFloat, true
	default:
		return value.KindNull, false
	}
}

// newExtendedAccumulator builds accumulators for extended functions;
// ok is false for core functions.
func newExtendedAccumulator(s Spec) (Accumulator, bool) {
	switch s.Func {
	case CountDistinct:
		return &distinctAcc{arg: s.Arg, seen: map[string]bool{}}, true
	case Var:
		return &momentsAcc{arg: s.Arg}, true
	case StdDev:
		return &momentsAcc{arg: s.Arg, sqrt: true}, true
	default:
		return nil, false
	}
}

type distinctAcc struct {
	arg  exprEval
	seen map[string]bool
}

// exprEval is the subset of expr.Expr the accumulators need; declared
// locally to avoid an import cycle in doc examples.
type exprEval interface {
	Eval(row relation.Tuple) (value.Value, error)
}

func (a *distinctAcc) Add(row relation.Tuple) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.seen[fmt.Sprintf("%d\x00%s", v.Kind(), v.String())] = true
	return nil
}

func (a *distinctAcc) Result() value.Value { return value.Int(int64(len(a.seen))) }

// momentsAcc tracks count/mean/M2 (Welford) for variance and stddev.
type momentsAcc struct {
	arg  exprEval
	sqrt bool
	n    int64
	mean float64
	m2   float64
}

func (a *momentsAcc) Add(row relation.Tuple) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt, value.KindFloat:
		x := v.AsFloat()
		a.n++
		d := x - a.mean
		a.mean += d / float64(a.n)
		a.m2 += d * (x - a.mean)
		return nil
	default:
		return fmt.Errorf("agg: variance over %s", v.Kind())
	}
}

func (a *momentsAcc) Result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	variance := a.m2 / float64(a.n)
	if a.sqrt {
		return value.Float(math.Sqrt(variance))
	}
	return value.Float(variance)
}

// mergeExtended merges extended accumulators; ok is false when dst is
// not an extended accumulator.
func mergeExtended(dst, src Accumulator) (bool, error) {
	switch d := dst.(type) {
	case *distinctAcc:
		s, ok := src.(*distinctAcc)
		if !ok {
			return true, mergeMismatch(dst, src)
		}
		for k := range s.seen {
			d.seen[k] = true
		}
		return true, nil
	case *momentsAcc:
		s, ok := src.(*momentsAcc)
		if !ok || s.sqrt != d.sqrt {
			return true, mergeMismatch(dst, src)
		}
		if s.n == 0 {
			return true, nil
		}
		if d.n == 0 {
			*d = *s
			return true, nil
		}
		// Chan et al. parallel-moments combination.
		n := float64(d.n + s.n)
		delta := s.mean - d.mean
		d.m2 += s.m2 + delta*delta*float64(d.n)*float64(s.n)/n
		d.mean += delta * float64(s.n) / n
		d.n += s.n
		return true, nil
	default:
		return false, nil
	}
}
