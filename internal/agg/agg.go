// Package agg implements SQL aggregate functions with standard NULL
// semantics, exposed as incremental accumulators so the GMDJ operator
// and the hash-aggregation operator can fold detail tuples in a single
// scan.
//
// NULL rules follow SQL:1999 (the paper leans on these in the ALL-vs-
// MAX footnote): COUNT(*) counts rows; COUNT(x) counts non-NULL x;
// SUM/AVG/MIN/MAX ignore NULLs and yield NULL over the empty bag.
package agg

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Func identifies an aggregate function.
type Func uint8

const (
	// CountStar is COUNT(*).
	CountStar Func = iota
	// Count is COUNT(x) — non-NULL count.
	Count
	// Sum is SUM(x).
	Sum
	// Avg is AVG(x).
	Avg
	// Min is MIN(x).
	Min
	// Max is MAX(x).
	Max
)

// String returns the SQL name of the function.
func (f Func) String() string {
	switch f {
	case CountStar:
		return "count(*)"
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		if name, ok := extendedName(f); ok {
			return name
		}
		return fmt.Sprintf("Func(%d)", uint8(f))
	}
}

// ResultType reports the value kind the aggregate produces given the
// input kind (used for schema inference).
func (f Func) ResultType(in value.Kind) value.Kind {
	switch f {
	case CountStar, Count:
		return value.KindInt
	case Avg:
		return value.KindFloat
	case Sum:
		if in == value.KindFloat {
			return value.KindFloat
		}
		return value.KindInt
	default:
		if k, ok := extendedResultType(f); ok {
			return k
		}
		return in
	}
}

// Spec is one aggregate term fᵢⱼ(cᵢⱼ) → name from the paper's
// aggregate lists lᵢ. Arg is nil for COUNT(*). As names the output
// column (the paper's `sum(F.NumBytes) → sum1` renaming).
type Spec struct {
	Func Func
	Arg  expr.Expr // nil for CountStar
	As   string
}

// String renders "sum(F.NumBytes) -> sum1".
func (s Spec) String() string {
	var inner string
	if s.Func == CountStar {
		inner = "count(*)"
	} else {
		inner = fmt.Sprintf("%s(%s)", s.Func, s.Arg)
	}
	if s.As == "" {
		return inner
	}
	return inner + " -> " + s.As
}

// Bind resolves the argument expression against the detail schema,
// returning a bound copy of the spec.
func (s Spec) Bind(schema *relation.Schema) (Spec, error) {
	if s.Arg == nil {
		if s.Func != CountStar {
			return Spec{}, fmt.Errorf("agg: %s requires an argument", s.Func)
		}
		return s, nil
	}
	b, err := s.Arg.Bind(schema)
	if err != nil {
		return Spec{}, fmt.Errorf("agg: binding %s: %w", s, err)
	}
	return Spec{Func: s.Func, Arg: b, As: s.As}, nil
}

// Accumulator folds values incrementally. Implementations are cheap
// value types; the GMDJ allocates one per (base tuple, spec) pair.
type Accumulator interface {
	// Add folds one detail tuple into the aggregate.
	Add(row relation.Tuple) error
	// Result returns the current aggregate value.
	Result() value.Value
}

// NewAccumulator builds an accumulator for a bound spec.
func NewAccumulator(s Spec) Accumulator {
	switch s.Func {
	case CountStar:
		return &countAcc{}
	case Count:
		return &countAcc{arg: s.Arg}
	case Sum:
		return &sumAcc{arg: s.Arg}
	case Avg:
		return &avgAcc{arg: s.Arg}
	case Min:
		return &extremeAcc{arg: s.Arg, want: -1}
	case Max:
		return &extremeAcc{arg: s.Arg, want: 1}
	default:
		if acc, ok := newExtendedAccumulator(s); ok {
			return acc
		}
		panic("agg: unknown aggregate " + s.Func.String())
	}
}

type countAcc struct {
	arg expr.Expr // nil means count(*)
	n   int64
}

func (a *countAcc) Add(row relation.Tuple) error {
	if a.arg == nil {
		a.n++
		return nil
	}
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) Result() value.Value { return value.Int(a.n) }

type sumAcc struct {
	arg     expr.Expr
	any     bool
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAcc) Add(row relation.Tuple) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		a.any = true
		a.i += v.AsInt()
		a.f += float64(v.AsInt())
	case value.KindFloat:
		a.any = true
		a.isFloat = true
		a.f += v.AsFloat()
	default:
		return fmt.Errorf("agg: sum over %s", v.Kind())
	}
	return nil
}

func (a *sumAcc) Result() value.Value {
	if !a.any {
		return value.Null // SUM of the empty bag is NULL
	}
	if a.isFloat {
		return value.Float(a.f)
	}
	return value.Int(a.i)
}

type avgAcc struct {
	arg expr.Expr
	n   int64
	f   float64
}

func (a *avgAcc) Add(row relation.Tuple) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt, value.KindFloat:
		a.n++
		a.f += v.AsFloat()
	default:
		return fmt.Errorf("agg: avg over %s", v.Kind())
	}
	return nil
}

func (a *avgAcc) Result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	return value.Float(a.f / float64(a.n))
}

type extremeAcc struct {
	arg  expr.Expr
	want int // -1 for MIN, +1 for MAX
	best value.Value
	any  bool
}

func (a *extremeAcc) Add(row relation.Tuple) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best, a.any = v, true
		return nil
	}
	c, ok := value.Compare(v, a.best)
	if !ok {
		return fmt.Errorf("agg: min/max over mixed kinds %s and %s", v.Kind(), a.best.Kind())
	}
	if c == a.want {
		a.best = v
	}
	return nil
}

func (a *extremeAcc) Result() value.Value {
	if !a.any {
		return value.Null // MAX of nothing is NULL — the paper's footnote 2
	}
	return a.best
}

// OutputSchema returns the columns the spec list appends, named per
// each spec's As (or a synthesized fᵢ_R_cᵢ name when As is empty, the
// paper's default naming).
func OutputSchema(specs []Spec, detailName string) []relation.Column {
	cols := make([]relation.Column, len(specs))
	for i, s := range specs {
		name := s.As
		if name == "" {
			if s.Arg != nil {
				name = fmt.Sprintf("%s_%s_%s", s.Func, detailName, s.Arg)
			} else {
				name = fmt.Sprintf("count_%s", detailName)
			}
		}
		var in value.Kind
		cols[i] = relation.Column{Name: name, Type: s.Func.ResultType(in)}
	}
	return cols
}
