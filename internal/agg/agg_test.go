package agg

import (
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func oneColSchema() *relation.Schema {
	return relation.NewSchema(relation.Column{Qualifier: "R", Name: "x", Type: value.KindInt})
}

func boundSpec(t *testing.T, f Func) Spec {
	t.Helper()
	s := Spec{Func: f, As: "out"}
	if f != CountStar {
		s.Arg = expr.C("R.x")
	}
	b, err := s.Bind(oneColSchema())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return b
}

func feed(t *testing.T, a Accumulator, vals ...value.Value) {
	t.Helper()
	for _, v := range vals {
		if err := a.Add(relation.Tuple{v}); err != nil {
			t.Fatalf("Add(%v): %v", v, err)
		}
	}
}

func TestCountStar(t *testing.T) {
	a := NewAccumulator(boundSpec(t, CountStar))
	feed(t, a, value.Int(1), value.Null, value.Int(3))
	if got := a.Result(); got.AsInt() != 3 {
		t.Errorf("count(*) = %v, want 3 (NULL rows still count)", got)
	}
}

func TestCountIgnoresNull(t *testing.T) {
	a := NewAccumulator(boundSpec(t, Count))
	feed(t, a, value.Int(1), value.Null, value.Int(3), value.Null)
	if got := a.Result(); got.AsInt() != 2 {
		t.Errorf("count(x) = %v, want 2", got)
	}
}

func TestCountEmptyIsZero(t *testing.T) {
	for _, f := range []Func{CountStar, Count} {
		a := NewAccumulator(boundSpec(t, f))
		if got := a.Result(); got.AsInt() != 0 {
			t.Errorf("%s over empty = %v, want 0", f, got)
		}
	}
}

func TestSumIntStaysInt(t *testing.T) {
	a := NewAccumulator(boundSpec(t, Sum))
	feed(t, a, value.Int(2), value.Int(3), value.Null)
	got := a.Result()
	if got.Kind() != value.KindInt || got.AsInt() != 5 {
		t.Errorf("sum = %v (%v), want INT 5", got, got.Kind())
	}
}

func TestSumMixedWidens(t *testing.T) {
	a := NewAccumulator(boundSpec(t, Sum))
	feed(t, a, value.Int(2), value.Float(0.5))
	got := a.Result()
	if got.Kind() != value.KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("sum = %v (%v), want FLOAT 2.5", got, got.Kind())
	}
}

func TestEmptyAggregatesAreNull(t *testing.T) {
	// The paper's footnote 2: max of nothing is NULL, which is why
	// ALL cannot be reduced to MAX. Same for sum/avg/min.
	for _, f := range []Func{Sum, Avg, Min, Max} {
		a := NewAccumulator(boundSpec(t, f))
		if got := a.Result(); !got.IsNull() {
			t.Errorf("%s over empty bag = %v, want NULL", f, got)
		}
		// All-NULL input behaves like empty.
		a = NewAccumulator(boundSpec(t, f))
		feed(t, a, value.Null, value.Null)
		if got := a.Result(); !got.IsNull() {
			t.Errorf("%s over all-NULL = %v, want NULL", f, got)
		}
	}
}

func TestAvg(t *testing.T) {
	a := NewAccumulator(boundSpec(t, Avg))
	feed(t, a, value.Int(1), value.Int(2), value.Null, value.Int(6))
	if got := a.Result(); got.AsFloat() != 3.0 {
		t.Errorf("avg = %v, want 3.0", got)
	}
}

func TestMinMax(t *testing.T) {
	mn := NewAccumulator(boundSpec(t, Min))
	mx := NewAccumulator(boundSpec(t, Max))
	for _, v := range []value.Value{value.Int(4), value.Null, value.Int(-2), value.Int(9)} {
		feed(t, mn, v)
		feed(t, mx, v)
	}
	if mn.Result().AsInt() != -2 {
		t.Errorf("min = %v", mn.Result())
	}
	if mx.Result().AsInt() != 9 {
		t.Errorf("max = %v", mx.Result())
	}
}

func TestMinMaxStrings(t *testing.T) {
	s := relation.NewSchema(relation.Column{Qualifier: "R", Name: "x", Type: value.KindString})
	spec, err := Spec{Func: Max, Arg: expr.C("R.x"), As: "m"}.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccumulator(spec)
	feed(t, a, value.Str("pear"), value.Str("apple"), value.Str("zig"))
	if a.Result().AsString() != "zig" {
		t.Errorf("max = %v", a.Result())
	}
}

func TestTypeErrors(t *testing.T) {
	s := relation.NewSchema(relation.Column{Qualifier: "R", Name: "x", Type: value.KindString})
	for _, f := range []Func{Sum, Avg} {
		spec, err := Spec{Func: f, Arg: expr.C("R.x"), As: "m"}.Bind(s)
		if err != nil {
			t.Fatal(err)
		}
		a := NewAccumulator(spec)
		if err := a.Add(relation.Tuple{value.Str("no")}); err == nil {
			t.Errorf("%s over string should error", f)
		}
	}
}

func TestMixedKindExtremeErrors(t *testing.T) {
	a := NewAccumulator(boundSpec(t, Max))
	feed(t, a, value.Int(1))
	if err := a.Add(relation.Tuple{value.Str("x")}); err == nil {
		t.Error("max over mixed kinds should error")
	}
}

func TestSpecBindValidation(t *testing.T) {
	if _, err := (Spec{Func: Sum, As: "s"}).Bind(oneColSchema()); err == nil {
		t.Error("sum without argument should fail to bind")
	}
	if _, err := (Spec{Func: Count, Arg: expr.C("R.missing")}).Bind(oneColSchema()); err == nil {
		t.Error("binding unknown column should fail")
	}
	if _, err := (Spec{Func: CountStar}).Bind(oneColSchema()); err != nil {
		t.Errorf("count(*) bind: %v", err)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Func: Sum, Arg: expr.C("F.NumBytes"), As: "sum1"}
	if s.String() != "sum(F.NumBytes) -> sum1" {
		t.Errorf("String() = %q", s.String())
	}
	cs := Spec{Func: CountStar, As: "cnt"}
	if cs.String() != "count(*) -> cnt" {
		t.Errorf("String() = %q", cs.String())
	}
}

func TestFuncResultType(t *testing.T) {
	if CountStar.ResultType(value.KindString) != value.KindInt {
		t.Error("count type")
	}
	if Sum.ResultType(value.KindFloat) != value.KindFloat {
		t.Error("sum float type")
	}
	if Sum.ResultType(value.KindInt) != value.KindInt {
		t.Error("sum int type")
	}
	if Avg.ResultType(value.KindInt) != value.KindFloat {
		t.Error("avg type")
	}
	if Min.ResultType(value.KindString) != value.KindString {
		t.Error("min type")
	}
}

func TestOutputSchemaNaming(t *testing.T) {
	specs := []Spec{
		{Func: Sum, Arg: expr.C("F.NumBytes"), As: "sum1"},
		{Func: CountStar},
		{Func: Max, Arg: expr.C("F.X")},
	}
	cols := OutputSchema(specs, "Flow")
	if cols[0].Name != "sum1" {
		t.Errorf("col0 = %q", cols[0].Name)
	}
	if cols[1].Name != "count_Flow" {
		t.Errorf("col1 = %q", cols[1].Name)
	}
	if cols[2].Name != "max_Flow_F.X" {
		t.Errorf("col2 = %q", cols[2].Name)
	}
}

// Property: sum/count/avg over random int slices agree with direct
// computation.
func TestAccumulatorProperty(t *testing.T) {
	f := func(raw []int64) bool {
		xs := make([]int64, len(raw))
		for i, x := range raw {
			xs[i] = x % 1000 // keep sums exact in both int64 and float64
		}
		sum := NewAccumulator(boundSpec(t, Sum))
		cnt := NewAccumulator(boundSpec(t, Count))
		avg := NewAccumulator(boundSpec(t, Avg))
		var want int64
		for _, x := range xs {
			row := relation.Tuple{value.Int(x)}
			if sum.Add(row) != nil || cnt.Add(row) != nil || avg.Add(row) != nil {
				return false
			}
			want += x
		}
		if len(xs) == 0 {
			return sum.Result().IsNull() && cnt.Result().AsInt() == 0 && avg.Result().IsNull()
		}
		if sum.Result().AsInt() != want || cnt.Result().AsInt() != int64(len(xs)) {
			return false
		}
		return avg.Result().AsFloat() == float64(want)/float64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
