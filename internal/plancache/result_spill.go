package plancache

import (
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/spill"
)

// The result cache's cold tier: with a spill store enabled, eviction
// demotes encodable values (materialized subquery relations, GMDJ
// detail hash vectors) to checksummed temp files instead of dropping
// them, and Get promotes them back on demand. SpillDown is the memory-
// pressure valve the engine pool's reclaim hook drives: it frees
// resident cache bytes by pushing the LRU tail cold, so a memory-
// hungry query can proceed without killing the cache outright.

// coldItem is one demoted entry.
type coldItem struct {
	file  *spill.File
	codec string
	bytes int64 // original in-memory size estimate
}

// EnableSpill gives the cache a cold tier backed by store. Call before
// the cache is shared with running queries.
func (c *ResultCache) EnableSpill(store *spill.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = store
	if c.cold == nil {
		c.cold = map[string]*coldItem{}
	}
}

// demoteLocked moves it to the cold tier; reports whether it did.
// Failures degrade to a plain drop — the cache is an optimization and
// must never fail a query.
func (c *ResultCache) demoteLocked(it *resultItem) bool {
	if c.store == nil {
		return false
	}
	name, data, ok := spill.EncodeAny(it.value)
	if !ok {
		return false
	}
	f, err := c.store.Write("resultcache", data)
	if err != nil {
		return false
	}
	if old, dup := c.cold[it.key]; dup {
		old.file.Remove()
	}
	c.cold[it.key] = &coldItem{file: f, codec: name, bytes: it.bytes}
	c.stats.SpillWrites++
	obs.MetricAdd("resultcache.spill_write", 1)
	return true
}

// promoteLocked loads a cold entry back into resident memory (caller
// holds the lock and has missed the resident map). The cold file is
// consumed either way; a read or decode failure degrades to a miss.
func (c *ResultCache) promoteLocked(key string) (any, bool) {
	ci, ok := c.cold[key]
	if !ok {
		return nil, false
	}
	delete(c.cold, key)
	data, err := ci.file.Read()
	if err != nil {
		return nil, false
	}
	ci.file.Remove()
	v, err := spill.DecodeAny(ci.codec, data)
	if err != nil {
		return nil, false
	}
	c.stats.SpillReads++
	obs.MetricAdd("resultcache.spill_read", 1)
	el := c.ll.PushFront(&resultItem{key: key, value: v, bytes: ci.bytes})
	c.items[key] = el
	c.cur += ci.bytes
	c.shrinkLocked()
	return v, true
}

// shrinkLocked restores the resident-byte invariant, demoting or
// dropping LRU-tail entries.
func (c *ResultCache) shrinkLocked() {
	for c.cur > c.max && c.ll.Len() > 1 {
		el := c.ll.Back()
		it := el.Value.(*resultItem)
		c.stats.Evictions++
		obs.MetricAdd("resultcache.eviction", 1)
		c.demoteLocked(it)
		c.removeLocked(el)
	}
}

// SpillDown frees at least n resident bytes by demoting LRU-tail
// entries to the cold tier (dropping entries no codec can demote),
// returning the bytes actually freed. It is the engine memory pool's
// reclaim hook: called when a query's reservation cannot grow, on
// whatever goroutine hit the pressure.
func (c *ResultCache) SpillDown(n int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < n && c.ll.Len() > 0 {
		el := c.ll.Back()
		it := el.Value.(*resultItem)
		c.demoteLocked(it)
		c.removeLocked(el)
		freed += it.bytes
		obs.MetricAdd("resultcache.spilldown", 1)
	}
	return freed
}
