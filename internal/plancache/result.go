package plancache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/spill"
)

// ResultCache is the engine-level memo behind cross-query subquery and
// GMDJ reuse: a byte-budgeted LRU from opaque string keys to immutable
// values. Invalidation is by key construction — every key embeds the
// id@version pair of each table the value was computed from (see
// EpochTag), so a write to any dependency makes the old key
// unreachable. Values must never be mutated after Put: they are shared
// across concurrent queries.
type ResultCache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	ll    *list.List // front = most recent; values are *resultItem
	items map[string]*list.Element
	stats Stats
	// store, when non-nil, backs the cold tier (see result_spill.go):
	// evicted encodable values demote to checksummed temp files and
	// promote back on Get instead of being recomputed.
	store *spill.Store
	cold  map[string]*coldItem
}

type resultItem struct {
	key   string
	value any
	bytes int64
}

// DefaultResultBytes bounds the result cache when callers pass a
// non-positive limit. Materialized subquery relations can be large, so
// the default is deliberately bigger than the plan cache's.
const DefaultResultBytes = 64 << 20

// NewResults creates a result cache holding at most maxBytes of
// caller-estimated value memory (<= 0 uses DefaultResultBytes).
func NewResults(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultBytes
	}
	return &ResultCache{max: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, if present.
func (c *ResultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if v, ok := c.promoteLocked(key); ok {
			c.stats.Hits++
			obs.MetricAdd("resultcache.hit", 1)
			return v, true
		}
		c.stats.Misses++
		obs.MetricAdd("resultcache.miss", 1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	obs.MetricAdd("resultcache.hit", 1)
	return el.Value.(*resultItem).value, true
}

// Put stores value under key with the caller's size estimate, evicting
// from the LRU tail until the budget holds. Values larger than the
// whole budget are not cached at all.
func (c *ResultCache) Put(key string, value any, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	if bytes > 0 && bytes > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	if ci, ok := c.cold[key]; ok {
		// A fresh Put supersedes any demoted copy of the same key.
		delete(c.cold, key)
		ci.file.Remove()
	}
	el := c.ll.PushFront(&resultItem{key: key, value: value, bytes: bytes})
	c.items[key] = el
	c.cur += bytes
	c.shrinkLocked()
}

func (c *ResultCache) removeLocked(el *list.Element) {
	it := el.Value.(*resultItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.cur -= it.bytes
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.cur
	s.ColdEntries = len(c.cold)
	for _, ci := range c.cold {
		s.ColdBytes += ci.file.Bytes
	}
	return s
}

// Purge drops every entry, resident and cold (counters are preserved).
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.cur = 0
	for key, ci := range c.cold {
		ci.file.Remove()
		delete(c.cold, key)
	}
}

// EpochTag renders one table dependency as "name#id@version" for
// embedding in result-cache keys.
func EpochTag(name string, id, version uint64) string {
	return fmt.Sprintf("%s#%d@%d", name, id, version)
}

// ResultKey assembles a result-cache key from a kind ("subsrc",
// "gmdjhash", ...), a structural fingerprint of the computation, and
// the epoch tags of every table it reads.
func ResultKey(kind, fingerprint string, epochTags []string) string {
	return kind + "|" + fingerprint + "|" + strings.Join(epochTags, ",")
}
