package plancache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
)

func entry(tables ...string) *Entry {
	return &Entry{Plan: &algebra.Scan{Table: "t"}, Tables: tables, SchemaEpoch: 1}
}

func TestPlanCacheHitMissEpoch(t *testing.T) {
	c := New(0)
	k := Key{Text: "SELECT 1", Strategy: 0}
	if _, ok := c.Get(k, 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, entry("t"))
	if _, ok := c.Get(k, 1); !ok {
		t.Fatal("expected hit at same epoch")
	}
	// A different strategy is a different key.
	if _, ok := c.Get(Key{Text: "SELECT 1", Strategy: 3}, 1); ok {
		t.Fatal("strategy should partition the key space")
	}
	// A newer schema epoch invalidates the entry.
	if _, ok := c.Get(k, 2); ok {
		t.Fatal("stale entry served across epochs")
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("stats after invalidation: %+v", s)
	}
	if c.Peek(k, 2) {
		t.Fatal("Peek found invalidated entry")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := New(1) // tiny budget: every entry overflows it
	for i := 0; i < 4; i++ {
		c.Put(Key{Text: fmt.Sprintf("q%d", i)}, entry())
	}
	s := c.Stats()
	if s.Entries != 1 {
		t.Fatalf("budget of 1 byte should keep only the newest entry, have %d", s.Entries)
	}
	if s.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", s.Evictions)
	}
	if _, ok := c.Get(Key{Text: "q3"}, 1); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestPlanCachePurge(t *testing.T) {
	c := New(0)
	c.Put(Key{Text: "q"}, entry())
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("purge left %+v", s)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResults(100)
	c.Put("a", 1, 60)
	c.Put("b", 2, 60) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	// Oversized values are refused outright.
	c.Put("huge", 3, 1000)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value cached")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestResultKeyEpochTags(t *testing.T) {
	k1 := ResultKey("subsrc", "Scan(t)", []string{EpochTag("t", 7, 1)})
	k2 := ResultKey("subsrc", "Scan(t)", []string{EpochTag("t", 7, 2)})
	if k1 == k2 {
		t.Fatal("version bump must change the key")
	}
	k3 := ResultKey("subsrc", "Scan(t)", []string{EpochTag("t", 8, 1)})
	if k1 == k3 {
		t.Fatal("table identity must change the key")
	}
}

func TestCachesConcurrent(t *testing.T) {
	pc := New(0)
	rc := NewResults(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Text: fmt.Sprintf("q%d", i%17)}
				if _, ok := pc.Get(k, 1); !ok {
					pc.Put(k, entry())
				}
				rk := fmt.Sprintf("r%d", i%13)
				if _, ok := rc.Get(rk); !ok {
					rc.Put(rk, i, 8)
				}
			}
		}(g)
	}
	wg.Wait()
}
