// Package plancache implements the cross-query caching layers behind
// prepared statements: a parameterized plan cache (normalized SQL →
// compiled physical plan template) and a generic byte-budgeted result
// cache used for engine-level memoization of uncorrelated subquery
// materializations and GMDJ detail-side hash partitions.
//
// Correctness relies on two epoch mechanisms (see DESIGN.md):
//
//   - Plan entries record the catalog schema epoch at compile time and
//     are revalidated on every hit; CREATE/DROP and index changes bump
//     the epoch, so a stale plan is never served.
//   - Result entries embed each dependency table's id@version pair in
//     their keys. Writers bump versions, so a write does not so much
//     invalidate old entries as make them unreachable; LRU pressure
//     eventually evicts them.
//
// Both caches are safe for concurrent use and surface hit/miss/
// eviction counters through internal/obs expvars.
package plancache

import (
	"container/list"
	"sync"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/obs"
)

// Key identifies a cached plan: the normalized query text (literals
// lifted to $n placeholders) plus the strategy it was compiled for.
type Key struct {
	Text     string
	Strategy uint8
}

// Entry is one compiled plan template.
type Entry struct {
	// Plan is the physical plan, possibly containing expr.Param
	// placeholders. It is shared between executions and must be treated
	// as immutable; execution binds parameters onto a rewritten copy.
	Plan algebra.Node
	// NParams is the number of placeholders the template expects.
	NParams int
	// Tables lists the base tables the plan reads (sorted).
	Tables []string
	// SchemaEpoch is the catalog schema epoch the plan was compiled
	// under; a hit under any other epoch is discarded.
	SchemaEpoch uint64

	bytes int64
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits, Misses, Evictions, Invalidations int64
	Entries                                int
	Bytes                                  int64
	// Spill-tier counters (result cache only; zero for the plan cache):
	// entries written to / promoted back from the file-backed cold
	// tier, and the bytes currently held cold on disk.
	SpillWrites, SpillReads int64
	ColdEntries             int
	ColdBytes               int64
}

// Cache is a byte-budgeted LRU plan cache.
type Cache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	ll    *list.List // front = most recent; values are *planItem
	items map[Key]*list.Element
	stats Stats
}

type planItem struct {
	key   Key
	entry *Entry
}

// DefaultPlanBytes is the plan-cache budget used when callers pass a
// non-positive limit: generous for plan templates (a plan is a few KB)
// while still bounding a pathological workload of distinct shapes.
const DefaultPlanBytes = 16 << 20

// New creates a plan cache holding at most maxBytes of estimated plan
// memory (<= 0 uses DefaultPlanBytes).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultPlanBytes
	}
	return &Cache{max: maxBytes, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the entry for k when present and compiled under
// schemaEpoch. A present-but-stale entry is dropped and counted as an
// invalidation (plus a miss: the caller must recompile either way).
func (c *Cache) Get(k Key, schemaEpoch uint64) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		obs.MetricAdd("plancache.miss", 1)
		return nil, false
	}
	it := el.Value.(*planItem)
	if it.entry.SchemaEpoch != schemaEpoch {
		c.removeLocked(el)
		c.stats.Invalidations++
		c.stats.Misses++
		obs.MetricAdd("plancache.invalidation", 1)
		obs.MetricAdd("plancache.miss", 1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	obs.MetricAdd("plancache.hit", 1)
	return it.entry, true
}

// Peek reports whether a valid entry for k exists without touching
// recency or counters (EXPLAIN uses it to annotate "plan: cached").
func (c *Cache) Peek(k Key, schemaEpoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	return ok && el.Value.(*planItem).entry.SchemaEpoch == schemaEpoch
}

// Put inserts (or replaces) the entry for k and evicts from the LRU
// tail until the byte budget holds.
func (c *Cache) Put(k Key, e *Entry) {
	e.bytes = planBytes(k, e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&planItem{key: k, entry: e})
	c.items[k] = el
	c.cur += e.bytes
	for c.cur > c.max && c.ll.Len() > 1 {
		c.stats.Evictions++
		obs.MetricAdd("plancache.eviction", 1)
		c.removeLocked(c.ll.Back())
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	it := el.Value.(*planItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.cur -= it.entry.bytes
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.cur
	return s
}

// Purge drops every entry (counters are preserved).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
	c.cur = 0
}

// planBytes estimates an entry's resident size: key text plus a flat
// charge per plan node and expression. Exactness doesn't matter — the
// estimate only has to grow with plan complexity so the LRU budget
// means something.
func planBytes(k Key, e *Entry) int64 {
	const nodeCost, exprCost = 128, 48
	n := int64(len(k.Text)) + 64
	for _, t := range e.Tables {
		n += int64(len(t)) + 16
	}
	var nodes, exprs int64
	countNodes(e.Plan, &nodes)
	algebra.WalkExprs(e.Plan, func(expr.Expr) { exprs++ })
	return n + nodes*nodeCost + exprs*exprCost
}

func countNodes(n algebra.Node, total *int64) {
	if n == nil {
		return
	}
	*total++
	for _, c := range n.Children() {
		countNodes(c, total)
	}
}
