package plancache

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/value"
)

func coldRelation(tag string) *relation.Relation {
	rel := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "t", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "t", Name: "tag", Type: value.KindString},
	))
	rel.Append(relation.Tuple{value.Int(1), value.Str(tag)})
	rel.Append(relation.Tuple{value.Int(2), value.Str(tag + "!")})
	return rel
}

func newSpillCache(t *testing.T, maxBytes int64, faults *govern.Injector) (*ResultCache, *spill.Store) {
	t.Helper()
	store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), faults)
	if err != nil {
		t.Fatal(err)
	}
	c := NewResults(maxBytes)
	c.EnableSpill(store)
	return c, store
}

// TestColdTierDemotePromote: an eviction with a spill store demotes
// the encodable value to disk, and a later Get promotes it back as a
// hit instead of a miss.
func TestColdTierDemotePromote(t *testing.T) {
	c, store := newSpillCache(t, 100, nil)
	a := coldRelation("a")
	c.Put("a", a, 60)
	c.Put("b", coldRelation("b"), 60) // evicts a -> cold tier

	s := c.Stats()
	if s.SpillWrites != 1 || s.ColdEntries != 1 || s.ColdBytes <= 0 {
		t.Fatalf("stats after demote = %+v", s)
	}
	if store.LiveFiles() != 1 {
		t.Fatalf("live files = %d, want 1", store.LiveFiles())
	}

	v, ok := c.Get("a")
	if !ok {
		t.Fatal("cold entry not promoted")
	}
	got := v.(*relation.Relation)
	if !reflect.DeepEqual(a.Rows, got.Rows) {
		t.Fatalf("promoted rows differ: %v vs %v", a.Rows, got.Rows)
	}
	// Promotion re-admits "a" within the byte budget, which evicts "b"
	// to the cold tier in turn — a's file is consumed, b's is written.
	s = c.Stats()
	if s.SpillReads != 1 || s.ColdEntries != 1 {
		t.Fatalf("stats after promote = %+v", s)
	}
	if store.LiveFiles() != 1 {
		t.Fatalf("live files after promote = %d, want 1 (b cold)", store.LiveFiles())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b lost entirely during promotion shuffle")
	}
}

// TestColdTierUnencodableDrops: values no codec understands are
// dropped on eviction, not spilled.
func TestColdTierUnencodableDrops(t *testing.T) {
	c, store := newSpillCache(t, 100, nil)
	c.Put("a", 42, 60) // plain int: no codec
	c.Put("b", coldRelation("b"), 60)
	if _, ok := c.Get("a"); ok {
		t.Fatal("unencodable value survived eviction")
	}
	if s := c.Stats(); s.SpillWrites != 0 || s.ColdEntries != 0 {
		t.Fatalf("unencodable value hit the cold tier: %+v", s)
	}
	if store.LiveFiles() != 0 {
		t.Fatalf("stray cold file: %d", store.LiveFiles())
	}
}

// TestColdTierPutSupersedes: a fresh Put for a key with a demoted copy
// must remove the stale cold file.
func TestColdTierPutSupersedes(t *testing.T) {
	c, store := newSpillCache(t, 100, nil)
	c.Put("a", coldRelation("old"), 60)
	c.Put("b", coldRelation("b"), 60) // a -> cold
	if store.LiveFiles() != 1 {
		t.Fatalf("live files = %d, want 1", store.LiveFiles())
	}
	fresh := coldRelation("new")
	c.Put("a", fresh, 60) // supersedes cold copy, evicts b
	v, ok := c.Get("a")
	if !ok {
		t.Fatal("fresh value missing")
	}
	if v.(*relation.Relation).Rows[0][1].AsString() != "new" {
		t.Fatalf("stale value won: %v", v)
	}
}

// TestColdTierSpillDown: the pool reclaim hook frees resident bytes by
// demoting LRU-tail entries.
func TestColdTierSpillDown(t *testing.T) {
	c, store := newSpillCache(t, 1000, nil)
	c.Put("a", coldRelation("a"), 100)
	c.Put("b", coldRelation("b"), 100)
	c.Put("c", coldRelation("c"), 100)

	freed := c.SpillDown(150) // demotes LRU tail: a, then b
	if freed < 150 {
		t.Fatalf("freed = %d, want >= 150", freed)
	}
	s := c.Stats()
	if s.Bytes != 100 || s.Entries != 1 {
		t.Fatalf("resident after spilldown = %+v", s)
	}
	if s.ColdEntries != 2 || store.LiveFiles() != 2 {
		t.Fatalf("cold tier after spilldown = %+v, live %d", s, store.LiveFiles())
	}
	// Demoted entries remain reachable.
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %s lost after spilldown", k)
		}
	}
}

// TestColdTierPurge removes cold files along with resident entries.
func TestColdTierPurge(t *testing.T) {
	c, store := newSpillCache(t, 100, nil)
	c.Put("a", coldRelation("a"), 60)
	c.Put("b", coldRelation("b"), 60) // a -> cold
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.ColdEntries != 0 {
		t.Fatalf("purge left %+v", s)
	}
	if store.LiveFiles() != 0 {
		t.Fatalf("purge leaked %d cold files", store.LiveFiles())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged cold entry resurrected")
	}
}

// TestColdTierWriteFaultDegrades: a spill-write failure during
// demotion degrades to a plain drop — queries keep working, the cache
// just misses.
func TestColdTierWriteFaultDegrades(t *testing.T) {
	in, err := govern.ParseFaults("spill.write=enospc")
	if err != nil {
		t.Fatal(err)
	}
	c, store := newSpillCache(t, 100, in)
	c.Put("a", coldRelation("a"), 60)
	c.Put("b", coldRelation("b"), 60) // eviction tries to demote, write fails
	if _, ok := c.Get("a"); ok {
		t.Fatal("failed demotion still served the value")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("resident value lost")
	}
	if s := c.Stats(); s.ColdEntries != 0 || s.SpillWrites != 0 {
		t.Fatalf("failed demote counted: %+v", s)
	}
	if store.LiveFiles() != 0 {
		t.Fatalf("failed demote leaked %d files", store.LiveFiles())
	}
}

// TestColdTierReadFaultDegrades: a corrupt cold file degrades the Get
// to a miss and the file is gone either way.
func TestColdTierReadFaultDegrades(t *testing.T) {
	in, err := govern.ParseFaults("spill.read=corrupt")
	if err != nil {
		t.Fatal(err)
	}
	c, store := newSpillCache(t, 100, in)
	c.Put("a", coldRelation("a"), 60)
	c.Put("b", coldRelation("b"), 60) // a -> cold
	if _, ok := c.Get("a"); ok {
		t.Fatal("corrupt cold entry served")
	}
	if store.LiveFiles() != 0 {
		t.Fatalf("corrupt cold file survived: %d", store.LiveFiles())
	}
	// Subsequent Gets are plain misses, not errors.
	if _, ok := c.Get("a"); ok {
		t.Fatal("ghost entry")
	}
}
