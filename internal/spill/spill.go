// Package spill is the engine's file-backed store for operator state
// that no longer fits its memory reservation: GMDJ base-state
// partitions evicted under pressure, uncorrelated-subquery
// materializations, and cold result-cache entries all move through it.
//
// Files live under a per-engine scratch directory named
// gmdj-scratch-<pid>-<seq> inside a configurable root; NewScratch
// sweeps stale sibling directories left by crashed processes (dead
// pid) before creating its own, so leaked spill state cannot
// accumulate across runs. Every frame written is
//
//	magic "GSPL" | version 1 | payload length (8B LE) | FNV-1a
//	checksum of the payload (8B LE) | payload
//
// so truncation and at-rest corruption are detected on re-read rather
// than decoded into garbage. Every failure — organic or injected via
// the GMDJ_FAULTS disk actions at sites spill.write and spill.read —
// surfaces as an error wrapping ErrSpillIO and removes the file
// involved.
package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
)

// ErrSpillIO classifies every spill-store failure: disk-full, short
// writes, checksum mismatches on re-read, and injected disk faults.
// Match it with errors.Is.
var ErrSpillIO = errors.New("spill I/O failure")

// Fault-injection sites interpreted by the store (see govern.EnvFaults
// for the disk actions they accept).
const (
	SiteWrite = "spill.write"
	SiteRead  = "spill.read"
)

const (
	frameMagic   = "GSPL"
	frameVersion = 1
	frameHeader  = 4 + 1 + 8 + 8 // magic + version + length + checksum
	scratchStem  = "gmdj-scratch"
)

// scratchSeq distinguishes multiple stores within one process.
var scratchSeq atomic.Int64

// Store writes and reads checksummed spill files inside one scratch
// directory. It is safe for concurrent use. A nil Store is inert: no
// spill capacity (callers must hold state in memory or fail their
// budget).
type Store struct {
	dir    string
	faults *govern.Injector

	mu   sync.Mutex
	seq  int64
	live map[string]struct{}

	writes       atomic.Int64
	reads        atomic.Int64
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// StoreStats is a point-in-time snapshot of store activity.
type StoreStats struct {
	Dir          string `json:"dir"`
	LiveFiles    int    `json:"live_files"`
	Writes       int64  `json:"writes"`
	Reads        int64  `json:"reads"`
	BytesWritten int64  `json:"bytes_written"`
	BytesRead    int64  `json:"bytes_read"`
}

// NewStore opens a store rooted at dir, creating it if needed. faults
// may be nil.
func NewStore(dir string, faults *govern.Injector) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: creating scratch dir: %v", ErrSpillIO, err)
	}
	return &Store{dir: dir, faults: faults, live: map[string]struct{}{}}, nil
}

// NewScratch sweeps stale scratch directories under root (crashed
// runs: gmdj-scratch-<pid>-* where pid is no longer alive), then
// creates a fresh per-process scratch directory there and opens a
// store on it. The sweep and the create happen under one exclusive
// root lock (see lockRoot): without it, a second store opening
// concurrently under the same root can create its directory between a
// sweeping janitor's stale decision and its RemoveAll — under pid
// reuse the names collide and the janitor deletes the newcomer's live
// scratch directory out from under it.
func NewScratch(root string, faults *govern.Injector) (*Store, error) {
	if root == "" {
		root = filepath.Join(os.TempDir(), "gmdj-spill")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("%w: creating scratch root: %v", ErrSpillIO, err)
	}
	lock, err := lockRoot(root)
	if err != nil {
		return nil, err
	}
	defer lock.unlock()
	cleanStaleLocked(root)
	dir := filepath.Join(root, fmt.Sprintf("%s-%d-%d", scratchStem, os.Getpid(), scratchSeq.Add(1)))
	return NewStore(dir, faults)
}

// janitorLockName is the advisory lock file serializing every janitor
// sweep and scratch-directory creation under one root, across
// processes (flock) and across stores within a process (flock contends
// between file descriptions).
const janitorLockName = ".janitor.lock"

// rootLock is a held janitor lock.
type rootLock struct{ f *os.File }

func (l rootLock) unlock() {
	// Closing the descriptor releases the flock.
	_ = l.f.Close()
}

// lockRoot takes the exclusive janitor lock for root, blocking until
// any concurrent sweep or scratch creation finishes.
func lockRoot(root string) (rootLock, error) {
	f, err := os.OpenFile(filepath.Join(root, janitorLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return rootLock{}, fmt.Errorf("%w: opening janitor lock: %v", ErrSpillIO, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return rootLock{}, fmt.Errorf("%w: locking janitor lock: %v", ErrSpillIO, err)
	}
	return rootLock{f: f}, nil
}

// CleanStale removes scratch directories under root left behind by
// dead processes, returning how many it removed. Directories belonging
// to live pids (including this process) are kept. The sweep holds the
// root's janitor lock so it cannot race a concurrently opening store.
func CleanStale(root string) int {
	lock, err := lockRoot(root)
	if err != nil {
		return 0
	}
	defer lock.unlock()
	return cleanStaleLocked(root)
}

// cleanStaleLocked is CleanStale's body; the caller holds the root
// janitor lock.
func cleanStaleLocked(root string) int {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pid, ok := scratchPid(e.Name())
		if !ok || pid == os.Getpid() || pidAlive(pid) {
			continue
		}
		if os.RemoveAll(filepath.Join(root, e.Name())) == nil {
			removed++
			obs.MetricAdd("spill.stale_dirs_removed", 1)
		}
	}
	return removed
}

// scratchPid parses the owning pid out of "gmdj-scratch-<pid>-<seq>".
func scratchPid(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, scratchStem+"-")
	if !ok {
		return 0, false
	}
	pidStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, false
	}
	pid, err := strconv.Atoi(pidStr)
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// pidAlive reports whether pid names a live process (signal 0 probe).
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	// EPERM means "alive but not ours" — err only ESRCH/finished means dead.
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Dir returns the scratch directory path ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Write persists one checksummed frame holding payload and returns its
// handle. prefix names the producer in the filename (diagnostics
// only). Disk faults configured at spill.write are enacted here; on
// any failure the partial file is removed and the error wraps
// ErrSpillIO.
func (s *Store) Write(prefix string, payload []byte) (*File, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: no spill store configured", ErrSpillIO)
	}
	if err := s.faults.Fire(SiteWrite, nil); err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrSpillIO, SiteWrite, err)
	}
	s.mu.Lock()
	s.seq++
	path := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.spill", prefix, s.seq))
	s.mu.Unlock()

	frame := AppendFrame(make([]byte, 0, frameHeader+len(payload)), payload)

	switch s.faults.Disk(SiteWrite) {
	case govern.DiskENOSPC:
		return nil, fmt.Errorf("%w: writing %s: %v", ErrSpillIO, path, syscall.ENOSPC)
	case govern.DiskShortWrite:
		// Persist only half the frame, then fail exactly as a real short
		// write does — the partial file must not survive.
		_ = os.WriteFile(path, frame[:len(frame)/2], 0o644)
		os.Remove(path)
		return nil, fmt.Errorf("%w: writing %s: short write (%d of %d bytes)", ErrSpillIO, path, len(frame)/2, len(frame))
	case govern.DiskCorrupt:
		// Latent corruption: the write "succeeds" but a payload byte is
		// flipped, so the checksum trips on re-read.
		if len(payload) > 0 {
			frame[frameHeader] ^= 0xFF
		}
	}

	if err := os.WriteFile(path, frame, 0o644); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("%w: writing %s: %v", ErrSpillIO, path, err)
	}
	s.mu.Lock()
	s.live[path] = struct{}{}
	s.mu.Unlock()
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(frame)))
	obs.MetricAdd("spill.writes", 1)
	obs.MetricAdd("spill.bytes_written", int64(len(frame)))
	return &File{store: s, path: path, Bytes: int64(len(frame))}, nil
}

// LiveFiles returns how many spill files the store currently holds.
func (s *Store) LiveFiles() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Stats snapshots store activity (zero value for a nil store).
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	live := len(s.live)
	s.mu.Unlock()
	return StoreStats{
		Dir:          s.dir,
		LiveFiles:    live,
		Writes:       s.writes.Load(),
		Reads:        s.reads.Load(),
		BytesWritten: s.bytesWritten.Load(),
		BytesRead:    s.bytesRead.Load(),
	}
}

// RemoveAll deletes the scratch directory and everything in it (engine
// shutdown). The store is unusable afterward.
func (s *Store) RemoveAll() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.live = map[string]struct{}{}
	s.mu.Unlock()
	return os.RemoveAll(s.dir)
}

// File is a handle to one written spill frame.
type File struct {
	store *Store
	path  string
	// Bytes is the on-disk frame size (header + payload).
	Bytes int64
}

// Path returns the file's location (diagnostics).
func (f *File) Path() string { return f.path }

// Read loads the frame back and verifies magic, version, length, and
// checksum, returning the payload. Disk faults configured at
// spill.read are enacted here. A frame that fails verification is an
// ErrSpillIO — the file is removed so the corruption cannot be re-read.
func (f *File) Read() ([]byte, error) {
	s := f.store
	if err := s.faults.Fire(SiteRead, nil); err != nil {
		f.Remove()
		return nil, fmt.Errorf("%w: %s: %w", ErrSpillIO, SiteRead, err)
	}
	frame, err := os.ReadFile(f.path)
	if err != nil {
		f.Remove()
		return nil, fmt.Errorf("%w: reading %s: %v", ErrSpillIO, f.path, err)
	}
	if s.faults.Disk(SiteRead) == govern.DiskCorrupt && len(frame) > frameHeader {
		frame[frameHeader] ^= 0xFF
	}
	payload, _, err := DecodeFrame(frame)
	if err != nil {
		f.Remove()
		return nil, fmt.Errorf("%w: %s: %v", ErrSpillIO, f.path, err)
	}
	s.reads.Add(1)
	s.bytesRead.Add(int64(len(frame)))
	obs.MetricAdd("spill.reads", 1)
	obs.MetricAdd("spill.bytes_read", int64(len(frame)))
	return payload, nil
}

// Remove deletes the file. Idempotent; errors are swallowed (removal
// runs on cleanup paths that must not mask the primary error).
func (f *File) Remove() {
	if f == nil || f.path == "" {
		return
	}
	os.Remove(f.path)
	f.store.mu.Lock()
	delete(f.store.live, f.path)
	f.store.mu.Unlock()
	f.path = ""
}
