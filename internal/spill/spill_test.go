package spill

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/govern"
)

func newTestStore(t *testing.T, faults *govern.Injector) *Store {
	t.Helper()
	s, err := NewStore(filepath.Join(t.TempDir(), "scratch"), faults)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := newTestStore(t, nil)
	payload := []byte("the quick brown fox")
	f, err := s.Write("part", payload)
	if err != nil {
		t.Fatal(err)
	}
	if s.LiveFiles() != 1 {
		t.Fatalf("live files = %d, want 1", s.LiveFiles())
	}
	got, err := f.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	f.Remove()
	f.Remove() // idempotent
	if s.LiveFiles() != 0 {
		t.Fatalf("live files after remove = %d, want 0", s.LiveFiles())
	}
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := newTestStore(t, nil)
	f, err := s.Write("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %q, want empty", got)
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if _, err := s.Write("x", []byte("y")); !errors.Is(err, ErrSpillIO) {
		t.Fatalf("nil store Write err = %v, want ErrSpillIO", err)
	}
	if s.Dir() != "" || s.LiveFiles() != 0 {
		t.Fatal("nil store accessors wrong")
	}
	if s.Stats() != (StoreStats{}) {
		t.Fatal("nil store stats not zero")
	}
	if err := s.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	var f *File
	f.Remove() // must not panic
}

// TestAtRestCorruption flips a payload byte on disk behind the store's
// back and verifies the checksum catches it and the file is removed.
func TestAtRestCorruption(t *testing.T) {
	s := newTestStore(t, nil)
	f, err := s.Write("part", []byte("precious state"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(f.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = f.Read()
	if !errors.Is(err, ErrSpillIO) || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want ErrSpillIO checksum mismatch", err)
	}
	if s.LiveFiles() != 0 {
		t.Fatalf("corrupt file not removed: %d live", s.LiveFiles())
	}
}

func TestTruncatedFrame(t *testing.T) {
	s := newTestStore(t, nil)
	f, err := s.Write("part", []byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(f.Path())
	if err := os.WriteFile(f.Path(), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(); !errors.Is(err, ErrSpillIO) {
		t.Fatalf("truncated read err = %v, want ErrSpillIO", err)
	}
}

func TestBadHeader(t *testing.T) {
	s := newTestStore(t, nil)
	f, err := s.Write("part", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.Path(), []byte("not a frame at all......."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(); !errors.Is(err, ErrSpillIO) {
		t.Fatalf("bad header err = %v, want ErrSpillIO", err)
	}
}

// Injected disk faults at the write site.
func TestWriteFaults(t *testing.T) {
	cases := []struct {
		action  string
		wantErr bool
	}{
		{"enospc", true},
		{"shortwrite", true},
		{"corrupt", false}, // write "succeeds", read must fail
	}
	for _, c := range cases {
		t.Run(c.action, func(t *testing.T) {
			in, err := govern.ParseFaults("spill.write=" + c.action)
			if err != nil {
				t.Fatal(err)
			}
			s := newTestStore(t, in)
			f, err := s.Write("part", []byte("doomed payload"))
			if c.wantErr {
				if !errors.Is(err, ErrSpillIO) {
					t.Fatalf("err = %v, want ErrSpillIO", err)
				}
				assertEmptyDir(t, s.Dir())
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Read(); !errors.Is(err, ErrSpillIO) {
				t.Fatalf("read of latently corrupted frame err = %v, want ErrSpillIO", err)
			}
			assertEmptyDir(t, s.Dir())
		})
	}
}

func TestReadCorruptFault(t *testing.T) {
	in, err := govern.ParseFaults("spill.read=corrupt")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, in)
	f, err := s.Write("part", []byte("fine on disk"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(); !errors.Is(err, ErrSpillIO) {
		t.Fatalf("err = %v, want ErrSpillIO", err)
	}
	assertEmptyDir(t, s.Dir())
}

// Error-action faults (GMDJ_FAULTS "error") at disk sites also surface
// as ErrSpillIO, wrapping the injected error.
func TestErrorFaultAtDiskSite(t *testing.T) {
	in, err := govern.ParseFaults("spill.write=error")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, in)
	if _, err := s.Write("part", []byte("x")); !errors.Is(err, ErrSpillIO) || !errors.Is(err, govern.ErrInjected) {
		t.Fatalf("err = %v, want ErrSpillIO wrapping ErrInjected", err)
	}
}

func assertEmptyDir(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover file %s", e.Name())
	}
}

func TestScratchJanitor(t *testing.T) {
	root := t.TempDir()
	// A stale scratch dir from a "crashed" process — pid 4000123 is
	// just under the Linux pid_max ceiling and not plausibly alive in a
	// test environment.
	stale := filepath.Join(root, "gmdj-scratch-4000123-1")
	_ = os.MkdirAll(stale, 0o755)
	_ = os.WriteFile(filepath.Join(stale, "old.spill"), []byte("junk"), 0o644)
	// A dir owned by a live pid (ours) must survive.
	mine := filepath.Join(root, "gmdj-scratch-"+strconv.Itoa(os.Getpid())+"-999")
	_ = os.MkdirAll(mine, 0o755)
	// Not a scratch dir at all: untouched.
	other := filepath.Join(root, "unrelated")
	_ = os.MkdirAll(other, 0o755)

	s, err := NewScratch(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.RemoveAll()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale scratch dir not removed")
	}
	if _, err := os.Stat(mine); err != nil {
		t.Error("live-pid scratch dir removed")
	}
	if _, err := os.Stat(other); err != nil {
		t.Error("unrelated dir removed")
	}
	if !strings.HasPrefix(filepath.Base(s.Dir()), "gmdj-scratch-") {
		t.Errorf("scratch dir %s not under the stem", s.Dir())
	}
}

func TestScratchPid(t *testing.T) {
	cases := []struct {
		name string
		pid  int
		ok   bool
	}{
		{"gmdj-scratch-1234-1", 1234, true},
		{"gmdj-scratch-1234-99", 1234, true},
		{"gmdj-scratch-x-1", 0, false},
		{"gmdj-scratch-1234", 0, false},
		{"other-1234-1", 0, false},
	}
	for _, c := range cases {
		pid, ok := scratchPid(c.name)
		if ok != c.ok || (ok && pid != c.pid) {
			t.Errorf("scratchPid(%q) = %d, %v; want %d, %v", c.name, pid, ok, c.pid, c.ok)
		}
	}
}

func TestRemoveAll(t *testing.T) {
	s := newTestStore(t, nil)
	for i := 0; i < 3; i++ {
		if _, err := s.Write("part", []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Dir()); !os.IsNotExist(err) {
		t.Fatal("scratch dir survived RemoveAll")
	}
}

// The janitor race regression: a store opening under a root must not
// lose its directory to a janitor sweep deciding staleness from a
// snapshot taken before the create. The fix serializes every sweep and
// create under the root's flock; these tests pin both the lock
// semantics and the survival property.

func TestJanitorLockSerializes(t *testing.T) {
	root := t.TempDir()
	lock, err := lockRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	// With the lock held, NewScratch must block (flock contends between
	// descriptors even within one process).
	done := make(chan *Store, 1)
	go func() {
		s, err := NewScratch(root, nil)
		if err != nil {
			t.Error(err)
		}
		done <- s
	}()
	select {
	case <-done:
		t.Fatal("NewScratch completed while the janitor lock was held")
	case <-time.After(100 * time.Millisecond):
	}
	lock.unlock()
	select {
	case s := <-done:
		if s != nil {
			s.RemoveAll()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NewScratch never acquired the released lock")
	}
}

func TestConcurrentScratchOpensAndSweeps(t *testing.T) {
	// Concurrent second-DB opens under one scratch root while janitor
	// sweeps run: every store must keep its directory and its files.
	// Each round also plants a fresh stale dir so the sweeps have real
	// work (and really RemoveAll) while the opens are in flight.
	root := t.TempDir()
	const openers, sweeps = 8, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < sweeps; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stale := filepath.Join(root, "gmdj-scratch-4000123-"+strconv.Itoa(i))
			_ = os.MkdirAll(stale, 0o755)
			CleanStale(root)
		}
	}()
	for w := 0; w < openers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s, err := NewScratch(root, nil)
				if err != nil {
					t.Error(err)
					return
				}
				f, err := s.Write("q", []byte("payload"))
				if err != nil {
					t.Errorf("write in fresh scratch: %v", err)
					s.RemoveAll()
					return
				}
				if got, err := f.Read(); err != nil || string(got) != "payload" {
					t.Errorf("read back: %q, %v — scratch dir swept out from under a live store?", got, err)
				}
				if _, err := os.Stat(s.Dir()); err != nil {
					t.Errorf("live scratch dir gone: %v", err)
				}
				s.RemoveAll()
			}
		}()
	}
	wg.Wait()
	close(stop)
}
