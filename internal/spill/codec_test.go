package spill

import (
	"reflect"
	"testing"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

func sampleRelation() *relation.Relation {
	rel := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "t", Name: "id", Type: value.KindInt},
		relation.Column{Qualifier: "t", Name: "score", Type: value.KindFloat},
		relation.Column{Qualifier: "", Name: "tag", Type: value.KindString},
		relation.Column{Qualifier: "t", Name: "ok", Type: value.KindBool},
	))
	rel.Append(relation.Tuple{value.Int(1), value.Float(3.25), value.Str("alpha"), value.Bool(true)})
	rel.Append(relation.Tuple{value.Int(-42), value.Float(-0.5), value.Str(""), value.Bool(false)})
	rel.Append(relation.Tuple{value.Null, value.Null, value.Str("héllo – utf8"), value.Null})
	return rel
}

func TestRelationRoundTrip(t *testing.T) {
	rel := sampleRelation()
	out, err := DecodeRelation(EncodeRelation(rel))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rel.Schema.Columns, out.Schema.Columns) {
		t.Fatalf("schema mismatch: %+v vs %+v", rel.Schema.Columns, out.Schema.Columns)
	}
	if !reflect.DeepEqual(rel.Rows, out.Rows) {
		t.Fatalf("rows mismatch:\n%v\n%v", rel.Rows, out.Rows)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	in := relation.Tuple{value.Int(1 << 40), value.Str("x"), value.Null}
	buf := AppendTuple(nil, in)
	out, pos, err := ReadTuple(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d bytes", pos, len(buf))
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("tuple mismatch: %v vs %v", in, out)
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	rel := sampleRelation()
	idx := []int32{7, 3, 11}
	buf := EncodePartition(idx, rel.Rows)
	gotIdx, gotRows, err := DecodePartition(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, gotIdx) {
		t.Fatalf("idx mismatch: %v vs %v", idx, gotIdx)
	}
	if !reflect.DeepEqual(rel.Rows, gotRows) {
		t.Fatalf("rows mismatch")
	}
}

// Decoding corrupted or truncated bytes must error, never panic.
func TestDefensiveDecoding(t *testing.T) {
	rel := sampleRelation()
	enc := EncodeRelation(rel)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeRelation(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes happen to parse as a shorter valid relation —
			// that is acceptable (checksums catch real corruption); the
			// point is no panic.
			continue
		}
	}
	part := EncodePartition([]int32{1, 2, 3}, rel.Rows)
	for cut := 0; cut < len(part); cut++ {
		_, _, _ = DecodePartition(part[:cut])
	}
	if _, err := DecodeRelation([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage relation decoded")
	}
}

func TestCodecRegistry(t *testing.T) {
	rel := sampleRelation()
	name, data, ok := EncodeAny(rel)
	if !ok || name != "relation" {
		t.Fatalf("EncodeAny = %q, ok=%v", name, ok)
	}
	back, err := DecodeAny(name, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rel.Rows, back.(*relation.Relation).Rows) {
		t.Fatal("rows mismatch after codec roundtrip")
	}
	if _, _, ok := EncodeAny(42); ok {
		t.Fatal("EncodeAny accepted an unregistered type")
	}
	if _, err := DecodeAny("no-such-codec", nil); err == nil {
		t.Fatal("DecodeAny accepted an unknown codec")
	}
}
