package spill

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// This file is the spill wire format: a compact binary encoding of the
// engine's data plane (values, tuples, schemas, relations) plus a
// codec registry so heterogeneous cached values (result-cache entries)
// can round-trip through the store without the store knowing their
// types.
//
// All integers are unsigned varints except float payloads (8B LE).
// Decoding is defensive — any structural violation is an error, never
// a panic — because the bytes may have survived a disk and the
// checksum is only 64 bits.

// Value encoding: kind byte, then a kind-specific payload.
func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindInt:
		buf = binary.AppendUvarint(buf, uint64(v.AsInt()))
	case value.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case value.KindString:
		s := v.AsString()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case value.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

func readValue(data []byte, pos int) (value.Value, int, error) {
	if pos >= len(data) {
		return value.Null, 0, fmt.Errorf("spill codec: truncated value")
	}
	kind := value.Kind(data[pos])
	pos++
	switch kind {
	case value.KindNull:
		return value.Null, pos, nil
	case value.KindInt:
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return value.Null, 0, fmt.Errorf("spill codec: bad int varint")
		}
		return value.Int(int64(u)), pos + n, nil
	case value.KindFloat:
		if pos+8 > len(data) {
			return value.Null, 0, fmt.Errorf("spill codec: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		return value.Float(f), pos + 8, nil
	case value.KindString:
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(u) > len(data) {
			return value.Null, 0, fmt.Errorf("spill codec: truncated string")
		}
		pos += n
		return value.Str(string(data[pos : pos+int(u)])), pos + int(u), nil
	case value.KindBool:
		if pos >= len(data) {
			return value.Null, 0, fmt.Errorf("spill codec: truncated bool")
		}
		return value.Bool(data[pos] != 0), pos + 1, nil
	default:
		return value.Null, 0, fmt.Errorf("spill codec: unknown value kind %d", kind)
	}
}

// AppendTuple encodes one tuple (width varint + values).
func AppendTuple(buf []byte, t relation.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = appendValue(buf, v)
	}
	return buf
}

// ReadTuple decodes one tuple from data at pos.
func ReadTuple(data []byte, pos int) (relation.Tuple, int, error) {
	width, n := binary.Uvarint(data[pos:])
	if n <= 0 || width > uint64(len(data)) {
		return nil, 0, fmt.Errorf("spill codec: bad tuple width")
	}
	pos += n
	t := make(relation.Tuple, width)
	for i := range t {
		var err error
		t[i], pos, err = readValue(data, pos)
		if err != nil {
			return nil, 0, err
		}
	}
	return t, pos, nil
}

// EncodeRelation encodes schema and rows.
func EncodeRelation(rel *relation.Relation) []byte {
	buf := binary.AppendUvarint(nil, uint64(rel.Schema.Len()))
	for _, c := range rel.Schema.Columns {
		buf = binary.AppendUvarint(buf, uint64(len(c.Qualifier)))
		buf = append(buf, c.Qualifier...)
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Type))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rel.Rows)))
	for _, t := range rel.Rows {
		buf = AppendTuple(buf, t)
	}
	return buf
}

// DecodeRelation is the inverse of EncodeRelation.
func DecodeRelation(data []byte) (*relation.Relation, error) {
	readStr := func(pos int) (string, int, error) {
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(u) > len(data) {
			return "", 0, fmt.Errorf("spill codec: truncated schema string")
		}
		pos += n
		return string(data[pos : pos+int(u)]), pos + int(u), nil
	}
	ncols, n := binary.Uvarint(data)
	if n <= 0 || ncols > uint64(len(data)) {
		return nil, fmt.Errorf("spill codec: bad column count")
	}
	pos := n
	cols := make([]relation.Column, ncols)
	for i := range cols {
		var err error
		cols[i].Qualifier, pos, err = readStr(pos)
		if err != nil {
			return nil, err
		}
		cols[i].Name, pos, err = readStr(pos)
		if err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("spill codec: truncated column type")
		}
		cols[i].Type = value.Kind(data[pos])
		pos++
	}
	rel := relation.New(relation.NewSchema(cols...))
	nrows, n := binary.Uvarint(data[pos:])
	if n <= 0 || nrows > uint64(len(data)) {
		return nil, fmt.Errorf("spill codec: bad row count")
	}
	pos += n
	rel.Rows = make([]relation.Tuple, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		t, next, err := ReadTuple(data, pos)
		if err != nil {
			return nil, err
		}
		rel.Rows = append(rel.Rows, t)
		pos = next
	}
	return rel, nil
}

// EncodePartition encodes a spilled GMDJ base partition: rows paired
// with their positions in the original base relation, so the evaluator
// can reassemble results in base order after re-probing.
func EncodePartition(idx []int32, rows []relation.Tuple) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(rows)))
	for i, t := range rows {
		buf = binary.AppendUvarint(buf, uint64(idx[i]))
		buf = AppendTuple(buf, t)
	}
	return buf
}

// DecodePartition is the inverse of EncodePartition.
func DecodePartition(data []byte) ([]int32, []relation.Tuple, error) {
	nrows, n := binary.Uvarint(data)
	if n <= 0 || nrows > uint64(len(data)) {
		return nil, nil, fmt.Errorf("spill codec: bad partition row count")
	}
	pos := n
	idx := make([]int32, 0, nrows)
	rows := make([]relation.Tuple, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("spill codec: bad partition index")
		}
		pos += n
		t, next, err := ReadTuple(data, pos)
		if err != nil {
			return nil, nil, err
		}
		idx = append(idx, int32(u))
		rows = append(rows, t)
		pos = next
	}
	return idx, rows, nil
}

// Codec teaches the store how to round-trip one concrete cached-value
// type. Encode returns ok=false when v is not its type.
type Codec struct {
	Name   string
	Encode func(v any) ([]byte, bool)
	Decode func(data []byte) (any, error)
}

var (
	codecMu   sync.RWMutex
	codecs    []Codec
	codecByNm = map[string]int{}
)

// RegisterCodec adds a codec (package init time; last registration of
// a name wins).
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if i, ok := codecByNm[c.Name]; ok {
		codecs[i] = c
		return
	}
	codecByNm[c.Name] = len(codecs)
	codecs = append(codecs, c)
}

// EncodeAny finds a codec handling v and encodes it. ok is false when
// no registered codec handles v — the value is then not spillable and
// must stay in memory or be dropped.
func EncodeAny(v any) (name string, data []byte, ok bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range codecs {
		if data, ok := c.Encode(v); ok {
			return c.Name, data, true
		}
	}
	return "", nil, false
}

// DecodeAny decodes data with the named codec.
func DecodeAny(name string, data []byte) (any, error) {
	codecMu.RLock()
	i, ok := codecByNm[name]
	c := Codec{}
	if ok {
		c = codecs[i]
	}
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("spill codec: unknown codec %q", name)
	}
	return c.Decode(data)
}

func init() {
	RegisterCodec(Codec{
		Name: "relation",
		Encode: func(v any) ([]byte, bool) {
			rel, ok := v.(*relation.Relation)
			if !ok {
				return nil, false
			}
			return EncodeRelation(rel), true
		},
		Decode: func(data []byte) (any, error) {
			return DecodeRelation(data)
		},
	})
}
