package spill

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// The GSPL frame is the repo's one on-disk envelope: the spill store
// wraps every scratch file in it, and the durable storage layer
// (internal/storage) reuses it for segment column blocks and manifest
// payloads so both tiers share a single checksummed codec.
//
//	magic "GSPL" | version 1 (1B) | payload length (8B LE) |
//	FNV-1a checksum of payload (8B LE) | payload

// FrameOverhead is the fixed per-frame header size in bytes.
const FrameOverhead = frameHeader

// AppendFrame appends one GSPL frame holding payload to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	sum := fnv.New64a()
	sum.Write(payload)
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, sum.Sum64())
	return append(dst, payload...)
}

// DecodeFrame verifies the GSPL frame at the start of buf — magic,
// version, length, checksum — and returns its payload plus the total
// number of bytes the frame occupies (so callers can walk files
// holding several consecutive frames). The payload aliases buf. Errors
// are plain; callers wrap them in their tier's sentinel (ErrSpillIO,
// storage.ErrSegmentCorrupt).
func DecodeFrame(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < frameHeader {
		return nil, 0, fmt.Errorf("truncated frame header (%d of %d bytes)", len(buf), frameHeader)
	}
	if string(buf[:4]) != frameMagic || buf[4] != frameVersion {
		return nil, 0, fmt.Errorf("bad frame header (magic %q, version %d)", buf[:4], buf[4])
	}
	plen := binary.LittleEndian.Uint64(buf[5:13])
	want := binary.LittleEndian.Uint64(buf[13:21])
	rest := buf[frameHeader:]
	if plen > uint64(len(rest)) {
		return nil, 0, fmt.Errorf("truncated frame (%d of %d payload bytes)", len(rest), plen)
	}
	payload = rest[:plen]
	sum := fnv.New64a()
	sum.Write(payload)
	if got := sum.Sum64(); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch (stored %016x, computed %016x)", want, got)
	}
	return payload, frameHeader + int(plen), nil
}
