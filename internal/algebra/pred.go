package algebra

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// Pred is the predicate language W of Theorem 3.5:
//
//	W := ¬(W) | W ∧ W | W ∨ W | P
//
// where P is either an ordinary comparison predicate (Atom) or a
// subquery expression (SubPred).
type Pred interface {
	fmt.Stringer
	isPred()
}

// Atom wraps an ordinary (subquery-free) boolean expression.
type Atom struct {
	E expr.Expr
}

func (*Atom) isPred()          {}
func (a *Atom) String() string { return a.E.String() }

// PredAnd is conjunction of predicate terms.
type PredAnd struct {
	Terms []Pred
}

func (*PredAnd) isPred() {}
func (p *PredAnd) String() string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// PredOr is disjunction of predicate terms.
type PredOr struct {
	Terms []Pred
}

func (*PredOr) isPred() {}
func (p *PredOr) String() string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// PredNot is negation.
type PredNot struct {
	P Pred
}

func (*PredNot) isPred()          {}
func (p *PredNot) String() string { return "¬(" + p.P.String() + ")" }

// And/Or/Not build predicate trees, flattening single terms.
func And(terms ...Pred) Pred {
	if len(terms) == 1 {
		return terms[0]
	}
	return &PredAnd{Terms: terms}
}

// Or builds a disjunction, flattening single terms.
func Or(terms ...Pred) Pred {
	if len(terms) == 1 {
		return terms[0]
	}
	return &PredOr{Terms: terms}
}

// Not builds a negation.
func Not(p Pred) Pred { return &PredNot{P: p} }

// SubKind classifies the subquery predicate constructs of §2.1.
type SubKind uint8

const (
	// Exists is σ[∃ S]B.
	Exists SubKind = iota
	// NotExists is σ[∄ S]B.
	NotExists
	// ScalarCmp is σ[x φ S]B with S single-tuple single-attribute
	// (either a plain projection expected to yield ≤1 row, or an
	// aggregate subquery, which always yields exactly one row).
	ScalarCmp
	// CmpSome is σ[x φ_some S]B (ANY is a synonym; IN is =_some).
	CmpSome
	// CmpAll is σ[x φ_all S]B (NOT IN is ≠_all).
	CmpAll
)

// String names the construct.
func (k SubKind) String() string {
	switch k {
	case Exists:
		return "EXISTS"
	case NotExists:
		return "NOT EXISTS"
	case ScalarCmp:
		return "CMP"
	case CmpSome:
		return "SOME"
	case CmpAll:
		return "ALL"
	default:
		return "?"
	}
}

// Subquery is the inner block S: a source plan, a correlation
// condition θ (which may reference outer qualifiers — free references),
// and an output: either a projected column or an aggregate over one.
// EXISTS subqueries have no output. The Where predicate may itself
// contain SubPreds (linear nesting, §3.2).
type Subquery struct {
	Source Node
	Where  Pred // nil means TRUE

	// OutCol is R.y for π[R.y]σ[θ](R)-style subqueries; nil otherwise.
	OutCol *expr.Col
	// Agg is f(R.y) for aggregate subqueries; nil otherwise.
	Agg *agg.Spec
}

func (s *Subquery) String() string {
	out := ""
	switch {
	case s.Agg != nil:
		out = "π[" + s.Agg.String() + "]"
	case s.OutCol != nil:
		out = "π[" + s.OutCol.String() + "]"
	}
	w := "true"
	if s.Where != nil {
		w = s.Where.String()
	}
	return fmt.Sprintf("%sσ[%s](%s)", out, w, s.Source)
}

// SubPred is a subquery predicate P: Left φ-quantified against the
// subquery (Left is nil for EXISTS / NOT EXISTS).
type SubPred struct {
	Kind SubKind
	Op   value.CmpOp // meaningful for ScalarCmp, CmpSome, CmpAll
	Left expr.Expr   // the outer operand B.x; nil for EXISTS kinds
	Sub  *Subquery
}

func (*SubPred) isPred() {}

func (p *SubPred) String() string {
	switch p.Kind {
	case Exists:
		return fmt.Sprintf("∃(%s)", p.Sub)
	case NotExists:
		return fmt.Sprintf("∄(%s)", p.Sub)
	case ScalarCmp:
		return fmt.Sprintf("%s %s (%s)", p.Left, p.Op, p.Sub)
	case CmpSome:
		return fmt.Sprintf("%s %s SOME (%s)", p.Left, p.Op, p.Sub)
	case CmpAll:
		return fmt.Sprintf("%s %s ALL (%s)", p.Left, p.Op, p.Sub)
	default:
		return "?"
	}
}

// In builds x IN (π[y] S), which by definition (§2.1) is x =_some S.
func In(left expr.Expr, sub *Subquery) *SubPred {
	return &SubPred{Kind: CmpSome, Op: value.EQ, Left: left, Sub: sub}
}

// NotIn builds x NOT IN (π[y] S) = x ≠_all S (§2.1).
func NotIn(left expr.Expr, sub *Subquery) *SubPred {
	return &SubPred{Kind: CmpAll, Op: value.NE, Left: left, Sub: sub}
}

// ExistsPred builds ∃ S.
func ExistsPred(sub *Subquery) *SubPred { return &SubPred{Kind: Exists, Sub: sub} }

// NotExistsPred builds ∄ S.
func NotExistsPred(sub *Subquery) *SubPred { return &SubPred{Kind: NotExists, Sub: sub} }

// WalkPred visits p and all descendant predicates in pre-order,
// stopping a branch when fn returns false. It does not descend into
// subquery Where clauses — callers needing that recurse explicitly.
func WalkPred(p Pred, fn func(Pred) bool) {
	if p == nil || !fn(p) {
		return
	}
	switch n := p.(type) {
	case *PredAnd:
		for _, t := range n.Terms {
			WalkPred(t, fn)
		}
	case *PredOr:
		for _, t := range n.Terms {
			WalkPred(t, fn)
		}
	case *PredNot:
		WalkPred(n.P, fn)
	}
}

// HasSubquery reports whether p contains any subquery predicate.
func HasSubquery(p Pred) bool {
	found := false
	WalkPred(p, func(q Pred) bool {
		if _, ok := q.(*SubPred); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// PushDownNegations rewrites p so that no PredNot remains above a
// subquery predicate or conjunction/disjunction: De Morgan's laws push
// ¬ to the atoms, and negations directly on subquery predicates are
// eliminated with the rules of Theorem 3.5:
//
//	¬(t φ S)       ⇒ t φ̄ S
//	¬(t φ_some S)  ⇒ t φ̄_all S
//	¬(t φ_all S)   ⇒ t φ̄_some S
//	¬(∃S)          ⇒ ∄S        and vice versa
//
// Negations over plain atoms become expr.Not (3VL-safe).
func PushDownNegations(p Pred) Pred {
	return pushNeg(p, false)
}

func pushNeg(p Pred, neg bool) Pred {
	switch n := p.(type) {
	case *PredNot:
		return pushNeg(n.P, !neg)
	case *PredAnd:
		terms := make([]Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = pushNeg(t, neg)
		}
		if neg {
			return &PredOr{Terms: terms}
		}
		return &PredAnd{Terms: terms}
	case *PredOr:
		terms := make([]Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = pushNeg(t, neg)
		}
		if neg {
			return &PredAnd{Terms: terms}
		}
		return &PredOr{Terms: terms}
	case *Atom:
		if neg {
			return &Atom{E: expr.NewNot(n.E)}
		}
		return n
	case *SubPred:
		sub := &Subquery{Source: n.Sub.Source, Where: normalizeSubWhere(n.Sub.Where), OutCol: n.Sub.OutCol, Agg: n.Sub.Agg}
		if !neg {
			return &SubPred{Kind: n.Kind, Op: n.Op, Left: n.Left, Sub: sub}
		}
		switch n.Kind {
		case Exists:
			return &SubPred{Kind: NotExists, Sub: sub}
		case NotExists:
			return &SubPred{Kind: Exists, Sub: sub}
		case ScalarCmp:
			return &SubPred{Kind: ScalarCmp, Op: n.Op.Negate(), Left: n.Left, Sub: sub}
		case CmpSome:
			return &SubPred{Kind: CmpAll, Op: n.Op.Negate(), Left: n.Left, Sub: sub}
		case CmpAll:
			return &SubPred{Kind: CmpSome, Op: n.Op.Negate(), Left: n.Left, Sub: sub}
		default:
			panic("algebra: unknown SubKind")
		}
	default:
		panic(fmt.Sprintf("algebra: unknown predicate %T", p))
	}
}

// normalizeSubWhere applies negation push-down inside nested subquery
// bodies as well (the integrated algorithm normalizes the whole tree
// before translating).
func normalizeSubWhere(p Pred) Pred {
	if p == nil {
		return nil
	}
	return PushDownNegations(p)
}
