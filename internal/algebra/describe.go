package algebra

import (
	"fmt"
	"strings"
)

// Describe renders a one-line operator label (and optional extra
// annotation lines) for a plan node. It is the single source of
// operator naming shared by the engine's EXPLAIN tree and the
// executor's runtime stats tree, so EXPLAIN and EXPLAIN ANALYZE agree
// on what each operator is called.
func Describe(n Node) (label string, extras []string) {
	switch node := n.(type) {
	case *Scan:
		return "Scan " + node.String(), nil
	case *Raw:
		return fmt.Sprintf("Raw %s (%d rows)", node.Name, node.Rel.Len()), nil
	case *Alias:
		return "Alias -> " + node.Name, nil
	case *Number:
		return "Number -> " + node.As, nil
	case *Restrict:
		return fmt.Sprintf("Select [%s]", node.Where), nil
	case *Project:
		d := ""
		if node.Distinct {
			d = " distinct"
		}
		items := make([]string, len(node.Items))
		for i, it := range node.Items {
			items[i] = it.String()
		}
		return fmt.Sprintf("Project%s [%s]", d, strings.Join(items, ", ")), nil
	case *Distinct:
		return "Distinct", nil
	case *Join:
		return fmt.Sprintf("Join %s [%s]", node.Kind, node.On), nil
	case *GroupBy:
		keys := make([]string, len(node.Keys))
		for i, k := range node.Keys {
			keys[i] = k.String()
		}
		aggs := make([]string, len(node.Aggs))
		for i, a := range node.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("GroupBy [%s] aggs [%s]", strings.Join(keys, ", "), strings.Join(aggs, ", ")), nil
	case *Sort:
		keys := make([]string, len(node.Keys))
		for i, k := range node.Keys {
			keys[i] = k.String()
		}
		label := fmt.Sprintf("Sort [%s]", strings.Join(keys, ", "))
		if node.Limit >= 0 {
			label += fmt.Sprintf(" limit %d", node.Limit)
		}
		return label, nil
	case *SetOp:
		return fmt.Sprintf("SetOp %s", node.Kind), nil
	case *GMDJ:
		comp := ""
		if node.Completion != nil {
			comp = " +completion"
			if node.Completion.FreezeTrue {
				comp += "+freeze"
			}
		}
		extras = make([]string, len(node.Conds))
		for i, c := range node.Conds {
			extras[i] = "cond: " + c.String()
		}
		return fmt.Sprintf("GMDJ%s (%d conditions)", comp, len(node.Conds)), extras
	default:
		return n.String(), nil
	}
}
