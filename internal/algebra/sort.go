package algebra

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.E.String() + " DESC"
	}
	return k.E.String()
}

// Sort orders its input by the keys (NULLs first ascending, last
// descending, matching the comparison order of the value package) and
// optionally truncates to Limit rows. Limit < 0 means no limit; a Sort
// with no keys is a pure LIMIT.
type Sort struct {
	Input Node
	Keys  []SortKey
	Limit int
}

// NewSort builds an ORDER BY / LIMIT node.
func NewSort(input Node, keys []SortKey, limit int) *Sort {
	return &Sort{Input: input, Keys: keys, Limit: limit}
}

// Schema is the input schema.
func (s *Sort) Schema(res SchemaResolver) (*relation.Schema, error) {
	return s.Input.Schema(res)
}

// Children returns the input.
func (s *Sort) Children() []Node { return []Node{s.Input} }

func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	out := fmt.Sprintf("τ[%s]", strings.Join(parts, ", "))
	if s.Limit >= 0 {
		out += fmt.Sprintf("limit %d", s.Limit)
	}
	return out + "(" + s.Input.String() + ")"
}
