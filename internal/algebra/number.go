package algebra

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Number extends its input with an ordinal INT column (0-based row
// id). The join-unnesting baseline uses it to key grouped aggregation
// back to individual outer tuples — the classical fix for duplicate
// outer rows in Kim-style aggregate unnesting.
type Number struct {
	Input Node
	As    string
}

// NewNumber appends a row-id column named as.
func NewNumber(input Node, as string) *Number { return &Number{Input: input, As: as} }

// Schema is the input schema plus the ordinal column.
func (n *Number) Schema(res SchemaResolver) (*relation.Schema, error) {
	in, err := n.Input.Schema(res)
	if err != nil {
		return nil, err
	}
	cols := append(append([]relation.Column{}, in.Columns...),
		relation.Column{Name: n.As, Type: value.KindInt})
	return relation.NewSchema(cols...), nil
}

// Children returns the input.
func (n *Number) Children() []Node { return []Node{n.Input} }

func (n *Number) String() string { return fmt.Sprintf("ρ[%s](%s)", n.As, n.Input) }
