package algebra

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
)

// Alias re-qualifies every column of its input to one new qualifier
// (R → A over an arbitrary subplan). The rewriter uses it when pushing
// an outer base-values table down into a detail plan (Theorems 3.3 and
// 3.4): the pushed copy must carry a fresh qualifier so the glue
// predicate can tell the two copies apart.
type Alias struct {
	Input Node
	Name  string
}

// NewAlias wraps input under a new qualifier.
func NewAlias(input Node, name string) *Alias { return &Alias{Input: input, Name: name} }

// Schema renames all qualifiers.
func (a *Alias) Schema(res SchemaResolver) (*relation.Schema, error) {
	in, err := a.Input.Schema(res)
	if err != nil {
		return nil, err
	}
	return in.Rename(a.Name), nil
}

// Children returns the input.
func (a *Alias) Children() []Node { return []Node{a.Input} }

func (a *Alias) String() string { return fmt.Sprintf("(%s)->%s", a.Input, a.Name) }
