package algebra

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// mapResolver is a test SchemaResolver.
type mapResolver map[string]*relation.Schema

func (m mapResolver) TableSchema(name string) (*relation.Schema, error) {
	s, ok := m[name]
	if !ok {
		return nil, errUnknown(name)
	}
	return s, nil
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown table " + string(e) }

func testResolver() mapResolver {
	return mapResolver{
		"Flow": relation.NewSchema(
			relation.Column{Qualifier: "Flow", Name: "SourceIP", Type: value.KindString},
			relation.Column{Qualifier: "Flow", Name: "DestIP", Type: value.KindString},
			relation.Column{Qualifier: "Flow", Name: "StartTime", Type: value.KindInt},
			relation.Column{Qualifier: "Flow", Name: "NumBytes", Type: value.KindInt},
		),
		"Hours": relation.NewSchema(
			relation.Column{Qualifier: "Hours", Name: "HourDsc", Type: value.KindInt},
			relation.Column{Qualifier: "Hours", Name: "StartInterval", Type: value.KindInt},
			relation.Column{Qualifier: "Hours", Name: "EndInterval", Type: value.KindInt},
		),
	}
}

func TestScanSchemaRename(t *testing.T) {
	res := testResolver()
	s, err := NewScan("Flow", "F").Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Columns[0].Qualifier != "F" {
		t.Errorf("alias not applied: %v", s.Columns[0])
	}
	s, err = NewScan("Flow", "").Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Columns[0].Qualifier != "Flow" {
		t.Errorf("default alias wrong: %v", s.Columns[0])
	}
	if _, err := NewScan("Nope", "").Schema(res); err == nil {
		t.Error("unknown table must error")
	}
}

func TestRestrictSchemaAndChildren(t *testing.T) {
	res := testResolver()
	r := Filter(NewScan("Flow", "F"), expr.Eq(expr.C("F.SourceIP"), expr.StrLit("1.2.3.4")))
	s, err := r.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Errorf("restrict schema len = %d", s.Len())
	}
	if len(r.Children()) != 1 {
		t.Errorf("children = %d", len(r.Children()))
	}
}

func TestRestrictChildrenIncludeSubquerySources(t *testing.T) {
	sub := &Subquery{Source: NewScan("Hours", "H")}
	r := NewRestrict(NewScan("Flow", "F"), And(
		&Atom{E: expr.BoolLit(true)},
		ExistsPred(sub),
	))
	if len(r.Children()) != 2 {
		t.Errorf("children = %d, want input + subquery source", len(r.Children()))
	}
}

func TestProjectSchema(t *testing.T) {
	res := testResolver()
	p := NewProject(NewScan("Flow", "F"), false,
		ProjItem{E: expr.C("F.SourceIP")},
		ProjItem{E: expr.C("F.NumBytes"), As: "bytes"},
		ProjItem{E: expr.NewArith(expr.OpDiv, expr.C("F.NumBytes"), expr.IntLit(2)), As: "half"},
	)
	s, err := p.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Columns[0].QualifiedName() != "F.SourceIP" {
		t.Errorf("col0 = %v", s.Columns[0])
	}
	if s.Columns[1].Name != "bytes" || s.Columns[1].Qualifier != "" {
		t.Errorf("col1 = %v", s.Columns[1])
	}
	if s.Columns[2].Name != "half" {
		t.Errorf("col2 = %v", s.Columns[2])
	}
}

func TestProjectComputedNeedsAlias(t *testing.T) {
	res := testResolver()
	p := NewProject(NewScan("Flow", "F"), false,
		ProjItem{E: expr.NewArith(expr.OpAdd, expr.C("F.NumBytes"), expr.IntLit(1))},
	)
	if _, err := p.Schema(res); err == nil {
		t.Error("computed item without alias must error")
	}
}

func TestJoinSchemas(t *testing.T) {
	res := testResolver()
	on := expr.Eq(expr.C("F.StartTime"), expr.C("H.StartInterval"))
	inner := NewJoin(InnerJoin, NewScan("Flow", "F"), NewScan("Hours", "H"), on)
	s, err := inner.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 7 {
		t.Errorf("inner join width = %d, want 7", s.Len())
	}
	semi := NewJoin(SemiJoin, NewScan("Flow", "F"), NewScan("Hours", "H"), on)
	s, err = semi.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Errorf("semi join width = %d, want 4", s.Len())
	}
	anti := NewJoin(AntiJoin, NewScan("Flow", "F"), NewScan("Hours", "H"), on)
	if s, _ := anti.Schema(res); s.Len() != 4 {
		t.Error("anti join keeps left schema")
	}
}

func TestGroupBySchema(t *testing.T) {
	res := testResolver()
	g := NewGroupBy(NewScan("Flow", "F"),
		[]*expr.Col{expr.C("F.SourceIP")},
		[]agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "total"}},
	)
	s, err := g.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Columns[0].Name != "SourceIP" || s.Columns[1].Name != "total" {
		t.Errorf("groupby schema = %v", s)
	}
}

func TestGMDJSchema(t *testing.T) {
	res := testResolver()
	g := NewGMDJ(NewScan("Hours", "H"), NewScan("Flow", "F"),
		GMDJCond{
			Theta: expr.BoolLit(true),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "sum1"}},
		},
		GMDJCond{
			Theta: expr.BoolLit(true),
			Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt1"}},
		},
	)
	s, err := g.Schema(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("gmdj schema = %v", s)
	}
	if s.Columns[3].Name != "sum1" || s.Columns[4].Name != "cnt1" {
		t.Errorf("agg columns = %v, %v", s.Columns[3], s.Columns[4])
	}
}

func TestGMDJSchemaDuplicateAggName(t *testing.T) {
	res := testResolver()
	g := NewGMDJ(NewScan("Hours", "H"), NewScan("Flow", "F"),
		GMDJCond{Theta: expr.BoolLit(true), Aggs: []agg.Spec{{Func: agg.CountStar, As: "cnt"}}},
		GMDJCond{Theta: expr.BoolLit(true), Aggs: []agg.Spec{{Func: agg.CountStar, As: "cnt"}}},
	)
	if _, err := g.Schema(res); err == nil {
		t.Error("duplicate aggregate output name must error")
	}
}

func TestRawAndDistinctSchema(t *testing.T) {
	rel := relation.New(relation.NewSchema(relation.Column{Name: "x", Type: value.KindInt}))
	raw := NewRaw("lit", rel)
	s, err := raw.Schema(nil)
	if err != nil || s.Len() != 1 {
		t.Fatalf("raw schema: %v %v", s, err)
	}
	d := NewDistinct(raw)
	if s, _ := d.Schema(nil); s.Len() != 1 {
		t.Error("distinct schema")
	}
	if len(d.Children()) != 1 {
		t.Error("distinct children")
	}
}

func TestStringRenderings(t *testing.T) {
	scan := NewScan("Flow", "F")
	if scan.String() != "Flow->F" {
		t.Errorf("scan = %q", scan)
	}
	sub := &Subquery{Source: NewScan("Hours", "H"), Where: &Atom{E: expr.BoolLit(true)}}
	preds := []Pred{
		ExistsPred(sub),
		NotExistsPred(sub),
		In(expr.C("F.SourceIP"), sub),
		NotIn(expr.C("F.SourceIP"), sub),
		&SubPred{Kind: ScalarCmp, Op: value.GT, Left: expr.C("F.NumBytes"), Sub: sub},
		&SubPred{Kind: CmpAll, Op: value.NE, Left: expr.C("F.NumBytes"), Sub: sub},
	}
	for _, p := range preds {
		if p.String() == "" {
			t.Errorf("empty String for %T", p)
		}
	}
	r := NewRestrict(scan, And(preds[0], Not(preds[1])))
	if !strings.Contains(r.String(), "∃") {
		t.Errorf("restrict rendering: %s", r)
	}
}

func TestInNotInDesugar(t *testing.T) {
	sub := &Subquery{Source: NewScan("Hours", "H")}
	in := In(expr.C("F.X"), sub)
	if in.Kind != CmpSome || in.Op != value.EQ {
		t.Errorf("IN must be =_some, got %v %v", in.Kind, in.Op)
	}
	nin := NotIn(expr.C("F.X"), sub)
	if nin.Kind != CmpAll || nin.Op != value.NE {
		t.Errorf("NOT IN must be ≠_all, got %v %v", nin.Kind, nin.Op)
	}
}

func TestHasSubquery(t *testing.T) {
	plain := And(&Atom{E: expr.BoolLit(true)}, &Atom{E: expr.BoolLit(false)})
	if HasSubquery(plain) {
		t.Error("plain predicate flagged")
	}
	sub := &Subquery{Source: NewScan("Hours", "H")}
	mixed := Or(plain, Not(ExistsPred(sub)))
	if !HasSubquery(mixed) {
		t.Error("subquery not found")
	}
}

func TestPushDownNegationsDeMorgan(t *testing.T) {
	a := &Atom{E: expr.C("F.A")}
	b := &Atom{E: expr.C("F.B")}
	// ¬(a ∧ b) ⇒ ¬a ∨ ¬b
	got := PushDownNegations(Not(And(a, b)))
	or, ok := got.(*PredOr)
	if !ok {
		t.Fatalf("got %T, want PredOr", got)
	}
	for _, term := range or.Terms {
		at, ok := term.(*Atom)
		if !ok {
			t.Fatalf("term %T", term)
		}
		if _, ok := at.E.(*expr.Not); !ok {
			t.Errorf("atom not negated: %s", at)
		}
	}
	// Double negation cancels.
	got = PushDownNegations(Not(Not(a)))
	if at, ok := got.(*Atom); !ok || at.E != a.E {
		t.Errorf("double negation: %v", got)
	}
}

func TestPushDownNegationsSubqueryRules(t *testing.T) {
	sub := &Subquery{Source: NewScan("Hours", "H")}
	cases := []struct {
		in       *SubPred
		wantKind SubKind
		wantOp   value.CmpOp
	}{
		{ExistsPred(sub), NotExists, 0},
		{NotExistsPred(sub), Exists, 0},
		{&SubPred{Kind: ScalarCmp, Op: value.GT, Left: expr.C("F.x"), Sub: sub}, ScalarCmp, value.LE},
		{&SubPred{Kind: CmpSome, Op: value.EQ, Left: expr.C("F.x"), Sub: sub}, CmpAll, value.NE},
		{&SubPred{Kind: CmpAll, Op: value.NE, Left: expr.C("F.x"), Sub: sub}, CmpSome, value.EQ},
	}
	for _, c := range cases {
		got := PushDownNegations(Not(c.in))
		sp, ok := got.(*SubPred)
		if !ok {
			t.Fatalf("¬%v gave %T", c.in, got)
		}
		if sp.Kind != c.wantKind {
			t.Errorf("¬%v kind = %v, want %v", c.in, sp.Kind, c.wantKind)
		}
		if c.in.Left != nil && sp.Op != c.wantOp {
			t.Errorf("¬%v op = %v, want %v", c.in, sp.Op, c.wantOp)
		}
	}
}

func TestPushDownNegationsRecursesIntoSubWhere(t *testing.T) {
	inner := &Subquery{Source: NewScan("Flow", "F2")}
	outer := &Subquery{
		Source: NewScan("Hours", "H"),
		Where:  Not(ExistsPred(inner)), // should become NOT EXISTS
	}
	got := PushDownNegations(ExistsPred(outer))
	sp := got.(*SubPred)
	innerPred, ok := sp.Sub.Where.(*SubPred)
	if !ok || innerPred.Kind != NotExists {
		t.Errorf("inner where = %v, want NOT EXISTS", sp.Sub.Where)
	}
}

func TestBoolTreeBuilders(t *testing.T) {
	tr := AndTree(Leaf(0), OrTree(Leaf(1), NotTree(Leaf(2))))
	if tr.Op != BoolAnd || len(tr.Kids) != 2 {
		t.Error("AndTree shape")
	}
	if tr.Kids[0].Leaf != 0 || tr.Kids[0].Op != BoolLeaf {
		t.Error("Leaf shape")
	}
	if tr.Kids[1].Kids[1].Op != BoolNot {
		t.Error("NotTree shape")
	}
}

func TestJoinKindStrings(t *testing.T) {
	if InnerJoin.String() == "" || LeftOuterJoin.String() == "" ||
		SemiJoin.String() == "" || AntiJoin.String() == "" {
		t.Error("empty join kind strings")
	}
}
