package algebra

import (
	"fmt"
	"sort"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// This file implements the parameter table for prepared statements: a
// compiled plan may contain expr.Param placeholders anywhere a scalar
// expression may appear, and BindParams instantiates the template by
// substituting literals. RewriteExprs/WalkExprs are the general plan
// walkers behind it — unlike Node.Children and WalkPred they descend
// into subquery predicates and sources at any nesting depth, so no
// placeholder can hide from them.

// RewriteExprs rebuilds the plan with fn applied (via expr.Rewrite) to
// every scalar expression: restriction and join predicates, projection
// items, aggregate arguments, GMDJ θ-conditions, sort keys, and the
// same positions inside subquery predicates and their sources,
// recursively. Node structure is shared where unchanged is cheap to
// share (leaves, key column lists); wrapper nodes are fresh so the
// input plan is never mutated.
func RewriteExprs(n Node, fn func(expr.Expr) expr.Expr) Node {
	rw := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Rewrite(e, fn)
	}
	switch t := n.(type) {
	case *Scan, *Raw, nil:
		return n
	case *Alias:
		return &Alias{Input: RewriteExprs(t.Input, fn), Name: t.Name}
	case *Number:
		return &Number{Input: RewriteExprs(t.Input, fn), As: t.As}
	case *Distinct:
		return &Distinct{Input: RewriteExprs(t.Input, fn)}
	case *Restrict:
		return &Restrict{Input: RewriteExprs(t.Input, fn), Where: rewritePred(t.Where, fn)}
	case *Project:
		items := make([]ProjItem, len(t.Items))
		for i, it := range t.Items {
			items[i] = ProjItem{E: rw(it.E), As: it.As}
		}
		return &Project{Input: RewriteExprs(t.Input, fn), Items: items, Distinct: t.Distinct}
	case *Join:
		return &Join{Kind: t.Kind, Left: RewriteExprs(t.Left, fn), Right: RewriteExprs(t.Right, fn), On: rw(t.On)}
	case *GroupBy:
		// Keys are bare column references; placeholders cannot occur there.
		return &GroupBy{Input: RewriteExprs(t.Input, fn), Keys: t.Keys, Aggs: rewriteAggs(t.Aggs, fn)}
	case *GMDJ:
		conds := make([]GMDJCond, len(t.Conds))
		for i, c := range t.Conds {
			conds[i] = GMDJCond{Theta: rw(c.Theta), Aggs: rewriteAggs(c.Aggs, fn)}
		}
		return &GMDJ{Base: RewriteExprs(t.Base, fn), Detail: RewriteExprs(t.Detail, fn), Conds: conds, Completion: t.Completion}
	case *Sort:
		keys := make([]SortKey, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = SortKey{E: rw(k.E), Desc: k.Desc}
		}
		return &Sort{Input: RewriteExprs(t.Input, fn), Keys: keys, Limit: t.Limit}
	case *SetOp:
		return &SetOp{Kind: t.Kind, Left: RewriteExprs(t.Left, fn), Right: RewriteExprs(t.Right, fn)}
	default:
		// Unknown node kinds carry no expressions we know how to reach;
		// return them unchanged rather than guessing.
		return n
	}
}

func rewriteAggs(aggs []agg.Spec, fn func(expr.Expr) expr.Expr) []agg.Spec {
	if len(aggs) == 0 {
		return aggs
	}
	out := make([]agg.Spec, len(aggs))
	for i, a := range aggs {
		arg := a.Arg
		if arg != nil {
			arg = expr.Rewrite(arg, fn)
		}
		out[i] = agg.Spec{Func: a.Func, Arg: arg, As: a.As}
	}
	return out
}

func rewritePred(p Pred, fn func(expr.Expr) expr.Expr) Pred {
	switch t := p.(type) {
	case nil:
		return nil
	case *Atom:
		return &Atom{E: expr.Rewrite(t.E, fn)}
	case *PredAnd:
		terms := make([]Pred, len(t.Terms))
		for i, q := range t.Terms {
			terms[i] = rewritePred(q, fn)
		}
		return &PredAnd{Terms: terms}
	case *PredOr:
		terms := make([]Pred, len(t.Terms))
		for i, q := range t.Terms {
			terms[i] = rewritePred(q, fn)
		}
		return &PredOr{Terms: terms}
	case *PredNot:
		return &PredNot{P: rewritePred(t.P, fn)}
	case *SubPred:
		var left expr.Expr
		if t.Left != nil {
			left = expr.Rewrite(t.Left, fn)
		}
		sub := &Subquery{
			Source: RewriteExprs(t.Sub.Source, fn),
			Where:  rewritePred(t.Sub.Where, fn),
			OutCol: t.Sub.OutCol,
			Agg:    t.Sub.Agg,
		}
		if t.Sub.Agg != nil {
			specs := rewriteAggs([]agg.Spec{*t.Sub.Agg}, fn)
			sub.Agg = &specs[0]
		}
		return &SubPred{Kind: t.Kind, Op: t.Op, Left: left, Sub: sub}
	default:
		return p
	}
}

// WalkExprs visits every scalar expression node in the plan (the same
// positions RewriteExprs rebuilds), in pre-order within each tree.
func WalkExprs(n Node, fn func(expr.Expr)) {
	RewriteExprs(n, func(e expr.Expr) expr.Expr {
		fn(e)
		return e
	})
}

// ParamCount returns the number of parameters a plan expects: the
// highest placeholder ordinal found anywhere in it (0 when the plan is
// fully literal).
func ParamCount(n Node) int {
	max := 0
	WalkExprs(n, func(e expr.Expr) {
		if p, ok := e.(*expr.Param); ok && p.Ordinal > max {
			max = p.Ordinal
		}
	})
	return max
}

// BindParams instantiates a plan template: every expr.Param is
// replaced with the literal args[Ordinal-1]. The argument count must
// match ParamCount exactly; mismatches and out-of-range ordinals
// report expr.ErrBadParam. The input plan is left untouched, so one
// prepared plan serves concurrent executions.
func BindParams(n Node, args []value.Value) (Node, error) {
	want := ParamCount(n)
	if len(args) != want {
		return nil, fmt.Errorf("algebra: statement expects %d parameter(s), got %d: %w",
			want, len(args), expr.ErrBadParam)
	}
	if want == 0 {
		return n, nil
	}
	bound := RewriteExprs(n, func(e expr.Expr) expr.Expr {
		if p, ok := e.(*expr.Param); ok {
			return &expr.Lit{V: args[p.Ordinal-1]}
		}
		return e
	})
	return bound, nil
}

// Tables returns the sorted set of base tables the plan reads,
// including tables referenced only inside subquery sources at any
// depth. Cache layers use it to tie a compiled plan (or a memoized
// result) to the epochs of everything it depends on.
func Tables(n Node) []string {
	seen := map[string]bool{}
	collectTables(n, seen)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func collectTables(n Node, seen map[string]bool) {
	switch t := n.(type) {
	case nil:
		return
	case *Scan:
		seen[t.Table] = true
	case *Restrict:
		collectTables(t.Input, seen)
		collectPredTables(t.Where, seen)
	default:
		for _, c := range n.Children() {
			collectTables(c, seen)
		}
	}
}

func collectPredTables(p Pred, seen map[string]bool) {
	switch t := p.(type) {
	case nil:
		return
	case *PredAnd:
		for _, q := range t.Terms {
			collectPredTables(q, seen)
		}
	case *PredOr:
		for _, q := range t.Terms {
			collectPredTables(q, seen)
		}
	case *PredNot:
		collectPredTables(t.P, seen)
	case *SubPred:
		collectTables(t.Sub.Source, seen)
		collectPredTables(t.Sub.Where, seen)
	}
}
