package algebra

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
)

// GMDJCond pairs one θᵢ condition with its aggregate list lᵢ
// (Definition 2.1 of the paper).
type GMDJCond struct {
	Theta expr.Expr
	Aggs  []agg.Spec
}

func (c GMDJCond) String() string {
	aggs := make([]string, len(c.Aggs))
	for i, a := range c.Aggs {
		aggs[i] = a.String()
	}
	return fmt.Sprintf("(%s | θ: %s)", strings.Join(aggs, ", "), c.Theta)
}

// GMDJ is the generalized multi-dimensional join
// MD(B, R, (l₁,…,lₘ), (θ₁,…,θₘ)): every base tuple b ∈ B yields one
// output tuple consisting of b extended with, for each condition i,
// the aggregates lᵢ folded over RNG(b, R, θᵢ) = {r ∈ R | θᵢ(b,r)}.
//
// Completion, when non-nil, encodes the tuple-completion optimization
// of §4.2 (Theorems 4.1/4.2); it is attached by the optimizer, never
// required for correctness.
type GMDJ struct {
	Base   Node
	Detail Node
	Conds  []GMDJCond

	Completion *CompletionInfo
}

// NewGMDJ builds a GMDJ node.
func NewGMDJ(base, detail Node, conds ...GMDJCond) *GMDJ {
	return &GMDJ{Base: base, Detail: detail, Conds: conds}
}

// Schema is the base schema extended with one column per aggregate
// spec, in condition order. Aggregate output columns are unqualified
// and named by each spec's As.
func (g *GMDJ) Schema(res SchemaResolver) (*relation.Schema, error) {
	base, err := g.Base.Schema(res)
	if err != nil {
		return nil, err
	}
	cols := append([]relation.Column{}, base.Columns...)
	seen := map[string]bool{}
	for _, c := range base.Columns {
		seen[c.Name] = true
	}
	detailName := "R"
	if sc, ok := g.Detail.(*Scan); ok {
		detailName = sc.EffectiveAlias()
	}
	for _, cond := range g.Conds {
		for _, col := range agg.OutputSchema(cond.Aggs, detailName) {
			if seen[col.Name] {
				return nil, fmt.Errorf("algebra: duplicate GMDJ output column %q (rename the aggregate)", col.Name)
			}
			seen[col.Name] = true
			cols = append(cols, col)
		}
	}
	return relation.NewSchema(cols...), nil
}

// Children returns base and detail.
func (g *GMDJ) Children() []Node { return []Node{g.Base, g.Detail} }

func (g *GMDJ) String() string {
	conds := make([]string, len(g.Conds))
	for i, c := range g.Conds {
		conds[i] = c.String()
	}
	suffix := ""
	if g.Completion != nil {
		suffix = "+completion"
	}
	return fmt.Sprintf("MD%s(%s, %s, %s)", suffix, g.Base, g.Detail, strings.Join(conds, ", "))
}

// ---------------------------------------------------------------------------
// Tuple completion (§4.2)

// AtomKind classifies a count atom in the downstream selection.
type AtomKind uint8

const (
	// AtomZero is "cntᵢ = 0": decided False the moment θᵢ matches.
	AtomZero AtomKind = iota
	// AtomNonZero is "cntᵢ > 0" (also cntᵢ <> 0, cntᵢ >= 1): decided
	// True the moment θᵢ matches.
	AtomNonZero
)

// CompletionAtom ties a condition index to the decision its first
// match induces.
type CompletionAtom struct {
	Cond int // index into GMDJ.Conds; that condition must be a lone count(*)
	Kind AtomKind
}

// BoolTree is a tiny boolean formula over completion atoms, mirroring
// the downstream selection's structure so the evaluator can decide a
// base tuple the moment the formula's value is determined under Kleene
// evaluation (undecided atoms = Unknown).
type BoolTree struct {
	// Leaf >= 0 indexes Atoms; interior nodes have Leaf == -1.
	Leaf int
	Op   BoolOp
	Kids []*BoolTree
}

// BoolOp is the connective of an interior BoolTree node.
type BoolOp uint8

const (
	// BoolLeaf marks a leaf (Op unused).
	BoolLeaf BoolOp = iota
	// BoolAnd is conjunction.
	BoolAnd
	// BoolOr is disjunction.
	BoolOr
	// BoolNot is negation (one child).
	BoolNot
	// BoolOpaque marks a sub-formula the optimizer could not analyze;
	// it evaluates to Unknown forever, so the surrounding formula can
	// only decide early when the analyzable atoms force a value.
	BoolOpaque
)

// CompletionInfo is the optimizer's proof that a base tuple's fate
// under the downstream selection can be decided early. FreezeTrue
// reports whether tuples decided True may be emitted with frozen
// aggregates (Theorem 4.1 requires the projection above to discard all
// aggregate columns not fixed by the decision); tuples decided False
// are always safe to drop (Theorem 4.2).
type CompletionInfo struct {
	Atoms      []CompletionAtom
	Tree       *BoolTree
	FreezeTrue bool
}

// Leaf builds a leaf tree node.
func Leaf(atom int) *BoolTree { return &BoolTree{Leaf: atom, Op: BoolLeaf} }

// AndTree builds a conjunction.
func AndTree(kids ...*BoolTree) *BoolTree { return &BoolTree{Leaf: -1, Op: BoolAnd, Kids: kids} }

// OrTree builds a disjunction.
func OrTree(kids ...*BoolTree) *BoolTree { return &BoolTree{Leaf: -1, Op: BoolOr, Kids: kids} }

// NotTree builds a negation.
func NotTree(kid *BoolTree) *BoolTree {
	return &BoolTree{Leaf: -1, Op: BoolNot, Kids: []*BoolTree{kid}}
}

// OpaqueTree builds a permanently-Unknown leaf.
func OpaqueTree() *BoolTree { return &BoolTree{Leaf: -1, Op: BoolOpaque} }
