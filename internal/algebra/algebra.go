// Package algebra defines the logical query algebra of the engine: the
// classical operators (scan, select, project, join, group-by, distinct)
// extended with
//
//   - the GMDJ operator MD(B, R, (l₁..lₘ), (θ₁..θₘ)) of Chatziantoniou,
//     Akinde, Johnson & Kim (ICDE 2001), as used by the paper, and
//   - the nested query algebra of §2.1 (after Bækgaard & Mark): selection
//     predicates that embed subquery expressions (EXISTS, NOT EXISTS,
//     scalar comparison, quantified SOME/ALL, IN / NOT IN).
//
// Plans are immutable trees. The rewriter (internal/rewrite) turns
// Restrict nodes whose predicates contain subqueries into GMDJ plans;
// internal/unnest turns them into join plans; the native executor
// evaluates them directly with tuple-iteration semantics.
package algebra

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// SchemaResolver supplies base-table schemas during schema inference.
// storage.Catalog is adapted to this interface by the engine.
type SchemaResolver interface {
	TableSchema(name string) (*relation.Schema, error)
}

// Node is a logical plan operator.
type Node interface {
	fmt.Stringer
	// Schema infers the output schema of the operator.
	Schema(res SchemaResolver) (*relation.Schema, error)
	// Children returns the input plans.
	Children() []Node
}

// ---------------------------------------------------------------------------
// Leaf nodes

// Scan reads a named base table, optionally renaming it (Flow → F).
type Scan struct {
	Table string
	Alias string // defaults to Table when empty
}

// NewScan builds a scan; alias may be empty.
func NewScan(table, alias string) *Scan { return &Scan{Table: table, Alias: alias} }

// EffectiveAlias returns the alias the scan's columns carry.
func (s *Scan) EffectiveAlias() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Table
}

// Schema resolves the table schema and applies the rename.
func (s *Scan) Schema(res SchemaResolver) (*relation.Schema, error) {
	sch, err := res.TableSchema(s.Table)
	if err != nil {
		return nil, err
	}
	return sch.Rename(s.EffectiveAlias()), nil
}

// Children returns nil.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) String() string {
	if s.Alias == "" || s.Alias == s.Table {
		return s.Table
	}
	return s.Table + "->" + s.Alias
}

// Raw wraps a literal relation as a leaf (tests, VALUES clauses, and
// rewriter-materialized intermediates).
type Raw struct {
	Name string
	Rel  *relation.Relation
}

// NewRaw builds a literal-relation leaf.
func NewRaw(name string, rel *relation.Relation) *Raw { return &Raw{Name: name, Rel: rel} }

// Schema returns the wrapped relation's schema.
func (r *Raw) Schema(SchemaResolver) (*relation.Schema, error) { return r.Rel.Schema, nil }

// Children returns nil.
func (r *Raw) Children() []Node { return nil }

func (r *Raw) String() string { return "raw:" + r.Name }

// ---------------------------------------------------------------------------
// Classical operators

// Restrict is selection σ[W](Input) where W is a predicate tree that
// may contain subquery predicates (see Pred). Plain selections use an
// Atom predicate.
type Restrict struct {
	Input Node
	Where Pred
}

// NewRestrict builds a selection.
func NewRestrict(input Node, where Pred) *Restrict { return &Restrict{Input: input, Where: where} }

// Filter builds a plain (subquery-free) selection from an expression.
func Filter(input Node, e expr.Expr) *Restrict {
	return &Restrict{Input: input, Where: &Atom{E: e}}
}

// Schema is the input schema.
func (r *Restrict) Schema(res SchemaResolver) (*relation.Schema, error) {
	return r.Input.Schema(res)
}

// Children returns the input plus any subquery sources inside Where.
func (r *Restrict) Children() []Node {
	out := []Node{r.Input}
	WalkPred(r.Where, func(p Pred) bool {
		if sp, ok := p.(*SubPred); ok {
			out = append(out, sp.Sub.Source)
		}
		return true
	})
	return out
}

func (r *Restrict) String() string {
	return fmt.Sprintf("σ[%s](%s)", r.Where, r.Input)
}

// ProjItem is one output column of a projection: an expression with an
// optional alias.
type ProjItem struct {
	E  expr.Expr
	As string
}

func (p ProjItem) String() string {
	if p.As == "" {
		return p.E.String()
	}
	return fmt.Sprintf("%s -> %s", p.E, p.As)
}

// Project is π[items](Input). Distinct marks duplicate elimination
// (the paper's π[SourceIP]Flow is a distinct projection).
type Project struct {
	Input    Node
	Items    []ProjItem
	Distinct bool
}

// NewProject builds a projection.
func NewProject(input Node, distinct bool, items ...ProjItem) *Project {
	return &Project{Input: input, Items: items, Distinct: distinct}
}

// ProjectCols projects named columns ("F.A", "B") without renaming.
func ProjectCols(input Node, distinct bool, cols ...string) *Project {
	items := make([]ProjItem, len(cols))
	for i, c := range cols {
		items[i] = ProjItem{E: expr.C(c)}
	}
	return NewProject(input, distinct, items...)
}

// Schema derives one column per item: column references keep their
// identity unless aliased; computed items require an alias.
func (p *Project) Schema(res SchemaResolver) (*relation.Schema, error) {
	in, err := p.Input.Schema(res)
	if err != nil {
		return nil, err
	}
	cols := make([]relation.Column, len(p.Items))
	for i, it := range p.Items {
		if c, ok := it.E.(*expr.Col); ok {
			pos, err := in.Find(c.Qualifier, c.Name)
			if err != nil {
				return nil, err
			}
			col := in.Columns[pos]
			if it.As != "" {
				col = relation.Column{Name: it.As, Type: col.Type}
			}
			cols[i] = col
			continue
		}
		if it.As == "" {
			return nil, fmt.Errorf("algebra: computed projection %s requires an alias", it.E)
		}
		cols[i] = relation.Column{Name: it.As, Type: value.KindNull}
	}
	return relation.NewSchema(cols...), nil
}

// Children returns the input.
func (p *Project) Children() []Node { return []Node{p.Input} }

func (p *Project) String() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.String()
	}
	d := ""
	if p.Distinct {
		d = "δ"
	}
	return fmt.Sprintf("π%s[%s](%s)", d, strings.Join(parts, ", "), p.Input)
}

// Distinct eliminates duplicate rows.
type Distinct struct {
	Input Node
}

// NewDistinct builds a duplicate-elimination node.
func NewDistinct(input Node) *Distinct { return &Distinct{Input: input} }

// Schema is the input schema.
func (d *Distinct) Schema(res SchemaResolver) (*relation.Schema, error) {
	return d.Input.Schema(res)
}

// Children returns the input.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

func (d *Distinct) String() string { return fmt.Sprintf("δ(%s)", d.Input) }

// JoinKind distinguishes the join flavors the unnesting baseline needs.
type JoinKind uint8

const (
	// InnerJoin keeps matching pairs.
	InnerJoin JoinKind = iota
	// LeftOuterJoin keeps all left rows, padding with NULLs.
	LeftOuterJoin
	// SemiJoin keeps left rows with at least one match.
	SemiJoin
	// AntiJoin keeps left rows with no match.
	AntiJoin
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "⋈"
	case LeftOuterJoin:
		return "⟕"
	case SemiJoin:
		return "⋉"
	case AntiJoin:
		return "▷"
	default:
		return "?"
	}
}

// Join combines two inputs on a predicate.
type Join struct {
	Kind        JoinKind
	Left, Right Node
	On          expr.Expr
}

// NewJoin builds a join node.
func NewJoin(kind JoinKind, left, right Node, on expr.Expr) *Join {
	return &Join{Kind: kind, Left: left, Right: right, On: on}
}

// Schema is the concatenation for inner/outer joins and the left
// schema for semi/anti joins.
func (j *Join) Schema(res SchemaResolver) (*relation.Schema, error) {
	l, err := j.Left.Schema(res)
	if err != nil {
		return nil, err
	}
	if j.Kind == SemiJoin || j.Kind == AntiJoin {
		return l, nil
	}
	r, err := j.Right.Schema(res)
	if err != nil {
		return nil, err
	}
	return l.Concat(r), nil
}

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

func (j *Join) String() string {
	return fmt.Sprintf("(%s %s[%s] %s)", j.Left, j.Kind, j.On, j.Right)
}

// GroupBy is grouped aggregation: one output row per distinct key
// combination, keys first then aggregate results. With no keys it
// produces exactly one row (global aggregation).
type GroupBy struct {
	Input Node
	Keys  []*expr.Col
	Aggs  []agg.Spec
}

// NewGroupBy builds a grouped aggregation node.
func NewGroupBy(input Node, keys []*expr.Col, aggs []agg.Spec) *GroupBy {
	return &GroupBy{Input: input, Keys: keys, Aggs: aggs}
}

// Schema is key columns followed by aggregate outputs.
func (g *GroupBy) Schema(res SchemaResolver) (*relation.Schema, error) {
	in, err := g.Input.Schema(res)
	if err != nil {
		return nil, err
	}
	var cols []relation.Column
	for _, k := range g.Keys {
		pos, err := in.Find(k.Qualifier, k.Name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, in.Columns[pos])
	}
	cols = append(cols, agg.OutputSchema(g.Aggs, "")...)
	return relation.NewSchema(cols...), nil
}

// Children returns the input.
func (g *GroupBy) Children() []Node { return []Node{g.Input} }

func (g *GroupBy) String() string {
	keys := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		keys[i] = k.String()
	}
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String()
	}
	return fmt.Sprintf("γ[%s; %s](%s)", strings.Join(keys, ","), strings.Join(aggs, ","), g.Input)
}
