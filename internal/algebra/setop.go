package algebra

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
)

// SetOpKind enumerates SQL set operations.
type SetOpKind uint8

const (
	// Union is UNION (distinct).
	Union SetOpKind = iota
	// UnionAll is UNION ALL (bag concatenation).
	UnionAll
	// Except is EXCEPT (distinct rows of the left not in the right) —
	// the set-difference primitive classical unnesting rewrites ALL
	// predicates into.
	Except
	// Intersect is INTERSECT (distinct rows in both).
	Intersect
)

// String names the operation.
func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "∪"
	case UnionAll:
		return "∪all"
	case Except:
		return "−"
	case Intersect:
		return "∩"
	default:
		return "?"
	}
}

// SetOp combines two union-compatible inputs.
type SetOp struct {
	Kind        SetOpKind
	Left, Right Node
}

// NewSetOp builds a set operation node.
func NewSetOp(kind SetOpKind, left, right Node) *SetOp {
	return &SetOp{Kind: kind, Left: left, Right: right}
}

// Schema is the left input's schema; the right must have the same
// width (checked here) — column names need not match, as in SQL.
func (s *SetOp) Schema(res SchemaResolver) (*relation.Schema, error) {
	l, err := s.Left.Schema(res)
	if err != nil {
		return nil, err
	}
	r, err := s.Right.Schema(res)
	if err != nil {
		return nil, err
	}
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("algebra: %s operands have %d and %d columns", s.Kind, l.Len(), r.Len())
	}
	return l, nil
}

// Children returns both inputs.
func (s *SetOp) Children() []Node { return []Node{s.Left, s.Right} }

func (s *SetOp) String() string {
	return fmt.Sprintf("(%s %s %s)", s.Left, s.Kind, s.Right)
}
