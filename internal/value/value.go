// Package value defines the scalar value model of the engine: typed SQL
// values with NULL, comparison under SQL three-valued logic, arithmetic,
// and hashing. Every cell of every tuple in the engine is a Value.
//
// Value is a small struct rather than an interface so that hot loops
// (predicate evaluation inside the GMDJ scan, hash probes) stay free of
// per-cell heap allocation.
package value

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	// KindNull is the SQL NULL marker. A NULL Value carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is an immutable string.
	KindString
	// KindBool is a boolean. SQL predicates evaluate to Tri, not Value,
	// but boolean columns are still representable.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // payload for KindInt and KindBool (0/1)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Kind reports the runtime type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if v is not an INT;
// use Kind first when the type is not statically known.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload, widening INT to FLOAT.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("value: AsFloat on " + v.kind.String())
}

// AsString returns the string payload. It panics if v is not a STRING.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload. It panics if v is not a BOOL.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// String renders v for display (and CSV output). NULL renders as the
// empty marker "NULL".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// numericPair widens two numeric values to a common domain.
// ok is false when either side is non-numeric.
func numericPair(a, b Value) (af, bf float64, bothInt bool, ok bool) {
	an := a.kind == KindInt || a.kind == KindFloat
	bn := b.kind == KindInt || b.kind == KindFloat
	if !an || !bn {
		return 0, 0, false, false
	}
	bothInt = a.kind == KindInt && b.kind == KindInt
	return a.AsFloat(), b.AsFloat(), bothInt, true
}

// Compare orders two non-NULL values. It returns -1, 0, or +1 and ok
// reporting whether the two values were comparable (same domain, with
// INT and FLOAT sharing the numeric domain). Comparing with NULL is the
// caller's concern: SQL comparisons must go through the Tri-returning
// predicate helpers below.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.kind == KindString && b.kind == KindString {
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		}
		return 0, true
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	}
	af, bf, _, ok := numericPair(a, b)
	if !ok {
		return 0, false
	}
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	}
	return 0, true
}

// Equal reports non-SQL structural equality: NULL equals NULL and
// values of incomparable kinds are unequal. Use for testing, map keys,
// and DISTINCT (SQL's grouping treats NULLs as equal).
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// hashSeed is the process-wide seed for value hashing.
var hashSeed = maphash.MakeSeed()

// Hash returns a hash of v suitable for hash-join and GMDJ buckets.
// Values that are Equal hash identically (INT 1 and FLOAT 1.0 share a
// hash because they compare equal).
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.kind {
	case KindNull:
		h.WriteByte(0)
	case KindInt:
		h.WriteByte(1)
		writeUint64(&h, math.Float64bits(float64(v.i)))
	case KindFloat:
		h.WriteByte(1) // same tag as INT: 1 and 1.0 must collide
		writeUint64(&h, math.Float64bits(v.f))
	case KindString:
		h.WriteByte(2)
		h.WriteString(v.s)
	case KindBool:
		h.WriteByte(3)
		h.WriteByte(byte(v.i))
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// Add returns a+b with SQL NULL propagation: NULL if either side is
// NULL. Integer addition stays integer; mixed arithmetic widens.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b with SQL NULL propagation.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b with SQL NULL propagation.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b with SQL NULL propagation. Division always yields a
// FLOAT; dividing by zero yields NULL (matching the engine's policy of
// never raising runtime arithmetic faults mid-scan).
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	af, bf, _, ok := numericPair(a, b)
	if !ok {
		return Null, fmt.Errorf("value: cannot divide %s by %s", a.kind, b.kind)
	}
	if bf == 0 {
		return Null, nil
	}
	return Float(af / bf), nil
}

func arith(a, b Value, op byte) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	af, bf, bothInt, ok := numericPair(a, b)
	if !ok {
		return Null, fmt.Errorf("value: cannot apply %c to %s and %s", op, a.kind, b.kind)
	}
	if bothInt {
		ai, bi := a.i, b.i
		switch op {
		case '+':
			return Int(ai + bi), nil
		case '-':
			return Int(ai - bi), nil
		case '*':
			return Int(ai * bi), nil
		}
	}
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	}
	panic("value: unknown arithmetic op")
}
