package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "STRING",
		KindBool:   "BOOL",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
	if !Equal(v, Null) {
		t.Fatal("zero Value must Equal Null")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("Int round-trip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round-trip failed")
	}
	if Str("hi").AsString() != "hi" {
		t.Error("Str round-trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round-trip failed")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat must widen INT")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Str("abc"), "abc"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Float(1.5), Int(2), -1, true},
		{Int(2), Float(1.5), 1, true},
		{Float(2), Int(2), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Str("c"), Str("b"), 1, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Null, Int(1), 0, false},
		{Int(1), Null, 0, false},
		{Int(1), Str("1"), 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestEqualTreatsNullAsEqual(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("Equal(NULL, NULL) must be true (grouping semantics)")
	}
	if Equal(Null, Int(0)) {
		t.Error("Equal(NULL, 0) must be false")
	}
	if Equal(Int(1), Str("1")) {
		t.Error("Equal across incomparable kinds must be false")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(1), Float(1.0)},
		{Int(-7), Int(-7)},
		{Str("x"), Str("x")},
		{Null, Null},
		{Bool(true), Bool(true)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("test setup: %v and %v should be Equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Equal values %v and %v hash differently", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Int(i).Hash()] = true
	}
	if len(seen) < 990 {
		t.Errorf("integer hashes collide too much: %d distinct of 1000", len(seen))
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(got, want) {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	v, err = Sub(Int(2), Int(3))
	check(v, err, Int(-1))
	v, err = Mul(Int(2), Int(3))
	check(v, err, Int(6))
	v, err = Add(Int(2), Float(0.5))
	check(v, err, Float(2.5))
	v, err = Div(Int(7), Int(2))
	check(v, err, Float(3.5))
	v, err = Div(Int(7), Int(0))
	check(v, err, Null)
}

func TestArithmeticNullPropagation(t *testing.T) {
	ops := []func(a, b Value) (Value, error){Add, Sub, Mul, Div}
	for i, op := range ops {
		if v, err := op(Null, Int(1)); err != nil || !v.IsNull() {
			t.Errorf("op %d: NULL lhs should yield NULL, got %v %v", i, v, err)
		}
		if v, err := op(Int(1), Null); err != nil || !v.IsNull() {
			t.Errorf("op %d: NULL rhs should yield NULL, got %v %v", i, v, err)
		}
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("adding string and int should error")
	}
	if _, err := Div(Str("a"), Int(1)); err == nil {
		t.Error("dividing string by int should error")
	}
}

func TestTriTables(t *testing.T) {
	// Kleene truth tables.
	and := [3][3]Tri{
		//            F        T        U
		/* F */ {False, False, False},
		/* T */ {False, True, Unknown},
		/* U */ {False, Unknown, Unknown},
	}
	or := [3][3]Tri{
		/* F */ {False, True, Unknown},
		/* T */ {True, True, True},
		/* U */ {Unknown, True, Unknown},
	}
	vals := []Tri{False, True, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b Value
		want Tri
	}{
		{EQ, Int(1), Int(1), True},
		{EQ, Int(1), Int(2), False},
		{NE, Int(1), Int(2), True},
		{LT, Int(1), Int(2), True},
		{LE, Int(2), Int(2), True},
		{GT, Int(3), Int(2), True},
		{GE, Int(1), Int(2), False},
		{EQ, Null, Int(1), Unknown},
		{NE, Int(1), Null, Unknown},
		{LT, Str("a"), Int(1), Unknown}, // incomparable
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %v", op)
		}
	}
	if EQ.Negate() != NE || LT.Negate() != GE || LE.Negate() != GT {
		t.Error("Negate table wrong")
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Error("Flip table wrong")
	}
}

// Property: for non-NULL comparable values, op.Apply agrees with
// op.Negate().Apply negated, and flipping operands matches Flip.
func TestCmpOpProperties(t *testing.T) {
	f := func(a, b int64, opRaw uint8) bool {
		op := CmpOp(opRaw % 6)
		va, vb := Int(a), Int(b)
		direct := op.Apply(va, vb)
		negated := op.Negate().Apply(va, vb)
		if direct.Not() != negated {
			return false
		}
		flipped := op.Flip().Apply(vb, va)
		return direct == flipped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal-consistent on ints and
// floats.
func TestCompareProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN is out of the SQL domain our generator uses
		}
		va, vb := Float(a), Float(b)
		c1, ok1 := Compare(va, vb)
		c2, ok2 := Compare(vb, va)
		if !ok1 || !ok2 {
			return false
		}
		return c1 == -c2 && (c1 == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriString(t *testing.T) {
	if False.String() != "false" || True.String() != "true" || Unknown.String() != "unknown" {
		t.Error("Tri.String wrong")
	}
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q want %q", op, op.String(), s)
		}
	}
}
