package value

// Tri is SQL's three-valued logic domain. Predicates over values that
// may be NULL evaluate to Tri, not bool; WHERE clauses apply
// "where-clause truncation" and keep only True rows (the paper relies
// on this in the proof of Theorem 3.1).
type Tri uint8

const (
	// False is definite falsehood.
	False Tri = iota
	// True is definite truth.
	True
	// Unknown is SQL's third truth value, produced by comparisons
	// against NULL.
	Unknown
)

// String returns "false", "true", or "unknown".
func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "unknown"
	}
}

// TriOf lifts a bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is Kleene conjunction: False dominates, Unknown otherwise
// infects.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or is Kleene disjunction: True dominates, Unknown otherwise infects.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not is Kleene negation: Unknown stays Unknown.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// CmpOp enumerates the six comparison operators φ of the paper
// (φ ∈ {=, ≠, <, ≤, >, ≥}).
type CmpOp uint8

const (
	// EQ is =.
	EQ CmpOp = iota
	// NE is <>.
	NE
	// LT is <.
	LT
	// LE is <=.
	LE
	// GT is >.
	GT
	// GE is >=.
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Negate returns φ̄, the complement operator used by the rewriter when
// eliminating negations (¬(t φ S) ⇒ t φ̄ S).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		panic("value: unknown CmpOp")
	}
}

// Flip returns the operator with its operands swapped (a φ b ⇔ b flip(φ) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op // EQ and NE are symmetric
	}
}

// Apply evaluates a φ b under SQL 3VL: Unknown if either operand is
// NULL or the operands are incomparable, otherwise the boolean result.
func (op CmpOp) Apply(a, b Value) Tri {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	switch op {
	case EQ:
		return TriOf(c == 0)
	case NE:
		return TriOf(c != 0)
	case LT:
		return TriOf(c < 0)
	case LE:
		return TriOf(c <= 0)
	case GT:
		return TriOf(c > 0)
	case GE:
		return TriOf(c >= 0)
	default:
		panic("value: unknown CmpOp")
	}
}
