package govern

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// EnvFaults is the environment variable read by FromEnv: a fault spec
// of the form "site=action[,site=action...]" where action is "panic",
// "error", or "delay:<duration>" (Go duration syntax). Example:
//
//	GMDJ_FAULTS="gmdj.worker=panic,exec.project=delay:50ms"
//
// Known sites are named at the point of injection; the current set is
// exec.scan, exec.restrict, exec.project, exec.distinct, exec.join,
// exec.groupby, exec.sort, exec.setop, exec.subquery, exec.number,
// gmdj.compile, gmdj.worker, gmdj.emit, spill.write, and spill.read.
//
// The spill sites additionally accept the disk-fault actions "enospc"
// (the write fails as if the device were full), "shortwrite" (the
// write is truncated mid-frame), and "corrupt" (a byte of the frame is
// flipped, tripping the checksum — on spill.read this corrupts the
// re-read, modeling at-rest corruption). Disk actions are interpreted
// by the spill store via Disk; Fire treats them as no-ops so they are
// inert at non-disk sites.
const EnvFaults = "GMDJ_FAULTS"

// ErrInjected is the error returned by an "error" fault; injected
// failures are distinguishable from organic ones in test assertions.
var ErrInjected = errors.New("injected fault")

// faultKind enumerates injectable behaviors.
type faultKind uint8

const (
	faultError faultKind = iota
	faultPanic
	faultDelay
	faultENOSPC
	faultShortWrite
	faultCorrupt
)

// DiskFault classifies the disk-level fault configured at a spill
// site; the spill store interprets it at the byte level (Fire cannot —
// it does not own the file descriptor).
type DiskFault uint8

const (
	// DiskNone: no disk fault at this site.
	DiskNone DiskFault = iota
	// DiskENOSPC: fail the write as if the device were full.
	DiskENOSPC
	// DiskShortWrite: truncate the write mid-frame.
	DiskShortWrite
	// DiskCorrupt: flip a byte of the frame so the checksum trips.
	DiskCorrupt
)

type fault struct {
	kind  faultKind
	delay time.Duration
}

// Injector triggers deterministic faults at named operator sites. A
// nil Injector is inert; Fire on it costs one nil check, so production
// paths carry no overhead when no faults are configured. Injectors are
// immutable after construction and safe for concurrent Fire calls.
type Injector struct {
	faults map[string]fault
}

// ParseFaults builds an Injector from a spec (see EnvFaults). An empty
// spec yields a nil Injector.
func ParseFaults(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{faults: map[string]fault{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, action, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("govern: fault spec %q is not site=action", part)
		}
		switch {
		case action == "panic":
			in.faults[site] = fault{kind: faultPanic}
		case action == "error":
			in.faults[site] = fault{kind: faultError}
		case strings.HasPrefix(action, "delay:"):
			d, err := time.ParseDuration(strings.TrimPrefix(action, "delay:"))
			if err != nil {
				return nil, fmt.Errorf("govern: fault spec %q: %w", part, err)
			}
			in.faults[site] = fault{kind: faultDelay, delay: d}
		case action == "enospc":
			in.faults[site] = fault{kind: faultENOSPC}
		case action == "shortwrite":
			in.faults[site] = fault{kind: faultShortWrite}
		case action == "corrupt":
			in.faults[site] = fault{kind: faultCorrupt}
		default:
			return nil, fmt.Errorf("govern: fault spec %q: unknown action %q", part, action)
		}
	}
	if len(in.faults) == 0 {
		return nil, nil
	}
	return in, nil
}

// NewInjector builds an Injector programmatically (tests): each site
// maps to "panic", "error", or "delay:<duration>". It panics on a
// malformed action — injector construction is setup code.
func NewInjector(sites map[string]string) *Injector {
	parts := make([]string, 0, len(sites))
	for site, action := range sites {
		parts = append(parts, site+"="+action)
	}
	in, err := ParseFaults(strings.Join(parts, ","))
	if err != nil {
		panic(err)
	}
	return in
}

// FromEnv builds an Injector from the GMDJ_FAULTS environment
// variable. A malformed spec is reported on stderr and ignored rather
// than failing engine construction.
func FromEnv() *Injector {
	in, err := ParseFaults(os.Getenv(EnvFaults))
	if err != nil {
		fmt.Fprintf(os.Stderr, "govern: ignoring %s: %v\n", EnvFaults, err)
		return nil
	}
	return in
}

// Fire triggers the fault configured at site, if any: it returns an
// error wrapping ErrInjected, panics, or sleeps for the configured
// delay (respecting ctx so delayed sites still cancel promptly).
func (in *Injector) Fire(site string, g *Governor) error {
	if in == nil {
		return nil
	}
	f, ok := in.faults[site]
	if !ok {
		return nil
	}
	switch f.kind {
	case faultPanic:
		obs.MetricAdd("faults.injected", 1)
		panic(fmt.Sprintf("govern: injected panic at %s", site))
	case faultDelay:
		obs.MetricAdd("faults.injected", 1)
		t := time.NewTimer(f.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-g.Context().Done():
			return g.Check()
		}
	case faultENOSPC, faultShortWrite, faultCorrupt:
		// Disk faults are byte-level: the spill store asks for them via
		// Disk and enacts them against its own file I/O. Inert here so a
		// disk action at a non-disk site does nothing.
		return nil
	default:
		obs.MetricAdd("faults.injected", 1)
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// Disk reports the disk-level fault configured at site (DiskNone when
// none, or when the site's action is not a disk action). The spill
// store calls this before each file operation and enacts the fault at
// the byte level. Safe on a nil Injector.
func (in *Injector) Disk(site string) DiskFault {
	if in == nil {
		return DiskNone
	}
	switch in.faults[site].kind {
	case faultENOSPC:
		obs.MetricAdd("faults.injected", 1)
		return DiskENOSPC
	case faultShortWrite:
		obs.MetricAdd("faults.injected", 1)
		return DiskShortWrite
	case faultCorrupt:
		obs.MetricAdd("faults.injected", 1)
		return DiskCorrupt
	}
	return DiskNone
}
