package govern

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// EnvFaults is the environment variable read by FromEnv: a fault spec
// of the form "site=action[,site=action...]" where action is "panic",
// "error", or "delay:<duration>" (Go duration syntax). Example:
//
//	GMDJ_FAULTS="gmdj.worker=panic,exec.project=delay:50ms"
//
// Known sites are named at the point of injection; the current set is
// exec.scan, exec.restrict, exec.project, exec.distinct, exec.join,
// exec.groupby, exec.sort, exec.setop, exec.subquery, exec.number,
// gmdj.compile, gmdj.worker, gmdj.emit, spill.write, spill.read, and
// the serving-layer sites serve.accept (request admission), serve.write
// (response serialization), and serve.cancel (drain/abort handling).
//
// Any action may carry an "@N" suffix ("serve.accept=error@25"): the
// fault then fires deterministically on every Nth arrival at the site
// (the Nth, 2Nth, ... calls) instead of every call, which is what a
// chaos scenario wants — a server where every accept fails measures
// nothing. Without the suffix N is 1 and the historical every-call
// behavior is unchanged.
//
// The spill sites and the durable-storage sites storage.write
// (segment persistence), storage.read (segment re-read/recovery), and
// storage.manifest (manifest commit) additionally accept the
// disk-fault actions "enospc" (the write fails as if the device were
// full), "shortwrite" (the write is truncated mid-frame), "corrupt" (a
// byte of the frame is flipped, tripping the checksum — on read sites
// this corrupts the re-read, modeling at-rest corruption), and "torn"
// (the write is truncated but REPORTED as durable, modeling a torn
// write behind a lying fsync — recovery must detect and quarantine
// it). Disk actions are interpreted by the spill and storage stores
// via Disk; Fire treats them as no-ops so they are inert at non-disk
// sites.
const EnvFaults = "GMDJ_FAULTS"

// ErrInjected is the error returned by an "error" fault; injected
// failures are distinguishable from organic ones in test assertions.
var ErrInjected = errors.New("injected fault")

// faultKind enumerates injectable behaviors.
type faultKind uint8

const (
	faultError faultKind = iota
	faultPanic
	faultDelay
	faultENOSPC
	faultShortWrite
	faultCorrupt
	faultTorn
)

// DiskFault classifies the disk-level fault configured at a spill
// site; the spill store interprets it at the byte level (Fire cannot —
// it does not own the file descriptor).
type DiskFault uint8

const (
	// DiskNone: no disk fault at this site.
	DiskNone DiskFault = iota
	// DiskENOSPC: fail the write as if the device were full.
	DiskENOSPC
	// DiskShortWrite: truncate the write mid-frame.
	DiskShortWrite
	// DiskCorrupt: flip a byte of the frame so the checksum trips.
	DiskCorrupt
	// DiskTorn: truncate the write but report it as durably completed —
	// a torn write behind a lying fsync. Only recovery notices.
	DiskTorn
)

type fault struct {
	kind  faultKind
	delay time.Duration
	// every fires the fault on every every-th arrival only (1 = every
	// call); hits counts arrivals at the site across goroutines.
	every int64
	hits  *atomic.Int64
}

// due reports whether this arrival at the site should fault.
func (f fault) due() bool {
	if f.every <= 1 {
		return true
	}
	return f.hits.Add(1)%f.every == 0
}

// Injector triggers deterministic faults at named operator sites. A
// nil Injector is inert; Fire on it costs one nil check, so production
// paths carry no overhead when no faults are configured. Injectors are
// immutable after construction and safe for concurrent Fire calls.
type Injector struct {
	faults map[string]fault
}

// ParseFaults builds an Injector from a spec (see EnvFaults). An empty
// spec yields a nil Injector.
func ParseFaults(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{faults: map[string]fault{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, action, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("govern: fault spec %q is not site=action", part)
		}
		every := int64(1)
		if base, rate, hasRate := strings.Cut(action, "@"); hasRate {
			n, err := strconv.ParseInt(rate, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("govern: fault spec %q: bad rate %q (want @N, N >= 1)", part, rate)
			}
			action, every = base, n
		}
		f := fault{every: every, hits: new(atomic.Int64)}
		switch {
		case action == "panic":
			f.kind = faultPanic
		case action == "error":
			f.kind = faultError
		case strings.HasPrefix(action, "delay:"):
			d, err := time.ParseDuration(strings.TrimPrefix(action, "delay:"))
			if err != nil {
				return nil, fmt.Errorf("govern: fault spec %q: %w", part, err)
			}
			f.kind, f.delay = faultDelay, d
		case action == "enospc":
			f.kind = faultENOSPC
		case action == "shortwrite":
			f.kind = faultShortWrite
		case action == "corrupt":
			f.kind = faultCorrupt
		case action == "torn":
			f.kind = faultTorn
		default:
			return nil, fmt.Errorf("govern: fault spec %q: unknown action %q", part, action)
		}
		in.faults[site] = f
	}
	if len(in.faults) == 0 {
		return nil, nil
	}
	return in, nil
}

// NewInjector builds an Injector programmatically (tests): each site
// maps to "panic", "error", or "delay:<duration>". It panics on a
// malformed action — injector construction is setup code.
func NewInjector(sites map[string]string) *Injector {
	parts := make([]string, 0, len(sites))
	for site, action := range sites {
		parts = append(parts, site+"="+action)
	}
	in, err := ParseFaults(strings.Join(parts, ","))
	if err != nil {
		panic(err)
	}
	return in
}

// FromEnv builds an Injector from the GMDJ_FAULTS environment
// variable. A malformed spec is reported on stderr and ignored rather
// than failing engine construction.
func FromEnv() *Injector {
	in, err := ParseFaults(os.Getenv(EnvFaults))
	if err != nil {
		fmt.Fprintf(os.Stderr, "govern: ignoring %s: %v\n", EnvFaults, err)
		return nil
	}
	return in
}

// Fire triggers the fault configured at site, if any: it returns an
// error wrapping ErrInjected, panics, or sleeps for the configured
// delay (respecting ctx so delayed sites still cancel promptly).
func (in *Injector) Fire(site string, g *Governor) error {
	if in == nil {
		return nil
	}
	f, ok := in.faults[site]
	if !ok {
		return nil
	}
	switch f.kind {
	case faultENOSPC, faultShortWrite, faultCorrupt, faultTorn:
		// Disk faults are byte-level: the spill and storage stores ask
		// for them via Disk and enact them against their own file I/O.
		// Inert here so a disk action at a non-disk site does nothing —
		// and the rate counter is left to Disk.
		return nil
	}
	if !f.due() {
		return nil
	}
	switch f.kind {
	case faultPanic:
		obs.MetricAdd("faults.injected", 1)
		panic(fmt.Sprintf("govern: injected panic at %s", site))
	case faultDelay:
		obs.MetricAdd("faults.injected", 1)
		t := time.NewTimer(f.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-g.Context().Done():
			return g.Check()
		}
	default:
		obs.MetricAdd("faults.injected", 1)
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// Disk reports the disk-level fault configured at site (DiskNone when
// none, or when the site's action is not a disk action). The spill
// store calls this before each file operation and enacts the fault at
// the byte level. Safe on a nil Injector.
func (in *Injector) Disk(site string) DiskFault {
	if in == nil {
		return DiskNone
	}
	f := in.faults[site]
	var kind DiskFault
	switch f.kind {
	case faultENOSPC:
		kind = DiskENOSPC
	case faultShortWrite:
		kind = DiskShortWrite
	case faultCorrupt:
		kind = DiskCorrupt
	case faultTorn:
		kind = DiskTorn
	default:
		return DiskNone
	}
	if !f.due() {
		return DiskNone
	}
	obs.MetricAdd("faults.injected", 1)
	return kind
}
