package govern

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	if err := g.Check(); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if err := g.Tick(); err != nil {
		t.Fatalf("nil Tick: %v", err)
	}
	if err := g.AccountAppend(1, 100); err != nil {
		t.Fatalf("nil AccountAppend: %v", err)
	}
	if g.Rows() != 0 || g.Bytes() != 0 {
		t.Fatalf("nil counters: rows=%d bytes=%d", g.Rows(), g.Bytes())
	}
	if g.Context() == nil {
		t.Fatal("nil Context() returned nil")
	}
}

func TestRowBudget(t *testing.T) {
	g := New(context.Background(), Budget{MaxRows: 10})
	var err error
	for i := 0; i < 11 && err == nil; i++ {
		err = g.AccountAppend(1, 8)
	}
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("want ErrRowBudget, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if be.Limit != 10 || be.Observed != 11 {
		t.Fatalf("limit/observed = %d/%d", be.Limit, be.Observed)
	}
}

func TestMemBudget(t *testing.T) {
	g := New(context.Background(), Budget{MaxMemBytes: 100})
	if err := g.AccountAppend(1, 64); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := g.AccountAppend(1, 64)
	if !errors.Is(err, ErrMemBudget) {
		t.Fatalf("want ErrMemBudget, got %v", err)
	}
}

func TestTickSeesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{})
	cancel()
	var err error
	// Tick only consults the context every 256 calls; 512 guarantees at
	// least one full check regardless of counter phase.
	for i := 0; i < 512 && err == nil; i++ {
		err = g.Tick()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestCheckMapsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	g := New(ctx, Budget{})
	if err := g.Check(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestMapContextErr(t *testing.T) {
	if err := MapContextErr(nil); err != nil {
		t.Fatalf("nil: %v", err)
	}
	if err := MapContextErr(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled: %v", err)
	}
	if err := MapContextErr(context.DeadlineExceeded); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline: %v", err)
	}
	organic := errors.New("boom")
	if err := MapContextErr(organic); err != organic {
		t.Fatalf("organic: %v", err)
	}
}

func TestInternalErrorWrapsSentinel(t *testing.T) {
	var err error = &InternalError{Panic: "boom", Node: "*algebra.GMDJ"}
	if !errors.Is(err, ErrInternal) {
		t.Fatal("InternalError does not wrap ErrInternal")
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty Error()")
	}
}

func TestParseFaults(t *testing.T) {
	in, err := ParseFaults("a=panic, b=error ,c=delay:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Fire("b", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("error site: %v", err)
	}
	if err := in.Fire("unknown", nil); err != nil {
		t.Fatalf("unknown site: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic site did not panic")
			}
		}()
		_ = in.Fire("a", nil)
	}()
	start := time.Now()
	if err := in.Fire("c", nil); err != nil {
		t.Fatalf("delay site: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay site did not delay")
	}
}

func TestParseFaultsRejectsMalformed(t *testing.T) {
	for _, spec := range []string{"nosign", "a=flood", "a=delay:xyz", "=panic"} {
		if _, err := ParseFaults(spec); err == nil {
			t.Fatalf("spec %q parsed", spec)
		}
	}
}

func TestParseFaultsEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		in, err := ParseFaults(spec)
		if err != nil || in != nil {
			t.Fatalf("spec %q: injector=%v err=%v", spec, in, err)
		}
	}
}

func TestDelayedFaultRespectsCancel(t *testing.T) {
	in := NewInjector(map[string]string{"slow": "delay:10s"})
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{})
	done := make(chan error, 1)
	go func() { done <- in.Fire("slow", g) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed fault ignored cancellation")
	}
}

func TestFaultRateSuffix(t *testing.T) {
	// action@N faults every Nth arrival at the site, deterministically.
	in, err := ParseFaults("a=error@3,b=error")
	if err != nil {
		t.Fatal(err)
	}
	var injected int
	for i := 1; i <= 9; i++ {
		err := in.Fire("a", nil)
		if errors.Is(err, ErrInjected) {
			injected++
			if i%3 != 0 {
				t.Fatalf("fired on arrival %d, want every 3rd", i)
			}
		} else if err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	if injected != 3 {
		t.Fatalf("injected %d of 9, want 3", injected)
	}
	// No suffix means every arrival.
	if err := in.Fire("b", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("unsuffixed site: %v", err)
	}
}

func TestFaultRateSuffixRejectsMalformed(t *testing.T) {
	for _, spec := range []string{"a=error@0", "a=error@-2", "a=error@x", "a=error@"} {
		if _, err := ParseFaults(spec); err == nil {
			t.Fatalf("spec %q parsed", spec)
		}
	}
}
