package govern

import (
	"context"
	"errors"
	"sync/atomic"

	"github.com/olaplab/gmdj/internal/mem"
)

// Budget bounds one query evaluation. The zero Budget is unlimited.
type Budget struct {
	// MaxRows caps the total number of rows materialized by the query
	// across all intermediate and final relations. 0 = unlimited.
	MaxRows int64
	// MaxMemBytes caps the approximate bytes of materialized tuples
	// (relation.Tuple.ApproxBytes, accounted at append time).
	// 0 = unlimited.
	MaxMemBytes int64
}

// tickMask gates the full context check in Tick: the context is
// consulted once every tickMask+1 rows, so cancellation latency is
// bounded by the time to process 256 rows of the hottest loop.
const tickMask = 255

// Governor is the per-query governance state: a context carrying
// cancellation and the wall-clock deadline, plus atomic row/byte
// accounting against the budget. A single Governor is shared by every
// operator of one query, including parallel GMDJ workers; all methods
// are safe for concurrent use. All methods are nil-receiver safe and
// return nil, so ungoverned evaluation pays only a nil check.
type Governor struct {
	ctx    context.Context
	budget Budget
	res    *mem.Reservation
	rows   atomic.Int64
	bytes  atomic.Int64
	ticks  atomic.Uint64
}

// New creates a Governor over ctx. The caller owns the context: apply
// a wall-clock budget with context.WithTimeout before calling New
// (engine.RunContext does exactly that).
func New(ctx context.Context, b Budget) *Governor {
	return &Governor{ctx: ctx, budget: b}
}

// AttachReservation binds the query's memory-pool reservation to the
// governor, making the governor the single per-query handle operators
// consult for both budget accounting and tracked allocation. Called
// once at query admission, before evaluation starts.
func (g *Governor) AttachReservation(r *mem.Reservation) {
	if g == nil {
		return
	}
	g.res = r
}

// Reservation returns the query's memory reservation (nil — unlimited
// — for a nil Governor or an unreserved query). Operators derive
// per-operator trackers from it.
func (g *Governor) Reservation() *mem.Reservation {
	if g == nil {
		return nil
	}
	return g.res
}

// Context returns the query's context (context.Background for a nil
// Governor), for code that blocks on channels or timers.
func (g *Governor) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// Check consults the context and maps its error into the taxonomy:
// deadline expiry becomes ErrTimeout, caller cancellation ErrCanceled.
func (g *Governor) Check() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return MapContextErr(g.ctx.Err())
}

// Tick is the cooperative cancellation check for operator inner loops:
// it increments a shared counter and performs a full Check every 256
// calls. One atomic add per row is the steady-state cost.
func (g *Governor) Tick() error {
	if g == nil {
		return nil
	}
	if g.ticks.Add(1)&tickMask != 0 {
		return nil
	}
	return g.Check()
}

// AccountAppend records the materialization of rows totalling
// approximately bytes and reports a typed budget violation when a cap
// is exceeded. Called at relation-append sites.
func (g *Governor) AccountAppend(rows, bytes int64) error {
	if g == nil {
		return nil
	}
	r := g.rows.Add(rows)
	b := g.bytes.Add(bytes)
	if g.budget.MaxRows > 0 && r > g.budget.MaxRows {
		return &BudgetError{Kind: ErrRowBudget, Limit: g.budget.MaxRows, Observed: r}
	}
	if g.budget.MaxMemBytes > 0 && b > g.budget.MaxMemBytes {
		return &BudgetError{Kind: ErrMemBudget, Limit: g.budget.MaxMemBytes, Observed: b}
	}
	return nil
}

// Rows returns the rows materialized so far.
func (g *Governor) Rows() int64 {
	if g == nil {
		return 0
	}
	return g.rows.Load()
}

// Bytes returns the approximate bytes materialized so far.
func (g *Governor) Bytes() int64 {
	if g == nil {
		return 0
	}
	return g.bytes.Load()
}

// Uncancelable reports whether ctx can never be canceled — Done()
// returns nil, which context guarantees only for contexts with no
// cancellation, deadline, or timeout anywhere in their chain
// (context.Background, context.TODO, and value-only derivations such
// as obs.WithRequestID). This is the engine's governor-free fast-path
// predicate: an uncancelable context has nothing for a governor to
// watch, so skipping governance for it is unobservable by
// construction.
//
// Contract: callers may use Uncancelable only to elide work whose sole
// purpose is reacting to cancellation (ticks, deadline checks). It
// must never gate accounting, observability, or results — a query must
// produce identical output, stats trees, and trace spans whether or
// not its context is cancelable.
func Uncancelable(ctx context.Context) bool {
	return ctx.Done() == nil
}

// MapContextErr converts context errors into the governance taxonomy,
// passing every other error (including nil) through unchanged.
func MapContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrTimeout
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	default:
		return err
	}
}
