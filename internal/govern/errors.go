// Package govern is the query-governance layer: it bounds and aborts
// individual query evaluations so that one runaway query (an unindexed
// native plan over a large detail table, a deep nested-GMDJ chain)
// cannot monopolize or crash the process. It provides
//
//   - a typed error taxonomy distinguishing caller cancellation,
//     timeout, row-budget and memory-budget violations, and internal
//     (panic-recovered) failures;
//   - a Governor: per-query budget accounting (wall clock via
//     context deadline, materialized rows, approximate bytes) with
//     cooperative cancellation checks cheap enough for operator inner
//     loops; and
//   - a fault Injector: deterministic panics, errors, and delays at
//     named operator sites, keyed off the GMDJ_FAULTS environment
//     variable or installed directly by tests, so every governed
//     failure path is testable without timing games.
//
// Multi-query workloads (Roy et al.'s multi-query optimization, the
// Analyze-operator paper) assume evaluations can be bounded and
// aborted; this package is that substrate.
package govern

import (
	"errors"
	"fmt"
)

// Sentinel errors classifying why a query was aborted. Callers match
// them with errors.Is; the concrete errors returned by the engine wrap
// these and add detail (observed counts, the failing plan node).
var (
	// ErrCanceled reports that the caller canceled the query's context.
	ErrCanceled = errors.New("query canceled")
	// ErrTimeout reports that the query exceeded its wall-clock budget.
	ErrTimeout = errors.New("query timeout exceeded")
	// ErrRowBudget reports that the query materialized more rows than
	// its budget allows.
	ErrRowBudget = errors.New("query row budget exceeded")
	// ErrMemBudget reports that the query's materialized intermediate
	// results exceeded its approximate memory budget.
	ErrMemBudget = errors.New("query memory budget exceeded")
	// ErrInternal reports an operator panic converted to an error at
	// the engine boundary. The process survives; the query does not.
	ErrInternal = errors.New("internal query error")
)

// BudgetError is a budget violation: which budget, the configured
// limit, and the observed value at the moment of the violation. It
// wraps one of ErrRowBudget or ErrMemBudget (timeouts surface through
// the context as ErrTimeout).
type BudgetError struct {
	// Kind is ErrRowBudget or ErrMemBudget.
	Kind error
	// Limit is the configured budget.
	Limit int64
	// Observed is the accounted value that tripped the budget.
	Observed int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: observed %d, limit %d", e.Kind, e.Observed, e.Limit)
}

// Unwrap lets errors.Is match the sentinel kind.
func (e *BudgetError) Unwrap() error { return e.Kind }

// InternalError is a recovered operator panic. It wraps ErrInternal
// and records the panic value, the plan node being evaluated when the
// panic fired (best effort: the most recently entered operator), and
// the goroutine stack at recovery time.
type InternalError struct {
	// Panic is the recovered panic value.
	Panic any
	// Node describes the plan node under evaluation, e.g. "*algebra.GMDJ".
	Node string
	// Stack is the stack trace captured at the recovery point.
	Stack []byte
}

// Error implements error.
func (e *InternalError) Error() string {
	if e.Node != "" {
		return fmt.Sprintf("%v: panic in %s: %v", ErrInternal, e.Node, e.Panic)
	}
	return fmt.Sprintf("%v: panic: %v", ErrInternal, e.Panic)
}

// Unwrap lets errors.Is match ErrInternal.
func (e *InternalError) Unwrap() error { return ErrInternal }
