// Package unnest implements the conventional join/outer-join unnesting
// baseline the paper compares against: the best-of-breed combination of
// the classical techniques (Kim's aggregate-then-join with the COUNT
// bug fixed by outer joins [Ganski & Wong], Dayal's semi/anti-join
// translations of quantified predicates, and magic-decorrelation-style
// push-down of outer tables for non-neighboring predicates).
//
// Mapping per construct:
//
//	EXISTS S            ⇒ base ⋉_θ S
//	NOT EXISTS S        ⇒ base ▷_θ S
//	x φ_some S          ⇒ base ⋉_{θ ∧ x φ y} S
//	x φ_all  S          ⇒ base ▷_{θ ∧ ¬(x φ y is true)} S   (counterexample anti-join)
//	x φ (scalar S)      ⇒ base ⋉_{θ ∧ x φ y} S
//	x φ (aggregate S)   ⇒ ρ[rid](base) ⟕_θ S' → γ[rid, base; f(y)] → σ[x φ val] → π[base]
//
// where S' carries a constant probe column so COUNT survives the outer
// join (count bug). Disjunctions over subquery predicates are not
// expressible with these techniques; Unnest reports an error for them,
// which is itself one of the paper's points in favor of the GMDJ.
package unnest

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
)

// Unnest rewrites every subquery-bearing selection in the plan into
// join form.
func Unnest(plan algebra.Node, res algebra.SchemaResolver) (algebra.Node, error) {
	u := &unnester{res: res}
	return u.walk(plan)
}

type unnester struct {
	res     algebra.SchemaResolver
	counter int
}

func (u *unnester) fresh(prefix string) string {
	u.counter++
	return fmt.Sprintf("%s%d", prefix, u.counter)
}

func (u *unnester) walk(n algebra.Node) (algebra.Node, error) {
	switch node := n.(type) {
	case *algebra.Scan, *algebra.Raw:
		return n, nil
	case *algebra.Alias:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewAlias(in, node.Name), nil
	case *algebra.Number:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewNumber(in, node.As), nil
	case *algebra.Restrict:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return u.unnestRestrict(in, node.Where)
	case *algebra.Project:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewProject(in, node.Distinct, node.Items...), nil
	case *algebra.Distinct:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewDistinct(in), nil
	case *algebra.Join:
		l, err := u.walk(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := u.walk(node.Right)
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(node.Kind, l, r, node.On), nil
	case *algebra.GroupBy:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewGroupBy(in, node.Keys, node.Aggs), nil
	case *algebra.GMDJ:
		b, err := u.walk(node.Base)
		if err != nil {
			return nil, err
		}
		d, err := u.walk(node.Detail)
		if err != nil {
			return nil, err
		}
		g := algebra.NewGMDJ(b, d, node.Conds...)
		g.Completion = node.Completion
		return g, nil
	case *algebra.Sort:
		in, err := u.walk(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewSort(in, node.Keys, node.Limit), nil
	case *algebra.SetOp:
		l, err := u.walk(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := u.walk(node.Right)
		if err != nil {
			return nil, err
		}
		return algebra.NewSetOp(node.Kind, l, r), nil
	default:
		return nil, fmt.Errorf("unnest: unsupported node %T", n)
	}
}

type envEntry struct {
	node   algebra.Node
	schema *relation.Schema
}

func (u *unnester) unnestRestrict(input algebra.Node, w algebra.Pred) (algebra.Node, error) {
	w = algebra.PushDownNegations(w)
	if !algebra.HasSubquery(w) {
		return algebra.NewRestrict(input, w), nil
	}
	inSchema, err := input.Schema(u.res)
	if err != nil {
		return nil, err
	}
	atoms, subs, err := splitConjuncts(w)
	if err != nil {
		return nil, err
	}
	cur := input
	if len(atoms) > 0 {
		cur = algebra.Filter(cur, expr.Conj(atoms))
	}
	for _, sp := range subs {
		var deferred []expr.Expr
		cur, deferred, err = u.applySub(cur, inSchema, sp, nil)
		if err != nil {
			return nil, err
		}
		if len(deferred) > 0 {
			return nil, fmt.Errorf("unnest: unresolved correlation %s at the outermost block", deferred[0])
		}
	}
	return cur, nil
}

// splitConjuncts flattens W into plain-expression atoms and subquery
// predicates. Disjunctions containing subqueries are rejected.
func splitConjuncts(w algebra.Pred) ([]expr.Expr, []*algebra.SubPred, error) {
	var atoms []expr.Expr
	var subs []*algebra.SubPred
	var visit func(p algebra.Pred) error
	visit = func(p algebra.Pred) error {
		switch n := p.(type) {
		case *algebra.PredAnd:
			for _, t := range n.Terms {
				if err := visit(t); err != nil {
					return err
				}
			}
			return nil
		case *algebra.Atom:
			atoms = append(atoms, n.E)
			return nil
		case *algebra.SubPred:
			subs = append(subs, n)
			return nil
		case *algebra.PredOr:
			if algebra.HasSubquery(n) {
				return fmt.Errorf("unnest: disjunctive subquery predicates cannot be unnested into joins")
			}
			e, err := predExpr(n)
			if err != nil {
				return err
			}
			atoms = append(atoms, e)
			return nil
		case *algebra.PredNot:
			if algebra.HasSubquery(n) {
				return fmt.Errorf("unnest: residual negated subquery predicate %s", n)
			}
			e, err := predExpr(n)
			if err != nil {
				return err
			}
			atoms = append(atoms, e)
			return nil
		default:
			return fmt.Errorf("unnest: unknown predicate %T", p)
		}
	}
	if err := visit(w); err != nil {
		return nil, nil, err
	}
	return atoms, subs, nil
}

// predExpr converts a subquery-free predicate to an expression.
func predExpr(p algebra.Pred) (expr.Expr, error) {
	switch n := p.(type) {
	case *algebra.Atom:
		return n.E, nil
	case *algebra.PredAnd:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			e, err := predExpr(t)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.NewAnd(terms...), nil
	case *algebra.PredOr:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			e, err := predExpr(t)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.NewOr(terms...), nil
	case *algebra.PredNot:
		e, err := predExpr(n.P)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	default:
		return nil, fmt.Errorf("unnest: predicate %T contains a subquery", p)
	}
}

// buildInner translates a subquery block into (plan, correlation
// conjuncts). Nested subqueries become joins inside the plan;
// references to enclosing blocks beyond the immediate one are repaired
// by pushing an aliased copy of the referenced base into the plan and
// returning a glue equality among the correlation conjuncts.
func (u *unnester) buildInner(sub *algebra.Subquery, env []envEntry) (algebra.Node, []expr.Expr, error) {
	src, err := u.walk(sub.Source)
	if err != nil {
		return nil, nil, err
	}
	srcSchema, err := src.Schema(u.res)
	if err != nil {
		return nil, nil, err
	}
	pred := sub.Where
	if pred == nil {
		pred = &algebra.Atom{E: expr.TrueExpr()}
	}
	atoms, subs, err := splitConjuncts(algebra.PushDownNegations(pred))
	if err != nil {
		return nil, nil, err
	}

	cur := src
	curSchema := srcSchema
	env2 := append(append([]envEntry{}, env...), envEntry{node: src, schema: srcSchema})
	var deferred []expr.Expr
	for _, sp := range subs {
		var up []expr.Expr
		cur, up, err = u.applySub(cur, curSchema, sp, env2)
		if err != nil {
			return nil, nil, err
		}
		deferred = append(deferred, up...)
		curSchema, err = cur.Schema(u.res)
		if err != nil {
			return nil, nil, err
		}
	}

	// Partition atoms into local (resolve within cur) and correlated.
	// Free references beyond the immediately enclosing block are left
	// in the correlation list; the applySub invocation that joins this
	// block repairs them by pushing the referenced base down into its
	// own base side (Theorems 3.3/3.4's analogue for joins).
	var local, corr []expr.Expr
	for _, a := range atoms {
		if refsWithin(a, curSchema) {
			local = append(local, a)
			continue
		}
		corr = append(corr, a)
	}
	if len(local) > 0 {
		cur = algebra.Filter(cur, expr.Conj(local))
	}
	return cur, append(corr, deferred...), nil
}

// applySub joins one subquery predicate onto base. Correlation
// conjuncts that reference blocks beyond base ∪ inner are repaired by
// pushing the referenced enclosing base into this join's base side
// under a fresh alias; the resulting glue equality is returned as
// deferred work for the next level up.
func (u *unnester) applySub(base algebra.Node, baseSchema *relation.Schema, sp *algebra.SubPred, env []envEntry) (algebra.Node, []expr.Expr, error) {
	envForInner := append(append([]envEntry{}, env...), envEntry{node: base, schema: baseSchema})
	inner, corr, err := u.buildInner(sp.Sub, envForInner)
	if err != nil {
		return nil, nil, err
	}
	innerSchema, err := inner.Schema(u.res)
	if err != nil {
		return nil, nil, err
	}
	var deferred []expr.Expr
	pushed := map[*envEntry]string{}
	for i := range corr {
		for _, c := range expr.Cols(corr[i]) {
			if resolvesIn(c, baseSchema) || resolvesIn(c, innerSchema) {
				continue
			}
			entry := findEnv(env, c)
			if entry == nil {
				return nil, nil, fmt.Errorf("unnest: free reference %s resolves in no enclosing block", c)
			}
			alias, ok := pushed[entry]
			if !ok {
				alias = u.fresh("pd")
				pushed[entry] = alias
				base = algebra.NewJoin(algebra.InnerJoin,
					algebra.NewAlias(entry.node, alias), base, expr.TrueExpr())
				baseSchema, err = base.Schema(u.res)
				if err != nil {
					return nil, nil, err
				}
				for _, col := range entry.schema.Columns {
					deferred = append(deferred, expr.Eq(
						expr.NewCol(col.Qualifier, col.Name),
						expr.NewCol(alias, col.Name),
					))
				}
			}
			corr[i] = expr.RenameQualifier(corr[i], c.Qualifier, alias)
		}
	}
	on := expr.Conj(corr)
	cmp := func() expr.Expr {
		return expr.NewCmp(sp.Op, expr.Clone(sp.Left), expr.NewCol(sp.Sub.OutCol.Qualifier, sp.Sub.OutCol.Name))
	}
	switch sp.Kind {
	case algebra.Exists:
		return algebra.NewJoin(algebra.SemiJoin, base, inner, on), deferred, nil
	case algebra.NotExists:
		return algebra.NewJoin(algebra.AntiJoin, base, inner, on), deferred, nil
	case algebra.CmpSome:
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("unnest: SOME subquery lacks an output column")
		}
		return algebra.NewJoin(algebra.SemiJoin, base, inner, expr.NewAnd(on, cmp())), deferred, nil
	case algebra.CmpAll:
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("unnest: ALL subquery lacks an output column")
		}
		c := cmp()
		notTrue := expr.NewOr(expr.NewNot(c), expr.NewIsNull(expr.Clone(c), false))
		out, err := u.allBySetDifference(base, baseSchema, inner, expr.NewAnd(on, notTrue))
		return out, deferred, err
	case algebra.ScalarCmp:
		if sp.Sub.Agg != nil {
			out, err := u.aggregateJoin(base, baseSchema, sp, inner, on)
			return out, deferred, err
		}
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("unnest: scalar subquery lacks an output column")
		}
		return algebra.NewJoin(algebra.SemiJoin, base, inner, expr.NewAnd(on, cmp())), deferred, nil
	default:
		return nil, nil, fmt.Errorf("unnest: unknown subquery kind %v", sp.Kind)
	}
}

// allBySetDifference implements the classical unnesting of quantified
// ALL predicates: materialize the join of outer tuples with their
// counterexamples, then subtract the disqualified outer tuples (Dayal's
// set-difference formulation, as also produced by the APPLY-removal
// rules of Galindo-Legaria & Joshi). With a non-equality correlation —
// the paper's Figure 4 — the counterexample join has no usable keys
// and its materialization explodes quadratically; this is precisely
// the behaviour the paper reports (> 7 hours at 20k rows).
func (u *unnester) allBySetDifference(base algebra.Node, baseSchema *relation.Schema, inner algebra.Node, counterexample expr.Expr) (algebra.Node, error) {
	rid := u.fresh("__rid")
	rid2 := u.fresh("__rid")
	numbered := algebra.NewNumber(base, rid)
	counterJoin := algebra.NewJoin(algebra.InnerJoin, numbered, inner, counterexample)
	bad := algebra.NewDistinct(algebra.NewProject(counterJoin, false,
		algebra.ProjItem{E: expr.NewCol("", rid), As: rid2}))
	keep := algebra.NewJoin(algebra.AntiJoin, numbered, bad,
		expr.Eq(expr.NewCol("", rid), expr.NewCol("", rid2)))
	items := make([]algebra.ProjItem, baseSchema.Len())
	for i, c := range baseSchema.Columns {
		items[i] = algebra.ProjItem{E: expr.NewCol(c.Qualifier, c.Name)}
	}
	return algebra.NewProject(keep, false, items...), nil
}

// aggregateJoin implements the aggregate-then-outer-join translation
// with the COUNT-bug fix: a probe column survives as NULL on padded
// rows so COUNT(probe) is 0 for outer tuples without matches.
func (u *unnester) aggregateJoin(base algebra.Node, baseSchema *relation.Schema, sp *algebra.SubPred, inner algebra.Node, on expr.Expr) (algebra.Node, error) {
	rid := u.fresh("__rid")
	probe := u.fresh("__probe")
	val := u.fresh("__val")

	innerSchema, err := inner.Schema(u.res)
	if err != nil {
		return nil, err
	}
	// Extend the inner side with the probe constant.
	items := make([]algebra.ProjItem, 0, innerSchema.Len()+1)
	for _, c := range innerSchema.Columns {
		items = append(items, algebra.ProjItem{E: expr.NewCol(c.Qualifier, c.Name)})
	}
	items = append(items, algebra.ProjItem{E: expr.IntLit(1), As: probe})
	probed := algebra.NewProject(inner, false, items...)

	numbered := algebra.NewNumber(base, rid)
	loj := algebra.NewJoin(algebra.LeftOuterJoin, numbered, probed, on)

	// Group back to outer tuples: rid plus all base columns as keys.
	keys := []*expr.Col{expr.NewCol("", rid)}
	for _, c := range baseSchema.Columns {
		keys = append(keys, expr.NewCol(c.Qualifier, c.Name))
	}
	spec := agg.Spec{Func: sp.Sub.Agg.Func, Arg: sp.Sub.Agg.Arg, As: val}
	if spec.Func == agg.CountStar {
		spec = agg.Spec{Func: agg.Count, Arg: expr.NewCol("", probe), As: val}
	}
	grouped := algebra.NewGroupBy(loj, keys, []agg.Spec{spec})

	filtered := algebra.Filter(grouped,
		expr.NewCmp(sp.Op, expr.Clone(sp.Left), expr.NewCol("", val)))

	// Back to the base schema (drop rid and val).
	outItems := make([]algebra.ProjItem, baseSchema.Len())
	for i, c := range baseSchema.Columns {
		outItems[i] = algebra.ProjItem{E: expr.NewCol(c.Qualifier, c.Name)}
	}
	return algebra.NewProject(filtered, false, outItems...), nil
}

func refsWithin(e expr.Expr, s *relation.Schema) bool {
	for _, c := range expr.Cols(e) {
		if !resolvesIn(c, s) {
			return false
		}
	}
	return true
}

func resolvesIn(c *expr.Col, s *relation.Schema) bool {
	_, err := s.Find(c.Qualifier, c.Name)
	return err == nil
}

func findEnv(env []envEntry, c *expr.Col) *envEntry {
	for i := len(env) - 1; i >= 0; i-- {
		if resolvesIn(c, env[i].schema) {
			return &env[i]
		}
	}
	return nil
}
