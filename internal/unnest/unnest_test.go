package unnest

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

func netflowCatalog(rng *rand.Rand, nFlows int) *storage.Catalog {
	cat := storage.NewCatalog()
	ips := []string{
		"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4",
		"167.167.167.0", "168.168.168.0", "169.169.169.0",
	}
	protos := []string{"HTTP", "FTP", "SMTP"}
	flow := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Flow", Name: "SourceIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "DestIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "StartTime", Type: value.KindInt},
		relation.Column{Qualifier: "Flow", Name: "Protocol", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "NumBytes", Type: value.KindInt},
	))
	for i := 0; i < nFlows; i++ {
		flow.Append(relation.Tuple{
			value.Str(ips[rng.Intn(len(ips))]),
			value.Str(ips[rng.Intn(len(ips))]),
			value.Int(int64(rng.Intn(240))),
			value.Str(protos[rng.Intn(len(protos))]),
			value.Int(int64(1 + rng.Intn(100))),
		})
	}
	cat.Register(storage.NewTable("Flow", flow))

	hours := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Hours", Name: "HourDsc", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "StartInterval", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "EndInterval", Type: value.KindInt},
	))
	for h := int64(0); h < 4; h++ {
		hours.Append(relation.Tuple{value.Int(h + 1), value.Int(h * 60), value.Int((h + 1) * 60)})
	}
	cat.Register(storage.NewTable("Hours", hours))

	user := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "User", Name: "Name", Type: value.KindString},
		relation.Column{Qualifier: "User", Name: "IPAddress", Type: value.KindString},
	))
	for i, ip := range ips[:4] {
		user.Append(relation.Tuple{value.Str("user" + string(rune('a'+i))), value.Str(ip)})
	}
	cat.Register(storage.NewTable("User", user))
	return cat
}

func timeWindow(f, h string) expr.Expr {
	return expr.NewAnd(
		expr.NewCmp(value.GE, expr.C(f+".StartTime"), expr.C(h+".StartInterval")),
		expr.NewCmp(value.LT, expr.C(f+".StartTime"), expr.C(h+".EndInterval")),
	)
}

// runBoth checks native ≡ unnested-join evaluation.
func runBoth(t *testing.T, cat *storage.Catalog, plan algebra.Node) *relation.Relation {
	t.Helper()
	e := exec.New(cat)
	native, err := e.Run(plan)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	joined, err := Unnest(plan, e)
	if err != nil {
		t.Fatalf("Unnest: %v", err)
	}
	out, err := e.Run(joined)
	if err != nil {
		t.Fatalf("join run of %s: %v", joined, err)
	}
	if d := native.Diff(out); d != "" {
		t.Fatalf("join result differs from native: %s\nplan: %s\nunnested: %s", d, plan, joined)
	}
	return native
}

func existsSub(dest string) *algebra.Subquery {
	return &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.Eq(expr.C("FI.DestIP"), expr.StrLit(dest)),
			timeWindow("FI", "H"),
		)},
	}
}

func TestUnnestExistsSemiJoin(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(1)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.ExistsPred(existsSub("167.167.167.0")))
	runBoth(t, cat, plan)
	e := exec.New(cat)
	joined, _ := Unnest(plan, e)
	if !strings.Contains(joined.String(), "⋉") {
		t.Errorf("EXISTS should unnest to a semi-join: %s", joined)
	}
}

func TestUnnestNotExistsAntiJoin(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(2)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.NotExistsPred(existsSub("168.168.168.0")))
	runBoth(t, cat, plan)
	e := exec.New(cat)
	joined, _ := Unnest(plan, e)
	if !strings.Contains(joined.String(), "▷") {
		t.Errorf("NOT EXISTS should unnest to an anti-join: %s", joined)
	}
}

func TestUnnestSomeAndAll(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(3)), 150)
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.LT, expr.C("FI.NumBytes"), expr.IntLit(20))},
		OutCol: expr.C("FI.StartTime"),
	}
	some := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpSome, Op: value.GT, Left: expr.C("H.EndInterval"), Sub: sub})
	runBoth(t, cat, some)
	all := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.GT, Left: expr.C("H.StartInterval"), Sub: sub})
	runBoth(t, cat, all)
}

func TestUnnestAllEmptyInner(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(4)), 50)
	sub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Flow", "FI"), expr.BoolLit(false)),
		OutCol: expr.C("FI.StartTime"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.LT, Left: expr.C("H.StartInterval"), Sub: sub})
	out := runBoth(t, cat, plan)
	if out.Len() != 4 {
		t.Errorf("ALL over empty set keeps everything; got %d rows", out.Len())
	}
}

func TestUnnestScalarAggregateCountBug(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(5)), 100)
	// Hours where the number of FTP flows in the window is 0 — the
	// classic COUNT-bug query: a plain join would lose the zero groups.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("FI", "H"),
			expr.Eq(expr.C("FI.Protocol"), expr.StrLit("FTP")),
		)},
		Agg: &agg.Spec{Func: agg.CountStar, As: "c"},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.EQ, Left: expr.IntLit(0), Sub: sub})
	out := runBoth(t, cat, plan)
	// Cross-check by hand.
	e := exec.New(cat)
	flows, _ := e.Run(algebra.NewScan("Flow", "F"))
	want := 0
	for h := int64(0); h < 4; h++ {
		n := 0
		for _, f := range flows.Rows {
			if f[3].AsString() == "FTP" && f[2].AsInt() >= h*60 && f[2].AsInt() < (h+1)*60 {
				n++
			}
		}
		if n == 0 {
			want++
		}
	}
	if out.Len() != want {
		t.Errorf("count-bug query: got %d hours, want %d", out.Len(), want)
	}
}

func TestUnnestScalarAggregateSum(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(6)), 150)
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where:  &algebra.Atom{E: timeWindow("FI", "H")},
		Agg:    &agg.Spec{Func: agg.Sum, Arg: expr.C("FI.NumBytes"), As: "s"},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GT, Left: expr.IntLit(2000), Sub: sub})
	runBoth(t, cat, plan)
}

func TestUnnestDuplicateOuterRows(t *testing.T) {
	// Duplicate outer tuples must each survive (the row-id trick).
	cat := storage.NewCatalog()
	l := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "L", Name: "k", Type: value.KindInt},
	))
	l.Append(relation.Tuple{value.Int(1)})
	l.Append(relation.Tuple{value.Int(1)}) // duplicate
	l.Append(relation.Tuple{value.Int(2)})
	cat.Register(storage.NewTable("L", l))
	r := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	r.Append(relation.Tuple{value.Int(1), value.Int(5)})
	r.Append(relation.Tuple{value.Int(1), value.Int(7)})
	cat.Register(storage.NewTable("R", r))

	sub := &algebra.Subquery{
		Source: algebra.NewScan("R", "R"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("R.k"), expr.C("L.k"))},
		Agg:    &agg.Spec{Func: agg.Sum, Arg: expr.C("R.v"), As: "s"},
	}
	plan := algebra.NewRestrict(algebra.NewScan("L", "L"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GT, Left: expr.IntLit(20), Sub: sub})
	out := runBoth(t, cat, plan)
	if out.Len() != 2 {
		t.Errorf("both duplicate outer rows must survive, got %d", out.Len())
	}
}

func TestUnnestLinearNesting(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(7)), 200)
	inner := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Flow", "P"),
			expr.Eq(expr.C("P.Protocol"), expr.StrLit("FTP"))),
		OutCol: expr.C("P.Protocol"),
	}
	outer := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: algebra.And(
			&algebra.Atom{E: timeWindow("FI", "H")},
			algebra.In(expr.C("FI.Protocol"), inner),
		),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.NotExistsPred(outer))
	runBoth(t, cat, plan)
}

func TestUnnestNonNeighboring(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(8)), 300)
	inner := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("F", "H"),
			expr.Eq(expr.C("F.SourceIP"), expr.C("U.IPAddress")),
		)},
	}
	outer := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H"),
		Where:  algebra.And(algebra.NotExistsPred(inner)),
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.NotExistsPred(outer))
	runBoth(t, cat, plan)
}

func TestUnnestNotInNullTrap(t *testing.T) {
	cat := storage.NewCatalog()
	mk := func(name string, vals ...value.Value) {
		r := relation.New(relation.NewSchema(
			relation.Column{Qualifier: name, Name: "n", Type: value.KindInt},
		))
		for _, v := range vals {
			r.Append(relation.Tuple{v})
		}
		cat.Register(storage.NewTable(name, r))
	}
	mk("L", value.Int(1), value.Int(2), value.Int(3), value.Null)
	mk("R", value.Int(2), value.Null)
	sub := &algebra.Subquery{Source: algebra.NewScan("R", "R"), OutCol: expr.C("R.n")}
	plan := algebra.NewRestrict(algebra.NewScan("L", "L"), algebra.NotIn(expr.C("L.n"), sub))
	out := runBoth(t, cat, plan)
	if out.Len() != 0 {
		t.Errorf("NOT IN over NULL-bearing set must be empty, got %d", out.Len())
	}
}

func TestUnnestRejectsDisjunctiveSubqueries(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(9)), 20)
	e := exec.New(cat)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.Or(
			algebra.ExistsPred(existsSub("167.167.167.0")),
			algebra.ExistsPred(existsSub("168.168.168.0")),
		))
	if _, err := Unnest(plan, e); err == nil ||
		!strings.Contains(err.Error(), "disjunctive") {
		t.Errorf("disjunctive subqueries should be rejected, got %v", err)
	}
}

func TestUnnestConjunctiveTreeSubqueries(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(10)), 250)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.And(
			algebra.ExistsPred(existsSub("167.167.167.0")),
			algebra.NotExistsPred(existsSub("169.169.169.0")),
		))
	runBoth(t, cat, plan)
}

func TestUnnestRandomizedEquivalence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		cat := netflowCatalog(rng, 100+rng.Intn(150))
		dests := []string{"167.167.167.0", "168.168.168.0", "10.0.0.1"}
		var preds []algebra.Pred
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			alias := "FI" + string(rune('0'+i))
			sub := &algebra.Subquery{
				Source: algebra.NewScan("Flow", alias),
				Where: &algebra.Atom{E: expr.NewAnd(
					expr.Eq(expr.C(alias+".DestIP"), expr.StrLit(dests[rng.Intn(len(dests))])),
					timeWindow(alias, "H"),
				)},
			}
			if rng.Intn(2) == 0 {
				preds = append(preds, algebra.ExistsPred(sub))
			} else {
				preds = append(preds, algebra.NotExistsPred(sub))
			}
		}
		plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.And(preds...))
		runBoth(t, cat, plan)
	}
}
