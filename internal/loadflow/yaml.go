// Package loadflow is a declarative load/chaos scenario driver for the
// serving layer: scenarios are YAML documents describing weighted query
// mixes, concurrency ramps, client-abort storms, and per-step deadlines;
// the runner executes them against an olapd endpoint and reports typed
// outcome counts plus latency percentiles.
//
// The module carries no dependencies, so this file implements the YAML
// subset the scenario schema needs (block mappings, block sequences,
// scalars, comments) rather than a full YAML 1.2 parser. Flow
// collections, anchors, multi-line scalars, and multi-document streams
// are out of scope and rejected or misparsed loudly, never silently.
package loadflow

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseYAML parses the supported YAML subset into nested
// map[string]any / []any / scalar (string, int64, float64, bool, nil)
// values.
func ParseYAML(src string) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		text, err := stripComment(raw)
		if err != nil {
			return nil, fmt.Errorf("yaml line %d: %w", i+1, err)
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		indent := 0
		for indent < len(text) && text[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(text[indent:], "\t") {
			return nil, fmt.Errorf("yaml line %d: tab indentation not supported", i+1)
		}
		lines = append(lines, yamlLine{no: i + 1, indent: indent, text: text[indent:]})
	}
	if len(lines) == 0 {
		return nil, nil
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected dedent/content %q", lines[next].no, lines[next].text)
	}
	return v, nil
}

type yamlLine struct {
	no     int
	indent int
	text   string
}

// stripComment removes a trailing comment: a '#' at start of content or
// preceded by whitespace, outside quotes.
func stripComment(s string) (string, error) {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i], nil
			}
		}
	}
	if inS || inD {
		return "", fmt.Errorf("unterminated quote")
	}
	return s, nil
}

// parseBlock parses one block (mapping or sequence) whose lines sit at
// exactly `indent`; it returns the value and the index of the first
// unconsumed line.
func parseBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseSeq(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseSeq(lines []yamlLine, i, indent int) (any, int, error) {
	var out []any
	for i < len(lines) && lines[i].indent == indent &&
		(strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-") {
		ln := lines[i]
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block below.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
			i = next
			continue
		}
		if isMapKey(rest) {
			// "- key: ..." starts an inline mapping: reinterpret the
			// dash as two spaces of indentation so the item's remaining
			// keys (indent+2) align with the rewritten first key.
			sub := []yamlLine{{no: ln.no, indent: indent + 2, text: rest}}
			j := i + 1
			for j < len(lines) && lines[j].indent > indent {
				sub = append(sub, lines[j])
				j++
			}
			v, next, err := parseBlock(sub, 0, indent+2)
			if err != nil {
				return nil, 0, err
			}
			if next != len(sub) {
				return nil, 0, fmt.Errorf("yaml line %d: unexpected content in sequence item", sub[next].no)
			}
			out = append(out, v)
			i = j
			continue
		}
		out = append(out, scalar(rest))
		i++
	}
	return out, i, nil
}

func parseMap(lines []yamlLine, i, indent int) (any, int, error) {
	out := map[string]any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, 0, fmt.Errorf("yaml line %d: %q is not a key: value", ln.no, ln.text)
		}
		if _, dup := out[key]; dup {
			return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", ln.no, key)
		}
		if rest == ">" || rest == ">-" {
			// Folded block scalar: deeper-indented lines joined with
			// single spaces (enough for multi-line SQL; the trailing-
			// newline distinction between > and >- is irrelevant here).
			i++
			var parts []string
			for i < len(lines) && lines[i].indent > indent {
				parts = append(parts, lines[i].text)
				i++
			}
			out[key] = strings.Join(parts, " ")
			continue
		}
		if rest != "" {
			out[key] = scalar(rest)
			i++
			continue
		}
		// "key:" introduces a nested block (deeper indent) or null.
		i++
		if i >= len(lines) || lines[i].indent <= indent {
			out[key] = nil
			continue
		}
		v, next, err := parseBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, 0, err
		}
		out[key] = v
		i = next
	}
	return out, i, nil
}

// isMapKey reports whether s begins a "key: value" pair (colon outside
// quotes followed by space or end).
func isMapKey(s string) bool {
	_, _, ok := splitKey(s)
	return ok
}

// splitKey cuts "key: value" at the first unquoted ": " (or trailing
// ":"), returning the unquoted key and the raw remainder.
func splitKey(s string) (key, rest string, ok bool) {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == ':' && !inS && !inD:
			if i+1 == len(s) {
				return unquote(strings.TrimSpace(s[:i])), "", true
			}
			if s[i+1] == ' ' {
				return unquote(strings.TrimSpace(s[:i])), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// scalar interprets one scalar token: quoted string, bool, null,
// int64, float64, or bare string.
func scalar(s string) any {
	s = strings.TrimSpace(s)
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return unquote(s)
		}
	}
	switch s {
	case "null", "~", "":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
		return s[1 : len(s)-1]
	}
	return s
}
