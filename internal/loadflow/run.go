package loadflow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// Result is one scenario's outcome.
type Result struct {
	Scenario string       `json:"scenario"`
	Target   string       `json:"target"`
	Steps    []StepResult `json:"steps"`
}

// StepResult aggregates one step: request counts by typed outcome kind,
// the non-typed violations (the chaos harness's failure signal), and
// latency percentiles over successful requests.
type StepResult struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	// Aborted counts requests the client hung up on by design
	// (AbortRate); their outcomes are the client's doing, not the
	// server's, and are excluded from the typed-error check.
	Aborted int64 `json:"aborted"`
	// ByKind counts error responses per taxonomy kind.
	ByKind map[string]int64 `json:"by_kind,omitempty"`
	// NonTyped counts responses that are neither 200 nor a known typed
	// error kind — any value above zero fails the harness.
	NonTyped        int64            `json:"non_typed"`
	NonTypedSamples []string         `json:"non_typed_samples,omitempty"`
	Latency         obs.HistSnapshot `json:"latency_ns"`
	Elapsed         time.Duration    `json:"elapsed_ns"`
}

// Runner executes scenarios against one olapd endpoint.
type Runner struct {
	// Target is the base URL (e.g. "http://127.0.0.1:8080"); overrides
	// the scenario's own target when non-empty.
	Target string
	// Client is the HTTP client (default: shared transport tuned for
	// the scenario's peak concurrency).
	Client *http.Client
	// KnownKinds is the set of typed error kinds (from serve.KnownKinds;
	// injected as data to keep loadflow free of a serve dependency).
	KnownKinds []string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// Run executes the scenario's steps in order.
func (r *Runner) Run(ctx context.Context, sc *Scenario) (*Result, error) {
	target := r.Target
	if target == "" {
		target = sc.Target
	}
	if target == "" {
		return nil, fmt.Errorf("loadflow: no target URL (scenario %q has none and -target not set)", sc.Name)
	}
	target = strings.TrimSuffix(target, "/")
	client := r.Client
	if client == nil {
		maxConc := 1
		for _, st := range sc.Steps {
			if st.Concurrency > maxConc {
				maxConc = st.Concurrency
			}
		}
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        maxConc + 16,
				MaxIdleConnsPerHost: maxConc + 16,
			},
		}
	}
	known := map[string]bool{}
	for _, k := range r.KnownKinds {
		known[k] = true
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	res := &Result{Scenario: sc.Name, Target: target}
	for i := range sc.Steps {
		st := &sc.Steps[i]
		r.logf("step %q: %d workers, duration=%v requests=%d abort_rate=%v",
			st.Name, st.Concurrency, st.Duration, st.Requests, st.AbortRate)
		sr, err := r.runStep(ctx, client, target, sc, st, known, seed+int64(i)*7919)
		if err != nil {
			return res, err
		}
		res.Steps = append(res.Steps, *sr)
		r.logf("step %q: %d requests, %d ok, %d aborted, %d non-typed, p50=%v p99=%v",
			st.Name, sr.Requests, sr.OK, sr.Aborted, sr.NonTyped,
			time.Duration(sr.Latency.P50), time.Duration(sr.Latency.P99))
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
	}
	return res, nil
}

// stepState is the shared accounting for one step's worker pool.
type stepState struct {
	requests atomic.Int64
	ok       atomic.Int64
	aborted  atomic.Int64
	nonTyped atomic.Int64

	hist *obs.Histogram

	mu      sync.Mutex
	byKind  map[string]int64
	samples []string
}

func (ss *stepState) countKind(kind string) {
	ss.mu.Lock()
	ss.byKind[kind]++
	ss.mu.Unlock()
}

func (ss *stepState) sample(s string) {
	ss.mu.Lock()
	if len(ss.samples) < 8 {
		ss.samples = append(ss.samples, s)
	}
	ss.mu.Unlock()
}

func (r *Runner) runStep(ctx context.Context, client *http.Client, target string,
	sc *Scenario, st *Step, known map[string]bool, seed int64) (*StepResult, error) {

	tenant := st.Tenant
	if tenant == "" {
		tenant = sc.Tenant
	}
	ss := &stepState{hist: obs.NewHistogram(), byKind: map[string]int64{}}

	stepCtx := ctx
	var cancel context.CancelFunc
	if st.Duration > 0 {
		stepCtx, cancel = context.WithTimeout(ctx, st.Duration)
		defer cancel()
	}
	// A requests cap is claimed atomically so the total is exact even
	// with uneven worker progress.
	budget := st.Requests
	claim := func() bool {
		if budget <= 0 {
			return stepCtx.Err() == nil
		}
		return ss.requests.Load() < budget && stepCtx.Err() == nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < st.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker stream: same seed, same request
			// sequence, abort pattern, and template arguments.
			rng := rand.New(rand.NewSource(seed + int64(w)*104729))
			if st.Ramp > 0 && st.Concurrency > 1 {
				delay := time.Duration(int64(st.Ramp) * int64(w) / int64(st.Concurrency))
				select {
				case <-time.After(delay):
				case <-stepCtx.Done():
					return
				}
			}
			for claim() {
				if budget > 0 && ss.requests.Add(1) > budget {
					ss.requests.Add(-1)
					return
				} else if budget <= 0 {
					ss.requests.Add(1)
				}
				r.issue(stepCtx, client, target, tenant, st, ss, known, rng)
				if st.Think > 0 {
					select {
					case <-time.After(st.Think):
					case <-stepCtx.Done():
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	sr := &StepResult{
		Name:     st.Name,
		Requests: ss.requests.Load(),
		OK:       ss.ok.Load(),
		Aborted:  ss.aborted.Load(),
		NonTyped: ss.nonTyped.Load(),
		ByKind:   ss.byKind,
		Latency:  ss.hist.Snapshot(),
		Elapsed:  time.Since(start),
	}
	sr.NonTypedSamples = ss.samples
	return sr, nil
}

// wireError mirrors serve's errorResponse body.
type wireError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// issue sends one request and classifies its outcome.
func (r *Runner) issue(ctx context.Context, client *http.Client, target, tenant string,
	st *Step, ss *stepState, known map[string]bool, rng *rand.Rand) {

	q := pickTemplate(st.Queries, rng)
	body := map[string]any{"sql": expand(q.SQL, rng)}
	if q.Strategy != "" {
		body["strategy"] = q.Strategy
	}
	timeoutMS := q.TimeoutMS
	if timeoutMS == 0 && st.Timeout > 0 {
		timeoutMS = st.Timeout.Milliseconds()
	}
	if timeoutMS > 0 {
		body["timeout_ms"] = timeoutMS
	}
	raw, err := json.Marshal(body)
	if err != nil {
		ss.nonTyped.Add(1)
		ss.sample("marshal: " + err.Error())
		return
	}

	// A fraction of requests model disconnecting clients: hang up
	// shortly after sending. Their outcomes (transport errors) are by
	// design and never count against the server.
	aborting := st.AbortRate > 0 && rng.Float64() < st.AbortRate
	reqCtx := ctx
	var cancel context.CancelFunc
	if aborting {
		reqCtx, cancel = context.WithTimeout(ctx, st.AbortAfter)
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, target+"/query", bytes.NewReader(raw))
	if err != nil {
		if cancel != nil {
			cancel()
		}
		ss.nonTyped.Add(1)
		ss.sample("request: " + err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-OLAP-Tenant", tenant)
	}
	begin := time.Now()
	resp, err := client.Do(req)
	if cancel != nil {
		defer cancel()
	}
	if err != nil {
		if aborting || ctx.Err() != nil {
			ss.aborted.Add(1)
			return
		}
		ss.nonTyped.Add(1)
		ss.sample("transport: " + err.Error())
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		if aborting || ctx.Err() != nil {
			ss.aborted.Add(1)
			return
		}
		ss.nonTyped.Add(1)
		ss.sample("read body: " + err.Error())
		return
	}
	// If the response beat an intended hangup, count it normally.
	if resp.StatusCode == http.StatusOK {
		ss.ok.Add(1)
		ss.hist.RecordDuration(time.Since(begin))
		return
	}
	var we wireError
	if json.Unmarshal(payload, &we) == nil && known[we.Kind] {
		ss.countKind(we.Kind)
		return
	}
	ss.nonTyped.Add(1)
	ss.sample(fmt.Sprintf("status %d: %.200s", resp.StatusCode, payload))
}

func pickTemplate(qs []QueryTemplate, rng *rand.Rand) *QueryTemplate {
	total := 0
	for i := range qs {
		total += qs[i].Weight
	}
	n := rng.Intn(total)
	for i := range qs {
		n -= qs[i].Weight
		if n < 0 {
			return &qs[i]
		}
	}
	return &qs[len(qs)-1]
}

var (
	randintRe = regexp.MustCompile(`\$RANDINT\((-?\d+),(-?\d+)\)`)
	pickRe    = regexp.MustCompile(`\$PICK\(([^)]*)\)`)
)

// expand substitutes $RANDINT(lo,hi) (inclusive) and $PICK(a|b|c)
// placeholders from the worker's PRNG.
func expand(sql string, rng *rand.Rand) string {
	sql = randintRe.ReplaceAllStringFunc(sql, func(m string) string {
		sub := randintRe.FindStringSubmatch(m)
		lo, _ := strconv.ParseInt(sub[1], 10, 64)
		hi, _ := strconv.ParseInt(sub[2], 10, 64)
		if hi < lo {
			lo, hi = hi, lo
		}
		return strconv.FormatInt(lo+rng.Int63n(hi-lo+1), 10)
	})
	sql = pickRe.ReplaceAllStringFunc(sql, func(m string) string {
		sub := pickRe.FindStringSubmatch(m)
		opts := strings.Split(sub[1], "|")
		return opts[rng.Intn(len(opts))]
	})
	return sql
}
