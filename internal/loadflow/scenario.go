package loadflow

import (
	"fmt"
	"time"
)

// Scenario is one declarative load/chaos run: a named sequence of
// steps executed in order against one olapd endpoint.
type Scenario struct {
	// Name labels the run (and the BENCH figure).
	Name string
	// Description is free documentation.
	Description string
	// Target is the olapd base URL; a runner flag may override it.
	Target string
	// Tenant is the default tenant for steps that don't set their own.
	Tenant string
	// Seed feeds the deterministic per-worker PRNGs (default 1).
	Seed int64
	// Steps run sequentially.
	Steps []Step
	// SLOs are per-tenant objectives asserted after the run (exit 4 in
	// the driver on violation).
	SLOs []SLOSpec
}

// Step is one load phase: a worker pool issuing a weighted query mix.
type Step struct {
	// Name labels the step in results and BENCH cells.
	Name string
	// Concurrency is the worker-pool size (default 1).
	Concurrency int
	// Ramp staggers worker starts evenly across this duration (0 =
	// all at once — a spike).
	Ramp time.Duration
	// Duration bounds the step's wall clock; workers stop issuing new
	// requests once it elapses. 0 = bounded by Requests only.
	Duration time.Duration
	// Requests caps the total requests issued across all workers.
	// 0 = bounded by Duration only. At least one bound must be set.
	Requests int64
	// Timeout is the per-request timeout_ms sent to the server
	// (0 = server default).
	Timeout time.Duration
	// Think pauses each worker between requests (0 = none).
	Think time.Duration
	// AbortRate is the fraction of requests (0..1) the client abandons
	// — canceling the HTTP request after AbortAfter — to model
	// disconnecting clients.
	AbortRate float64
	// AbortAfter is how long an aborting client waits before hanging
	// up (default 1ms).
	AbortAfter time.Duration
	// Tenant overrides the scenario tenant for this step.
	Tenant string
	// Queries is the weighted template mix (required, non-empty).
	Queries []QueryTemplate
}

// QueryTemplate is one weighted query in a step's mix. SQL may embed
// $RANDINT(lo,hi) and $PICK(a|b|c) placeholders, expanded per request
// from the worker's deterministic PRNG.
type QueryTemplate struct {
	SQL      string
	Weight   int // relative selection weight (default 1)
	Strategy string
	// TimeoutMS overrides the step timeout for this template (0 = step's).
	TimeoutMS int64
}

// ParseScenario decodes a scenario document from the YAML subset.
func ParseScenario(src string) (*Scenario, error) {
	root, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	doc, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("loadflow: scenario root must be a mapping, got %T", root)
	}
	d := decoder{}
	sc := &Scenario{
		Name:        d.str(doc, "name"),
		Description: d.str(doc, "description"),
		Target:      d.str(doc, "target"),
		Tenant:      d.str(doc, "tenant"),
		Seed:        d.i64(doc, "seed"),
	}
	steps, _ := doc["steps"].([]any)
	for i, raw := range steps {
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("loadflow: steps[%d] must be a mapping", i)
		}
		st := Step{
			Name:        d.str(m, "name"),
			Concurrency: int(d.i64(m, "concurrency")),
			Ramp:        d.dur(m, "ramp"),
			Duration:    d.dur(m, "duration"),
			Requests:    d.i64(m, "requests"),
			Timeout:     d.dur(m, "timeout"),
			Think:       d.dur(m, "think"),
			AbortRate:   d.f64(m, "abort_rate"),
			AbortAfter:  d.dur(m, "abort_after"),
			Tenant:      d.str(m, "tenant"),
		}
		qs, _ := m["queries"].([]any)
		for j, qraw := range qs {
			qm, ok := qraw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("loadflow: steps[%d].queries[%d] must be a mapping", i, j)
			}
			st.Queries = append(st.Queries, QueryTemplate{
				SQL:       d.str(qm, "sql"),
				Weight:    int(d.i64(qm, "weight")),
				Strategy:  d.str(qm, "strategy"),
				TimeoutMS: d.i64(qm, "timeout_ms"),
			})
		}
		d.checkKeys(fmt.Sprintf("steps[%d]", i), m,
			"name", "concurrency", "ramp", "duration", "requests",
			"timeout", "think", "abort_rate", "abort_after", "tenant", "queries")
		sc.Steps = append(sc.Steps, st)
	}
	slos, _ := doc["slo"].([]any)
	for i, raw := range slos {
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("loadflow: slo[%d] must be a mapping", i)
		}
		sc.SLOs = append(sc.SLOs, SLOSpec{
			Tenant:       d.str(m, "tenant"),
			Availability: d.f64(m, "availability"),
			P99:          d.dur(m, "p99"),
			MaxBurn:      d.f64(m, "max_burn"),
		})
		d.checkKeys(fmt.Sprintf("slo[%d]", i), m, "tenant", "availability", "p99", "max_burn")
	}
	d.checkKeys("scenario", doc, "name", "description", "target", "tenant", "seed", "steps", "slo")
	if d.err != nil {
		return nil, d.err
	}
	return sc, sc.validate()
}

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("loadflow: scenario has no name")
	}
	if len(sc.Steps) == 0 {
		return fmt.Errorf("loadflow: scenario %q has no steps", sc.Name)
	}
	for i := range sc.Steps {
		st := &sc.Steps[i]
		if st.Name == "" {
			st.Name = fmt.Sprintf("step%d", i+1)
		}
		if st.Concurrency <= 0 {
			st.Concurrency = 1
		}
		if st.Duration <= 0 && st.Requests <= 0 {
			return fmt.Errorf("loadflow: step %q has neither duration nor requests", st.Name)
		}
		if st.AbortRate < 0 || st.AbortRate > 1 {
			return fmt.Errorf("loadflow: step %q abort_rate %v outside [0,1]", st.Name, st.AbortRate)
		}
		if st.AbortRate > 0 && st.AbortAfter <= 0 {
			st.AbortAfter = time.Millisecond
		}
		if len(st.Queries) == 0 {
			return fmt.Errorf("loadflow: step %q has no queries", st.Name)
		}
		for j := range st.Queries {
			q := &st.Queries[j]
			if q.SQL == "" {
				return fmt.Errorf("loadflow: step %q queries[%d] has no sql", st.Name, j)
			}
			if q.Weight <= 0 {
				q.Weight = 1
			}
		}
	}
	seen := map[string]bool{}
	for i := range sc.SLOs {
		spec := &sc.SLOs[i]
		if spec.Tenant == "" {
			return fmt.Errorf("loadflow: slo[%d] has no tenant", i)
		}
		if seen[spec.Tenant] {
			return fmt.Errorf("loadflow: slo: tenant %q declared twice", spec.Tenant)
		}
		seen[spec.Tenant] = true
		if spec.Availability <= 0 || spec.Availability >= 1 {
			return fmt.Errorf("loadflow: slo for %q: availability %v outside (0,1)", spec.Tenant, spec.Availability)
		}
		if spec.MaxBurn < 0 {
			return fmt.Errorf("loadflow: slo for %q: negative max_burn", spec.Tenant)
		}
	}
	return nil
}

// decoder accumulates the first type/key error across lookups so the
// schema walk above stays linear.
type decoder struct{ err error }

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("loadflow: "+format, args...)
	}
}

func (d *decoder) str(m map[string]any, key string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s: want string, got %T (%v)", key, v, v)
		return ""
	}
	return s
}

func (d *decoder) i64(m map[string]any, key string) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return 0
	}
	n, ok := v.(int64)
	if !ok {
		d.fail("%s: want integer, got %T (%v)", key, v, v)
		return 0
	}
	return n
}

func (d *decoder) f64(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case nil:
		return 0
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		d.fail("%s: want number, got %T (%v)", key, v, v)
		return 0
	}
}

func (d *decoder) dur(m map[string]any, key string) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s: want duration string like \"500ms\", got %T (%v)", key, v, v)
		return 0
	}
	dur, err := time.ParseDuration(s)
	if err != nil {
		d.fail("%s: %v", key, err)
		return 0
	}
	return dur
}

// checkKeys rejects unknown keys — a typo in a scenario must fail the
// run, not silently no-op.
func (d *decoder) checkKeys(where string, m map[string]any, allowed ...string) {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	for k := range m {
		if !ok[k] {
			d.fail("%s: unknown key %q", where, k)
		}
	}
}
