package loadflow

import (
	"fmt"
	"time"
)

// SLOSpec is one tenant's objective declared in a scenario's slo:
// block. The driver evaluates it against the run's typed-outcome
// accounting after the steps finish — the client-side twin of the
// server's /metrics burn gauges, so a scenario can fail CI when the
// server's error budget burns too fast.
type SLOSpec struct {
	// Tenant names the tenant the objective applies to (steps whose
	// effective tenant matches are aggregated).
	Tenant string
	// Availability is the target fraction of requests free of
	// server-attributed failure, in (0,1).
	Availability float64
	// P99 bounds the 99th-percentile latency of successful requests
	// (0 = no latency objective).
	P99 time.Duration
	// MaxBurn is the error-budget burn rate above which the objective
	// is violated (default 1.0 — burning faster than the budget allows).
	MaxBurn float64
}

// SLOOutcome is one objective evaluated against a finished run.
type SLOOutcome struct {
	Tenant       string        `json:"tenant"`
	Requests     int64         `json:"requests"`
	Failures     int64         `json:"failures"`
	Availability float64       `json:"availability"`
	Burn         float64       `json:"burn"`
	P99          time.Duration `json:"p99_ns"`
	// Violations holds one human-readable line per breached objective;
	// empty means the SLO held.
	Violations []string `json:"violations,omitempty"`
}

// EvaluateSLOs checks every declared objective against the run.
// failureKinds lists the taxonomy kinds billed against availability
// (serve.ServerFailureKinds, injected as data to keep loadflow free of
// a serve dependency). Burn is observed error rate over allowed error
// rate. The p99 check is conservative across steps: the worst step's
// p99 must meet the bound.
func EvaluateSLOs(sc *Scenario, res *Result, failureKinds []string) []SLOOutcome {
	failing := map[string]bool{}
	for _, k := range failureKinds {
		failing[k] = true
	}
	var out []SLOOutcome
	for _, spec := range sc.SLOs {
		o := SLOOutcome{Tenant: spec.Tenant, Availability: 1}
		for i, sr := range res.Steps {
			if i >= len(sc.Steps) || effectiveTenant(sc, &sc.Steps[i]) != spec.Tenant {
				continue
			}
			o.Requests += sr.OK
			for kind, n := range sr.ByKind {
				o.Requests += n
				if failing[kind] {
					o.Failures += n
				}
			}
			if p99 := time.Duration(sr.Latency.P99); p99 > o.P99 {
				o.P99 = p99
			}
		}
		if o.Requests > 0 {
			o.Availability = 1 - float64(o.Failures)/float64(o.Requests)
		}
		o.Burn = (1 - o.Availability) / (1 - spec.Availability)
		maxBurn := spec.MaxBurn
		if maxBurn <= 0 {
			maxBurn = 1
		}
		if o.Burn > maxBurn {
			o.Violations = append(o.Violations, fmt.Sprintf(
				"tenant %q: error-budget burn %.2f > %.2f (availability %.4f vs target %.4f, %d/%d server-attributed failures)",
				spec.Tenant, o.Burn, maxBurn, o.Availability, spec.Availability, o.Failures, o.Requests))
		}
		if spec.P99 > 0 && o.P99 > spec.P99 {
			o.Violations = append(o.Violations, fmt.Sprintf(
				"tenant %q: p99 %v > objective %v", spec.Tenant, o.P99, spec.P99))
		}
		out = append(out, o)
	}
	return out
}

// effectiveTenant resolves the tenant a step's requests are billed to,
// mirroring the server's default-tenant rule.
func effectiveTenant(sc *Scenario, st *Step) string {
	if st.Tenant != "" {
		return st.Tenant
	}
	if sc.Tenant != "" {
		return sc.Tenant
	}
	return "default"
}
