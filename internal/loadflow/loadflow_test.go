package loadflow

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/serve"
)

func TestParseYAMLSubset(t *testing.T) {
	src := `
# scenario header
name: demo
seed: 42
rate: 0.25
enabled: true
empty:
target: "http://x:80"  # trailing comment
steps:
  - name: warmup
    concurrency: 4
    queries:
      - sql: 'SELECT * FROM t WHERE x > $RANDINT(1,9)'
        weight: 3
      - sql: "SELECT 1"
  - name: storm
    concurrency: 200
list:
  - 1
  - two
  - false
`
	got, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "demo",
		"seed":    int64(42),
		"rate":    0.25,
		"enabled": true,
		"empty":   nil,
		"target":  "http://x:80",
		"steps": []any{
			map[string]any{
				"name":        "warmup",
				"concurrency": int64(4),
				"queries": []any{
					map[string]any{"sql": "SELECT * FROM t WHERE x > $RANDINT(1,9)", "weight": int64(3)},
					map[string]any{"sql": "SELECT 1"},
				},
			},
			map[string]any{"name": "storm", "concurrency": int64(200)},
		},
		"list": []any{int64(1), "two", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", got, want)
	}
}

func TestParseYAMLFoldedScalar(t *testing.T) {
	src := `
steps:
  - sql: >-
      SELECT h.HourDsc FROM Hours h
      WHERE EXISTS (SELECT * FROM Flow fi
        WHERE fi.DestIP = '167.167.167.0')
    weight: 2
`
	got, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	item := got.(map[string]any)["steps"].([]any)[0].(map[string]any)
	want := "SELECT h.HourDsc FROM Hours h WHERE EXISTS (SELECT * FROM Flow fi WHERE fi.DestIP = '167.167.167.0')"
	if item["sql"] != want {
		t.Fatalf("folded sql = %q, want %q", item["sql"], want)
	}
	if item["weight"] != int64(2) {
		t.Fatalf("weight after folded scalar = %v", item["weight"])
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"tab indent":   "a:\n\tb: 1",
		"bare text":    "a: 1\njust words here: : :\n  dangling",
		"dup key":      "a: 1\na: 2",
		"unterminated": `a: "oops`,
	} {
		if _, err := ParseYAML(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseScenario(t *testing.T) {
	src := `
name: cancel-storm
description: storm with aborts
tenant: default
seed: 7
steps:
  - name: storm
    concurrency: 200
    duration: 5s
    timeout: 250ms
    abort_rate: 0.1
    abort_after: 2ms
    queries:
      - sql: SELECT name FROM users
        weight: 2
      - sql: SELECT name FROM users WHERE ip = '10.0.0.$RANDINT(1,40)'
        strategy: gmdj
`
	sc, err := ParseScenario(src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "cancel-storm" || sc.Seed != 7 || len(sc.Steps) != 1 {
		t.Fatalf("scenario = %+v", sc)
	}
	st := sc.Steps[0]
	if st.Concurrency != 200 || st.Duration != 5*time.Second || st.AbortRate != 0.1 ||
		st.AbortAfter != 2*time.Millisecond || st.Timeout != 250*time.Millisecond {
		t.Fatalf("step = %+v", st)
	}
	if len(st.Queries) != 2 || st.Queries[0].Weight != 2 || st.Queries[1].Weight != 1 ||
		st.Queries[1].Strategy != "gmdj" {
		t.Fatalf("queries = %+v", st.Queries)
	}

	for name, bad := range map[string]string{
		"no name":     "steps:\n  - duration: 1s\n    queries:\n      - sql: SELECT 1",
		"no steps":    "name: x",
		"no bound":    "name: x\nsteps:\n  - queries:\n      - sql: SELECT 1",
		"no queries":  "name: x\nsteps:\n  - duration: 1s",
		"bad rate":    "name: x\nsteps:\n  - duration: 1s\n    abort_rate: 1.5\n    queries:\n      - sql: SELECT 1",
		"unknown key": "name: x\nbogus: 1\nsteps:\n  - duration: 1s\n    queries:\n      - sql: SELECT 1",
		"typo key":    "name: x\nsteps:\n  - duration: 1s\n    concurency: 3\n    queries:\n      - sql: SELECT 1",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpandTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		got := expand("x = $RANDINT(3,5) AND p = '$PICK(a|b)'", rng)
		if !strings.Contains(got, "x = 3") && !strings.Contains(got, "x = 4") && !strings.Contains(got, "x = 5") {
			t.Fatalf("RANDINT out of range: %q", got)
		}
		if !strings.Contains(got, "p = 'a'") && !strings.Contains(got, "p = 'b'") {
			t.Fatalf("PICK out of set: %q", got)
		}
	}
	// Deterministic per seed.
	a := expand("$RANDINT(0,1000000)", rand.New(rand.NewSource(9)))
	b := expand("$RANDINT(0,1000000)", rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatalf("same seed diverged: %q vs %q", a, b)
	}
}

// End-to-end: a scenario with aborts and a quota-shedding tenant runs
// against a live server; every outcome is ok, aborted, or a typed kind.
func TestRunScenarioAgainstServer(t *testing.T) {
	db := gmdj.Open()
	db.MustCreateTable("users",
		gmdj.Col("name", gmdj.String), gmdj.Col("ip", gmdj.String), gmdj.Col("score", gmdj.Int))
	db.MustInsert("users",
		[]any{"ann", "10.0.0.1", int64(10)},
		[]any{"bob", "10.0.0.2", int64(20)},
	)
	s := serve.NewServer(db, serve.Config{
		Tenants: map[string]serve.Quota{
			"tiny": {MaxInFlight: 1, Admission: time.Millisecond},
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sc, err := ParseScenario(`
name: mini-storm
seed: 3
steps:
  - name: mixed
    concurrency: 16
    requests: 200
    abort_rate: 0.15
    abort_after: 1ms
    queries:
      - sql: SELECT name FROM users WHERE score > $RANDINT(5,25)
        weight: 3
      - sql: SELECT name FROM users WHERE ip = '10.0.0.$RANDINT(1,2)'
  - name: shed
    concurrency: 8
    requests: 40
    tenant: tiny
    queries:
      - sql: SELECT name FROM users
`)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Target: srv.URL, KnownKinds: serve.KnownKinds()}
	res, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	mixed := res.Steps[0]
	if mixed.Requests != 200 {
		t.Fatalf("mixed requests = %d, want 200", mixed.Requests)
	}
	if mixed.NonTyped != 0 {
		t.Fatalf("non-typed outcomes: %v", mixed.NonTypedSamples)
	}
	if mixed.OK == 0 {
		t.Fatal("no successful requests")
	}
	if mixed.Latency.Count != mixed.OK {
		t.Fatalf("latency count %d != ok %d", mixed.Latency.Count, mixed.OK)
	}
	shed := res.Steps[1]
	if shed.NonTyped != 0 {
		t.Fatalf("shed step non-typed: %v", shed.NonTypedSamples)
	}
	if shed.OK+counts(shed.ByKind)+shed.Aborted != shed.Requests {
		t.Fatalf("shed accounting: %+v", shed)
	}
}

func counts(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}
