package loadflow

import (
	"strings"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

func TestScenarioSLOParsing(t *testing.T) {
	sc, err := ParseScenario(`
name: slo-demo
tenant: default
steps:
  - name: s1
    requests: 10
    queries:
      - sql: SELECT 1
slo:
  - tenant: default
    availability: 0.99
    p99: 250ms
  - tenant: premium
    availability: 0.999
    max_burn: 2.0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SLOs) != 2 {
		t.Fatalf("parsed %d SLOs, want 2", len(sc.SLOs))
	}
	if s := sc.SLOs[0]; s.Tenant != "default" || s.Availability != 0.99 || s.P99 != 250*time.Millisecond || s.MaxBurn != 0 {
		t.Errorf("slo[0] = %+v", s)
	}
	if s := sc.SLOs[1]; s.Tenant != "premium" || s.MaxBurn != 2.0 {
		t.Errorf("slo[1] = %+v", s)
	}

	for name, src := range map[string]string{
		"no tenant": `
name: x
steps:
  - requests: 1
    queries:
      - sql: SELECT 1
slo:
  - availability: 0.9
`,
		"availability out of range": `
name: x
steps:
  - requests: 1
    queries:
      - sql: SELECT 1
slo:
  - tenant: t
    availability: 1.5
`,
		"duplicate tenant": `
name: x
steps:
  - requests: 1
    queries:
      - sql: SELECT 1
slo:
  - tenant: t
    availability: 0.9
  - tenant: t
    availability: 0.8
`,
		"unknown key": `
name: x
steps:
  - requests: 1
    queries:
      - sql: SELECT 1
slo:
  - tenant: t
    availability: 0.9
    latency: 5ms
`,
	} {
		if _, err := ParseScenario(src); err == nil {
			t.Errorf("%s: scenario accepted", name)
		}
	}
}

func TestEvaluateSLOs(t *testing.T) {
	// serve.ServerFailureKinds, inlined to keep the package decoupled.
	failureKinds := []string{"admission_timeout", "internal", "unavailable"}
	sc := &Scenario{
		Name:   "x",
		Tenant: "default",
		Steps: []Step{
			{Name: "main"},                        // billed to default
			{Name: "starved", Tenant: "starved"},  // its own tenant
			{Name: "overflow", Tenant: "default"}, // aggregates with main
		},
		SLOs: []SLOSpec{
			{Tenant: "default", Availability: 0.95, P99: 50 * time.Millisecond},
			{Tenant: "starved", Availability: 0.5, MaxBurn: 3},
			{Tenant: "idle", Availability: 0.99},
		},
	}
	res := &Result{Steps: []StepResult{
		// default, step 1: 90 ok, 6 internal (server), 4 query (client).
		{Name: "main", OK: 90,
			ByKind:  map[string]int64{"internal": 6, "query": 4},
			Latency: obs.HistSnapshot{P99: int64(40 * time.Millisecond)}},
		// starved: 5 ok, 5 shed — availability 0.5, burn 1.0 <= 3.
		{Name: "starved", OK: 5,
			ByKind: map[string]int64{"admission_timeout": 5}},
		// default, step 3: clean but slow — trips the p99 objective.
		{Name: "overflow", OK: 100,
			Latency: obs.HistSnapshot{P99: int64(80 * time.Millisecond)}},
	}}

	outs := EvaluateSLOs(sc, res, failureKinds)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}

	// default: 200 requests, 6 failures -> availability 0.97, burn
	// (1-0.97)/(1-0.95) = 0.6 — no availability breach, but the worst
	// step's p99 (80ms) breaks the 50ms objective.
	d := outs[0]
	if d.Tenant != "default" || d.Requests != 200 || d.Failures != 6 {
		t.Fatalf("default outcome = %+v", d)
	}
	if d.Burn < 0.59 || d.Burn > 0.61 {
		t.Errorf("default burn = %v, want 0.6", d.Burn)
	}
	if len(d.Violations) != 1 || !strings.Contains(d.Violations[0], "p99") {
		t.Errorf("default violations = %v, want exactly the p99 breach", d.Violations)
	}

	// starved: availability 0.5 exactly burns at 1.0, under max_burn 3.
	s := outs[1]
	if s.Requests != 10 || s.Failures != 5 || len(s.Violations) != 0 {
		t.Errorf("starved outcome = %+v, want no violations", s)
	}

	// idle tenant with no matching steps: availability 1, burn 0.
	i := outs[2]
	if i.Requests != 0 || i.Availability != 1 || i.Burn != 0 || len(i.Violations) != 0 {
		t.Errorf("idle outcome = %+v", i)
	}

	// Drop the availability floor for default below observed: the burn
	// violation must fire.
	sc.SLOs[0] = SLOSpec{Tenant: "default", Availability: 0.99}
	outs = EvaluateSLOs(sc, res, failureKinds)
	d = outs[0]
	if len(d.Violations) != 1 || !strings.Contains(d.Violations[0], "error-budget burn") {
		t.Errorf("tightened SLO violations = %v, want a burn breach", d.Violations)
	}
	if d.Burn < 2.9 || d.Burn > 3.1 { // (1-0.97)/(1-0.99) = 3
		t.Errorf("tightened burn = %v, want 3.0", d.Burn)
	}
}
