package exec

import (
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// memoCatalog: outer table with heavily duplicated correlation keys.
func memoCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	outer := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "O", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "O", Name: "id", Type: value.KindInt},
	))
	for i := 0; i < 200; i++ {
		outer.Append(relation.Tuple{value.Int(int64(i % 5)), value.Int(int64(i))})
	}
	cat.Register(storage.NewTable("O", outer))
	inner := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "I", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 3; i++ { // keys 0..2 exist, 3..4 do not
		inner.Append(relation.Tuple{value.Int(i)})
	}
	cat.Register(storage.NewTable("I", inner))
	return cat
}

func existsMemoPlan() algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("I", "I"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("I.k"), expr.C("O.k"))},
	}
	return algebra.NewRestrict(algebra.NewScan("O", "O"), algebra.ExistsPred(sub))
}

func TestMemoizationMatchesUncached(t *testing.T) {
	cat := memoCatalog()
	plain := New(cat)
	memo := New(cat)
	memo.MemoizeSubqueries = true
	a := run(t, plain, existsMemoPlan())
	b := run(t, memo, existsMemoPlan())
	if d := a.Diff(b); d != "" {
		t.Errorf("memoized result differs: %s", d)
	}
	// 200 outer rows with 5 distinct keys; keys 0..2 exist → 120 rows.
	if a.Len() != 120 {
		t.Errorf("rows = %d, want 120", a.Len())
	}
}

func TestMemoizationScalarAggregate(t *testing.T) {
	cat := memoCatalog()
	memo := New(cat)
	memo.MemoizeSubqueries = true
	plain := New(cat)
	sub := &algebra.Subquery{
		Source: algebra.NewScan("I", "I"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("I.k"), expr.C("O.k"))},
		Agg:    &agg.Spec{Func: agg.Max, Arg: expr.C("I.k"), As: "m"},
	}
	plan := algebra.NewRestrict(algebra.NewScan("O", "O"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GE, Left: expr.C("O.k"), Sub: sub})
	a := run(t, plain, plan)
	b := run(t, memo, plan)
	if d := a.Diff(b); d != "" {
		t.Errorf("memoized aggregate subquery differs: %s", d)
	}
}

func TestMemoizationNullKeysShareEntry(t *testing.T) {
	cat := storage.NewCatalog()
	outer := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "O", Name: "k", Type: value.KindInt},
	))
	outer.Append(relation.Tuple{value.Null})
	outer.Append(relation.Tuple{value.Null})
	outer.Append(relation.Tuple{value.Int(1)})
	cat.Register(storage.NewTable("O", outer))
	inner := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "I", Name: "k", Type: value.KindInt},
	))
	inner.Append(relation.Tuple{value.Int(1)})
	cat.Register(storage.NewTable("I", inner))

	memo := New(cat)
	memo.MemoizeSubqueries = true
	out := run(t, memo, algebra.NewRestrict(algebra.NewScan("O", "O"),
		algebra.ExistsPred(&algebra.Subquery{
			Source: algebra.NewScan("I", "I"),
			Where:  &algebra.Atom{E: expr.Eq(expr.C("I.k"), expr.C("O.k"))},
		})))
	if out.Len() != 1 || !value.Equal(out.Rows[0][0], value.Int(1)) {
		t.Errorf("NULL keys must not match: %v", out.Rows)
	}
}
