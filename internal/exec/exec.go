// Package exec evaluates logical plans (internal/algebra) against a
// catalog, one operator at a time, materializing intermediate
// relations. It contains:
//
//   - the classical operators (scan, filter, project, distinct, joins
//     with hash acceleration, grouped aggregation),
//   - the dispatch into the GMDJ physical operator (internal/gmdj), and
//   - the native subquery evaluator (subquery.go): tuple-iteration
//     semantics with the vendor-style refinements the paper ascribes to
//     its target DBMS — index lookups, first-match EXISTS, and the
//     early-exit "smart nested loop" for ALL.
package exec

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/gmdj"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// Executor evaluates plans against a catalog.
type Executor struct {
	// Cat supplies base tables.
	Cat *storage.Catalog
	// UseIndexes lets the native subquery evaluator and scans exploit
	// secondary indexes; the paper's unindexed experiment variants set
	// this false (GMDJ plans are unaffected either way).
	UseIndexes bool
	// MemoizeSubqueries caches subquery outcomes per distinct outer
	// correlation binding — Rao & Ross's invariant reuse [23], an
	// optional refinement of the native strategy.
	MemoizeSubqueries bool
	// GMDJWorkers sets parallelism for GMDJ nodes (0/1 = serial).
	GMDJWorkers int
	// GMDJStats, when non-nil, accumulates GMDJ operator counters.
	GMDJStats *gmdj.Stats
}

// New builds an executor with index use enabled.
func New(cat *storage.Catalog) *Executor {
	return &Executor{Cat: cat, UseIndexes: true}
}

// TableSchema implements algebra.SchemaResolver.
func (e *Executor) TableSchema(name string) (*relation.Schema, error) {
	t, err := e.Cat.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Rel.Schema, nil
}

// Run evaluates a plan to a materialized relation.
func (e *Executor) Run(plan algebra.Node) (*relation.Relation, error) {
	return e.eval(plan, emptyEnv())
}

// env carries the outer tuple context for correlated subquery
// evaluation: the concatenated schemas and values of all enclosing
// query blocks.
type env struct {
	schema *relation.Schema
	row    relation.Tuple
}

func emptyEnv() *env {
	return &env{schema: relation.NewSchema(), row: relation.Tuple{}}
}

// extend returns an env with an extra block appended.
func (v *env) extend(s *relation.Schema, row relation.Tuple) *env {
	return &env{schema: v.schema.Concat(s), row: v.row.Concat(row)}
}

func (e *Executor) eval(n algebra.Node, ev *env) (*relation.Relation, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		return e.evalScan(node)
	case *algebra.Raw:
		return node.Rel, nil
	case *algebra.Alias:
		in, err := e.eval(node.Input, ev)
		if err != nil {
			return nil, err
		}
		return in.Rename(node.Name), nil
	case *algebra.Number:
		in, err := e.eval(node.Input, ev)
		if err != nil {
			return nil, err
		}
		cols := append(append([]relation.Column{}, in.Schema.Columns...),
			relation.Column{Name: node.As, Type: value.KindInt})
		out := relation.New(relation.NewSchema(cols...))
		for i, row := range in.Rows {
			out.Append(append(row.Clone(), value.Int(int64(i))))
		}
		return out, nil
	case *algebra.Restrict:
		return e.evalRestrict(node, ev)
	case *algebra.Project:
		return e.evalProject(node, ev)
	case *algebra.Distinct:
		return e.evalDistinct(node, ev)
	case *algebra.Join:
		return e.evalJoin(node, ev)
	case *algebra.GroupBy:
		return e.evalGroupBy(node, ev)
	case *algebra.GMDJ:
		return e.evalGMDJ(node, ev)
	case *algebra.Sort:
		return e.evalSort(node, ev)
	case *algebra.SetOp:
		return e.evalSetOp(node, ev)
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

func (e *Executor) evalScan(s *algebra.Scan) (*relation.Relation, error) {
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	return t.Rel.Rename(s.EffectiveAlias()), nil
}

func (e *Executor) evalRestrict(r *algebra.Restrict, ev *env) (*relation.Relation, error) {
	in, err := e.eval(r.Input, ev)
	if err != nil {
		return nil, err
	}
	cp, err := e.compilePred(r.Where, ev.schema.Concat(in.Schema))
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema)
	full := make(relation.Tuple, len(ev.row)+in.Schema.Len())
	copy(full, ev.row)
	for _, row := range in.Rows {
		copy(full[len(ev.row):], row)
		tr, err := cp.eval(full)
		if err != nil {
			return nil, err
		}
		if tr == value.True { // where-clause truncation
			out.Append(row)
		}
	}
	return out, nil
}

func (e *Executor) evalProject(p *algebra.Project, ev *env) (*relation.Relation, error) {
	in, err := e.eval(p.Input, ev)
	if err != nil {
		return nil, err
	}
	outSchema, err := p.Schema(e)
	if err != nil {
		// Schema inference through resolver can fail for Raw inputs;
		// fall back to inferring from the materialized input.
		outSchema, err = projectSchemaFrom(p, in.Schema)
		if err != nil {
			return nil, err
		}
	}
	bound := make([]expr.Expr, len(p.Items))
	full := ev.schema.Concat(in.Schema)
	for i, it := range p.Items {
		b, err := it.E.Bind(full)
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	out := relation.New(outSchema)
	fullRow := make(relation.Tuple, len(ev.row)+in.Schema.Len())
	copy(fullRow, ev.row)
	seen := map[string]bool{}
	for _, row := range in.Rows {
		copy(fullRow[len(ev.row):], row)
		outRow := make(relation.Tuple, len(bound))
		for i, b := range bound {
			v, err := b.Eval(fullRow)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		if p.Distinct {
			k := outRow.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out.Append(outRow)
	}
	return out, nil
}

// projectSchemaFrom infers a projection schema directly from a
// materialized input schema.
func projectSchemaFrom(p *algebra.Project, in *relation.Schema) (*relation.Schema, error) {
	cols := make([]relation.Column, len(p.Items))
	for i, it := range p.Items {
		if c, ok := it.E.(*expr.Col); ok {
			pos, err := in.Find(c.Qualifier, c.Name)
			if err != nil {
				return nil, err
			}
			col := in.Columns[pos]
			if it.As != "" {
				col = relation.Column{Name: it.As, Type: col.Type}
			}
			cols[i] = col
			continue
		}
		if it.As == "" {
			return nil, fmt.Errorf("exec: computed projection %s requires an alias", it.E)
		}
		cols[i] = relation.Column{Name: it.As, Type: value.KindNull}
	}
	return relation.NewSchema(cols...), nil
}

func (e *Executor) evalDistinct(d *algebra.Distinct, ev *env) (*relation.Relation, error) {
	in, err := e.eval(d.Input, ev)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema)
	seen := map[string]bool{}
	for _, row := range in.Rows {
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Append(row)
	}
	return out, nil
}

func (e *Executor) evalGroupBy(g *algebra.GroupBy, ev *env) (*relation.Relation, error) {
	in, err := e.eval(g.Input, ev)
	if err != nil {
		return nil, err
	}
	keyPos := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		pos, err := in.Schema.Find(k.Qualifier, k.Name)
		if err != nil {
			return nil, err
		}
		keyPos[i] = pos
	}
	specs := make([]agg.Spec, len(g.Aggs))
	for i, s := range g.Aggs {
		b, err := s.Bind(in.Schema)
		if err != nil {
			return nil, err
		}
		specs[i] = b
	}
	type group struct {
		key  relation.Tuple
		accs []agg.Accumulator
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range in.Rows {
		key := make(relation.Tuple, len(keyPos))
		for i, pos := range keyPos {
			key[i] = row[pos]
		}
		ks := key.Key()
		gr, ok := groups[ks]
		if !ok {
			gr = &group{key: key, accs: make([]agg.Accumulator, len(specs))}
			for i, s := range specs {
				gr.accs[i] = agg.NewAccumulator(s)
			}
			groups[ks] = gr
			order = append(order, ks)
		}
		for _, a := range gr.accs {
			if err := a.Add(row); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregation over an empty input still yields one row.
	if len(g.Keys) == 0 && len(order) == 0 {
		gr := &group{key: relation.Tuple{}, accs: make([]agg.Accumulator, len(specs))}
		for i, s := range specs {
			gr.accs[i] = agg.NewAccumulator(s)
		}
		groups[""] = gr
		order = append(order, "")
	}
	outCols := make([]relation.Column, 0, len(keyPos)+len(specs))
	for _, pos := range keyPos {
		outCols = append(outCols, in.Schema.Columns[pos])
	}
	outCols = append(outCols, agg.OutputSchema(g.Aggs, "")...)
	out := relation.New(relation.NewSchema(outCols...))
	for _, ks := range order {
		gr := groups[ks]
		row := make(relation.Tuple, 0, len(outCols))
		row = append(row, gr.key...)
		for _, a := range gr.accs {
			row = append(row, a.Result())
		}
		out.Append(row)
	}
	return out, nil
}

func (e *Executor) evalGMDJ(g *algebra.GMDJ, ev *env) (*relation.Relation, error) {
	base, err := e.eval(g.Base, ev)
	if err != nil {
		return nil, err
	}
	detail, err := e.eval(g.Detail, ev)
	if err != nil {
		return nil, err
	}
	return gmdj.Evaluate(base, detail, g.Conds, gmdj.Options{
		Completion: g.Completion,
		Workers:    e.GMDJWorkers,
		Stats:      e.GMDJStats,
	})
}
