// Package exec evaluates logical plans (internal/algebra) against a
// catalog, one operator at a time, materializing intermediate
// relations. It contains:
//
//   - the classical operators (scan, filter, project, distinct, joins
//     with hash acceleration, grouped aggregation),
//   - the dispatch into the GMDJ physical operator (internal/gmdj), and
//   - the native subquery evaluator (subquery.go): tuple-iteration
//     semantics with the vendor-style refinements the paper ascribes to
//     its target DBMS — index lookups, first-match EXISTS, and the
//     early-exit "smart nested loop" for ALL.
package exec

import (
	"fmt"
	"runtime/debug"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/plancache"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// Executor evaluates plans against a catalog.
type Executor struct {
	// Cat supplies base tables.
	Cat *storage.Catalog
	// UseIndexes lets the native subquery evaluator and scans exploit
	// secondary indexes; the paper's unindexed experiment variants set
	// this false (GMDJ plans are unaffected either way).
	UseIndexes bool
	// MemoizeSubqueries caches subquery outcomes per distinct outer
	// correlation binding — Rao & Ross's invariant reuse [23], an
	// optional refinement of the native strategy.
	MemoizeSubqueries bool
	// Parallelism is the morsel-driven degree: how many workers each
	// parallel operator pipeline may use (table-scan morsels through
	// filters and projections, hash-join build and probe, GMDJ detail
	// scans). 0 and 1 mean serial. Operators clamp further so small
	// inputs never pay goroutine overhead (see pipelineWorkers).
	Parallelism int
	// GMDJStats, when non-nil, accumulates GMDJ operator counters.
	GMDJStats *gmdj.Stats
	// Faults injects deterministic failures at named operator sites
	// (nil = no injection). Set once at engine construction; read-only
	// during evaluation, so concurrent queries are safe.
	Faults *govern.Injector
	// Results, when non-nil, is the engine-level cross-query memo:
	// uncorrelated subquery source materializations and GMDJ
	// detail-side hash partitions are published to it under keys that
	// embed each dependency table's id@version, so entries computed
	// before a write are unreachable afterwards (see internal/plancache).
	Results *plancache.ResultCache
	// Spill, when non-nil, is the engine's file-backed store for
	// operator state evicted under memory pressure; GMDJ nodes use it
	// to spill base partitions when the query reservation (carried by
	// the governor) is exhausted. Nil keeps the pre-spill behavior:
	// reservation exhaustion is a hard memory-budget error.
	Spill *spill.Store
}

// New builds an executor with index use enabled.
func New(cat *storage.Catalog) *Executor {
	return &Executor{Cat: cat, UseIndexes: true}
}

// TableSchema implements algebra.SchemaResolver.
func (e *Executor) TableSchema(name string) (*relation.Schema, error) {
	t, err := e.Cat.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Rel.Schema, nil
}

// Run evaluates a plan to a materialized relation, ungoverned.
func (e *Executor) Run(plan algebra.Node) (*relation.Relation, error) {
	return e.RunGoverned(plan, nil)
}

// RunGoverned evaluates a plan under a per-query governor (nil = no
// budgets, no cancellation), without statistics collection.
func (e *Executor) RunGoverned(plan algebra.Node, gov *govern.Governor) (*relation.Relation, error) {
	return e.RunObserved(plan, gov, nil)
}

// RunObserved evaluates a plan under a per-query governor and an
// optional statistics collector (nil = the governed fast path; every
// observability hook is then one nil check). It is the engine's panic
// boundary: an operator panic is recovered here and converted into a
// typed *govern.InternalError carrying the plan node under evaluation,
// so a buggy or injected-fault operator aborts the query, not the
// process. (Parallel GMDJ workers recover on their own goroutines and
// feed the same taxonomy.)
func (e *Executor) RunObserved(plan algebra.Node, gov *govern.Governor, col *obs.Collector) (*relation.Relation, error) {
	return e.RunLive(plan, gov, col, nil)
}

// RunLive is RunObserved plus a live-registry entry (nil = none):
// operator loops bump its row/byte/scan counters as they materialize
// output, which is what the /debug/olap/queries dashboard reads while
// the query is still running.
func (e *Executor) RunLive(plan algebra.Node, gov *govern.Governor, col *obs.Collector, live *obs.LiveQuery) (out *relation.Relation, err error) {
	q := &query{gov: gov, faults: e.Faults, col: col, live: live}
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &govern.InternalError{Panic: r, Node: fmt.Sprintf("%T", q.node), Stack: debug.Stack()}
		}
		// Release operator memory charges even when evaluation unwound
		// through a panic or an abort — the reservation outlives this
		// call (the engine releases it), so leaked charges would starve
		// the next operator of the same query... and the trackers are
		// the only record of what was charged.
		for _, t := range q.trackers {
			t.Release()
		}
		// Flush per-query totals into the process metrics regardless of
		// outcome: partial work is still work done.
		obs.MetricAdd("rows_scanned", q.scanned)
		obs.MetricAdd("gmdj.detail_rows", q.gstats.DetailRows)
		obs.MetricAdd("gmdj.probes", q.gstats.Probes)
		obs.MetricAdd("gmdj.matches", q.gstats.Matches)
		obs.MetricAdd("gmdj.completed", q.gstats.Completed)
		obs.MetricAdd("gmdj.spill_partitions", q.gstats.SpillPartitions)
		obs.MetricAdd("gmdj.spill_bytes_written", q.gstats.SpillBytesWritten)
		obs.MetricAdd("gmdj.extra_detail_scans", q.gstats.ExtraDetailScans)
	}()
	if err := gov.Check(); err != nil {
		return nil, err
	}
	return e.eval(plan, newEnv(q))
}

// query is the per-run state shared by every operator of one
// evaluation: the budget governor, the fault injector, the optional
// stats collector, per-query metric accumulators, and the most
// recently entered plan node (recorded so a recovered panic can report
// where it fired).
type query struct {
	gov    *govern.Governor
	faults *govern.Injector
	col    *obs.Collector
	live   *obs.LiveQuery
	node   algebra.Node
	// scanned totals base-table rows produced by Scan operators; gstats
	// totals GMDJ operator counters. Both are flushed to the process
	// metrics once per query.
	scanned int64
	gstats  gmdj.Stats
	// trackers collects the per-operator memory trackers handed out
	// during this evaluation so RunLive can release their charges even
	// when an operator aborts or panics mid-flight.
	trackers []*mem.Tracker
}

// tracker derives a named per-operator tracker from the query's
// reservation (carried by the governor) and registers it for release at
// the end of the run. The nil-safe chain means ungoverned or
// unreserved queries get a nil tracker, i.e. unlimited.
func (q *query) tracker(name string) *mem.Tracker {
	if q == nil {
		return nil
	}
	t := q.gov.Reservation().Tracker(name)
	if t != nil {
		q.trackers = append(q.trackers, t)
	}
	return t
}

// tick is the cooperative cancellation check for operator row loops.
func (q *query) tick() error {
	if q == nil {
		return nil
	}
	return q.gov.Tick()
}

// account charges one materialized row against the query budgets and
// bumps the live progress counters. Ungoverned, unobserved queries
// (both nil) pay two nil checks.
func (q *query) account(row relation.Tuple) error {
	if q == nil || (q.gov == nil && q.live == nil) {
		return nil
	}
	bytes := row.ApproxBytes()
	q.live.AddOut(1, bytes)
	if q.gov == nil {
		return nil
	}
	return q.gov.AccountAppend(1, bytes)
}

// fire triggers any injected fault at a named operator site, recording
// an instant trace event when one fires.
func (q *query) fire(site string) error {
	if q == nil {
		return nil
	}
	err := q.faults.Fire(site, q.gov)
	if err != nil {
		q.col.Instant("fault", site, err.Error())
	}
	return err
}

// env carries the outer tuple context for correlated subquery
// evaluation — the concatenated schemas and values of all enclosing
// query blocks — plus the per-run governance state.
type env struct {
	schema *relation.Schema
	row    relation.Tuple
	q      *query
}

func newEnv(q *query) *env {
	return &env{schema: relation.NewSchema(), row: relation.Tuple{}, q: q}
}

// extend returns an env with an extra block appended.
func (v *env) extend(s *relation.Schema, row relation.Tuple) *env {
	return &env{schema: v.schema.Concat(s), row: v.row.Concat(row), q: v.q}
}

// eval dispatches one plan node, wrapping it in a stats-tree node when
// a collector is attached. The nil-collector path adds a single branch
// over the seed executor, so disabled observability stays free.
func (e *Executor) eval(n algebra.Node, ev *env) (*relation.Relation, error) {
	if ev.q.col == nil {
		return e.evalNode(n, ev)
	}
	label, extras := algebra.Describe(n)
	op := ev.q.col.Enter(label, extras...)
	out, err := e.evalNode(n, ev)
	var rows, bytes int64
	if out != nil {
		rows = int64(out.Len())
		if rows > 0 {
			// Approximate: first-row footprint × cardinality, so the hook
			// stays O(1) per operator instead of O(rows).
			bytes = out.Rows[0].ApproxBytes() * rows
		}
	}
	ev.q.col.Exit(op, rows, bytes, err)
	return out, err
}

func (e *Executor) evalNode(n algebra.Node, ev *env) (*relation.Relation, error) {
	ev.q.node = n // best-effort locus for panic reports
	switch node := n.(type) {
	case *algebra.Scan:
		return e.evalScan(node, ev)
	case *algebra.Raw:
		return node.Rel, nil
	case *algebra.Alias:
		in, err := e.eval(node.Input, ev)
		if err != nil {
			return nil, err
		}
		return in.Rename(node.Name), nil
	case *algebra.Number:
		in, err := e.eval(node.Input, ev)
		if err != nil {
			return nil, err
		}
		ev.q.node = node
		if err := ev.q.fire("exec.number"); err != nil {
			return nil, err
		}
		cols := append(append([]relation.Column{}, in.Schema.Columns...),
			relation.Column{Name: node.As, Type: value.KindInt})
		out := relation.New(relation.NewSchema(cols...))
		// Row numbering is ordinal by definition, so the pipeline stays
		// serial: one batch cursor, numbered in arrival order.
		it := relIter(in)
		for i := 0; ; i++ {
			row, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := ev.q.tick(); err != nil {
				return nil, err
			}
			numbered := append(row.Clone(), value.Int(int64(i)))
			if err := ev.q.account(numbered); err != nil {
				return nil, err
			}
			out.Append(numbered)
		}
		ev.q.recordPipe(pipeInfo{workers: 1, batches: it.batches})
		return out, nil
	case *algebra.Restrict:
		return e.evalRestrict(node, ev)
	case *algebra.Project:
		return e.evalProject(node, ev)
	case *algebra.Distinct:
		return e.evalDistinct(node, ev)
	case *algebra.Join:
		return e.evalJoin(node, ev)
	case *algebra.GroupBy:
		return e.evalGroupBy(node, ev)
	case *algebra.GMDJ:
		return e.evalGMDJ(node, ev)
	case *algebra.Sort:
		return e.evalSort(node, ev)
	case *algebra.SetOp:
		return e.evalSetOp(node, ev)
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// evalScan returns the base table under its alias. Scan output shares
// the stored rows (renaming is metadata-only), so nothing is charged
// against the materialization budgets here.
func (e *Executor) evalScan(s *algebra.Scan, ev *env) (*relation.Relation, error) {
	if err := ev.q.fire("exec.scan"); err != nil {
		return nil, err
	}
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// A quarantined table (its durable segment failed verification at
	// recovery) refuses queries with the typed corruption error instead
	// of serving rows that never matched the committed bytes.
	if err := t.CheckQuarantine(); err != nil {
		return nil, err
	}
	ev.q.scanned += int64(t.Rel.Len())
	ev.q.live.AddScanned(int64(t.Rel.Len()))
	return t.Rel.Rename(s.EffectiveAlias()), nil
}

func (e *Executor) evalRestrict(r *algebra.Restrict, ev *env) (*relation.Relation, error) {
	in, err := e.eval(r.Input, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = r
	if err := ev.q.fire("exec.restrict"); err != nil {
		return nil, err
	}
	cp, err := e.compilePred(r.Where, ev.schema.Concat(in.Schema), ev.q)
	if err != nil {
		return nil, err
	}
	in = e.pruneScanInput(r, in, ev)
	workers := e.pipelineWorkers(in.Len())
	if predHasSub(cp) {
		// Subquery predicates carry per-query mutable state (the
		// memoization table, result-cache plumbing) that is not safe off
		// the query goroutine, so they keep the serial pipeline.
		workers = 1
	}
	// One scan→filter pipeline per worker; workers pull morsels and
	// buffer passing rows per morsel index, so concatenating the
	// buffers in order reproduces the serial emit order exactly.
	type wstate struct {
		src   *relSource
		f     *filterOp
		batch *relation.Batch
	}
	states := make([]*wstate, workers)
	for w := range states {
		full := make(relation.Tuple, len(ev.row)+in.Schema.Len())
		copy(full, ev.row)
		src := newRelSource(in, 0, 0)
		states[w] = &wstate{
			src:   src,
			f:     &filterOp{child: src, pred: cp, full: full, prefixW: len(ev.row), q: ev.q},
			batch: relation.NewBatch(in.Schema, relation.DefaultBatchCap),
		}
	}
	outs := make([][]relation.Tuple, morselCount(in.Len()))
	used, err := runMorsels(in.Len(), workers, func(w, m, lo, hi int) error {
		st := states[w]
		st.src.reset(lo, hi)
		for {
			if err := st.f.NextBatch(st.batch); err != nil {
				return err
			}
			if st.batch.Len() == 0 {
				return nil
			}
			outs[m] = append(outs[m], st.batch.Rows()...)
		}
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema)
	for _, rows := range outs {
		out.Rows = append(out.Rows, rows...)
	}
	var batches int64
	for _, st := range states {
		batches += st.src.batches
	}
	ev.q.recordPipe(pipeInfo{workers: used, batches: batches})
	return out, nil
}

// predHasSub reports whether a compiled predicate contains a subquery
// predicate anywhere — the marker that pins its pipeline to the query
// goroutine.
func predHasSub(p compiledPred) bool {
	switch c := p.(type) {
	case *cpAtom:
		return false
	case *cpAnd:
		for _, t := range c.terms {
			if predHasSub(t) {
				return true
			}
		}
		return false
	case *cpOr:
		for _, t := range c.terms {
			if predHasSub(t) {
				return true
			}
		}
		return false
	case *cpNot:
		return predHasSub(c.p)
	default:
		return true // *cpSub and anything unknown: be conservative
	}
}

func (e *Executor) evalProject(p *algebra.Project, ev *env) (*relation.Relation, error) {
	in, err := e.eval(p.Input, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = p
	if err := ev.q.fire("exec.project"); err != nil {
		return nil, err
	}
	outSchema, err := p.Schema(e)
	if err != nil {
		// Schema inference through resolver can fail for Raw inputs;
		// fall back to inferring from the materialized input.
		outSchema, err = projectSchemaFrom(p, in.Schema)
		if err != nil {
			return nil, err
		}
	}
	bound := make([]expr.Expr, len(p.Items))
	full := ev.schema.Concat(in.Schema)
	for i, it := range p.Items {
		b, err := it.E.Bind(full)
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	out := relation.New(outSchema)
	if p.Distinct {
		// Distinct projection folds rows into first-seen order — a
		// serial consumer, fed through the batch adapter.
		it := relIter(in)
		fullRow := make(relation.Tuple, len(ev.row)+in.Schema.Len())
		copy(fullRow, ev.row)
		seen := map[string]bool{}
		for {
			row, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := ev.q.tick(); err != nil {
				return nil, err
			}
			copy(fullRow[len(ev.row):], row)
			outRow := make(relation.Tuple, len(bound))
			for i, b := range bound {
				v, err := b.Eval(fullRow)
				if err != nil {
					return nil, err
				}
				outRow[i] = v
			}
			k := outRow.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := ev.q.account(outRow); err != nil {
				return nil, err
			}
			out.Append(outRow)
		}
		ev.q.recordPipe(pipeInfo{workers: 1, batches: it.batches})
		return out, nil
	}
	// Non-distinct projection is embarrassingly parallel: bound
	// expression trees are immutable, so workers share them and differ
	// only in scratch (input batch, concatenated outer row).
	workers := e.pipelineWorkers(in.Len())
	type wstate struct {
		src   *relSource
		op    *projectOp
		batch *relation.Batch
	}
	states := make([]*wstate, workers)
	for w := range states {
		full := make(relation.Tuple, len(ev.row)+in.Schema.Len())
		copy(full, ev.row)
		src := newRelSource(in, 0, 0)
		states[w] = &wstate{
			src: src,
			op: &projectOp{
				child: src, schema: outSchema, bound: bound,
				in:      relation.NewBatch(in.Schema, relation.DefaultBatchCap),
				full:    full,
				prefixW: len(ev.row),
				q:       ev.q,
			},
			batch: relation.NewBatch(outSchema, relation.DefaultBatchCap),
		}
	}
	outs := make([][]relation.Tuple, morselCount(in.Len()))
	used, err := runMorsels(in.Len(), workers, func(w, m, lo, hi int) error {
		st := states[w]
		st.src.reset(lo, hi)
		for {
			if err := st.op.NextBatch(st.batch); err != nil {
				return err
			}
			if st.batch.Len() == 0 {
				return nil
			}
			outs[m] = append(outs[m], st.batch.Rows()...)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range outs {
		out.Rows = append(out.Rows, rows...)
	}
	var batches int64
	for _, st := range states {
		batches += st.src.batches
	}
	ev.q.recordPipe(pipeInfo{workers: used, batches: batches})
	return out, nil
}

// projectSchemaFrom infers a projection schema directly from a
// materialized input schema.
func projectSchemaFrom(p *algebra.Project, in *relation.Schema) (*relation.Schema, error) {
	cols := make([]relation.Column, len(p.Items))
	for i, it := range p.Items {
		if c, ok := it.E.(*expr.Col); ok {
			pos, err := in.Find(c.Qualifier, c.Name)
			if err != nil {
				return nil, err
			}
			col := in.Columns[pos]
			if it.As != "" {
				col = relation.Column{Name: it.As, Type: col.Type}
			}
			cols[i] = col
			continue
		}
		if it.As == "" {
			return nil, fmt.Errorf("exec: computed projection %s requires an alias", it.E)
		}
		cols[i] = relation.Column{Name: it.As, Type: value.KindNull}
	}
	return relation.NewSchema(cols...), nil
}

func (e *Executor) evalDistinct(d *algebra.Distinct, ev *env) (*relation.Relation, error) {
	in, err := e.eval(d.Input, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = d
	if err := ev.q.fire("exec.distinct"); err != nil {
		return nil, err
	}
	out := relation.New(in.Schema)
	seen := map[string]bool{}
	// Duplicate elimination keeps first-seen order — a serial fold over
	// the batch stream.
	it := relIter(in)
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := ev.q.tick(); err != nil {
			return nil, err
		}
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := ev.q.account(row); err != nil {
			return nil, err
		}
		out.Append(row)
	}
	ev.q.recordPipe(pipeInfo{workers: 1, batches: it.batches})
	return out, nil
}

func (e *Executor) evalGroupBy(g *algebra.GroupBy, ev *env) (*relation.Relation, error) {
	in, err := e.eval(g.Input, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = g
	if err := ev.q.fire("exec.groupby"); err != nil {
		return nil, err
	}
	keyPos := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		pos, err := in.Schema.Find(k.Qualifier, k.Name)
		if err != nil {
			return nil, err
		}
		keyPos[i] = pos
	}
	specs := make([]agg.Spec, len(g.Aggs))
	for i, s := range g.Aggs {
		b, err := s.Bind(in.Schema)
		if err != nil {
			return nil, err
		}
		specs[i] = b
	}
	type group struct {
		key  relation.Tuple
		accs []agg.Accumulator
	}
	groups := map[string]*group{}
	var order []string
	// Grouped aggregation folds into hash state in arrival order — a
	// serial consumer over the batch stream.
	it := relIter(in)
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := ev.q.tick(); err != nil {
			return nil, err
		}
		key := make(relation.Tuple, len(keyPos))
		for i, pos := range keyPos {
			key[i] = row[pos]
		}
		ks := key.Key()
		gr, ok := groups[ks]
		if !ok {
			gr = &group{key: key, accs: make([]agg.Accumulator, len(specs))}
			for i, s := range specs {
				gr.accs[i] = agg.NewAccumulator(s)
			}
			groups[ks] = gr
			order = append(order, ks)
		}
		for _, a := range gr.accs {
			if err := a.Add(row); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregation over an empty input still yields one row.
	if len(g.Keys) == 0 && len(order) == 0 {
		gr := &group{key: relation.Tuple{}, accs: make([]agg.Accumulator, len(specs))}
		for i, s := range specs {
			gr.accs[i] = agg.NewAccumulator(s)
		}
		groups[""] = gr
		order = append(order, "")
	}
	outCols := make([]relation.Column, 0, len(keyPos)+len(specs))
	for _, pos := range keyPos {
		outCols = append(outCols, in.Schema.Columns[pos])
	}
	outCols = append(outCols, agg.OutputSchema(g.Aggs, "")...)
	out := relation.New(relation.NewSchema(outCols...))
	for _, ks := range order {
		gr := groups[ks]
		row := make(relation.Tuple, 0, len(outCols))
		row = append(row, gr.key...)
		for _, a := range gr.accs {
			row = append(row, a.Result())
		}
		if err := ev.q.account(row); err != nil {
			return nil, err
		}
		out.Append(row)
	}
	ev.q.recordPipe(pipeInfo{workers: 1, batches: it.batches})
	return out, nil
}

func (e *Executor) evalGMDJ(g *algebra.GMDJ, ev *env) (*relation.Relation, error) {
	base, err := e.eval(g.Base, ev)
	if err != nil {
		return nil, err
	}
	detail, err := e.eval(g.Detail, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = g
	// Collect this operator's counters separately so the stats tree can
	// attribute them to this GMDJ node, then fold them into the
	// per-query totals.
	var local gmdj.Stats
	opts := gmdj.Options{
		Completion: g.Completion,
		Workers:    e.Parallelism,
		Stats:      &local,
		Gov:        ev.q.gov,
		Faults:     ev.q.faults,
		Tracer:     ev.q.col.Tracer(),
		Live:       ev.q.live,
		Mem:        ev.q.tracker("gmdj"),
		Spill:      e.Spill,
	}
	// Cross-query hash-partition reuse and packed-column hashing are
	// sound only when the detail relation IS a base table (a bare scan
	// shares the table's row slice, so row positions and versions line
	// up); any operator in between produces a fresh derived relation
	// per query. The PackedHash closure is lazy — the columnar segment
	// is only built (or fetched from the per-version cache) when the
	// evaluator actually needs a hash vector the cross-query cache
	// cannot supply.
	if s, ok := g.Detail.(*algebra.Scan); ok {
		if t, err := e.Cat.Table(s.Table); err == nil {
			if e.Results != nil {
				opts.HashCache = e.Results
				opts.DetailID = plancache.EpochTag(s.Table, t.ID(), t.Version())
			}
			opts.PackedHash = func(key []int) ([]uint64, []bool) {
				return t.Segment().KeyHashes(key)
			}
		}
	}
	out, err := gmdj.Evaluate(base, detail, g.Conds, opts)
	ev.q.gstats.Merge(&local)
	if e.GMDJStats != nil {
		e.GMDJStats.Merge(&local)
	}
	if op := ev.q.col.Current(); op != nil {
		workers := int64(len(local.WorkerRows))
		if workers == 0 {
			workers = 1 // serial scan (or partitioned serial scans)
		}
		op.Add("workers", workers)
		op.Add("batches", local.Batches)
		op.Add("detail_rows", local.DetailRows)
		op.Add("probes", local.Probes)
		op.Add("matches", local.Matches)
		op.Add("completed", local.Completed)
		op.Add("short_circuit_rows", local.ShortCircuitRows)
		op.Add("fallback_conds", int64(local.FallbackConds))
		if local.HashCacheHits+local.HashCacheMisses > 0 {
			op.Add("hash_cache_hits", local.HashCacheHits)
			op.Add("hash_cache_misses", local.HashCacheMisses)
		}
		if local.PackedHashConds > 0 {
			op.Add("packed_hash_conds", local.PackedHashConds)
		}
		if local.SpillPartitions > 0 {
			op.Add("spill_partitions", local.SpillPartitions)
			op.Add("spill_bytes_written", local.SpillBytesWritten)
			op.Add("spill_bytes_read", local.SpillBytesRead)
			op.Add("extra_detail_scans", local.ExtraDetailScans)
		}
		for w, rows := range local.WorkerRows {
			op.Add(fmt.Sprintf("worker%d_rows", w), rows)
		}
	}
	return out, err
}
