package exec

import (
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

func sortCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	r := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "T", Name: "a", Type: value.KindInt},
		relation.Column{Qualifier: "T", Name: "b", Type: value.KindString},
	))
	rows := []struct {
		a value.Value
		b string
	}{
		{value.Int(3), "x"}, {value.Int(1), "y"}, {value.Null, "z"},
		{value.Int(2), "x"}, {value.Int(1), "x"},
	}
	for _, row := range rows {
		r.Append(relation.Tuple{row.a, value.Str(row.b)})
	}
	cat.Register(storage.NewTable("T", r))
	return cat
}

func TestSortAscendingNullsFirst(t *testing.T) {
	e := New(sortCatalog())
	out := run(t, e, algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{{E: expr.C("T.a")}}, -1))
	if !out.Rows[0][0].IsNull() {
		t.Errorf("NULL should sort first ascending: %v", out.Rows)
	}
	var prev int64 = -1 << 62
	for _, row := range out.Rows[1:] {
		v := row[0].AsInt()
		if v < prev {
			t.Fatalf("ascending order violated: %v", out.Rows)
		}
		prev = v
	}
}

func TestSortDescendingNullsLast(t *testing.T) {
	e := New(sortCatalog())
	out := run(t, e, algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{{E: expr.C("T.a"), Desc: true}}, -1))
	if !out.Rows[len(out.Rows)-1][0].IsNull() {
		t.Errorf("NULL should sort last descending: %v", out.Rows)
	}
	if out.Rows[0][0].AsInt() != 3 {
		t.Errorf("descending should start at 3: %v", out.Rows)
	}
}

func TestSortSecondaryKeyAndStability(t *testing.T) {
	e := New(sortCatalog())
	out := run(t, e, algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{
			{E: expr.C("T.b")},
			{E: expr.C("T.a"), Desc: true},
		}, -1))
	// b groups: x,x,x then y then z; within x: a = 3,2,1.
	if out.Rows[0][0].AsInt() != 3 || out.Rows[1][0].AsInt() != 2 || out.Rows[2][0].AsInt() != 1 {
		t.Errorf("secondary key order wrong: %v", out.Rows)
	}
}

func TestSortLimit(t *testing.T) {
	e := New(sortCatalog())
	out := run(t, e, algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{{E: expr.C("T.a"), Desc: true}}, 2))
	if out.Len() != 2 {
		t.Errorf("limit 2 gave %d rows", out.Len())
	}
	// Limit 0 and limit beyond size.
	out = run(t, e, algebra.NewSort(algebra.NewScan("T", "T"), nil, 0))
	if out.Len() != 0 {
		t.Errorf("limit 0 gave %d rows", out.Len())
	}
	out = run(t, e, algebra.NewSort(algebra.NewScan("T", "T"), nil, 99))
	if out.Len() != 5 {
		t.Errorf("limit 99 gave %d rows", out.Len())
	}
}

func TestSortByExpression(t *testing.T) {
	e := New(sortCatalog())
	out := run(t, e, algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{{E: expr.NewArith(expr.OpMul, expr.C("T.a"), expr.IntLit(-1))}}, -1))
	// -a ascending = a descending (NULL*-1 = NULL, still first).
	if !out.Rows[0][0].IsNull() || out.Rows[1][0].AsInt() != 3 {
		t.Errorf("expression sort wrong: %v", out.Rows)
	}
}

func TestSortErrorsOnBadKey(t *testing.T) {
	e := New(sortCatalog())
	_, err := e.Run(algebra.NewSort(algebra.NewScan("T", "T"),
		[]algebra.SortKey{{E: expr.C("T.missing")}}, -1))
	if err == nil {
		t.Error("unknown sort key must error")
	}
}
