package exec

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// testCatalog builds the paper's netflow schema with small data.
//
// Flow rows: (SourceIP, DestIP, StartTime, Protocol, NumBytes)
// Hours rows: (HourDsc, StartInterval, EndInterval)
func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()

	flow := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Flow", Name: "SourceIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "DestIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "StartTime", Type: value.KindInt},
		relation.Column{Qualifier: "Flow", Name: "Protocol", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "NumBytes", Type: value.KindInt},
	))
	rows := []struct {
		src, dst string
		t        int64
		proto    string
		n        int64
	}{
		{"10.0.0.1", "167.167.167.0", 43, "HTTP", 12},
		{"10.0.0.2", "168.168.168.0", 86, "HTTP", 36},
		{"10.0.0.1", "10.0.0.2", 99, "FTP", 48},
		{"10.0.0.3", "168.168.168.0", 132, "HTTP", 24},
		{"10.0.0.2", "10.0.0.1", 156, "HTTP", 24},
		{"10.0.0.3", "169.169.169.0", 161, "FTP", 48},
	}
	for _, r := range rows {
		flow.Append(relation.Tuple{
			value.Str(r.src), value.Str(r.dst), value.Int(r.t), value.Str(r.proto), value.Int(r.n),
		})
	}
	cat.Register(storage.NewTable("Flow", flow))

	hours := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Hours", Name: "HourDsc", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "StartInterval", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "EndInterval", Type: value.KindInt},
	))
	hours.Append(relation.Tuple{value.Int(1), value.Int(0), value.Int(60)})
	hours.Append(relation.Tuple{value.Int(2), value.Int(61), value.Int(120)})
	hours.Append(relation.Tuple{value.Int(3), value.Int(121), value.Int(180)})
	cat.Register(storage.NewTable("Hours", hours))

	nums := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Nums", Name: "n", Type: value.KindInt},
	))
	for _, v := range []value.Value{value.Int(1), value.Int(2), value.Int(3), value.Null} {
		nums.Append(relation.Tuple{v})
	}
	cat.Register(storage.NewTable("Nums", nums))

	return cat
}

func run(t *testing.T, e *Executor, plan algebra.Node) *relation.Relation {
	t.Helper()
	out, err := e.Run(plan)
	if err != nil {
		t.Fatalf("Run(%s): %v", plan, err)
	}
	return out
}

func TestScanRename(t *testing.T) {
	e := New(testCatalog())
	out := run(t, e, algebra.NewScan("Flow", "F"))
	if out.Len() != 6 {
		t.Errorf("rows = %d", out.Len())
	}
	if out.Schema.Columns[0].Qualifier != "F" {
		t.Errorf("qualifier = %q", out.Schema.Columns[0].Qualifier)
	}
	if _, err := e.Run(algebra.NewScan("Missing", "")); err == nil {
		t.Error("unknown table must error")
	}
}

func TestFilterTruncatesUnknown(t *testing.T) {
	e := New(testCatalog())
	// n > 1 over {1,2,3,NULL}: keeps 2,3; NULL row is Unknown → dropped.
	out := run(t, e, algebra.Filter(
		algebra.NewScan("Nums", "N"),
		expr.NewCmp(value.GT, expr.C("N.n"), expr.IntLit(1)),
	))
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2 (where-clause truncation)", out.Len())
	}
}

func TestProjectDistinctAndComputed(t *testing.T) {
	e := New(testCatalog())
	out := run(t, e, algebra.ProjectCols(algebra.NewScan("Flow", "F"), true, "F.SourceIP"))
	if out.Len() != 3 {
		t.Errorf("distinct sources = %d, want 3", out.Len())
	}
	out = run(t, e, algebra.NewProject(algebra.NewScan("Flow", "F"), false,
		algebra.ProjItem{E: expr.NewArith(expr.OpMul, expr.C("F.NumBytes"), expr.IntLit(2)), As: "dbl"},
	))
	if out.Rows[0][0].AsInt() != 24 {
		t.Errorf("computed = %v", out.Rows[0][0])
	}
}

func TestDistinctNode(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewDistinct(algebra.ProjectCols(algebra.NewScan("Flow", "F"), false, "F.Protocol"))
	out := run(t, e, plan)
	if out.Len() != 2 {
		t.Errorf("distinct protocols = %d, want 2", out.Len())
	}
}

func TestInnerHashJoin(t *testing.T) {
	e := New(testCatalog())
	// Self-join Flow on SourceIP = DestIP: pairs where someone's source
	// is another's destination.
	plan := algebra.NewJoin(algebra.InnerJoin,
		algebra.NewScan("Flow", "A"), algebra.NewScan("Flow", "B"),
		expr.Eq(expr.C("A.SourceIP"), expr.C("B.DestIP")))
	out := run(t, e, plan)
	// DestIPs 10.0.0.2 (1 row) and 10.0.0.1 (1 row): sources 10.0.0.2
	// appears twice, 10.0.0.1 twice → 2*1 + 2*1 = 4 pairs.
	if out.Len() != 4 {
		t.Errorf("join rows = %d, want 4", out.Len())
	}
	if out.Schema.Len() != 10 {
		t.Errorf("join width = %d", out.Schema.Len())
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewJoin(algebra.InnerJoin,
		algebra.NewScan("Hours", "H1"), algebra.NewScan("Hours", "H2"),
		expr.NewCmp(value.LT, expr.C("H1.HourDsc"), expr.C("H2.HourDsc")))
	out := run(t, e, plan)
	if out.Len() != 3 { // (1,2),(1,3),(2,3)
		t.Errorf("rows = %d, want 3", out.Len())
	}
}

func TestLeftOuterJoinPadsNulls(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewJoin(algebra.LeftOuterJoin,
		algebra.NewScan("Hours", "H"), algebra.NewScan("Flow", "F"),
		expr.NewAnd(
			expr.Eq(expr.C("F.Protocol"), expr.StrLit("FTP")),
			expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
		))
	out := run(t, e, plan)
	// FTP flows at 99 (hour 2) and 161 (hour 3); hour 1 unmatched → padded.
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
	var padded int
	for _, row := range out.Rows {
		if row[3].IsNull() {
			padded++
			if row[0].AsInt() != 1 {
				t.Errorf("padded row for hour %v, want hour 1", row[0])
			}
		}
	}
	if padded != 1 {
		t.Errorf("padded rows = %d, want 1", padded)
	}
}

func TestSemiAntiJoin(t *testing.T) {
	e := New(testCatalog())
	on := expr.NewAnd(
		expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
		expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
		expr.Eq(expr.C("F.Protocol"), expr.StrLit("FTP")),
	)
	semi := run(t, e, algebra.NewJoin(algebra.SemiJoin,
		algebra.NewScan("Hours", "H"), algebra.NewScan("Flow", "F"), on))
	if semi.Len() != 2 {
		t.Errorf("semi rows = %d, want 2 (hours with FTP traffic)", semi.Len())
	}
	anti := run(t, e, algebra.NewJoin(algebra.AntiJoin,
		algebra.NewScan("Hours", "H"), algebra.NewScan("Flow", "F"), on))
	if anti.Len() != 1 {
		t.Errorf("anti rows = %d, want 1", anti.Len())
	}
	if semi.Schema.Len() != 3 || anti.Schema.Len() != 3 {
		t.Error("semi/anti must keep the left schema")
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewJoin(algebra.InnerJoin,
		algebra.NewScan("Nums", "A"), algebra.NewScan("Nums", "B"),
		expr.Eq(expr.C("A.n"), expr.C("B.n")))
	out := run(t, e, plan)
	if out.Len() != 3 {
		t.Errorf("rows = %d, want 3 (NULL=NULL must not match)", out.Len())
	}
}

func TestGroupBy(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewGroupBy(algebra.NewScan("Flow", "F"),
		[]*expr.Col{expr.C("F.SourceIP")},
		[]agg.Spec{
			{Func: agg.CountStar, As: "cnt"},
			{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "bytes"},
		})
	out := run(t, e, plan)
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	got := map[string][2]int64{}
	for _, row := range out.Rows {
		got[row[0].AsString()] = [2]int64{row[1].AsInt(), row[2].AsInt()}
	}
	if got["10.0.0.1"] != [2]int64{2, 60} {
		t.Errorf("10.0.0.1 = %v", got["10.0.0.1"])
	}
	if got["10.0.0.3"] != [2]int64{2, 72} {
		t.Errorf("10.0.0.3 = %v", got["10.0.0.3"])
	}
}

func TestGroupByGlobalEmptyInput(t *testing.T) {
	e := New(testCatalog())
	empty := algebra.Filter(algebra.NewScan("Flow", "F"), expr.BoolLit(false))
	plan := algebra.NewGroupBy(empty, nil, []agg.Spec{
		{Func: agg.CountStar, As: "cnt"},
		{Func: agg.Max, Arg: expr.C("F.NumBytes"), As: "mx"},
	})
	out := run(t, e, plan)
	if out.Len() != 1 {
		t.Fatalf("global aggregate over empty input must yield 1 row, got %d", out.Len())
	}
	if out.Rows[0][0].AsInt() != 0 || !out.Rows[0][1].IsNull() {
		t.Errorf("row = %v, want [0, NULL]", out.Rows[0])
	}
}

func TestGMDJNodeThroughExecutor(t *testing.T) {
	e := New(testCatalog())
	plan := algebra.NewGMDJ(
		algebra.NewScan("Hours", "H"), algebra.NewScan("Flow", "F"),
		algebra.GMDJCond{
			Theta: expr.NewAnd(
				expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
				expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
			),
			Aggs: []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "total"}},
		})
	out := run(t, e, plan)
	if out.Len() != 3 {
		t.Fatalf("rows = %d", out.Len())
	}
	want := map[int64]int64{1: 12, 2: 84, 3: 96}
	for _, row := range out.Rows {
		if row[3].AsInt() != want[row[0].AsInt()] {
			t.Errorf("hour %v = %v", row[0], row[3])
		}
	}
}

// ---------------------------------------------------------------------------
// Native subquery evaluation

// existsHoursPlan is Example 2.2's base-values expression: hours in
// which there exists traffic to a given destination.
func existsHoursPlan(dest string) algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.Eq(expr.C("FI.DestIP"), expr.StrLit(dest)),
			expr.NewCmp(value.GE, expr.C("FI.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("FI.StartTime"), expr.C("H.EndInterval")),
		)},
	}
	return algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))
}

func TestNativeExists(t *testing.T) {
	e := New(testCatalog())
	out := run(t, e, existsHoursPlan("168.168.168.0"))
	// Flows to 168.168.168.0 at t=86 (hour 2) and t=132 (hour 3).
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	for _, row := range out.Rows {
		if h := row[0].AsInt(); h != 2 && h != 3 {
			t.Errorf("unexpected hour %d", h)
		}
	}
}

func TestNativeNotExists(t *testing.T) {
	e := New(testCatalog())
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.NewCmp(value.GE, expr.C("FI.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("FI.StartTime"), expr.C("H.EndInterval")),
			expr.Eq(expr.C("FI.Protocol"), expr.StrLit("FTP")),
		)},
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.NotExistsPred(sub)))
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 1 {
		t.Errorf("hours without FTP = %v", out)
	}
}

func TestNativeInWithNulls(t *testing.T) {
	e := New(testCatalog())
	// n IN (SELECT n ...) — NULL outer never matches; inner NULL
	// doesn't poison positives.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Nums", "M"),
		OutCol: expr.C("M.n"),
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		algebra.In(expr.C("N.n"), sub)))
	if out.Len() != 3 {
		t.Errorf("IN rows = %d, want 3 (NULL dropped)", out.Len())
	}
}

func TestNativeNotInWithNullInnerIsEmpty(t *testing.T) {
	e := New(testCatalog())
	// x NOT IN (set containing NULL) is never True in SQL: x ≠ NULL is
	// Unknown, which infects the ALL conjunction.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Nums", "M"),
		OutCol: expr.C("M.n"),
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		algebra.NotIn(expr.C("N.n"), sub)))
	if out.Len() != 0 {
		t.Errorf("NOT IN rows = %d, want 0 — the classic NULL trap", out.Len())
	}
}

func TestNativeNotInWithoutNulls(t *testing.T) {
	e := New(testCatalog())
	sub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Nums", "M"),
			expr.NewCmp(value.LE, expr.C("M.n"), expr.IntLit(2))),
		OutCol: expr.C("M.n"),
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		algebra.NotIn(expr.C("N.n"), sub)))
	// {1,2,3,NULL} NOT IN {1,2}: keeps 3 only (NULL outer → Unknown).
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 3 {
		t.Errorf("NOT IN = %v", out.Rows)
	}
}

func TestNativeAllEmptyIsTrue(t *testing.T) {
	e := New(testCatalog())
	sub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Nums", "M"), expr.BoolLit(false)),
		OutCol: expr.C("M.n"),
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.GT, Left: expr.C("N.n"), Sub: sub}))
	// ALL over the empty set is true for every outer row, including
	// NULL outer (no comparison is ever evaluated).
	if out.Len() != 4 {
		t.Errorf("ALL-empty rows = %d, want 4", out.Len())
	}
}

// TestNativeAllVsMaxFootnote demonstrates footnote 2 of the paper:
// x > ALL(S) is NOT equivalent to x > MAX(S) when S is empty only if
// NULL handling is wrong; here we check both give the documented SQL
// answers (ALL: true; MAX: unknown → dropped).
func TestNativeAllVsMaxFootnote(t *testing.T) {
	e := New(testCatalog())
	emptySrc := algebra.Filter(algebra.NewScan("Nums", "M"), expr.BoolLit(false))
	all := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.GT, Left: expr.C("N.n"),
			Sub: &algebra.Subquery{Source: emptySrc, OutCol: expr.C("M.n")}}))
	maxCmp := run(t, e, algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GT, Left: expr.C("N.n"),
			Sub: &algebra.Subquery{Source: emptySrc,
				Agg: &agg.Spec{Func: agg.Max, Arg: expr.C("M.n"), As: "m"}}}))
	if all.Len() != 4 {
		t.Errorf("ALL over empty = %d rows, want 4", all.Len())
	}
	if maxCmp.Len() != 0 {
		t.Errorf("MAX over empty = %d rows, want 0 (max of nothing is NULL)", maxCmp.Len())
	}
}

func TestNativeScalarAggregateCompare(t *testing.T) {
	e := New(testCatalog())
	// Flows whose bytes exceed the average bytes of their protocol.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "G"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("G.Protocol"), expr.C("F.Protocol"))},
		Agg:    &agg.Spec{Func: agg.Avg, Arg: expr.C("G.NumBytes"), As: "a"},
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Flow", "F"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GT, Left: expr.C("F.NumBytes"), Sub: sub}))
	// HTTP avg = (12+36+24+24)/4 = 24 → 36 qualifies. FTP avg = 48 → none.
	if out.Len() != 1 || out.Rows[0][4].AsInt() != 36 {
		t.Errorf("scalar agg compare = %v", out.Rows)
	}
}

func TestNativeScalarMultiRowErrors(t *testing.T) {
	e := New(testCatalog())
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "G"),
		OutCol: expr.C("G.NumBytes"),
	}
	_, err := e.Run(algebra.NewRestrict(algebra.NewScan("Nums", "N"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.EQ, Left: expr.C("N.n"), Sub: sub}))
	if err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Errorf("multi-row scalar subquery must raise the run-time exception, got %v", err)
	}
}

func TestNativeNestedTwoLevels(t *testing.T) {
	e := New(testCatalog())
	// Hours for which there is no FTP flow: expressed as a nested
	// double negation over the Protocol list (artificial but exercises
	// depth-2 compilation): NOT EXISTS flow in hour with protocol IN
	// (FTP).
	protoSub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Flow", "P"),
			expr.Eq(expr.C("P.Protocol"), expr.StrLit("FTP"))),
		OutCol: expr.C("P.Protocol"),
	}
	flowSub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: algebra.And(
			&algebra.Atom{E: expr.NewAnd(
				expr.NewCmp(value.GE, expr.C("FI.StartTime"), expr.C("H.StartInterval")),
				expr.NewCmp(value.LT, expr.C("FI.StartTime"), expr.C("H.EndInterval")),
			)},
			algebra.In(expr.C("FI.Protocol"), protoSub),
		),
	}
	out := run(t, e, algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.NotExistsPred(flowSub)))
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 1 {
		t.Errorf("nested result = %v", out.Rows)
	}
}

func TestIndexAccelerationMatchesScan(t *testing.T) {
	cat := testCatalog()
	flowTbl, _ := cat.Table("Flow")
	if err := flowTbl.BuildHashIndex("DestIP"); err != nil {
		t.Fatal(err)
	}
	if err := flowTbl.BuildSortedIndex("StartTime"); err != nil {
		t.Fatal(err)
	}
	plan := existsHoursPlan("168.168.168.0")

	withIdx := New(cat)
	noIdx := New(cat)
	noIdx.UseIndexes = false

	a := run(t, withIdx, plan)
	b := run(t, noIdx, plan)
	if d := a.Diff(b); d != "" {
		t.Errorf("indexed and unindexed native results differ: %s", d)
	}
}

func TestSortedIndexRangeAcceleration(t *testing.T) {
	cat := testCatalog()
	flowTbl, _ := cat.Table("Flow")
	if err := flowTbl.BuildSortedIndex("StartTime"); err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	// Correlated range-only subquery: count per hour via EXISTS.
	out := run(t, e, existsHoursPlan("168.168.168.0"))
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2", out.Len())
	}
}

func TestSubPredMissingOutputRejected(t *testing.T) {
	e := New(testCatalog())
	bad := &algebra.SubPred{
		Kind: algebra.CmpSome, Op: value.EQ, Left: expr.C("N.n"),
		Sub: &algebra.Subquery{Source: algebra.NewScan("Nums", "M")},
	}
	if _, err := e.Run(algebra.NewRestrict(algebra.NewScan("Nums", "N"), bad)); err == nil {
		t.Error("SOME without output column must error")
	}
}

func TestRestrictWithMixedPredicateTree(t *testing.T) {
	e := New(testCatalog())
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.NewCmp(value.GE, expr.C("FI.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("FI.StartTime"), expr.C("H.EndInterval")),
			expr.Eq(expr.C("FI.Protocol"), expr.StrLit("FTP")),
		)},
	}
	// hour = 1 OR exists FTP flow in hour.
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.Or(
		&algebra.Atom{E: expr.Eq(expr.C("H.HourDsc"), expr.IntLit(1))},
		algebra.ExistsPred(sub),
	))
	out := run(t, e, plan)
	if out.Len() != 3 {
		t.Errorf("rows = %d, want 3", out.Len())
	}
}
