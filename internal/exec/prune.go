// Zone-map scan pruning: a Restrict directly over a base-table Scan
// consults the table's packed columnar segment (storage.Segment) and
// skips whole ZoneBlockRows blocks whose per-column min/max statistics
// prove no row can satisfy the predicate. Only top-level AND conjuncts
// of the shape column ⟨cmp⟩ literal prune — they must hold for every
// emitted row, so a block where one of them is unsatisfiable
// contributes nothing. Pruning is a strict subset operation on the
// scan's row ranges; the surviving rows flow through the ordinary
// filter pipeline, so results are byte-identical with pruning on or
// off.

package exec

import (
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// pruneConjunct is one zone-prunable predicate conjunct: table-relative
// column position, comparison operator, literal.
type pruneConjunct struct {
	col int
	op  value.CmpOp
	lit value.Value
}

// pruneConjuncts extracts the zone-prunable conjuncts of where: the
// top-level AND terms (both predicate-level PredAnd and
// expression-level expr.And inside an Atom) of the shape
// col ⟨cmp⟩ lit (either orientation) whose column resolves in the
// scan's schema and nowhere in the outer environment (a name that
// could bind to an enclosing block must not prune — the real binding
// would resolve there first).
func pruneConjuncts(where algebra.Pred, scan, outer *relation.Schema) []pruneConjunct {
	preds := []algebra.Pred{where}
	if and, ok := where.(*algebra.PredAnd); ok {
		preds = and.Terms
	}
	var terms []expr.Expr
	for _, p := range preds {
		atom, ok := p.(*algebra.Atom)
		if !ok {
			continue
		}
		if and, ok := atom.E.(*expr.And); ok {
			terms = append(terms, and.Terms...)
			continue
		}
		terms = append(terms, atom.E)
	}
	var out []pruneConjunct
	for _, term := range terms {
		cmp, ok := term.(*expr.Cmp)
		if !ok {
			continue
		}
		col, lit, op, ok := splitCmp(cmp)
		if !ok {
			continue
		}
		if _, err := outer.Find(col.Qualifier, col.Name); err == nil {
			continue
		}
		pos, err := scan.Find(col.Qualifier, col.Name)
		if err != nil {
			continue
		}
		out = append(out, pruneConjunct{col: pos, op: op, lit: lit.V})
	}
	return out
}

// splitCmp matches col ⟨cmp⟩ lit in either orientation, flipping the
// operator when the literal is on the left (5 < x ⇔ x > 5).
func splitCmp(c *expr.Cmp) (*expr.Col, *expr.Lit, value.CmpOp, bool) {
	if col, ok := c.L.(*expr.Col); ok {
		if lit, ok := c.R.(*expr.Lit); ok {
			return col, lit, c.Op, true
		}
	}
	if lit, ok := c.L.(*expr.Lit); ok {
		if col, ok := c.R.(*expr.Col); ok {
			return col, lit, flipCmp(c.Op), true
		}
	}
	return nil, nil, 0, false
}

// flipCmp mirrors a comparison across its operands.
func flipCmp(op value.CmpOp) value.CmpOp {
	switch op {
	case value.LT:
		return value.GT
	case value.LE:
		return value.GE
	case value.GT:
		return value.LT
	case value.GE:
		return value.LE
	}
	return op // EQ and NE are symmetric
}

// pruneScanInput applies zone-map pruning to a Restrict whose input is
// a bare table scan, returning the (possibly) reduced input relation
// and recording segments_pruned / segments_total on the current stats
// node. Any mismatch — derived input, unresolvable table, segment row
// count out of sync with the materialized relation — returns the input
// untouched.
func (e *Executor) pruneScanInput(r *algebra.Restrict, in *relation.Relation, ev *env) *relation.Relation {
	s, ok := r.Input.(*algebra.Scan)
	if !ok || in.Len() == 0 {
		return in
	}
	conjs := pruneConjuncts(r.Where, in.Schema, ev.schema)
	if len(conjs) == 0 {
		return in
	}
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return in
	}
	seg := t.Segment()
	if seg.Rows != in.Len() {
		return in
	}
	nblocks := seg.NumBlocks()
	out := &relation.Relation{Schema: in.Schema}
	pruned := 0
	for b := 0; b < nblocks; b++ {
		skip := false
		for _, c := range conjs {
			if seg.Zones[c.col][b].CanPrune(c.op, c.lit) {
				skip = true
				break
			}
		}
		if skip {
			pruned++
			continue
		}
		lo := b * storage.ZoneBlockRows
		hi := lo + storage.ZoneBlockRows
		if hi > in.Len() {
			hi = in.Len()
		}
		out.Rows = append(out.Rows, in.Rows[lo:hi]...)
	}
	if op := ev.q.col.Current(); op != nil {
		op.Add("segments_pruned", int64(pruned))
		op.Add("segments_total", int64(nblocks))
	}
	if pruned == 0 {
		return in
	}
	obs.MetricAdd("storage.segments_pruned", int64(pruned))
	return out
}
