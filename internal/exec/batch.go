package exec

import (
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// BatchOp is the batched physical operator interface: each call fills
// the caller-provided batch with the next chunk of output rows,
// leaving it empty at end of stream. The batch is owned by the caller
// and reused across calls — its fixed-capacity storage is what keeps
// the hot path free of per-row allocations. Operators append existing
// tuples by reference (AppendRef), preserving the materializing
// engine's tuple-sharing discipline, which is why batched and serial
// evaluation produce byte-identical output.
//
// Pipelines over a BatchOp are single-goroutine; morsel-driven
// parallelism runs one independent pipeline per worker over disjoint
// input row ranges (see morsel.go), never one pipeline from several
// goroutines.
type BatchOp interface {
	// Schema describes the operator's output rows.
	Schema() *relation.Schema
	// NextBatch resets b and fills it with up to b.Cap() output rows.
	// b.Len() == 0 after return signals end of stream.
	NextBatch(b *relation.Batch) error
}

// relSource streams a materialized relation's row range [pos, end)
// through the batch API. It is the leaf of every pipeline: a table
// scan's shared row slice, or an already-evaluated child relation. The
// zero-copy AppendRef loop is the scan half of the scan→probe hot
// path.
type relSource struct {
	rel      *relation.Relation
	pos, end int
	batches  int64
}

func newRelSource(rel *relation.Relation, lo, hi int) *relSource {
	return &relSource{rel: rel, pos: lo, end: hi}
}

func (s *relSource) Schema() *relation.Schema { return s.rel.Schema }

func (s *relSource) NextBatch(b *relation.Batch) error {
	b.Reset()
	rows := s.rel.Rows
	for s.pos < s.end && !b.Full() {
		b.AppendRef(rows[s.pos])
		s.pos++
	}
	if b.Len() > 0 {
		s.batches++
	}
	return nil
}

// reset repoints the source at a new row range so one allocation
// serves every morsel a worker claims.
func (s *relSource) reset(lo, hi int) { s.pos, s.end = lo, hi }

// filterOp applies a compiled predicate to its child's batches,
// compacting passing rows in place. full is the worker-local scratch
// tuple (outer context ++ input row) predicates evaluate against;
// prefixW is the width of the outer context already copied into it.
type filterOp struct {
	child   BatchOp
	pred    compiledPred
	full    relation.Tuple
	prefixW int
	q       *query
}

func (f *filterOp) Schema() *relation.Schema { return f.child.Schema() }

func (f *filterOp) NextBatch(b *relation.Batch) error {
	for {
		if err := f.child.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		keep := 0
		for i := 0; i < b.Len(); i++ {
			if err := f.q.tick(); err != nil {
				return err
			}
			row := b.Row(i)
			copy(f.full[f.prefixW:], row)
			tr, err := f.pred.eval(f.full)
			if err != nil {
				return err
			}
			if tr != value.True { // where-clause truncation
				continue
			}
			if err := f.q.account(row); err != nil {
				return err
			}
			b.SetRow(keep, row)
			keep++
		}
		b.Truncate(keep)
		if b.Len() > 0 {
			return nil
		}
		// The whole batch was filtered out; pull the next one rather
		// than returning an empty batch, which would read as end of
		// stream.
	}
}

// projectOp evaluates bound projection expressions over its child's
// batches. Output tuples are materialized per row — exactly the
// allocation the serial projection performs — and appended by
// reference.
type projectOp struct {
	child   BatchOp
	schema  *relation.Schema
	bound   []expr.Expr
	in      *relation.Batch
	full    relation.Tuple
	prefixW int
	q       *query
}

func (p *projectOp) Schema() *relation.Schema { return p.schema }

func (p *projectOp) NextBatch(b *relation.Batch) error {
	b.Reset()
	if err := p.child.NextBatch(p.in); err != nil {
		return err
	}
	if p.in.Len() == 0 {
		return nil
	}
	for i := 0; i < p.in.Len(); i++ {
		if err := p.q.tick(); err != nil {
			return err
		}
		copy(p.full[p.prefixW:], p.in.Row(i))
		outRow := make(relation.Tuple, len(p.bound))
		for j, e := range p.bound {
			v, err := e.Eval(p.full)
			if err != nil {
				return err
			}
			outRow[j] = v
		}
		if err := p.q.account(outRow); err != nil {
			return err
		}
		b.AppendRef(outRow)
	}
	return nil
}

// rowIter adapts a BatchOp back to row-at-a-time iteration: the
// compatibility shim for inherently serial consumers (grouping,
// sorting, distinct, set operations) that fold rows into ordered
// state. It owns one reusable batch and reports how many batches it
// drained, which is what the operator's batches= counter records.
type rowIter struct {
	op      BatchOp
	b       *relation.Batch
	i       int
	batches int64
	done    bool
}

func newRowIter(op BatchOp) *rowIter {
	return &rowIter{op: op, b: relation.NewBatch(op.Schema(), relation.DefaultBatchCap)}
}

// Next returns the next row, or ok=false at end of stream.
func (it *rowIter) Next() (row relation.Tuple, ok bool, err error) {
	for {
		if it.i < it.b.Len() {
			row = it.b.Row(it.i)
			it.i++
			return row, true, nil
		}
		if it.done {
			return nil, false, nil
		}
		if err := it.op.NextBatch(it.b); err != nil {
			return nil, false, err
		}
		it.i = 0
		if it.b.Len() == 0 {
			it.done = true
			return nil, false, nil
		}
		it.batches++
	}
}

// relIter is the common case of iterating a whole materialized
// relation batch-wise.
func relIter(rel *relation.Relation) *rowIter {
	return newRowIter(newRelSource(rel, 0, rel.Len()))
}
