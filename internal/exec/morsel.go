package exec

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/relation"
)

// MorselRows is how many input rows one morsel covers: a few batches'
// worth, small enough that workers rebalance across skewed predicates,
// large enough that the atomic claim is amortized into noise.
const MorselRows = 4 * relation.DefaultBatchCap

// morselCount returns how many morsels cover n input rows.
func morselCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n-1)/MorselRows + 1
}

// pipeInfo reports what one morsel-parallel pipeline actually did, for
// the operator's workers= and batches= counters.
type pipeInfo struct {
	workers int
	batches int64
}

// pipelineWorkers resolves the degree for one operator pipeline over n
// input rows: the configured parallelism, clamped so the fan-out is
// worth its goroutines (at least two morsels of work) and each worker
// can claim at least one morsel.
func (e *Executor) pipelineWorkers(n int) int {
	w := e.Parallelism
	if w <= 1 || n < 2*MorselRows {
		return 1
	}
	if mc := morselCount(n); w > mc {
		w = mc
	}
	if max := runtime.GOMAXPROCS(0) * 4; w > max {
		w = max
	}
	return w
}

// runMorsels drives fn over every morsel of [0, n). Workers claim
// morsels from a shared atomic counter — the morsel-driven discipline:
// scheduling is dynamic (a worker stuck on an expensive morsel does
// not stall the rest of the input) while output stays deterministic
// because callers buffer per morsel index and concatenate in order.
//
// fn(worker, morsel, lo, hi) must be safe for concurrent invocation
// with distinct worker ids; worker-local scratch is indexed by the id.
// With workers <= 1 everything runs inline on the calling goroutine —
// the serial engine, bit for bit, with no goroutine or channel cost.
//
// Failure semantics mirror the GMDJ pool: the first error (or
// recovered worker panic, surfaced as *govern.InternalError) trips a
// stop flag; other workers quit at their next claim, and the first
// error is returned.
func runMorsels(n, workers int, fn func(worker, morsel, lo, hi int) error) (int, error) {
	nm := morselCount(n)
	if workers <= 1 || nm <= 1 {
		for m := 0; m < nm; m++ {
			lo := m * MorselRows
			hi := lo + MorselRows
			if hi > n {
				hi = n
			}
			if err := fn(0, m, lo, hi); err != nil {
				return 1, err
			}
		}
		return 1, nil
	}
	if workers > nm {
		workers = nm
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		failOnce sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		failOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers run outside the engine's panic boundary (which
			// lives on the query goroutine), so each recovers for
			// itself and feeds the same error taxonomy.
			defer func() {
				if r := recover(); r != nil {
					fail(&govern.InternalError{Panic: r, Node: fmt.Sprintf("morsel worker %d", w), Stack: debug.Stack()})
				}
			}()
			for {
				if stop.Load() {
					return
				}
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				lo := m * MorselRows
				hi := lo + MorselRows
				if hi > n {
					hi = n
				}
				if err := fn(w, m, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return workers, firstErr
}

// recordPipe attaches the pipeline's workers= and batches= counters to
// the operator's stats-tree node, feeding the EXPLAIN ANALYZE drift
// column. Nil-safe through Op.Add.
func (q *query) recordPipe(info pipeInfo) {
	if q == nil || q.col == nil {
		return
	}
	op := q.col.Current()
	op.Add("workers", int64(info.workers))
	op.Add("batches", info.batches)
}
