package exec

import (
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// TestScanFilterHotPathZeroAlloc pins the batched API's core promise:
// draining a scan→filter pipeline performs zero allocations once its
// fixed-capacity batch and scratch tuple exist. Passing rows are
// compacted in place by reference; only the batch reset and
// slice-header copies remain on the per-row path. This is the allocs/op
// assertion behind the morsel workers' steady-state behavior — every
// worker owns one such pipeline and reuses it across all its morsels.
func TestScanFilterHotPathZeroAlloc(t *testing.T) {
	schema := relation.NewSchema(
		relation.Column{Qualifier: "T", Name: "x", Type: value.KindInt},
	)
	rel := relation.New(schema)
	for i := 0; i < 8*relation.DefaultBatchCap; i++ {
		rel.Append(relation.Tuple{value.Int(int64(i))})
	}

	e := New(testCatalog())
	// A selective atom predicate (about half the rows pass), so both
	// the keep and drop branches stay hot.
	pred := &algebra.Atom{E: expr.NewCmp(value.GE, expr.C("T.x"), expr.IntLit(int64(4*relation.DefaultBatchCap)))}
	cp, err := e.compilePred(pred, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := newRelSource(rel, 0, 0)
	f := &filterOp{child: src, pred: cp, full: make(relation.Tuple, schema.Len())}
	b := relation.NewBatch(schema, relation.DefaultBatchCap)

	kept := 0
	drain := func() {
		kept = 0
		src.reset(0, rel.Len())
		for {
			if err := f.NextBatch(b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				return
			}
			kept += b.Len()
		}
	}
	drain() // warm-up: first run may fault in lazy state
	if want := 4 * relation.DefaultBatchCap; kept != want {
		t.Fatalf("filter kept %d rows, want %d", kept, want)
	}
	if allocs := testing.AllocsPerRun(10, drain); allocs != 0 {
		t.Errorf("scan→filter drain allocated %.1f times per run, want 0", allocs)
	}
}
