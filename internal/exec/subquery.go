package exec

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/plancache"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// compiledPred is a predicate compiled against a fixed outer schema;
// eval receives the full concatenated outer row.
type compiledPred interface {
	eval(row relation.Tuple) (value.Tri, error)
}

type cpAtom struct{ e expr.Expr }

func (c *cpAtom) eval(row relation.Tuple) (value.Tri, error) { return expr.EvalTri(c.e, row) }

type cpAnd struct{ terms []compiledPred }

func (c *cpAnd) eval(row relation.Tuple) (value.Tri, error) {
	acc := value.True
	for _, t := range c.terms {
		tr, err := t.eval(row)
		if err != nil {
			return value.Unknown, err
		}
		acc = acc.And(tr)
		if acc == value.False {
			return value.False, nil
		}
	}
	return acc, nil
}

type cpOr struct{ terms []compiledPred }

func (c *cpOr) eval(row relation.Tuple) (value.Tri, error) {
	acc := value.False
	for _, t := range c.terms {
		tr, err := t.eval(row)
		if err != nil {
			return value.Unknown, err
		}
		acc = acc.Or(tr)
		if acc == value.True {
			return value.True, nil
		}
	}
	return acc, nil
}

type cpNot struct{ p compiledPred }

func (c *cpNot) eval(row relation.Tuple) (value.Tri, error) {
	tr, err := c.p.eval(row)
	if err != nil {
		return value.Unknown, err
	}
	return tr.Not(), nil
}

// compilePred compiles a predicate tree against the outer schema
// (already including any enclosing blocks). Subquery sources are
// materialized once — the "reuse of invariants" refinement — and their
// correlation predicates are compiled against outer ++ inner. The
// query state q rides along so subquery evaluation loops stay
// governed.
func (e *Executor) compilePred(p algebra.Pred, outer *relation.Schema, q *query) (compiledPred, error) {
	switch n := p.(type) {
	case *algebra.Atom:
		b, err := n.E.Bind(outer)
		if err != nil {
			return nil, err
		}
		return &cpAtom{e: b}, nil
	case *algebra.PredAnd:
		terms := make([]compiledPred, len(n.Terms))
		for i, t := range n.Terms {
			c, err := e.compilePred(t, outer, q)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return &cpAnd{terms: terms}, nil
	case *algebra.PredOr:
		terms := make([]compiledPred, len(n.Terms))
		for i, t := range n.Terms {
			c, err := e.compilePred(t, outer, q)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return &cpOr{terms: terms}, nil
	case *algebra.PredNot:
		c, err := e.compilePred(n.P, outer, q)
		if err != nil {
			return nil, err
		}
		return &cpNot{p: c}, nil
	case *algebra.SubPred:
		return e.compileSubPred(n, outer, q)
	default:
		return nil, fmt.Errorf("exec: unknown predicate node %T", p)
	}
}

// accessPath is an optional index acceleration for one subquery: probe
// an equality index and/or narrow a range via a sorted index, instead
// of scanning all inner rows per outer tuple.
type accessPath struct {
	hash    *storage.HashIndex
	hashKey expr.Expr // bound to outer schema; evaluated per outer row

	sorted         *storage.SortedIndex
	lo, hi         expr.Expr // bounds over outer schema (nil = open)
	loIncl, hiIncl bool
}

// cpSub evaluates one subquery predicate with tuple-iteration
// semantics.
type cpSub struct {
	kind algebra.SubKind
	op   value.CmpOp
	left expr.Expr // bound to outer schema; nil for EXISTS kinds

	inner     *relation.Relation // materialized subquery source
	innerPred compiledPred       // compiled against outer ++ inner; nil = TRUE
	outPos    int                // position of OutCol in inner schema; -1
	aggSpec   *agg.Spec          // bound against outer ++ inner; nil unless aggregate subquery
	outerW    int
	innerW    int
	path      *accessPath
	memo      *subqueryMemo // non-nil when invariant reuse is enabled
	q         *query        // governance: ticks in the inner-row loops
}

// evalSubquerySource materializes a subquery's source relation.
// Sources are resolved standalone — they can never reference the outer
// scope (sql/resolve.go resolves them against their own schema only) —
// so a source materialization is an invariant of the whole query. With
// the engine-level result cache attached, non-trivial sources (derived
// tables: anything beyond a bare scan) are shared across queries under
// a key embedding the id@version of every table they read; a write to
// any of those tables makes the entry unreachable.
func (e *Executor) evalSubquerySource(src algebra.Node, q *query) (*relation.Relation, error) {
	if e.Results == nil || !cacheableSource(src) {
		return e.eval(src, newEnv(q))
	}
	tags, ok := e.epochTags(src)
	if !ok {
		return e.eval(src, newEnv(q))
	}
	key := plancache.ResultKey("subsrc", src.String(), tags)
	if v, ok := e.Results.Get(key); ok {
		if rel, ok := v.(*relation.Relation); ok {
			return rel, nil
		}
	}
	rel, err := e.eval(src, newEnv(q))
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, row := range rel.Rows {
		bytes += row.ApproxBytes()
	}
	q.chargeSubquery(bytes)
	e.Results.Put(key, rel, bytes)
	return rel, nil
}

// chargeSubquery accounts a materialized subquery source against the
// query's reservation, best-effort: the relation already exists by the
// time its size is known, so on exhaustion there is nothing to spill —
// the overcommit is recorded and the query proceeds. The real relief
// valve is the result cache's cold tier, which the pool's reclaim hook
// drains when reservations cannot grow.
func (q *query) chargeSubquery(bytes int64) {
	if q == nil || bytes <= 0 {
		return
	}
	t := q.tracker("subquery")
	if t == nil {
		return
	}
	if err := t.Grow(bytes); err != nil {
		obs.MetricAdd("mem.subquery_overcommit", 1)
	}
}

// cacheableSource reports whether materializing src does work worth
// caching: bare table scans (and aliases over them) share the table's
// rows and cost nothing, so caching them would only duplicate state.
func cacheableSource(src algebra.Node) bool {
	switch t := src.(type) {
	case *algebra.Scan, *algebra.Raw:
		return false
	case *algebra.Alias:
		return cacheableSource(t.Input)
	default:
		return true
	}
}

// epochTags resolves the id@version tag of every base table src reads;
// ok is false when any table is missing (don't cache what we can't
// version).
func (e *Executor) epochTags(src algebra.Node) ([]string, bool) {
	names := algebra.Tables(src)
	if len(names) == 0 {
		return nil, false // Raw-only subtree: no versioned dependencies
	}
	tags := make([]string, len(names))
	for i, name := range names {
		t, err := e.Cat.Table(name)
		if err != nil {
			return nil, false
		}
		tags[i] = plancache.EpochTag(name, t.ID(), t.Version())
	}
	return tags, true
}

func (e *Executor) compileSubPred(sp *algebra.SubPred, outer *relation.Schema, q *query) (compiledPred, error) {
	if err := q.fire("exec.subquery"); err != nil {
		return nil, err
	}
	inner, err := e.evalSubquerySource(sp.Sub.Source, q)
	if err != nil {
		return nil, err
	}
	cs := &cpSub{
		kind:   sp.Kind,
		op:     sp.Op,
		outPos: -1,
		inner:  inner,
		outerW: outer.Len(),
		innerW: inner.Schema.Len(),
		q:      q,
	}
	if sp.Left != nil {
		b, err := sp.Left.Bind(outer)
		if err != nil {
			return nil, fmt.Errorf("exec: binding subquery operand %s: %w", sp.Left, err)
		}
		cs.left = b
	}
	combined := outer.Concat(inner.Schema)
	if sp.Sub.Where != nil {
		cp, err := e.compilePred(sp.Sub.Where, combined, q)
		if err != nil {
			return nil, err
		}
		cs.innerPred = cp
	}
	if sp.Sub.OutCol != nil {
		pos, err := inner.Schema.Find(sp.Sub.OutCol.Qualifier, sp.Sub.OutCol.Name)
		if err != nil {
			return nil, err
		}
		cs.outPos = pos
	}
	if sp.Sub.Agg != nil {
		bound, err := sp.Sub.Agg.Bind(combined)
		if err != nil {
			return nil, err
		}
		cs.aggSpec = &bound
	}
	switch sp.Kind {
	case algebra.CmpSome, algebra.CmpAll:
		if cs.outPos < 0 {
			return nil, fmt.Errorf("exec: %v subquery requires an output column", sp.Kind)
		}
	case algebra.ScalarCmp:
		if cs.outPos < 0 && cs.aggSpec == nil {
			return nil, fmt.Errorf("exec: scalar subquery requires an output column or aggregate")
		}
	}
	if e.UseIndexes {
		cs.path = e.findAccessPath(sp, outer, inner.Schema)
	}
	if e.MemoizeSubqueries {
		if memo, ok := newSubqueryMemo(sp, outer); ok {
			cs.memo = memo
		}
	}
	return cs, nil
}

// findAccessPath inspects the subquery's correlation condition for
// conjuncts of the form innerCol = outerExpr (hash index) or
// innerCol φ outerExpr with φ a range operator (sorted index), where
// the source is a base-table scan carrying a matching index.
func (e *Executor) findAccessPath(sp *algebra.SubPred, outer, innerSchema *relation.Schema) *accessPath {
	scan, ok := sp.Sub.Source.(*algebra.Scan)
	if !ok {
		return nil
	}
	tbl, err := e.Cat.Table(scan.Table)
	if err != nil {
		return nil
	}
	atom, ok := sp.Sub.Where.(*algebra.Atom)
	if !ok {
		// Conjunctive tops are common too.
		if a, isAnd := sp.Sub.Where.(*algebra.PredAnd); isAnd {
			// Synthesize a pseudo-atom from the expr-only terms.
			var exprs []expr.Expr
			for _, t := range a.Terms {
				if at, isAtom := t.(*algebra.Atom); isAtom {
					exprs = append(exprs, at.E)
				}
			}
			if len(exprs) == 0 {
				return nil
			}
			atom = &algebra.Atom{E: expr.Conj(exprs)}
		} else {
			return nil
		}
	}
	resolvesInner := func(c *expr.Col) (string, bool) {
		if _, err := innerSchema.Find(c.Qualifier, c.Name); err != nil {
			return "", false
		}
		return c.Name, true
	}
	outerOnly := func(x expr.Expr) bool {
		for _, c := range expr.Cols(x) {
			if _, err := outer.Find(c.Qualifier, c.Name); err != nil {
				return false
			}
		}
		return true
	}
	var path accessPath
	for _, cj := range expr.Conjuncts(atom.E) {
		cmp, ok := cj.(*expr.Cmp)
		if !ok {
			continue
		}
		// Normalize to innerCol φ outerExpr.
		var innerCol *expr.Col
		var rhs expr.Expr
		op := cmp.Op
		if c, ok := cmp.L.(*expr.Col); ok {
			if _, isInner := resolvesInner(c); isInner && outerOnly(cmp.R) {
				innerCol, rhs = c, cmp.R
			}
		}
		if innerCol == nil {
			if c, ok := cmp.R.(*expr.Col); ok {
				if _, isInner := resolvesInner(c); isInner && outerOnly(cmp.L) {
					innerCol, rhs, op = c, cmp.L, cmp.Op.Flip()
				}
			}
		}
		if innerCol == nil {
			continue
		}
		boundRHS, err := rhs.Bind(outer)
		if err != nil {
			continue
		}
		switch op {
		case value.EQ:
			if path.hash == nil {
				if ix, ok := tbl.HashIndexOn(innerCol.Name); ok {
					path.hash = ix
					path.hashKey = boundRHS
				}
			}
		case value.GE, value.GT:
			if ix, ok := tbl.SortedIndexOn(innerCol.Name); ok {
				if path.sorted == nil || path.sorted == ix {
					path.sorted = ix
					path.lo = boundRHS
					path.loIncl = op == value.GE
				}
			}
		case value.LE, value.LT:
			if ix, ok := tbl.SortedIndexOn(innerCol.Name); ok {
				if path.sorted == nil || path.sorted == ix {
					path.sorted = ix
					path.hi = boundRHS
					path.hiIncl = op == value.LE
				}
			}
		}
	}
	if path.hash == nil && path.sorted == nil {
		return nil
	}
	return &path
}

// candidates returns the inner row positions to visit for one outer
// row via the access path; hasPath is false when no access path exists
// and the caller must scan all inner rows. With a path, an empty (even
// nil) slice genuinely means "no candidates".
func (c *cpSub) candidates(outerRow relation.Tuple) (cand []int, hasPath bool, err error) {
	if c.path == nil {
		return nil, false, nil
	}
	if c.path.hash != nil {
		v, err := c.path.hashKey.Eval(outerRow)
		if err != nil {
			return nil, true, err
		}
		return c.path.hash.Lookup(v), true, nil
	}
	lo, hi := value.Null, value.Null
	loIncl, hiIncl := false, false
	if c.path.lo != nil {
		v, err := c.path.lo.Eval(outerRow)
		if err != nil {
			return nil, true, err
		}
		lo, loIncl = v, c.path.loIncl
		if v.IsNull() {
			return nil, true, nil // NULL bound matches nothing
		}
	}
	if c.path.hi != nil {
		v, err := c.path.hi.Eval(outerRow)
		if err != nil {
			return nil, true, err
		}
		hi, hiIncl = v, c.path.hiIncl
		if v.IsNull() {
			return nil, true, nil
		}
	}
	return c.path.sorted.Range(lo, loIncl, hi, hiIncl), true, nil
}

// eval implements the SQL semantics of each construct (the proof
// obligations of Theorem 3.1), with the native engine's early exits:
// EXISTS stops on first match, ALL stops on first counterexample (the
// "smart nested loop"), SOME stops on first witness.
func (c *cpSub) eval(outerRow relation.Tuple) (value.Tri, error) {
	if c.memo != nil {
		k := c.memo.key(outerRow)
		if tr, err, ok := c.memo.lookup(k); ok {
			return tr, err
		}
		tr, err := c.evalUncached(outerRow)
		c.memo.store(k, tr, err)
		return tr, err
	}
	return c.evalUncached(outerRow)
}

func (c *cpSub) evalUncached(outerRow relation.Tuple) (value.Tri, error) {
	full := make(relation.Tuple, c.outerW+c.innerW)
	copy(full, outerRow[:c.outerW])

	cand, hasPath, err := c.candidates(outerRow)
	if err != nil {
		return value.Unknown, err
	}
	// The per-outer-tuple inner scan is the native strategy's hot loop
	// (quadratic without an access path), so it carries the cooperative
	// cancellation tick.
	visit := func(fn func(innerRow relation.Tuple) (stop bool, err error)) error {
		if hasPath {
			for _, ri := range cand {
				if err := c.q.tick(); err != nil {
					return err
				}
				stop, err := fn(c.inner.Rows[ri])
				if err != nil || stop {
					return err
				}
			}
			return nil
		}
		for _, row := range c.inner.Rows {
			if err := c.q.tick(); err != nil {
				return err
			}
			stop, err := fn(row)
			if err != nil || stop {
				return err
			}
		}
		return nil
	}
	qualify := func(innerRow relation.Tuple) (value.Tri, error) {
		if c.innerPred == nil {
			return value.True, nil
		}
		copy(full[c.outerW:], innerRow)
		return c.innerPred.eval(full)
	}

	switch c.kind {
	case algebra.Exists, algebra.NotExists:
		found := false
		err := visit(func(innerRow relation.Tuple) (bool, error) {
			tr, err := qualify(innerRow)
			if err != nil {
				return false, err
			}
			if tr == value.True {
				found = true
				return true, nil
			}
			return false, nil
		})
		if err != nil {
			return value.Unknown, err
		}
		if c.kind == algebra.Exists {
			return value.TriOf(found), nil
		}
		return value.TriOf(!found), nil

	case algebra.CmpSome:
		leftV, err := c.left.Eval(outerRow)
		if err != nil {
			return value.Unknown, err
		}
		result := value.False // empty S ⇒ false
		err = visit(func(innerRow relation.Tuple) (bool, error) {
			tr, err := qualify(innerRow)
			if err != nil {
				return false, err
			}
			if tr != value.True {
				return false, nil
			}
			cmp := c.op.Apply(leftV, innerRow[c.outPos])
			result = result.Or(cmp)
			return result == value.True, nil
		})
		if err != nil {
			return value.Unknown, err
		}
		return result, nil

	case algebra.CmpAll:
		leftV, err := c.left.Eval(outerRow)
		if err != nil {
			return value.Unknown, err
		}
		result := value.True // empty S ⇒ true
		err = visit(func(innerRow relation.Tuple) (bool, error) {
			tr, err := qualify(innerRow)
			if err != nil {
				return false, err
			}
			if tr != value.True {
				return false, nil
			}
			cmp := c.op.Apply(leftV, innerRow[c.outPos])
			result = result.And(cmp)
			return result == value.False, nil // smart nested loop
		})
		if err != nil {
			return value.Unknown, err
		}
		return result, nil

	case algebra.ScalarCmp:
		leftV, err := c.left.Eval(outerRow)
		if err != nil {
			return value.Unknown, err
		}
		if c.aggSpec != nil {
			acc := agg.NewAccumulator(*c.aggSpec)
			err := visit(func(innerRow relation.Tuple) (bool, error) {
				tr, err := qualify(innerRow)
				if err != nil {
					return false, err
				}
				if tr != value.True {
					return false, nil
				}
				copy(full[c.outerW:], innerRow)
				return false, acc.Add(full)
			})
			if err != nil {
				return value.Unknown, err
			}
			return c.op.Apply(leftV, acc.Result()), nil
		}
		var found bool
		var scalar value.Value
		err = visit(func(innerRow relation.Tuple) (bool, error) {
			tr, err := qualify(innerRow)
			if err != nil {
				return false, err
			}
			if tr != value.True {
				return false, nil
			}
			if found {
				return false, fmt.Errorf("exec: scalar subquery returned more than one row")
			}
			found = true
			scalar = innerRow[c.outPos]
			return false, nil
		})
		if err != nil {
			return value.Unknown, err
		}
		if !found {
			return value.Unknown, nil // empty scalar subquery is NULL
		}
		return c.op.Apply(leftV, scalar), nil

	default:
		return value.Unknown, fmt.Errorf("exec: unknown subquery kind %v", c.kind)
	}
}
