package exec

import (
	"sync"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// evalJoin evaluates all join kinds. When the predicate contains
// equi-conjuncts across the two sides, a hash join is used (build on
// the right, probe from the left); otherwise it degrades to a nested
// loop — which is exactly the degradation the paper's Figure 4 join
// baseline suffers under a ≠ correlation.
//
// Both phases are morsel-parallel under Executor.Parallelism. The
// build side hashes its key columns batch-wise over the columnar view
// and partitions the hash table by hash modulo shard, each shard built
// by one worker in right-row order; the probe side pulls left-row
// morsels, emitting per-morsel buffers that concatenate in morsel
// order. Candidate lists and per-left-row emit order are therefore
// identical to the serial engine's single hash table — byte-identical
// output at any degree.
func (e *Executor) evalJoin(j *algebra.Join, ev *env) (*relation.Relation, error) {
	left, err := e.eval(j.Left, ev)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(j.Right, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = j
	if err := ev.q.fire("exec.join"); err != nil {
		return nil, err
	}
	combined := left.Schema.Concat(right.Schema)
	on, err := j.On.Bind(combined)
	if err != nil {
		return nil, err
	}
	leftQ := schemaQualifiers(left.Schema)
	rightQ := schemaQualifiers(right.Schema)
	bindings, _ := expr.SplitBindings(j.On, leftQ, rightQ)

	var outSchema *relation.Schema
	switch j.Kind {
	case algebra.SemiJoin, algebra.AntiJoin:
		outSchema = left.Schema
	default:
		outSchema = combined
	}
	lw := left.Schema.Len()

	// Keep only bindings that verifiably resolve on exactly one side:
	// probe keys must be sound (the full predicate re-checks every pair,
	// but a wrong key would wrongly *miss* pairs).
	var leftPos, rightPos []int
	for _, b := range bindings {
		lp, lerr := left.Schema.Find(b.Left.Qualifier, b.Left.Name)
		rp, rerr := right.Schema.Find(b.Right.Qualifier, b.Right.Name)
		if lerr != nil || rerr != nil {
			continue
		}
		if _, err := right.Schema.Find(b.Left.Qualifier, b.Left.Name); err == nil {
			continue // also resolves on the right — ambiguous, skip
		}
		if _, err := left.Schema.Find(b.Right.Qualifier, b.Right.Name); err == nil {
			continue
		}
		leftPos = append(leftPos, lp)
		rightPos = append(rightPos, rp)
	}

	var batches int64
	var probe func(lRow relation.Tuple) ([]int, bool)
	if len(leftPos) > 0 {
		index, buildBatches, err := e.buildJoinIndex(right, rightPos, ev)
		if err != nil {
			return nil, err
		}
		batches += buildBatches
		probe = index.probeFor(leftPos)
	} else {
		all := make([]int, len(right.Rows))
		for i := range all {
			all[i] = i
		}
		probe = func(relation.Tuple) ([]int, bool) { return all, true }
	}

	// Probe phase: morsel-parallel over the left rows. Each worker
	// carries its own scan pipeline and scratch full row; each morsel
	// buffers its emissions so the final concatenation preserves
	// left-row order.
	workers := e.pipelineWorkers(len(left.Rows))
	type wstate struct {
		src     *relSource
		batch   *relation.Batch
		fullRow relation.Tuple
	}
	states := make([]*wstate, workers)
	for w := range states {
		states[w] = &wstate{
			src:     newRelSource(left, 0, 0),
			batch:   relation.NewBatch(left.Schema, relation.DefaultBatchCap),
			fullRow: make(relation.Tuple, combined.Len()),
		}
	}
	nullPad := make(relation.Tuple, right.Schema.Len())
	outs := make([][]relation.Tuple, morselCount(len(left.Rows)))

	// matchRows visits one left row's candidates, appending emissions
	// to the morsel buffer; semantics per kind match the serial engine
	// (first match suffices for semi, first match disqualifies for
	// anti).
	matchRows := func(st *wstate, lRow relation.Tuple, candidates []int, buf *[]relation.Tuple) (bool, error) {
		copy(st.fullRow, lRow)
		matched := false
		for _, ri := range candidates {
			if err := ev.q.tick(); err != nil {
				return false, err
			}
			copy(st.fullRow[lw:], right.Rows[ri])
			tr, err := expr.EvalTri(on, st.fullRow)
			if err != nil {
				return false, err
			}
			if tr != value.True {
				continue
			}
			matched = true
			switch j.Kind {
			case algebra.InnerJoin, algebra.LeftOuterJoin:
				joined := st.fullRow.Clone()
				if err := ev.q.account(joined); err != nil {
					return false, err
				}
				*buf = append(*buf, joined)
			case algebra.SemiJoin:
				if err := ev.q.account(lRow); err != nil {
					return false, err
				}
				*buf = append(*buf, lRow)
				return true, nil // first match suffices
			case algebra.AntiJoin:
				return true, nil // first match disqualifies
			}
		}
		return matched, nil
	}

	used, err := runMorsels(len(left.Rows), workers, func(w, m, lo, hi int) error {
		st := states[w]
		st.src.reset(lo, hi)
		for {
			if err := st.src.NextBatch(st.batch); err != nil {
				return err
			}
			if st.batch.Len() == 0 {
				return nil
			}
			for i := 0; i < st.batch.Len(); i++ {
				lRow := st.batch.Row(i)
				if err := ev.q.tick(); err != nil {
					return err
				}
				candidates, keyOK := probe(lRow)
				matched := false
				if keyOK {
					var err error
					matched, err = matchRows(st, lRow, candidates, &outs[m])
					if err != nil {
						return err
					}
				}
				if matched {
					continue
				}
				switch j.Kind {
				case algebra.LeftOuterJoin:
					padded := lRow.Concat(nullPad)
					if err := ev.q.account(padded); err != nil {
						return err
					}
					outs[m] = append(outs[m], padded)
				case algebra.AntiJoin:
					if err := ev.q.account(lRow); err != nil {
						return err
					}
					outs[m] = append(outs[m], lRow)
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	for _, rows := range outs {
		out.Rows = append(out.Rows, rows...)
	}
	for _, st := range states {
		batches += st.src.batches
	}
	ev.q.recordPipe(pipeInfo{workers: used, batches: batches})
	return out, nil
}

// joinIndex is the hash-join build side: row positions bucketed by key
// hash, partitioned into shards by hash modulo. One shard is the
// serial engine's single map; with several, a probe reads exactly one
// shard, and bucket lists remain in right-row order because each shard
// scans the hash vector start to finish.
type joinIndex struct {
	shards []map[uint64][]int
}

func (ix *joinIndex) probeFor(leftPos []int) func(relation.Tuple) ([]int, bool) {
	n := uint64(len(ix.shards))
	return func(lRow relation.Tuple) ([]int, bool) {
		h, ok := hashKey(lRow, leftPos)
		if !ok {
			return nil, false
		}
		return ix.shards[h%n][h], true
	}
}

// buildJoinIndex computes the key-hash vector over the build side's
// columnar batches (morsel-parallel: workers write disjoint ranges of
// the vector), then builds the shard maps, one worker per shard.
func (e *Executor) buildJoinIndex(right *relation.Relation, rightPos []int, ev *env) (*joinIndex, int64, error) {
	n := len(right.Rows)
	hs := make([]uint64, n)
	okv := make([]bool, n)
	workers := e.pipelineWorkers(n)
	type wstate struct {
		src   *relSource
		batch *relation.Batch
	}
	states := make([]*wstate, workers)
	for w := range states {
		states[w] = &wstate{
			src:   newRelSource(right, 0, 0),
			batch: relation.NewBatch(right.Schema, relation.DefaultBatchCap),
		}
	}
	used, err := runMorsels(n, workers, func(w, m, lo, hi int) error {
		st := states[w]
		st.src.reset(lo, hi)
		base := lo
		for {
			if err := ev.q.tick(); err != nil {
				return err
			}
			if err := st.src.NextBatch(st.batch); err != nil {
				return err
			}
			bn := st.batch.Len()
			if bn == 0 {
				return nil
			}
			// Column-major hashing over the batch's columnar view: one
			// pass per key column, FNV-folding into the hash lane.
			cols := st.batch.Columns()
			for i := 0; i < bn; i++ {
				hs[base+i] = 14695981039346656037
				okv[base+i] = true
			}
			for _, p := range rightPos {
				col := cols[p]
				for i, v := range col {
					if v.IsNull() {
						okv[base+i] = false
						continue
					}
					hs[base+i] ^= v.Hash()
					hs[base+i] *= 1099511628211
				}
			}
			base += bn
		}
	})
	if err != nil {
		return nil, 0, err
	}
	var batches int64
	for _, st := range states {
		batches += st.src.batches
	}
	nShards := used
	ix := &joinIndex{shards: make([]map[uint64][]int, nShards)}
	build := func(s int) {
		m := make(map[uint64][]int, n/nShards+1)
		for ri := 0; ri < n; ri++ {
			if !okv[ri] {
				continue
			}
			h := hs[ri]
			if int(h%uint64(nShards)) == s {
				m[h] = append(m[h], ri)
			}
		}
		ix.shards[s] = m
	}
	if nShards == 1 {
		build(0)
	} else {
		var wg sync.WaitGroup
		for s := 0; s < nShards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				build(s)
			}(s)
		}
		wg.Wait()
	}
	return ix, batches, nil
}

func schemaQualifiers(s *relation.Schema) map[string]bool {
	out := map[string]bool{}
	for _, c := range s.Columns {
		out[c.Qualifier] = true
	}
	return out
}

func hashKey(row relation.Tuple, pos []int) (uint64, bool) {
	var h uint64 = 14695981039346656037
	for _, p := range pos {
		v := row[p]
		if v.IsNull() {
			return 0, false
		}
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h, true
}
