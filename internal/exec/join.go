package exec

import (
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// evalJoin evaluates all join kinds. When the predicate contains
// equi-conjuncts across the two sides, a hash join is used (build on
// the right, probe from the left); otherwise it degrades to a nested
// loop — which is exactly the degradation the paper's Figure 4 join
// baseline suffers under a ≠ correlation.
func (e *Executor) evalJoin(j *algebra.Join, ev *env) (*relation.Relation, error) {
	left, err := e.eval(j.Left, ev)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(j.Right, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = j
	if err := ev.q.fire("exec.join"); err != nil {
		return nil, err
	}
	combined := left.Schema.Concat(right.Schema)
	on, err := j.On.Bind(combined)
	if err != nil {
		return nil, err
	}
	leftQ := schemaQualifiers(left.Schema)
	rightQ := schemaQualifiers(right.Schema)
	bindings, _ := expr.SplitBindings(j.On, leftQ, rightQ)

	var outSchema *relation.Schema
	switch j.Kind {
	case algebra.SemiJoin, algebra.AntiJoin:
		outSchema = left.Schema
	default:
		outSchema = combined
	}
	out := relation.New(outSchema)
	fullRow := make(relation.Tuple, combined.Len())
	lw := left.Schema.Len()

	matchRows := func(lRow relation.Tuple, candidates []int) (bool, error) {
		copy(fullRow, lRow)
		matched := false
		for _, ri := range candidates {
			if err := ev.q.tick(); err != nil {
				return false, err
			}
			copy(fullRow[lw:], right.Rows[ri])
			tr, err := expr.EvalTri(on, fullRow)
			if err != nil {
				return false, err
			}
			if tr != value.True {
				continue
			}
			matched = true
			switch j.Kind {
			case algebra.InnerJoin, algebra.LeftOuterJoin:
				joined := fullRow.Clone()
				if err := ev.q.account(joined); err != nil {
					return false, err
				}
				out.Append(joined)
			case algebra.SemiJoin:
				if err := ev.q.account(lRow); err != nil {
					return false, err
				}
				out.Append(lRow)
				return true, nil // first match suffices
			case algebra.AntiJoin:
				return true, nil // first match disqualifies
			}
		}
		return matched, nil
	}

	// Keep only bindings that verifiably resolve on exactly one side:
	// probe keys must be sound (the full predicate re-checks every pair,
	// but a wrong key would wrongly *miss* pairs).
	var leftPos, rightPos []int
	for _, b := range bindings {
		lp, lerr := left.Schema.Find(b.Left.Qualifier, b.Left.Name)
		rp, rerr := right.Schema.Find(b.Right.Qualifier, b.Right.Name)
		if lerr != nil || rerr != nil {
			continue
		}
		if _, err := right.Schema.Find(b.Left.Qualifier, b.Left.Name); err == nil {
			continue // also resolves on the right — ambiguous, skip
		}
		if _, err := left.Schema.Find(b.Right.Qualifier, b.Right.Name); err == nil {
			continue
		}
		leftPos = append(leftPos, lp)
		rightPos = append(rightPos, rp)
	}

	var probe func(lRow relation.Tuple) ([]int, bool)
	if len(leftPos) > 0 {
		// Hash join: build on right.
		index := make(map[uint64][]int, len(right.Rows))
		for ri, row := range right.Rows {
			if h, ok := hashKey(row, rightPos); ok {
				index[h] = append(index[h], ri)
			}
		}
		probe = func(lRow relation.Tuple) ([]int, bool) {
			h, ok := hashKey(lRow, leftPos)
			if !ok {
				return nil, false
			}
			return index[h], true
		}
	} else {
		all := make([]int, len(right.Rows))
		for i := range all {
			all[i] = i
		}
		probe = func(relation.Tuple) ([]int, bool) { return all, true }
	}

	nullPad := make(relation.Tuple, right.Schema.Len())
	for _, lRow := range left.Rows {
		if err := ev.q.tick(); err != nil {
			return nil, err
		}
		candidates, keyOK := probe(lRow)
		matched := false
		if keyOK {
			var err error
			matched, err = matchRows(lRow, candidates)
			if err != nil {
				return nil, err
			}
		}
		if matched {
			continue
		}
		switch j.Kind {
		case algebra.LeftOuterJoin:
			padded := lRow.Concat(nullPad)
			if err := ev.q.account(padded); err != nil {
				return nil, err
			}
			out.Append(padded)
		case algebra.AntiJoin:
			if err := ev.q.account(lRow); err != nil {
				return nil, err
			}
			out.Append(lRow)
		}
	}
	return out, nil
}

func schemaQualifiers(s *relation.Schema) map[string]bool {
	out := map[string]bool{}
	for _, c := range s.Columns {
		out[c.Qualifier] = true
	}
	return out
}

func hashKey(row relation.Tuple, pos []int) (uint64, bool) {
	var h uint64 = 14695981039346656037
	for _, p := range pos {
		v := row[p]
		if v.IsNull() {
			return 0, false
		}
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h, true
}
