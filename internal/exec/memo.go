package exec

import (
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// subqueryMemo caches subquery predicate outcomes keyed by the outer
// correlation values — Rao & Ross's "reusing invariants" strategy
// (SIGMOD'98), which the paper cites as one of the optimization schemes
// the GMDJ framework generalizes. A subquery's truth value depends only
// on the outer columns its predicate references; outer tuples that bind
// those columns identically share one evaluation.
type subqueryMemo struct {
	keyPos []int // positions in the outer row forming the key
	cache  map[string]value.Tri
	errs   map[string]error
}

// newSubqueryMemo derives the correlation key columns of a subquery
// predicate: every outer-schema column referenced by its correlation
// predicate tree or its left operand. ok is false when the key cannot
// be derived (caching would be unsound), e.g. a predicate form the
// walker does not cover.
func newSubqueryMemo(sp *algebra.SubPred, outer *relation.Schema) (*subqueryMemo, bool) {
	pos := map[int]bool{}
	addExpr := func(e expr.Expr) {
		for _, c := range expr.Cols(e) {
			if i, err := outer.Find(c.Qualifier, c.Name); err == nil {
				pos[i] = true
			}
		}
	}
	if sp.Left != nil {
		addExpr(sp.Left)
	}
	sound := true
	var walkPred func(p algebra.Pred)
	walkPred = func(p algebra.Pred) {
		switch n := p.(type) {
		case nil:
		case *algebra.Atom:
			addExpr(n.E)
		case *algebra.PredAnd:
			for _, t := range n.Terms {
				walkPred(t)
			}
		case *algebra.PredOr:
			for _, t := range n.Terms {
				walkPred(t)
			}
		case *algebra.PredNot:
			walkPred(n.P)
		case *algebra.SubPred:
			// Nested subqueries may reference the outer block too.
			if n.Left != nil {
				addExpr(n.Left)
			}
			if n.Sub.Agg != nil && n.Sub.Agg.Arg != nil {
				addExpr(n.Sub.Agg.Arg)
			}
			walkPred(n.Sub.Where)
		default:
			sound = false
		}
	}
	walkPred(sp.Sub.Where)
	if sp.Sub.Agg != nil && sp.Sub.Agg.Arg != nil {
		addExpr(sp.Sub.Agg.Arg)
	}
	if !sound {
		return nil, false
	}
	keys := make([]int, 0, len(pos))
	for i := range pos {
		keys = append(keys, i)
	}
	// Deterministic order for the key tuple.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return &subqueryMemo{
		keyPos: keys,
		cache:  make(map[string]value.Tri),
		errs:   make(map[string]error),
	}, true
}

// key renders the correlation values of one outer row.
func (m *subqueryMemo) key(outerRow relation.Tuple) string {
	t := make(relation.Tuple, len(m.keyPos))
	for i, p := range m.keyPos {
		t[i] = outerRow[p]
	}
	return t.Key()
}

// lookup returns a cached outcome.
func (m *subqueryMemo) lookup(k string) (value.Tri, error, bool) {
	if err, ok := m.errs[k]; ok {
		return value.Unknown, err, true
	}
	if tr, ok := m.cache[k]; ok {
		return tr, nil, true
	}
	return value.Unknown, nil, false
}

// store records an outcome.
func (m *subqueryMemo) store(k string, tr value.Tri, err error) {
	if err != nil {
		m.errs[k] = err
		return
	}
	m.cache[k] = tr
}
