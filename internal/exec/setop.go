package exec

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/relation"
)

// evalSetOp implements SQL set-operation semantics: UNION, EXCEPT, and
// INTERSECT are duplicate-eliminating; UNION ALL concatenates bags.
func (e *Executor) evalSetOp(s *algebra.SetOp, ev *env) (*relation.Relation, error) {
	l, err := e.eval(s.Left, ev)
	if err != nil {
		return nil, err
	}
	r, err := e.eval(s.Right, ev)
	if err != nil {
		return nil, err
	}
	if l.Schema.Len() != r.Schema.Len() {
		return nil, fmt.Errorf("exec: %s operands have %d and %d columns", s.Kind, l.Schema.Len(), r.Schema.Len())
	}
	out := relation.New(l.Schema)
	switch s.Kind {
	case algebra.UnionAll:
		out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
		return out, nil
	case algebra.Union:
		seen := map[string]bool{}
		for _, rows := range [][]relation.Tuple{l.Rows, r.Rows} {
			for _, row := range rows {
				k := row.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				out.Append(row)
			}
		}
		return out, nil
	case algebra.Except:
		right := map[string]bool{}
		for _, row := range r.Rows {
			right[row.Key()] = true
		}
		emitted := map[string]bool{}
		for _, row := range l.Rows {
			k := row.Key()
			if right[k] || emitted[k] {
				continue
			}
			emitted[k] = true
			out.Append(row)
		}
		return out, nil
	case algebra.Intersect:
		right := map[string]bool{}
		for _, row := range r.Rows {
			right[row.Key()] = true
		}
		emitted := map[string]bool{}
		for _, row := range l.Rows {
			k := row.Key()
			if !right[k] || emitted[k] {
				continue
			}
			emitted[k] = true
			out.Append(row)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: unknown set operation %v", s.Kind)
	}
}
