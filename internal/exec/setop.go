package exec

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/relation"
)

// evalSetOp implements SQL set-operation semantics: UNION, EXCEPT, and
// INTERSECT are duplicate-eliminating; UNION ALL concatenates bags.
func (e *Executor) evalSetOp(s *algebra.SetOp, ev *env) (*relation.Relation, error) {
	l, err := e.eval(s.Left, ev)
	if err != nil {
		return nil, err
	}
	r, err := e.eval(s.Right, ev)
	if err != nil {
		return nil, err
	}
	if l.Schema.Len() != r.Schema.Len() {
		return nil, fmt.Errorf("exec: %s operands have %d and %d columns", s.Kind, l.Schema.Len(), r.Schema.Len())
	}
	ev.q.node = s
	if err := ev.q.fire("exec.setop"); err != nil {
		return nil, err
	}
	out := relation.New(l.Schema)
	emit := func(row relation.Tuple) error {
		if err := ev.q.account(row); err != nil {
			return err
		}
		out.Append(row)
		return nil
	}
	// Set operations preserve left-then-right arrival order — serial
	// folds over batch cursors; each drains its side and reports the
	// batch count.
	var batches int64
	each := func(rel *relation.Relation, fn func(row relation.Tuple) error) error {
		it := relIter(rel)
		for {
			row, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				batches += it.batches
				return nil
			}
			if err := ev.q.tick(); err != nil {
				return err
			}
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	finish := func() (*relation.Relation, error) {
		ev.q.recordPipe(pipeInfo{workers: 1, batches: batches})
		return out, nil
	}
	switch s.Kind {
	case algebra.UnionAll:
		for _, rel := range []*relation.Relation{l, r} {
			if err := each(rel, emit); err != nil {
				return nil, err
			}
		}
		return finish()
	case algebra.Union:
		seen := map[string]bool{}
		for _, rel := range []*relation.Relation{l, r} {
			err := each(rel, func(row relation.Tuple) error {
				k := row.Key()
				if seen[k] {
					return nil
				}
				seen[k] = true
				return emit(row)
			})
			if err != nil {
				return nil, err
			}
		}
		return finish()
	case algebra.Except, algebra.Intersect:
		keep := s.Kind == algebra.Intersect
		right := map[string]bool{}
		err := each(r, func(row relation.Tuple) error {
			right[row.Key()] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
		emitted := map[string]bool{}
		err = each(l, func(row relation.Tuple) error {
			k := row.Key()
			if right[k] != keep || emitted[k] {
				return nil
			}
			emitted[k] = true
			return emit(row)
		})
		if err != nil {
			return nil, err
		}
		return finish()
	default:
		return nil, fmt.Errorf("exec: unknown set operation %v", s.Kind)
	}
}
