package exec

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/relation"
)

// evalSetOp implements SQL set-operation semantics: UNION, EXCEPT, and
// INTERSECT are duplicate-eliminating; UNION ALL concatenates bags.
func (e *Executor) evalSetOp(s *algebra.SetOp, ev *env) (*relation.Relation, error) {
	l, err := e.eval(s.Left, ev)
	if err != nil {
		return nil, err
	}
	r, err := e.eval(s.Right, ev)
	if err != nil {
		return nil, err
	}
	if l.Schema.Len() != r.Schema.Len() {
		return nil, fmt.Errorf("exec: %s operands have %d and %d columns", s.Kind, l.Schema.Len(), r.Schema.Len())
	}
	ev.q.node = s
	if err := ev.q.fire("exec.setop"); err != nil {
		return nil, err
	}
	out := relation.New(l.Schema)
	emit := func(row relation.Tuple) error {
		if err := ev.q.account(row); err != nil {
			return err
		}
		out.Append(row)
		return nil
	}
	switch s.Kind {
	case algebra.UnionAll:
		for _, rows := range [][]relation.Tuple{l.Rows, r.Rows} {
			for _, row := range rows {
				if err := ev.q.tick(); err != nil {
					return nil, err
				}
				if err := emit(row); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	case algebra.Union:
		seen := map[string]bool{}
		for _, rows := range [][]relation.Tuple{l.Rows, r.Rows} {
			for _, row := range rows {
				if err := ev.q.tick(); err != nil {
					return nil, err
				}
				k := row.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				if err := emit(row); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	case algebra.Except, algebra.Intersect:
		keep := s.Kind == algebra.Intersect
		right := map[string]bool{}
		for _, row := range r.Rows {
			if err := ev.q.tick(); err != nil {
				return nil, err
			}
			right[row.Key()] = true
		}
		emitted := map[string]bool{}
		for _, row := range l.Rows {
			if err := ev.q.tick(); err != nil {
				return nil, err
			}
			k := row.Key()
			if right[k] != keep || emitted[k] {
				continue
			}
			emitted[k] = true
			if err := emit(row); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: unknown set operation %v", s.Kind)
	}
}
