package exec

import (
	"sort"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// evalSort materializes the input, orders it by the sort keys (NULLs
// sort lowest), and applies the limit.
func (e *Executor) evalSort(s *algebra.Sort, ev *env) (*relation.Relation, error) {
	in, err := e.eval(s.Input, ev)
	if err != nil {
		return nil, err
	}
	ev.q.node = s
	if err := ev.q.fire("exec.sort"); err != nil {
		return nil, err
	}
	full := ev.schema.Concat(in.Schema)
	bound := make([]expr.Expr, len(s.Keys))
	for i, k := range s.Keys {
		b, err := k.E.Bind(full)
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	// Precompute key tuples so comparisons during sorting are cheap and
	// expression errors surface before sort.Slice (which cannot fail).
	// Sorting is a blocking operator: it drains its input through the
	// batch cursor, then orders the buffered rows.
	keys := make([]relation.Tuple, in.Len())
	fullRow := make(relation.Tuple, len(ev.row)+in.Schema.Len())
	copy(fullRow, ev.row)
	it := relIter(in)
	for i := 0; ; i++ {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := ev.q.tick(); err != nil {
			return nil, err
		}
		copy(fullRow[len(ev.row):], row)
		key := make(relation.Tuple, len(bound))
		for j, b := range bound {
			v, err := b.Eval(fullRow)
			if err != nil {
				return nil, err
			}
			key[j] = v
		}
		keys[i] = key
	}
	idx := make([]int, in.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range ka {
			c := compareNullsLow(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if s.Keys[j].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := relation.New(in.Schema)
	limit := len(idx)
	if s.Limit >= 0 && s.Limit < limit {
		limit = s.Limit
	}
	for _, i := range idx[:limit] {
		if err := ev.q.account(in.Rows[i]); err != nil {
			return nil, err
		}
		out.Append(in.Rows[i])
	}
	ev.q.recordPipe(pipeInfo{workers: 1, batches: it.batches})
	return out, nil
}

// compareNullsLow orders values with NULL below everything; values of
// incomparable kinds order by kind for determinism.
func compareNullsLow(a, b value.Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := value.Compare(a, b); ok {
		return c
	}
	// Incomparable kinds: order by kind id, deterministic if odd.
	switch {
	case a.Kind() < b.Kind():
		return -1
	case a.Kind() > b.Kind():
		return 1
	default:
		return 0
	}
}
