// Package datagen produces the deterministic synthetic datasets the
// experiments run on: a TPC-R-like warehouse (the paper derived its
// test databases from the TPC-R dbgen program), the paper's
// network-flow schema (Flow, Hours, User), and the key-pair tables of
// the Figure 4 quantified-ALL experiment.
//
// All generation is driven by a seeded xorshift PRNG, so every table is
// reproducible bit-for-bit across runs and platforms.
package datagen

// PRNG is a xorshift64* pseudo-random generator. It is deliberately
// not math/rand: the star variant is stable across Go versions, trivial
// to reimplement elsewhere, and fast enough to generate millions of
// rows per second.
type PRNG struct {
	state uint64
}

// NewPRNG seeds a generator; a zero seed is mapped to a fixed non-zero
// constant (xorshift cannot leave the zero state).
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &PRNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *PRNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *PRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("datagen: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *PRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Choice picks a uniform element of items.
func (r *PRNG) Choice(items []string) string {
	return items[r.Intn(len(items))]
}
