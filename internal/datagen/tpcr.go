package datagen

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// TPCROpts sizes the TPC-R-like warehouse. The paper derived its test
// databases (50–200 MB) from the TPC-R dbgen program; this generator
// reproduces the table shapes at benchmark-selectable cardinalities.
type TPCROpts struct {
	Customers int
	Orders    int
	Lineitems int
	Suppliers int
	Parts     int
	Seed      uint64
}

// DefaultTPCR is a small configuration for examples and tests.
func DefaultTPCR() TPCROpts {
	return TPCROpts{
		Customers: 1_000,
		Orders:    10_000,
		Lineitems: 40_000,
		Suppliers: 100,
		Parts:     2_000,
		Seed:      7,
	}
}

var (
	regions  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	statuses = []string{"O", "F", "P"}
	brands   = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#33", "Brand#44", "Brand#55"}
)

// orderDateRange is the span of o_orderdate values (days).
const orderDateRange = 2400

// TPCR generates the warehouse into a fresh catalog. Foreign keys are
// uniformly distributed; monetary amounts follow dbgen-like ranges so
// aggregate comparisons select non-degenerate fractions of the data.
func TPCR(opts TPCROpts) *storage.Catalog {
	rng := NewPRNG(opts.Seed)
	cat := storage.NewCatalog()

	region := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "region", Name: "r_regionkey", Type: value.KindInt},
		relation.Column{Qualifier: "region", Name: "r_name", Type: value.KindString},
	))
	for i, name := range regions {
		region.Append(relation.Tuple{value.Int(int64(i)), value.Str(name)})
	}
	cat.Register(storage.NewTable("region", region))

	nation := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "nation", Name: "n_nationkey", Type: value.KindInt},
		relation.Column{Qualifier: "nation", Name: "n_name", Type: value.KindString},
		relation.Column{Qualifier: "nation", Name: "n_regionkey", Type: value.KindInt},
	))
	for i, name := range nations {
		nation.Append(relation.Tuple{
			value.Int(int64(i)), value.Str(name), value.Int(int64(i % len(regions))),
		})
	}
	cat.Register(storage.NewTable("nation", nation))

	supplier := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "supplier", Name: "s_suppkey", Type: value.KindInt},
		relation.Column{Qualifier: "supplier", Name: "s_name", Type: value.KindString},
		relation.Column{Qualifier: "supplier", Name: "s_nationkey", Type: value.KindInt},
		relation.Column{Qualifier: "supplier", Name: "s_acctbal", Type: value.KindFloat},
	))
	for i := 0; i < opts.Suppliers; i++ {
		supplier.Append(relation.Tuple{
			value.Int(int64(i + 1)),
			value.Str(fmt.Sprintf("Supplier#%09d", i+1)),
			value.Int(int64(rng.Intn(len(nations)))),
			value.Float(float64(rng.Int63n(1_099_999))/100 - 999.99),
		})
	}
	cat.Register(storage.NewTable("supplier", supplier))

	part := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "part", Name: "p_partkey", Type: value.KindInt},
		relation.Column{Qualifier: "part", Name: "p_name", Type: value.KindString},
		relation.Column{Qualifier: "part", Name: "p_brand", Type: value.KindString},
		relation.Column{Qualifier: "part", Name: "p_retailprice", Type: value.KindFloat},
	))
	for i := 0; i < opts.Parts; i++ {
		part.Append(relation.Tuple{
			value.Int(int64(i + 1)),
			value.Str(fmt.Sprintf("Part#%09d", i+1)),
			value.Str(brands[rng.Intn(len(brands))]),
			value.Float(900 + float64(rng.Int63n(120_000))/100),
		})
	}
	cat.Register(storage.NewTable("part", part))

	customer := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "customer", Name: "c_custkey", Type: value.KindInt},
		relation.Column{Qualifier: "customer", Name: "c_name", Type: value.KindString},
		relation.Column{Qualifier: "customer", Name: "c_nationkey", Type: value.KindInt},
		relation.Column{Qualifier: "customer", Name: "c_acctbal", Type: value.KindFloat},
		relation.Column{Qualifier: "customer", Name: "c_mktsegment", Type: value.KindString},
	))
	for i := 0; i < opts.Customers; i++ {
		customer.Append(relation.Tuple{
			value.Int(int64(i + 1)),
			value.Str(fmt.Sprintf("Customer#%09d", i+1)),
			value.Int(int64(rng.Intn(len(nations)))),
			value.Float(float64(rng.Int63n(1_099_999))/100 - 999.99),
			value.Str(segments[rng.Intn(len(segments))]),
		})
	}
	cat.Register(storage.NewTable("customer", customer))

	orders := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "orders", Name: "o_orderkey", Type: value.KindInt},
		relation.Column{Qualifier: "orders", Name: "o_custkey", Type: value.KindInt},
		relation.Column{Qualifier: "orders", Name: "o_totalprice", Type: value.KindFloat},
		relation.Column{Qualifier: "orders", Name: "o_orderdate", Type: value.KindInt},
		relation.Column{Qualifier: "orders", Name: "o_orderstatus", Type: value.KindString},
	))
	for i := 0; i < opts.Orders; i++ {
		orders.Append(relation.Tuple{
			value.Int(int64(i + 1)),
			value.Int(rng.Int63n(int64(opts.Customers)) + 1),
			value.Float(1_000 + float64(rng.Int63n(45_000_000))/100),
			value.Int(rng.Int63n(orderDateRange)),
			value.Str(statuses[rng.Intn(len(statuses))]),
		})
	}
	cat.Register(storage.NewTable("orders", orders))

	lineitem := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "lineitem", Name: "l_orderkey", Type: value.KindInt},
		relation.Column{Qualifier: "lineitem", Name: "l_partkey", Type: value.KindInt},
		relation.Column{Qualifier: "lineitem", Name: "l_suppkey", Type: value.KindInt},
		relation.Column{Qualifier: "lineitem", Name: "l_quantity", Type: value.KindInt},
		relation.Column{Qualifier: "lineitem", Name: "l_extendedprice", Type: value.KindFloat},
		relation.Column{Qualifier: "lineitem", Name: "l_shipdate", Type: value.KindInt},
	))
	for i := 0; i < opts.Lineitems; i++ {
		lineitem.Append(relation.Tuple{
			value.Int(rng.Int63n(int64(max(opts.Orders, 1))) + 1),
			value.Int(rng.Int63n(int64(max(opts.Parts, 1))) + 1),
			value.Int(rng.Int63n(int64(max(opts.Suppliers, 1))) + 1),
			value.Int(1 + rng.Int63n(50)),
			value.Float(900 + float64(rng.Int63n(9_500_000))/100),
			value.Int(rng.Int63n(orderDateRange + 120)),
		})
	}
	cat.Register(storage.NewTable("lineitem", lineitem))

	return cat
}

// KeyPairOpts sizes the Figure 4 experiment tables.
type KeyPairOpts struct {
	// Rows is the cardinality of both tables.
	Rows int
	Seed uint64
}

// valDomain bounds a_val/b_val: small enough that most A rows meet a
// counterexample within ~valDomain B rows, so early-exit strategies
// (smart nested loop, GMDJ completion) terminate quickly while full
// strategies pay the quadratic cost — the Figure 4 regime.
const valDomain = 1_000

// KeyPair generates the two key tables of the quantified-ALL
// experiment: A(a_key, a_val) with unique keys 0..n−1, and
// B(b_key, b_val) with keys drawn uniformly from the same domain.
// The benchmark's ALL predicate uses a ≠ correlation on the keys, so
// no equality binding exists anywhere — the adversarial case for both
// hash-based unnesting and the basic GMDJ.
func KeyPair(opts KeyPairOpts) *storage.Catalog {
	rng := NewPRNG(opts.Seed)
	cat := storage.NewCatalog()

	a := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "A", Name: "a_key", Type: value.KindInt},
		relation.Column{Qualifier: "A", Name: "a_val", Type: value.KindInt},
	))
	for i := 0; i < opts.Rows; i++ {
		a.Append(relation.Tuple{value.Int(int64(i)), value.Int(rng.Int63n(valDomain))})
	}
	cat.Register(storage.NewTable("A", a))

	b := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "b_key", Type: value.KindInt},
		relation.Column{Qualifier: "B", Name: "b_val", Type: value.KindInt},
	))
	for i := 0; i < opts.Rows; i++ {
		b.Append(relation.Tuple{value.Int(rng.Int63n(int64(opts.Rows))), value.Int(rng.Int63n(valDomain))})
	}
	cat.Register(storage.NewTable("B", b))

	return cat
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
