package datagen

import (
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/storage"
)

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(99), NewPRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewPRNG(100)
	same := true
	a2 := NewPRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestPRNGZeroSeed(t *testing.T) {
	r := NewPRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce the all-zero stream")
	}
}

func TestPRNGBounds(t *testing.T) {
	r := NewPRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestPRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewPRNG(1).Intn(0)
}

func TestPRNGUniformity(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewPRNG(seed)
		buckets := make([]int, 10)
		for i := 0; i < 10000; i++ {
			buckets[r.Intn(10)]++
		}
		for _, c := range buckets {
			if c < 700 || c > 1300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func tableLen(t *testing.T, cat *storage.Catalog, name string) int {
	t.Helper()
	tbl, err := cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Rel.Len()
}

func TestNetflowShape(t *testing.T) {
	opts := NetflowOpts{Flows: 1000, Hours: 12, Users: 20, Seed: 1}
	cat := Netflow(opts)
	if got := tableLen(t, cat, "Flow"); got != 1000 {
		t.Errorf("flows = %d", got)
	}
	if got := tableLen(t, cat, "Hours"); got != 12 {
		t.Errorf("hours = %d", got)
	}
	if got := tableLen(t, cat, "User"); got != 20 {
		t.Errorf("users = %d", got)
	}
	// StartTime must lie within the hour range.
	flow, _ := cat.Table("Flow")
	for _, row := range flow.Rel.Rows {
		ts := row[2].AsInt()
		if ts < 0 || ts >= 12*60 {
			t.Fatalf("StartTime %d outside dimension range", ts)
		}
	}
	// Some flows must hit well-known destinations (the examples rely
	// on it).
	hits := 0
	for _, row := range flow.Rel.Rows {
		for _, d := range wellKnownDests {
			if row[1].AsString() == d {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Error("no flows to well-known destinations")
	}
}

func TestNetflowDeterministic(t *testing.T) {
	a := Netflow(NetflowOpts{Flows: 500, Hours: 6, Users: 10, Seed: 5})
	b := Netflow(NetflowOpts{Flows: 500, Hours: 6, Users: 10, Seed: 5})
	fa, _ := a.Table("Flow")
	fb, _ := b.Table("Flow")
	if !fa.Rel.EqualBag(fb.Rel) {
		t.Error("same seed must reproduce identical Flow tables")
	}
}

func TestTPCRShape(t *testing.T) {
	opts := TPCROpts{Customers: 100, Orders: 500, Lineitems: 900, Suppliers: 10, Parts: 50, Seed: 2}
	cat := TPCR(opts)
	for name, want := range map[string]int{
		"customer": 100, "orders": 500, "lineitem": 900,
		"supplier": 10, "part": 50, "region": len(regions), "nation": len(nations),
	} {
		if got := tableLen(t, cat, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Foreign keys must be in range.
	orders, _ := cat.Table("orders")
	for _, row := range orders.Rel.Rows {
		ck := row[1].AsInt()
		if ck < 1 || ck > 100 {
			t.Fatalf("o_custkey %d out of range", ck)
		}
	}
	li, _ := cat.Table("lineitem")
	for _, row := range li.Rel.Rows {
		if ok := row[0].AsInt(); ok < 1 || ok > 500 {
			t.Fatalf("l_orderkey %d out of range", ok)
		}
	}
}

func TestTPCRDeterministic(t *testing.T) {
	o := TPCROpts{Customers: 50, Orders: 200, Lineitems: 300, Suppliers: 5, Parts: 20, Seed: 11}
	a, b := TPCR(o), TPCR(o)
	oa, _ := a.Table("orders")
	ob, _ := b.Table("orders")
	if !oa.Rel.EqualBag(ob.Rel) {
		t.Error("same seed must reproduce identical orders tables")
	}
}

func TestKeyPairShape(t *testing.T) {
	cat := KeyPair(KeyPairOpts{Rows: 300, Seed: 3})
	if tableLen(t, cat, "A") != 300 || tableLen(t, cat, "B") != 300 {
		t.Fatal("sizes wrong")
	}
	a, _ := cat.Table("A")
	seen := map[int64]bool{}
	for _, row := range a.Rel.Rows {
		k := row[0].AsInt()
		if seen[k] {
			t.Fatalf("duplicate a_key %d", k)
		}
		seen[k] = true
	}
	b, _ := cat.Table("B")
	for _, row := range b.Rel.Rows {
		if k := row[0].AsInt(); k < 0 || k >= 300 {
			t.Fatalf("b_key %d out of domain", k)
		}
	}
}
