package datagen

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// NetflowOpts sizes the paper's motivating-example schema.
type NetflowOpts struct {
	// Flows is the number of rows in the Flow fact table.
	Flows int
	// Hours is the number of hour buckets in the time dimension.
	Hours int
	// Users is the number of registered user accounts; each maps to
	// one source IP.
	Users int
	// Seed drives the PRNG.
	Seed uint64
}

// DefaultNetflow are laptop-friendly defaults for examples.
func DefaultNetflow() NetflowOpts {
	return NetflowOpts{Flows: 50_000, Hours: 24, Users: 40, Seed: 42}
}

// wellKnownDests are destination IPs the paper's examples filter on.
var wellKnownDests = []string{"167.167.167.0", "168.168.168.0", "169.169.169.0"}

// Netflow registers the Flow, Hours, and User tables into a fresh
// catalog.
//
// Flow(SourceIP, DestIP, StartTime, Protocol, NumBytes): StartTime is
// minutes since epoch within [0, Hours*60); ~1/8 of destinations hit
// the paper's well-known IPs so EXISTS-style filters select non-trivial
// subsets.
func Netflow(opts NetflowOpts) *storage.Catalog {
	rng := NewPRNG(opts.Seed)
	cat := storage.NewCatalog()

	userIPs := make([]string, opts.Users)
	for i := range userIPs {
		userIPs[i] = fmt.Sprintf("10.0.%d.%d", i/250, i%250+1)
	}

	user := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "User", Name: "Name", Type: value.KindString},
		relation.Column{Qualifier: "User", Name: "IPAddress", Type: value.KindString},
	))
	for i, ip := range userIPs {
		user.Append(relation.Tuple{value.Str(fmt.Sprintf("user%04d", i)), value.Str(ip)})
	}
	cat.Register(storage.NewTable("User", user))

	hours := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Hours", Name: "HourDsc", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "StartInterval", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "EndInterval", Type: value.KindInt},
	))
	for h := 0; h < opts.Hours; h++ {
		hours.Append(relation.Tuple{
			value.Int(int64(h + 1)),
			value.Int(int64(h * 60)),
			value.Int(int64((h + 1) * 60)),
		})
	}
	cat.Register(storage.NewTable("Hours", hours))

	protocols := []string{"HTTP", "HTTP", "HTTP", "FTP", "SMTP", "DNS"} // HTTP-heavy mix
	flow := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Flow", Name: "SourceIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "DestIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "StartTime", Type: value.KindInt},
		relation.Column{Qualifier: "Flow", Name: "Protocol", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "NumBytes", Type: value.KindInt},
	))
	for i := 0; i < opts.Flows; i++ {
		src := userIPs[rng.Intn(len(userIPs))]
		var dst string
		if rng.Intn(8) == 0 {
			dst = wellKnownDests[rng.Intn(len(wellKnownDests))]
		} else {
			dst = fmt.Sprintf("192.168.%d.%d", rng.Intn(256), rng.Intn(254)+1)
		}
		flow.Append(relation.Tuple{
			value.Str(src),
			value.Str(dst),
			value.Int(rng.Int63n(int64(opts.Hours) * 60)),
			value.Str(protocols[rng.Intn(len(protocols))]),
			value.Int(40 + rng.Int63n(1_000_000)),
		})
	}
	cat.Register(storage.NewTable("Flow", flow))

	return cat
}
