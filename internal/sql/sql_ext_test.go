package sql

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/engine"
)

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT HourDsc FROM Hours ORDER BY HourDsc DESC", engine.Native)
	if out.Len() != 6 || out.Rows[0][0].AsInt() != 6 || out.Rows[5][0].AsInt() != 1 {
		t.Errorf("DESC order wrong: %v", out.Rows)
	}
	out = runQuery(t, e, "SELECT HourDsc FROM Hours ORDER BY HourDsc ASC LIMIT 2", engine.Native)
	if out.Len() != 2 || out.Rows[0][0].AsInt() != 1 || out.Rows[1][0].AsInt() != 2 {
		t.Errorf("LIMIT wrong: %v", out.Rows)
	}
	// LIMIT without ORDER BY.
	out = runQuery(t, e, "SELECT * FROM Flow LIMIT 5", engine.Native)
	if out.Len() != 5 {
		t.Errorf("bare LIMIT = %d rows", out.Len())
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e,
		"SELECT Protocol, NumBytes FROM Flow ORDER BY Protocol ASC, NumBytes DESC LIMIT 50",
		engine.Native)
	for i := 1; i < out.Len(); i++ {
		p0, p1 := out.Rows[i-1][0].AsString(), out.Rows[i][0].AsString()
		if p0 > p1 {
			t.Fatalf("row %d: protocol order violated (%s > %s)", i, p0, p1)
		}
		if p0 == p1 && out.Rows[i-1][1].AsInt() < out.Rows[i][1].AsInt() {
			t.Fatalf("row %d: bytes DESC violated within group", i)
		}
	}
}

func TestOrderByThroughGMDJStrategy(t *testing.T) {
	e := testEngine()
	q := `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	        SELECT * FROM Flow f
	        WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval)
	      ORDER BY h.HourDsc DESC`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		got := runQuery(t, e, q, s)
		if got.Len() != native.Len() {
			t.Fatalf("%v row count differs", s)
		}
		for i := range got.Rows {
			if got.Rows[i][0].AsInt() != native.Rows[i][0].AsInt() {
				t.Errorf("%v order differs at %d", s, i)
			}
		}
	}
}

func TestHaving(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e,
		`SELECT Protocol, COUNT(*) AS n FROM Flow GROUP BY Protocol HAVING n > 50`,
		engine.Native)
	for _, row := range out.Rows {
		if row[1].AsInt() <= 50 {
			t.Errorf("HAVING leaked group with n = %v", row[1])
		}
	}
	if _, err := Parse("SELECT Protocol FROM Flow HAVING Protocol = 'x'"); err == nil {
		t.Error("HAVING without GROUP BY must fail")
	}
}

func TestBetween(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT * FROM Hours WHERE HourDsc BETWEEN 2 AND 4", engine.Native)
	if out.Len() != 3 {
		t.Errorf("BETWEEN rows = %d, want 3", out.Len())
	}
	out = runQuery(t, e, "SELECT * FROM Hours WHERE HourDsc NOT BETWEEN 2 AND 4", engine.Native)
	if out.Len() != 3 {
		t.Errorf("NOT BETWEEN rows = %d, want 3", out.Len())
	}
}

func TestLike(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT DISTINCT Protocol FROM Flow WHERE Protocol LIKE 'H%'", engine.Native)
	if out.Len() != 1 || out.Rows[0][0].AsString() != "HTTP" {
		t.Errorf("LIKE = %v", out.Rows)
	}
	out = runQuery(t, e, "SELECT DISTINCT Protocol FROM Flow WHERE Protocol NOT LIKE '%T%'", engine.Native)
	for _, row := range out.Rows {
		if strings.Contains(row[0].AsString(), "T") {
			t.Errorf("NOT LIKE leaked %v", row[0])
		}
	}
	out = runQuery(t, e, "SELECT DISTINCT Protocol FROM Flow WHERE Protocol LIKE '_TT_'", engine.Native)
	if out.Len() != 1 {
		t.Errorf("underscore LIKE = %v", out.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	e := testEngine()
	q := `SELECT big.Protocol, COUNT(*) AS n
	      FROM (SELECT Protocol, NumBytes FROM Flow WHERE NumBytes > 500000) AS big
	      GROUP BY big.Protocol`
	out := runQuery(t, e, q, engine.Native)
	if out.Len() == 0 {
		t.Fatal("derived table query returned nothing")
	}
	var total int64
	for _, row := range out.Rows {
		total += row[1].AsInt()
	}
	direct := runQuery(t, e, "SELECT COUNT(*) AS n FROM Flow WHERE NumBytes > 500000", engine.Native)
	if total != direct.Rows[0][0].AsInt() {
		t.Errorf("derived-table total %d != direct %d", total, direct.Rows[0][0].AsInt())
	}
	if _, err := Parse("SELECT * FROM (SELECT * FROM Flow)"); err == nil {
		t.Error("derived table without alias must fail")
	}
}

func TestCountDistinctAndStddev(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e,
		"SELECT COUNT(DISTINCT Protocol) AS p, STDDEV(NumBytes) AS s, VARIANCE(NumBytes) AS v FROM Flow",
		engine.Native)
	if out.Rows[0][0].AsInt() < 2 {
		t.Errorf("count distinct = %v", out.Rows[0][0])
	}
	sd, va := out.Rows[0][1].AsFloat(), out.Rows[0][2].AsFloat()
	if sd <= 0 || va <= 0 {
		t.Errorf("stddev/var = %v/%v", sd, va)
	}
	if diff := sd*sd - va; diff > 1e-6*va || diff < -1e-6*va {
		t.Errorf("stddev² (%g) != variance (%g)", sd*sd, va)
	}
}

func TestSubqueryInsideDerivedTable(t *testing.T) {
	e := testEngine()
	q := `SELECT d.HourDsc FROM (
	        SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	          SELECT * FROM Flow f
	          WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	            AND f.Protocol = 'FTP')) AS d
	      ORDER BY d.HourDsc`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.GMDJ, engine.GMDJOpt} {
		got := runQuery(t, e, q, s)
		if d := native.Diff(got); d != "" {
			t.Errorf("%v differs: %s", s, d)
		}
	}
}

func TestOrderByNullsFirstAscending(t *testing.T) {
	e := testEngine()
	// Build a table with NULLs via the engine's own catalog path is
	// exercised elsewhere; here check the comparator through a query
	// over existing data sorted by an expression that can be NULL.
	out := runQuery(t, e,
		"SELECT NumBytes / 0 AS x, NumBytes FROM Flow ORDER BY x ASC LIMIT 3", engine.Native)
	for _, row := range out.Rows {
		if !row[0].IsNull() {
			t.Errorf("division by zero should sort NULLs first: %v", row)
		}
	}
}
