package sql

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/relation"
)

func testEngine() *engine.Engine {
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: 400, Hours: 6, Users: 8, Seed: 21})
	return engine.New(cat)
}

func mustParse(t *testing.T, q string) algebra.Node {
	t.Helper()
	plan, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return plan
}

func runQuery(t *testing.T, e *engine.Engine, q string, s engine.Strategy) *relation.Relation {
	t.Helper()
	plan := mustParse(t, q)
	out, err := e.Run(plan, s)
	if err != nil {
		t.Fatalf("Run(%q, %v): %v", q, s, err)
	}
	return out
}

func TestParseSimpleSelect(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT * FROM Hours", engine.Native)
	if out.Len() != 6 {
		t.Errorf("rows = %d", out.Len())
	}
	out = runQuery(t, e, "SELECT HourDsc FROM Hours WHERE StartInterval >= 120", engine.Native)
	if out.Len() != 4 || out.Schema.Len() != 1 {
		t.Errorf("rows = %d, cols = %d", out.Len(), out.Schema.Len())
	}
}

func TestParseAliasAndQualified(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT H.HourDsc FROM Hours H WHERE H.HourDsc = 3", engine.Native)
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 3 {
		t.Errorf("got %v", out.Rows)
	}
	out = runQuery(t, e, "SELECT h.HourDsc AS hr FROM Hours AS h WHERE h.HourDsc <= 2", engine.Native)
	if out.Len() != 2 || out.Schema.Columns[0].Name != "hr" {
		t.Errorf("alias handling wrong: %v", out.Schema)
	}
}

func TestParseDistinctAndExpressions(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT DISTINCT Protocol FROM Flow", engine.Native)
	if out.Len() < 2 || out.Len() > 6 {
		t.Errorf("distinct protocols = %d", out.Len())
	}
	out = runQuery(t, e, "SELECT NumBytes / 2 AS half FROM Flow WHERE NumBytes >= 100", engine.Native)
	if out.Schema.Columns[0].Name != "half" {
		t.Error("computed alias lost")
	}
}

func TestParseStringAndArithPrecedence(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e,
		"SELECT * FROM Flow WHERE Protocol = 'HTTP' AND NumBytes + 2 * 10 > 60", engine.Native)
	for _, row := range out.Rows {
		if row[3].AsString() != "HTTP" {
			t.Fatal("string predicate failed")
		}
		if row[4].AsInt()+20 <= 60 {
			t.Fatal("precedence wrong: * must bind tighter than +")
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e,
		"SELECT Protocol, COUNT(*) AS cnt, SUM(NumBytes) AS total FROM Flow GROUP BY Protocol",
		engine.Native)
	if out.Schema.Len() != 3 {
		t.Fatalf("cols = %d", out.Schema.Len())
	}
	var totalCnt int64
	for _, row := range out.Rows {
		totalCnt += row[1].AsInt()
	}
	if totalCnt != 400 {
		t.Errorf("counts sum to %d, want 400", totalCnt)
	}
}

func TestParseGroupByValidation(t *testing.T) {
	if _, err := Parse("SELECT Protocol, NumBytes FROM Flow GROUP BY Protocol"); err == nil {
		t.Error("ungrouped column must be rejected")
	}
	if _, err := Parse("SELECT * FROM Flow GROUP BY Protocol"); err == nil {
		t.Error("* with GROUP BY must be rejected")
	}
}

func TestParseExistsSubquery(t *testing.T) {
	e := testEngine()
	q := `SELECT H.HourDsc FROM Hours H WHERE EXISTS (
	        SELECT * FROM Flow F
	        WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval
	          AND F.Protocol = 'FTP')`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		got := runQuery(t, e, q, s)
		if d := native.Diff(got); d != "" {
			t.Errorf("%v differs: %s", s, d)
		}
	}
}

func TestParseNotExistsAndNot(t *testing.T) {
	e := testEngine()
	q := `SELECT H.HourDsc FROM Hours H WHERE NOT EXISTS (
	        SELECT * FROM Flow F
	        WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval
	          AND F.Protocol = 'DNS')`
	native := runQuery(t, e, q, engine.Native)
	qNot := strings.Replace(q, "NOT EXISTS", "NOT  EXISTS", 1)
	if d := native.Diff(runQuery(t, e, qNot, engine.GMDJ)); d != "" {
		t.Error(d)
	}
}

func TestParseInNotIn(t *testing.T) {
	e := testEngine()
	q := `SELECT U.Name FROM User U WHERE U.IPAddress IN (SELECT F.SourceIP FROM Flow F)`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := native.Diff(runQuery(t, e, q, s)); d != "" {
			t.Errorf("%v differs: %s", s, d)
		}
	}
	q2 := `SELECT U.Name FROM User U WHERE U.IPAddress NOT IN
	        (SELECT F.SourceIP FROM Flow F WHERE F.NumBytes > 500000)`
	native2 := runQuery(t, e, q2, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := native2.Diff(runQuery(t, e, q2, s)); d != "" {
			t.Errorf("%v differs on NOT IN: %s", s, d)
		}
	}
}

func TestParseQuantified(t *testing.T) {
	e := testEngine()
	q := `SELECT H.HourDsc FROM Hours H WHERE H.StartInterval < ANY
	        (SELECT F.StartTime FROM Flow F WHERE F.Protocol = 'HTTP')`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := native.Diff(runQuery(t, e, q, s)); d != "" {
			t.Errorf("%v differs on ANY: %s", s, d)
		}
	}
	qAll := `SELECT H.HourDsc FROM Hours H WHERE H.EndInterval > ALL
	          (SELECT F.StartTime FROM Flow F WHERE F.NumBytes < 1000)`
	nativeAll := runQuery(t, e, qAll, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := nativeAll.Diff(runQuery(t, e, qAll, s)); d != "" {
			t.Errorf("%v differs on ALL: %s", s, d)
		}
	}
}

func TestParseScalarAggregateSubquery(t *testing.T) {
	e := testEngine()
	q := `SELECT F.SourceIP, F.NumBytes FROM Flow F WHERE F.NumBytes > (
	        SELECT AVG(G.NumBytes) FROM Flow G WHERE G.Protocol = F.Protocol)`
	native := runQuery(t, e, q, engine.Native)
	if native.Len() == 0 {
		t.Fatal("query should select some rows")
	}
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := native.Diff(runQuery(t, e, q, s)); d != "" {
			t.Errorf("%v differs on scalar aggregate: %s", s, d)
		}
	}
}

func TestParseIsNull(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT * FROM Flow WHERE NumBytes IS NOT NULL", engine.Native)
	if out.Len() != 400 {
		t.Errorf("IS NOT NULL rows = %d", out.Len())
	}
	out = runQuery(t, e, "SELECT * FROM Flow WHERE NumBytes IS NULL", engine.Native)
	if out.Len() != 0 {
		t.Errorf("IS NULL rows = %d", out.Len())
	}
}

func TestParseParenthesizedPredicates(t *testing.T) {
	e := testEngine()
	q := `SELECT * FROM Hours H WHERE (H.HourDsc = 1 OR H.HourDsc = 2) AND H.StartInterval >= 0`
	out := runQuery(t, e, q, engine.Native)
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2", out.Len())
	}
	// Parenthesized arithmetic on the left of a comparison.
	q2 := `SELECT * FROM Hours H WHERE (H.StartInterval + H.EndInterval) / 2 > 100`
	if _, err := Parse(q2); err != nil {
		t.Errorf("parenthesized arithmetic: %v", err)
	}
}

func TestParseMultiTableFrom(t *testing.T) {
	e := testEngine()
	q := `SELECT H.HourDsc, COUNT(*) AS cnt FROM Hours H, Flow F
	       WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval
	       GROUP BY H.HourDsc`
	out := runQuery(t, e, q, engine.Native)
	var total int64
	for _, row := range out.Rows {
		total += row[1].AsInt()
	}
	if total != 400 {
		t.Errorf("join-group total = %d, want 400 (every flow in exactly one hour)", total)
	}
}

func TestParseNestedTwoLevels(t *testing.T) {
	e := testEngine()
	q := `SELECT U.Name FROM User U WHERE NOT EXISTS (
	        SELECT * FROM Hours H WHERE NOT EXISTS (
	          SELECT * FROM Flow F
	          WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval
	            AND F.SourceIP = U.IPAddress))`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		if d := native.Diff(runQuery(t, e, q, s)); d != "" {
			t.Errorf("%v differs on division query: %s", s, d)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	plan := mustParse(t, "SELECT * FROM Flow WHERE Protocol = 'it''s'")
	if !strings.Contains(plan.String(), "it's") {
		t.Errorf("escape not handled: %s", plan)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FORM Flow",
		"SELECT * FROM Flow WHERE",
		"SELECT * FROM Flow WHERE Protocol =",
		"SELECT * FROM Flow WHERE EXISTS Flow",
		"SELECT * FROM Flow WHERE x IN (SELECT a, b FROM Flow)",
		"SELECT * FROM Flow extra garbage here ~",
		"SELECT * FROM Flow WHERE Protocol = 'unterminated",
		"SELECT *, Protocol FROM Flow",
		"SELECT * FROM Flow WHERE a ! b",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	e := testEngine()
	out := runQuery(t, e, "SELECT * FROM Flow WHERE NumBytes > -1 AND NumBytes > 0.5", engine.Native)
	if out.Len() != 400 {
		t.Errorf("rows = %d", out.Len())
	}
}

func TestParsedPlansAgreeAcrossStrategiesRandomly(t *testing.T) {
	e := testEngine()
	queries := []string{
		`SELECT H.HourDsc FROM Hours H WHERE EXISTS (SELECT * FROM Flow F WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval) AND H.HourDsc > 1`,
		`SELECT U.Name FROM User U WHERE U.IPAddress IN (SELECT F.SourceIP FROM Flow F WHERE F.Protocol = 'HTTP') AND U.Name <> 'user0003'`,
		`SELECT H.HourDsc FROM Hours H WHERE NOT EXISTS (SELECT * FROM Flow F WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval AND F.NumBytes > 900000)`,
	}
	for _, q := range queries {
		native := runQuery(t, e, q, engine.Native)
		for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
			if d := native.Diff(runQuery(t, e, q, s)); d != "" {
				t.Errorf("query %q strategy %v differs: %s", q, s, d)
			}
		}
	}
}
