package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// Statement is one parsed SQL statement: a query or a DDL/DML command.
type Statement interface{ isStatement() }

// SelectStmt wraps a query plan.
type SelectStmt struct {
	Plan algebra.Node
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name string
	Cols []relation.Column
}

// InsertStmt is INSERT INTO name VALUES (...), (...). Only literal
// values are supported.
type InsertStmt struct {
	Table string
	Rows  []relation.Tuple
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

func (*SelectStmt) isStatement()      {}
func (*CreateTableStmt) isStatement() {}
func (*InsertStmt) isStatement()      {}
func (*DropTableStmt) isStatement()   {}

// ddl keywords are recognized case-insensitively here rather than in
// the shared keyword table (so they stay usable as identifiers inside
// queries).
func identIs(t token, word string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, word)
}

// ParseStatement parses a single statement: SELECT (returning a plan),
// CREATE TABLE, INSERT INTO ... VALUES, or DROP TABLE.
func ParseStatement(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 || toks[0].kind == tokEOF {
		return nil, fmt.Errorf("sql: empty statement")
	}
	switch {
	case toks[0].kind == tokKeyword && toks[0].text == "SELECT":
		plan, err := Parse(input)
		if err != nil {
			return nil, err
		}
		return &SelectStmt{Plan: plan}, nil
	case identIs(toks[0], "CREATE"):
		return parseCreate(&parser{toks: toks, src: input})
	case identIs(toks[0], "INSERT"):
		return parseInsert(&parser{toks: toks, src: input})
	case identIs(toks[0], "DROP"):
		return parseDrop(&parser{toks: toks, src: input})
	default:
		return nil, fmt.Errorf("sql: unsupported statement starting with %q", toks[0].text)
	}
}

func parseCreate(p *parser) (Statement, error) {
	p.next() // CREATE
	if !identIs(p.peek(), "TABLE") {
		return nil, p.errf("expected TABLE after CREATE")
	}
	p.next()
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var cols []relation.Column
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tt := p.next()
		kind, err := typeKind(tt)
		if err != nil {
			return nil, err
		}
		cols = append(cols, relation.Column{Qualifier: name.text, Name: cn.text, Type: kind})
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after CREATE TABLE")
	}
	return &CreateTableStmt{Name: name.text, Cols: cols}, nil
}

func typeKind(t token) (value.Kind, error) {
	if t.kind != tokIdent && t.kind != tokKeyword {
		return value.KindNull, fmt.Errorf("sql: expected a type name, found %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER", "BIGINT":
		return value.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return value.KindFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return value.KindString, nil
	case "BOOL", "BOOLEAN":
		return value.KindBool, nil
	default:
		return value.KindNull, fmt.Errorf("sql: unknown type %q", t.text)
	}
}

func parseInsert(p *parser) (Statement, error) {
	p.next() // INSERT
	if !identIs(p.peek(), "INTO") {
		return nil, p.errf("expected INTO after INSERT")
	}
	p.next()
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if !identIs(p.peek(), "VALUES") {
		return nil, p.errf("expected VALUES")
	}
	p.next()
	var rows []relation.Tuple
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row relation.Tuple
		for {
			v, err := parseLiteral(p)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after VALUES")
	}
	return &InsertStmt{Table: name.text, Rows: rows}, nil
}

func parseLiteral(p *parser) (value.Value, error) {
	neg := p.accept(tokOp, "-")
	t := p.next()
	switch {
	case t.kind == tokNumber:
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Null, p.errf("bad number %q", t.text)
			}
			if neg {
				f = -f
			}
			return value.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, p.errf("bad number %q", t.text)
		}
		if neg {
			n = -n
		}
		return value.Int(n), nil
	case neg:
		return value.Null, p.errf("expected a number after -")
	case t.kind == tokString:
		return value.Str(t.text), nil
	case t.kind == tokKeyword && t.text == "NULL":
		return value.Null, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		return value.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		return value.Bool(false), nil
	default:
		return value.Null, p.errf("expected a literal, found %q", t.text)
	}
}

func parseDrop(p *parser) (Statement, error) {
	p.next() // DROP
	if !identIs(p.peek(), "TABLE") {
		return nil, p.errf("expected TABLE after DROP")
	}
	p.next()
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after DROP TABLE")
	}
	return &DropTableStmt{Name: name.text}, nil
}
