package sql

import (
	"testing"

	"github.com/olaplab/gmdj/internal/engine"
)

func TestUnionDistinctAndAll(t *testing.T) {
	e := testEngine()
	u := runQuery(t, e,
		"SELECT Protocol FROM Flow UNION SELECT Protocol FROM Flow", engine.Native)
	d := runQuery(t, e, "SELECT DISTINCT Protocol FROM Flow", engine.Native)
	if u.Len() != d.Len() {
		t.Errorf("UNION should dedup: %d vs %d", u.Len(), d.Len())
	}
	ua := runQuery(t, e,
		"SELECT Protocol FROM Flow UNION ALL SELECT Protocol FROM Flow", engine.Native)
	if ua.Len() != 800 {
		t.Errorf("UNION ALL = %d rows, want 800", ua.Len())
	}
}

func TestExceptIntersect(t *testing.T) {
	e := testEngine()
	ex := runQuery(t, e,
		`SELECT Protocol FROM Flow EXCEPT SELECT Protocol FROM Flow WHERE Protocol = 'HTTP'`,
		engine.Native)
	for _, row := range ex.Rows {
		if row[0].AsString() == "HTTP" {
			t.Error("EXCEPT leaked HTTP")
		}
	}
	in := runQuery(t, e,
		`SELECT Protocol FROM Flow INTERSECT SELECT Protocol FROM Flow WHERE Protocol = 'HTTP'`,
		engine.Native)
	if in.Len() != 1 || in.Rows[0][0].AsString() != "HTTP" {
		t.Errorf("INTERSECT = %v", in.Rows)
	}
}

// TestDivisionViaExcept expresses the paper's Example 3.3 relational
// division in the set-difference style the APPLY comparison produces:
// users minus users with a missing hour.
func TestDivisionViaExcept(t *testing.T) {
	e := testEngine()
	division := `
	  SELECT u.IPAddress FROM User u
	  EXCEPT
	  SELECT u2.IPAddress FROM User u2, Hours h
	  WHERE NOT EXISTS (SELECT * FROM Flow f
	                    WHERE f.StartTime >= h.StartInterval
	                      AND f.StartTime < h.EndInterval
	                      AND f.SourceIP = u2.IPAddress)`
	nested := `
	  SELECT u.IPAddress FROM User u
	  WHERE NOT EXISTS (
	    SELECT * FROM Hours h
	    WHERE NOT EXISTS (
	      SELECT * FROM Flow f
	      WHERE f.StartTime >= h.StartInterval
	        AND f.StartTime < h.EndInterval
	        AND f.SourceIP = u.IPAddress))`
	a := runQuery(t, e, division, engine.Native)
	b := runQuery(t, e, nested, engine.GMDJOpt)
	if a.Len() != b.Len() {
		t.Errorf("set-difference division (%d) and double-negation GMDJ (%d) disagree",
			a.Len(), b.Len())
	}
}

func TestSetOpThroughAllStrategies(t *testing.T) {
	e := testEngine()
	q := `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
	        SELECT * FROM Flow f
	        WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	          AND f.Protocol = 'FTP')
	      UNION
	      SELECT h2.HourDsc FROM Hours h2 WHERE h2.HourDsc = 1`
	native := runQuery(t, e, q, engine.Native)
	for _, s := range []engine.Strategy{engine.Unnest, engine.GMDJ, engine.GMDJOpt} {
		got := runQuery(t, e, q, s)
		if d := native.Diff(got); d != "" {
			t.Errorf("%v differs: %s", s, d)
		}
	}
}

func TestSetOpWidthMismatch(t *testing.T) {
	e := testEngine()
	plan := mustParse(t, "SELECT HourDsc FROM Hours UNION SELECT HourDsc, StartInterval FROM Hours")
	if _, err := e.Run(plan, engine.Native); err == nil {
		t.Error("width mismatch must error")
	}
}

func TestSetOpInDerivedTable(t *testing.T) {
	e := testEngine()
	q := `SELECT COUNT(*) AS n FROM (
	        SELECT Protocol FROM Flow WHERE Protocol = 'FTP'
	        UNION
	        SELECT Protocol FROM Flow WHERE Protocol = 'DNS') AS p`
	out := runQuery(t, e, q, engine.Native)
	if out.Rows[0][0].AsInt() != 2 {
		t.Errorf("derived set-op count = %v, want 2", out.Rows[0][0])
	}
}
