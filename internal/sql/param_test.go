package sql

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
)

func TestParsePlaceholders(t *testing.T) {
	plan, err := Parse(`SELECT name FROM users WHERE score > ? AND ip = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n := algebra.ParamCount(plan); n != 2 {
		t.Fatalf("ParamCount = %d, want 2", n)
	}
	plan, err = Parse(`SELECT name FROM users WHERE ip = $2 OR name = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if n := algebra.ParamCount(plan); n != 2 {
		t.Fatalf("ParamCount = %d, want 2", n)
	}
}

func TestParsePlaceholderInSubquery(t *testing.T) {
	plan, err := Parse(`SELECT u.name FROM users u WHERE EXISTS (
		SELECT * FROM flows f WHERE f.src = u.ip AND f.bytes > ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if n := algebra.ParamCount(plan); n != 1 {
		t.Fatalf("ParamCount = %d, want 1", n)
	}
}

func TestParsePlaceholderErrors(t *testing.T) {
	cases := []struct{ q, want string }{
		{`SELECT x FROM t WHERE x = ? AND y = $1`, "mix"},
		{`SELECT x FROM t WHERE x = $1 AND y = ?`, "mix"},
		{`SELECT x FROM t WHERE x = $0`, "ordinals start"},
		{`SELECT x FROM t WHERE x = $`, "digits"},
	}
	for _, c := range cases {
		if _, err := Parse(c.q); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.q, err, c.want)
		}
	}
}
