package sql

import (
	"strings"
	"testing"
)

// fuzzSeeds covers every production of the grammar: projections,
// qualified and aliased references, arithmetic, the paper's correlated
// subquery forms (EXISTS, IN, ANY/ALL, scalar aggregates), grouping,
// set operations, ordering, DDL, and a sampling of malformed inputs
// that must fail cleanly.
var fuzzSeeds = []string{
	"SELECT * FROM Flow",
	"SELECT DISTINCT Protocol FROM Flow",
	"SELECT h.HourDsc AS hr FROM Hours AS h WHERE h.HourDsc <= 2",
	"SELECT NumBytes / 2 + 1 AS half FROM Flow WHERE NumBytes >= 100 AND Protocol = 'HTTP'",
	"SELECT Protocol, COUNT(*) AS cnt, SUM(NumBytes) AS total FROM Flow GROUP BY Protocol",
	"SELECT H.HourDsc FROM Hours H WHERE EXISTS (SELECT * FROM Flow F WHERE F.StartTime >= H.StartInterval)",
	"SELECT H.HourDsc FROM Hours H WHERE NOT EXISTS (SELECT * FROM Flow F WHERE F.Protocol = 'FTP')",
	"SELECT U.Name FROM User U WHERE U.IPAddress IN (SELECT F.SourceIP FROM Flow F)",
	"SELECT U.Name FROM User U WHERE U.IPAddress NOT IN (SELECT F.SourceIP FROM Flow F)",
	"SELECT H.HourDsc FROM Hours H WHERE H.StartInterval < ANY (SELECT F.StartTime FROM Flow F)",
	"SELECT H.HourDsc FROM Hours H WHERE H.EndInterval > ALL (SELECT F.StartTime FROM Flow F)",
	"SELECT F.SourceIP FROM Flow F WHERE F.NumBytes > (SELECT AVG(G.NumBytes) FROM Flow G WHERE G.Protocol = F.Protocol)",
	"SELECT * FROM Flow WHERE NumBytes IS NOT NULL OR Protocol IS NULL",
	"SELECT * FROM Hours H, Flow F WHERE F.StartTime >= H.StartInterval AND F.StartTime < H.EndInterval",
	"SELECT a FROM t ORDER BY a DESC LIMIT 10",
	"SELECT a FROM t UNION SELECT b FROM u",
	"SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v",
	"SELECT a FROM t INTERSECT SELECT b FROM u",
	"CREATE TABLE t (a INT, b STRING, c FLOAT)",
	"INSERT INTO t VALUES (1, 'x', 2.5), (NULL, '', 0.0)",
	"DROP TABLE t",
	// Malformed inputs: each must produce an error, never a panic.
	"",
	"SELECT",
	"SELECT FROM",
	"SELECT * FROM",
	"SELECT * FROM t WHERE",
	"SELECT * FROM t GROUP",
	"SELECT (((",
	"SELECT * FROM t WHERE a IN (",
	"SELECT 'unterminated FROM t",
	"INSERT INTO t VALUES (",
	"CREATE TABLE t (a",
	"\x00\xff SELECT",
	strings.Repeat("(", 1000) + "SELECT",
}

// FuzzParse asserts the parser's total-function contract on arbitrary
// bytes: ParseStatement (and Parse, which it wraps for SELECT) either
// returns a statement or an error — it never panics and never returns
// both nil. Deep nesting must be rejected by recursion limits rather
// than exhausting the stack.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := ParseStatement(input)
		if err == nil && stmt == nil {
			t.Errorf("ParseStatement(%q) returned nil statement and nil error", input)
		}
		if err != nil && stmt != nil {
			t.Errorf("ParseStatement(%q) returned both a statement and error %v", input, err)
		}
		plan, err := Parse(input)
		if err == nil && plan == nil {
			t.Errorf("Parse(%q) returned nil plan and nil error", input)
		}
	})
}

// TestFuzzSeedsParseOrFail runs the seed corpus as a plain test so the
// grammar coverage above is exercised on every `go test`, not only
// under `go test -fuzz`.
func TestFuzzSeedsParseOrFail(t *testing.T) {
	for _, seed := range fuzzSeeds {
		if _, err := ParseStatement(seed); err != nil {
			t.Logf("seed %q: %v (errors are fine; panics are not)", seed, err)
		}
	}
}
