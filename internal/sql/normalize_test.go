package sql

import (
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/value"
)

func TestNormalizeLiftsLiterals(t *testing.T) {
	text, args, explicit, err := Normalize(
		"select  name from users\nwhere score > 15 and ip = '10.0.0.1'")
	if err != nil {
		t.Fatal(err)
	}
	if explicit {
		t.Fatal("no placeholders in input, explicit should be false")
	}
	want := "SELECT name FROM users WHERE score > $1 AND ip = $2"
	if text != want {
		t.Fatalf("text = %q, want %q", text, want)
	}
	if len(args) != 2 || args[0].AsInt() != 15 || args[1].AsString() != "10.0.0.1" {
		t.Fatalf("args = %v", args)
	}
}

func TestNormalizeSharesTextAcrossConstants(t *testing.T) {
	t1, a1, _, err := Normalize("SELECT x FROM t WHERE x > 1")
	if err != nil {
		t.Fatal(err)
	}
	t2, a2, _, err := Normalize("SELECT x FROM t WHERE x > 999")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("constant-only variants differ: %q vs %q", t1, t2)
	}
	if a1[0].AsInt() != 1 || a2[0].AsInt() != 999 {
		t.Fatalf("args: %v %v", a1, a2)
	}
}

func TestNormalizeFloat(t *testing.T) {
	_, args, _, err := Normalize("SELECT x FROM t WHERE x > 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 1 || args[0].AsFloat() != 1.5 {
		t.Fatalf("args = %v", args)
	}
}

func TestNormalizeStructuralLiteralsStayInline(t *testing.T) {
	text, args, _, err := Normalize("SELECT x FROM t WHERE name LIKE 'a%' ORDER BY x LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 0 {
		t.Fatalf("structural literals were lifted: %q args %v", text, args)
	}
	wantSub := "LIKE 'a%'"
	if want := wantSub; !contains(text, want) {
		t.Fatalf("text = %q, want it to contain %q", text, want)
	}
	if !contains(text, "LIMIT 5") {
		t.Fatalf("text = %q, want inline LIMIT 5", text)
	}
}

func TestNormalizeExplicitPlaceholders(t *testing.T) {
	text, args, explicit, err := Normalize("SELECT x FROM t WHERE x > ? AND y < 3")
	if err != nil {
		t.Fatal(err)
	}
	if !explicit {
		t.Fatal("explicit should be true")
	}
	if args != nil {
		t.Fatalf("explicit queries must not auto-lift, got args %v", args)
	}
	if !contains(text, "y < 3") {
		t.Fatalf("literals must stay inline in explicit queries: %q", text)
	}
}

func TestNormalizeQuoteEscaping(t *testing.T) {
	// A string containing a quote must survive the round trip through
	// re-quoting when structural (after LIKE).
	text, _, _, err := Normalize(`SELECT x FROM t WHERE name LIKE 'o''brien%'`)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, `'o''brien%'`) {
		t.Fatalf("quote escaping lost: %q", text)
	}
	// And as a lifted argument the raw value is preserved.
	_, args, _, err := Normalize(`SELECT x FROM t WHERE name = 'o''brien'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 1 || args[0] != value.Str("o'brien") {
		t.Fatalf("args = %v", args)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
