package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// Parse translates one SELECT statement into a nested-algebra plan.
// The plan is unbound: table and column resolution happens when the
// engine executes (or rewrites) it.
func Parse(query string) (algebra.Node, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: query}
	plan, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return plan, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
	// Placeholder bookkeeping: '?' takes ordinals left to right, '$n'
	// names them explicitly; mixing the two styles in one statement is
	// rejected because the implied numbering would be ambiguous.
	qmarks  int
	dollars bool
}

// peek and next clamp at the trailing EOF token: error paths may call
// next() on EOF and then peek() again to report position, which must
// not run off the end of the token stream.
func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

// at reports whether the current token has the given kind and (when
// text is non-empty) text.
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.peek().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// parseQuery parses a SELECT block optionally combined with further
// blocks by UNION [ALL], EXCEPT, or INTERSECT (left-associative).
// ORDER BY/LIMIT bind to individual blocks in this dialect.
func (p *parser) parseQuery() (algebra.Node, error) {
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	for {
		var kind algebra.SetOpKind
		switch {
		case p.accept(tokKeyword, "UNION"):
			kind = algebra.Union
			if p.accept(tokKeyword, "ALL") {
				kind = algebra.UnionAll
			}
		case p.accept(tokKeyword, "EXCEPT"):
			kind = algebra.Except
		case p.accept(tokKeyword, "INTERSECT"):
			kind = algebra.Intersect
		default:
			return left, nil
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		left = algebra.NewSetOp(kind, left, right)
	}
}

// selectItem is one SELECT-list entry before translation.
type selectItem struct {
	star bool
	e    expr.Expr
	aggS *agg.Spec
	as   string
}

// parseSelect parses a full SELECT block and translates it.
func (p *parser) parseSelect() (algebra.Node, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	distinct := p.accept(tokKeyword, "DISTINCT")

	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}

	var where algebra.Pred
	if p.accept(tokKeyword, "WHERE") {
		where, err = p.parsePred()
		if err != nil {
			return nil, err
		}
	}

	var groupBy []*expr.Col
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, c)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}

	var having algebra.Pred
	if p.accept(tokKeyword, "HAVING") {
		if len(groupBy) == 0 {
			return nil, p.errf("HAVING requires GROUP BY")
		}
		having, err = p.parsePred()
		if err != nil {
			return nil, err
		}
	}

	var orderBy []algebra.SortKey
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := algebra.SortKey{E: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			orderBy = append(orderBy, key)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}

	limit := -1
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		limit = n
	}

	plan, err := assemble(from, where, items, distinct, groupBy, having)
	if err != nil {
		return nil, err
	}
	if len(orderBy) > 0 || limit >= 0 {
		plan = algebra.NewSort(plan, orderBy, limit)
	}
	return plan, nil
}

// assemble builds the algebra plan for a parsed block. The HAVING
// predicate (if any) applies over the grouped schema, so it may
// reference group keys and aggregate aliases.
func assemble(from algebra.Node, where algebra.Pred, items []selectItem, distinct bool, groupBy []*expr.Col, having algebra.Pred) (algebra.Node, error) {
	plan := from
	if where != nil {
		plan = algebra.NewRestrict(plan, where)
	}

	hasAgg := false
	for _, it := range items {
		if it.aggS != nil {
			hasAgg = true
		}
	}

	if len(groupBy) > 0 || hasAgg {
		var specs []agg.Spec
		var projItems []algebra.ProjItem
		for i, it := range items {
			switch {
			case it.star:
				return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
			case it.aggS != nil:
				s := *it.aggS
				if s.As == "" {
					if it.as != "" {
						s.As = it.as
					} else {
						s.As = fmt.Sprintf("agg_%d", i+1)
					}
				}
				specs = append(specs, s)
				projItems = append(projItems, algebra.ProjItem{E: expr.NewCol("", s.As)})
			default:
				c, ok := it.e.(*expr.Col)
				if !ok {
					return nil, fmt.Errorf("sql: non-aggregate SELECT item %s must be a grouped column", it.e)
				}
				found := false
				for _, g := range groupBy {
					if g.Name == c.Name && (g.Qualifier == c.Qualifier || g.Qualifier == "" || c.Qualifier == "") {
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("sql: column %s is not in GROUP BY", c)
				}
				pi := algebra.ProjItem{E: expr.NewCol(c.Qualifier, c.Name), As: it.as}
				projItems = append(projItems, pi)
			}
		}
		plan = algebra.NewGroupBy(plan, groupBy, specs)
		if having != nil {
			plan = algebra.NewRestrict(plan, having)
		}
		plan = algebra.NewProject(plan, distinct, projItems...)
		return plan, nil
	}
	if having != nil {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}

	if len(items) == 1 && items[0].star {
		if distinct {
			return algebra.NewDistinct(plan), nil
		}
		return plan, nil
	}
	projItems := make([]algebra.ProjItem, len(items))
	for i, it := range items {
		if it.star {
			return nil, fmt.Errorf("sql: * must be the only SELECT item")
		}
		projItems[i] = algebra.ProjItem{E: it.e, As: it.as}
		if _, isCol := it.e.(*expr.Col); !isCol && it.as == "" {
			projItems[i].As = fmt.Sprintf("col_%d", i+1)
		}
	}
	return algebra.NewProject(plan, distinct, projItems...), nil
}

func (p *parser) parseSelectList() ([]selectItem, error) {
	var items []selectItem
	for {
		if p.accept(tokOp, "*") {
			items = append(items, selectItem{star: true})
		} else if spec, ok, err := p.tryParseAggregate(); err != nil {
			return nil, err
		} else if ok {
			it := selectItem{aggS: spec}
			if as, err := p.parseOptionalAlias(); err != nil {
				return nil, err
			} else {
				it.as = as
			}
			items = append(items, it)
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := selectItem{e: e}
			if as, err := p.parseOptionalAlias(); err != nil {
				return nil, err
			} else {
				it.as = as
			}
			items = append(items, it)
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseOptionalAlias() (string, error) {
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		return t.text, nil
	}
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", nil
}

// tryParseAggregate recognizes COUNT(*), COUNT(x), SUM/AVG/MIN/MAX(x).
func (p *parser) tryParseAggregate() (*agg.Spec, bool, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, false, nil
	}
	var fn agg.Func
	switch t.text {
	case "COUNT":
		fn = agg.Count
	case "SUM":
		fn = agg.Sum
	case "AVG":
		fn = agg.Avg
	case "MIN":
		fn = agg.Min
	case "MAX":
		fn = agg.Max
	case "STDDEV":
		fn = agg.StdDev
	case "VARIANCE":
		fn = agg.Var
	default:
		return nil, false, nil
	}
	p.next()
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, false, err
	}
	if fn == agg.Count && p.accept(tokOp, "*") {
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, false, err
		}
		return &agg.Spec{Func: agg.CountStar}, true, nil
	}
	if fn == agg.Count && p.accept(tokKeyword, "DISTINCT") {
		fn = agg.CountDistinct
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, false, err
	}
	return &agg.Spec{Func: fn, Arg: arg}, true, nil
}

// parseFrom handles comma-separated table references (cross products)
// and parenthesized derived tables: (SELECT ...) alias.
func (p *parser) parseFrom() (algebra.Node, error) {
	var nodes []algebra.Node
	for {
		if p.accept(tokOp, "(") {
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			p.accept(tokKeyword, "AS")
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errf("derived table requires an alias")
			}
			nodes = append(nodes, algebra.NewAlias(sub, a.text))
		} else {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			alias := ""
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				alias = a.text
			} else if p.at(tokIdent, "") {
				alias = p.next().text
			}
			nodes = append(nodes, algebra.NewScan(t.text, alias))
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	plan := nodes[0]
	for _, n := range nodes[1:] {
		plan = algebra.NewJoin(algebra.InnerJoin, plan, n, expr.TrueExpr())
	}
	return plan, nil
}

// ---------------------------------------------------------------------------
// Predicates

func (p *parser) parsePred() (algebra.Pred, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (algebra.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Pred{left}
	for p.accept(tokKeyword, "OR") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return algebra.Or(terms...), nil
}

func (p *parser) parseAnd() (algebra.Pred, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Pred{left}
	for p.accept(tokKeyword, "AND") {
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return algebra.And(terms...), nil
}

func (p *parser) parseNot() (algebra.Pred, error) {
	if p.at(tokKeyword, "NOT") {
		// Disambiguate: NOT EXISTS is a primary; otherwise NOT negates
		// a predicate term.
		save := p.save()
		p.next()
		if p.at(tokKeyword, "EXISTS") {
			p.restore(save)
			return p.parsePrimaryPred()
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	}
	return p.parsePrimaryPred()
}

func (p *parser) parsePrimaryPred() (algebra.Pred, error) {
	// [NOT] EXISTS (subquery)
	if p.at(tokKeyword, "EXISTS") || p.at(tokKeyword, "NOT") {
		negated := p.accept(tokKeyword, "NOT")
		if p.accept(tokKeyword, "EXISTS") {
			sub, err := p.parseSubquery(false)
			if err != nil {
				return nil, err
			}
			if negated {
				return algebra.NotExistsPred(sub), nil
			}
			return algebra.ExistsPred(sub), nil
		}
		return nil, p.errf("expected EXISTS after NOT")
	}

	// Parenthesized predicate — but '(' may also open an arithmetic
	// expression; try predicate first and fall back.
	if p.at(tokOp, "(") {
		save := p.save()
		p.next()
		if pr, err := p.parsePred(); err == nil {
			if p.accept(tokOp, ")") {
				// Guard: "(a + b) > c" parses `a` as a predicate and
				// fails at '+'; reaching here means the full
				// parenthesized unit was a valid predicate.
				if !p.atExprContinuation() {
					return pr, nil
				}
			}
		}
		p.restore(save)
	}

	// expr [NOT] IN (sub) | expr IS [NOT] NULL | expr φ [quantifier] rhs
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}

	if p.accept(tokKeyword, "IS") {
		negated := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &algebra.Atom{E: expr.NewIsNull(left, negated)}, nil
	}

	if p.at(tokKeyword, "NOT") || p.at(tokKeyword, "IN") ||
		p.at(tokKeyword, "BETWEEN") || p.at(tokKeyword, "LIKE") {
		negated := p.accept(tokKeyword, "NOT")
		switch {
		case p.accept(tokKeyword, "BETWEEN"):
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			between := expr.NewAnd(
				expr.NewCmp(value.GE, left, lo),
				expr.NewCmp(value.LE, expr.Clone(left), hi),
			)
			if negated {
				return &algebra.Atom{E: expr.NewNot(between)}, nil
			}
			return &algebra.Atom{E: between}, nil
		case p.accept(tokKeyword, "LIKE"):
			pt, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			return &algebra.Atom{E: expr.NewLike(left, pt.text, negated)}, nil
		}
		if _, err := p.expect(tokKeyword, "IN"); err != nil {
			return nil, err
		}
		sub, err := p.parseSubquery(true)
		if err != nil {
			return nil, err
		}
		if negated {
			return algebra.NotIn(left, sub), nil
		}
		return algebra.In(left, sub), nil
	}

	op, ok := p.parseCmpOp()
	if !ok {
		return nil, p.errf("expected a comparison operator, found %q", p.peek().text)
	}

	// Quantifier?
	if p.at(tokKeyword, "ANY") || p.at(tokKeyword, "SOME") || p.at(tokKeyword, "ALL") {
		q := p.next().text
		sub, err := p.parseSubquery(true)
		if err != nil {
			return nil, err
		}
		kind := algebra.CmpSome
		if q == "ALL" {
			kind = algebra.CmpAll
		}
		return &algebra.SubPred{Kind: kind, Op: op, Left: left, Sub: sub}, nil
	}

	// Scalar subquery on the right?
	if p.at(tokOp, "(") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "SELECT" {
		sub, err := p.parseSubquery(true)
		if err != nil {
			return nil, err
		}
		return &algebra.SubPred{Kind: algebra.ScalarCmp, Op: op, Left: left, Sub: sub}, nil
	}

	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &algebra.Atom{E: expr.NewCmp(op, left, right)}, nil
}

// atExprContinuation reports whether the current token continues an
// arithmetic expression or comparison (used by the parenthesized-
// predicate fallback).
func (p *parser) atExprContinuation() bool {
	t := p.peek()
	if t.kind != tokOp {
		return false
	}
	switch t.text {
	case "+", "-", "*", "/", "=", "<", ">", "<=", ">=", "<>":
		return true
	}
	return false
}

func (p *parser) parseCmpOp() (value.CmpOp, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return 0, false
	}
	var op value.CmpOp
	switch t.text {
	case "=":
		op = value.EQ
	case "<>":
		op = value.NE
	case "<":
		op = value.LT
	case "<=":
		op = value.LE
	case ">":
		op = value.GT
	case ">=":
		op = value.GE
	default:
		return 0, false
	}
	p.next()
	return op, true
}

// parseSubquery parses "( SELECT ... )" into an algebra.Subquery.
// When needsOutput is true the subquery must have exactly one output
// item (a column or an aggregate).
func (p *parser) parseSubquery(needsOutput bool) (*algebra.Subquery, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	p.accept(tokKeyword, "DISTINCT") // duplicates are irrelevant to the predicates

	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	var where algebra.Pred
	if p.accept(tokKeyword, "WHERE") {
		where, err = p.parsePred()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}

	sub := &algebra.Subquery{Source: from, Where: where}
	if needsOutput {
		if len(items) != 1 || items[0].star {
			return nil, fmt.Errorf("sql: subquery must select exactly one column or aggregate")
		}
		it := items[0]
		switch {
		case it.aggS != nil:
			s := *it.aggS
			if s.As == "" {
				s.As = "sub_agg"
			}
			sub.Agg = &s
		default:
			c, ok := it.e.(*expr.Col)
			if !ok {
				return nil, fmt.Errorf("sql: subquery output %s must be a column or aggregate", it.e)
			}
			sub.OutCol = c
		}
	}
	return sub, nil
}

// ---------------------------------------------------------------------------
// Scalar expressions

func (p *parser) parseExpr() (expr.Expr, error) {
	return p.parseAdditive()
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.OpAdd, left, r)
		case p.accept(tokOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.OpSub, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.OpMul, left, r)
		case p.accept(tokOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.OpDiv, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.NewArith(expr.OpSub, expr.IntLit(0), e), nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.FloatLit(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.IntLit(n), nil
	case t.kind == tokString:
		p.next()
		return expr.StrLit(t.text), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return expr.NullLit(), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return expr.BoolLit(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return expr.BoolLit(false), nil
	case t.kind == tokParam:
		p.next()
		return p.placeholder(t)
	case t.kind == tokIdent:
		return p.parseColumnRef()
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected an expression, found %q", t.text)
	}
}

// placeholder turns a tokParam into an expr.Param, assigning '?'
// ordinals sequentially and taking '$n' ordinals verbatim.
func (p *parser) placeholder(t token) (expr.Expr, error) {
	if t.text == "?" {
		if p.dollars {
			return nil, p.errf("cannot mix '?' and '$n' placeholders in one statement")
		}
		p.qmarks++
		return &expr.Param{Ordinal: p.qmarks}, nil
	}
	if p.qmarks > 0 {
		return nil, p.errf("cannot mix '?' and '$n' placeholders in one statement")
	}
	p.dollars = true
	n, err := strconv.Atoi(t.text[1:])
	if err != nil || n < 1 {
		return nil, p.errf("bad placeholder %q (ordinals start at $1)", t.text)
	}
	return &expr.Param{Ordinal: n}, nil
}

func (p *parser) parseColumnRef() (*expr.Col, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokDotSep, "") {
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return expr.NewCol(t.text, n.text), nil
	}
	return expr.NewCol("", t.text), nil
}
