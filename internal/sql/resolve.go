package sql

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
)

// ParseAndResolve parses a query and then qualifies every bare column
// reference against the catalog using SQL scoping rules: a reference
// resolves in the innermost enclosing query block that provides the
// column, searching outward (which is what makes correlated subqueries
// work with unqualified names).
func ParseAndResolve(query string, res algebra.SchemaResolver) (algebra.Node, error) {
	plan, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Resolve(plan, res)
}

// Resolve qualifies bare column references throughout a plan.
func Resolve(plan algebra.Node, res algebra.SchemaResolver) (algebra.Node, error) {
	r := &resolver{res: res}
	return r.node(plan, nil)
}

type resolver struct {
	res algebra.SchemaResolver
}

// node resolves one plan node; outer is the stack of enclosing block
// schemas, outermost first.
func (r *resolver) node(n algebra.Node, outer []*relation.Schema) (algebra.Node, error) {
	switch node := n.(type) {
	case *algebra.Scan, *algebra.Raw:
		return n, nil
	case *algebra.Alias:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		return algebra.NewAlias(in, node.Name), nil
	case *algebra.Restrict:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		inSchema, err := in.Schema(r.res)
		if err != nil {
			return nil, err
		}
		w, err := r.pred(node.Where, append(stack(outer), inSchema))
		if err != nil {
			return nil, err
		}
		return algebra.NewRestrict(in, w), nil
	case *algebra.Project:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		inSchema, err := in.Schema(r.res)
		if err != nil {
			return nil, err
		}
		scopes := append(stack(outer), inSchema)
		items := make([]algebra.ProjItem, len(node.Items))
		for i, it := range node.Items {
			e, err := r.expr(it.E, scopes)
			if err != nil {
				return nil, err
			}
			items[i] = algebra.ProjItem{E: e, As: it.As}
		}
		return algebra.NewProject(in, node.Distinct, items...), nil
	case *algebra.Distinct:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		return algebra.NewDistinct(in), nil
	case *algebra.Join:
		l, err := r.node(node.Left, outer)
		if err != nil {
			return nil, err
		}
		rt, err := r.node(node.Right, outer)
		if err != nil {
			return nil, err
		}
		ls, err := l.Schema(r.res)
		if err != nil {
			return nil, err
		}
		rs, err := rt.Schema(r.res)
		if err != nil {
			return nil, err
		}
		on, err := r.expr(node.On, append(stack(outer), ls.Concat(rs)))
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(node.Kind, l, rt, on), nil
	case *algebra.GroupBy:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		inSchema, err := in.Schema(r.res)
		if err != nil {
			return nil, err
		}
		scopes := append(stack(outer), inSchema)
		keys := make([]*expr.Col, len(node.Keys))
		for i, k := range node.Keys {
			e, err := r.expr(k, scopes)
			if err != nil {
				return nil, err
			}
			c, ok := e.(*expr.Col)
			if !ok {
				return nil, fmt.Errorf("sql: GROUP BY key %s is not a column", k)
			}
			keys[i] = c
		}
		aggs := make([]agg.Spec, len(node.Aggs))
		for i, a := range node.Aggs {
			arg := a.Arg
			if arg != nil {
				var err error
				arg, err = r.expr(arg, scopes)
				if err != nil {
					return nil, err
				}
			}
			aggs[i] = agg.Spec{Func: a.Func, Arg: arg, As: a.As}
		}
		return algebra.NewGroupBy(in, keys, aggs), nil
	case *algebra.GMDJ:
		// Parser output never contains GMDJs, but resolve them anyway
		// for hand-built plans.
		b, err := r.node(node.Base, outer)
		if err != nil {
			return nil, err
		}
		d, err := r.node(node.Detail, outer)
		if err != nil {
			return nil, err
		}
		g := algebra.NewGMDJ(b, d, node.Conds...)
		g.Completion = node.Completion
		return g, nil
	case *algebra.Sort:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		inSchema, err := in.Schema(r.res)
		if err != nil {
			return nil, err
		}
		scopes := append(stack(outer), inSchema)
		keys := make([]algebra.SortKey, len(node.Keys))
		for i, k := range node.Keys {
			e, err := r.expr(k.E, scopes)
			if err != nil {
				return nil, err
			}
			keys[i] = algebra.SortKey{E: e, Desc: k.Desc}
		}
		return algebra.NewSort(in, keys, node.Limit), nil
	case *algebra.Number:
		in, err := r.node(node.Input, outer)
		if err != nil {
			return nil, err
		}
		return algebra.NewNumber(in, node.As), nil
	case *algebra.SetOp:
		l, err := r.node(node.Left, outer)
		if err != nil {
			return nil, err
		}
		rt, err := r.node(node.Right, outer)
		if err != nil {
			return nil, err
		}
		return algebra.NewSetOp(node.Kind, l, rt), nil
	default:
		return n, nil
	}
}

func stack(outer []*relation.Schema) []*relation.Schema {
	return append([]*relation.Schema{}, outer...)
}

// pred resolves predicates; scopes is outermost-first and already
// includes the current block's schema last.
func (r *resolver) pred(p algebra.Pred, scopes []*relation.Schema) (algebra.Pred, error) {
	switch n := p.(type) {
	case *algebra.Atom:
		e, err := r.expr(n.E, scopes)
		if err != nil {
			return nil, err
		}
		return &algebra.Atom{E: e}, nil
	case *algebra.PredAnd:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			q, err := r.pred(t, scopes)
			if err != nil {
				return nil, err
			}
			terms[i] = q
		}
		return &algebra.PredAnd{Terms: terms}, nil
	case *algebra.PredOr:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			q, err := r.pred(t, scopes)
			if err != nil {
				return nil, err
			}
			terms[i] = q
		}
		return &algebra.PredOr{Terms: terms}, nil
	case *algebra.PredNot:
		q, err := r.pred(n.P, scopes)
		if err != nil {
			return nil, err
		}
		return &algebra.PredNot{P: q}, nil
	case *algebra.SubPred:
		return r.subPred(n, scopes)
	default:
		return nil, fmt.Errorf("sql: unknown predicate %T", p)
	}
}

func (r *resolver) subPred(sp *algebra.SubPred, scopes []*relation.Schema) (algebra.Pred, error) {
	var left expr.Expr
	var err error
	if sp.Left != nil {
		// The left operand belongs to the enclosing block's scope.
		left, err = r.expr(sp.Left, scopes)
		if err != nil {
			return nil, err
		}
	}
	source, err := r.node(sp.Sub.Source, nil)
	if err != nil {
		return nil, err
	}
	srcSchema, err := source.Schema(r.res)
	if err != nil {
		return nil, err
	}
	subScopes := append(stack(scopes), srcSchema)
	var where algebra.Pred
	if sp.Sub.Where != nil {
		where, err = r.pred(sp.Sub.Where, subScopes)
		if err != nil {
			return nil, err
		}
	}
	sub := &algebra.Subquery{Source: source, Where: where}
	if sp.Sub.OutCol != nil {
		e, err := r.expr(sp.Sub.OutCol, subScopes)
		if err != nil {
			return nil, err
		}
		c, ok := e.(*expr.Col)
		if !ok {
			return nil, fmt.Errorf("sql: subquery output must be a column")
		}
		sub.OutCol = c
	}
	if sp.Sub.Agg != nil {
		arg := sp.Sub.Agg.Arg
		if arg != nil {
			arg, err = r.expr(arg, subScopes)
			if err != nil {
				return nil, err
			}
		}
		sub.Agg = &agg.Spec{Func: sp.Sub.Agg.Func, Arg: arg, As: sp.Sub.Agg.As}
	}
	return &algebra.SubPred{Kind: sp.Kind, Op: sp.Op, Left: left, Sub: sub}, nil
}

// expr qualifies bare columns innermost-scope-first.
func (r *resolver) expr(e expr.Expr, scopes []*relation.Schema) (expr.Expr, error) {
	var firstErr error
	out := expr.Rewrite(e, func(x expr.Expr) expr.Expr {
		c, ok := x.(*expr.Col)
		if !ok || c.Qualifier != "" {
			return x
		}
		for i := len(scopes) - 1; i >= 0; i-- {
			pos, err := scopes[i].Find("", c.Name)
			if err != nil {
				if isAmbiguous(err) && firstErr == nil {
					firstErr = fmt.Errorf("sql: ambiguous column %q", c.Name)
				}
				continue
			}
			col := scopes[i].Columns[pos]
			return expr.NewCol(col.Qualifier, col.Name)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("sql: unknown column %q", c.Name)
		}
		return x
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func isAmbiguous(err error) bool {
	return err != nil && strings.Contains(err.Error(), "ambiguous")
}
