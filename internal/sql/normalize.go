package sql

import (
	"strconv"
	"strings"

	"github.com/olaplab/gmdj/internal/value"
)

// Normalize canonicalizes a query for plan-cache keying: whitespace
// collapses to single separators, keywords upper-case, and literal
// constants are lifted into auto-parameters ($1, $2, ...) with their
// values returned in order — so two dashboard replays differing only
// in constants share one cache entry and one compiled plan template.
//
// Two literal positions are structural, not parametric, and stay
// inline: the LIMIT row count (part of the plan's shape) and LIKE
// patterns (the executor compiles the pattern at plan time). Boolean
// and NULL keywords likewise stay inline — lifting them buys no
// sharing worth the type ambiguity.
//
// A query that already contains explicit placeholders ('?' or '$n')
// is canonicalized but not auto-parameterized (explicit set → lifted
// ordinals would collide); it is returned with explicit=true and nil
// args, and the caller must obtain arguments elsewhere (a prepared
// statement) or fail.
func Normalize(query string) (text string, args []value.Value, explicit bool, err error) {
	toks, err := lex(query)
	if err != nil {
		return "", nil, false, err
	}
	for _, t := range toks {
		if t.kind == tokParam {
			explicit = true
			break
		}
	}
	var b strings.Builder
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokNumber:
			if explicit || structuralLiteral(toks, i) {
				b.WriteString(t.text)
				break
			}
			v, perr := numberValue(t.text)
			if perr != nil {
				// Leave unparseable numbers inline; the parser will
				// report them with position info.
				b.WriteString(t.text)
				break
			}
			args = append(args, v)
			b.WriteByte('$')
			b.WriteString(strconv.Itoa(len(args)))
		case tokString:
			if explicit || structuralLiteral(toks, i) {
				writeStringLit(&b, t.text)
				break
			}
			args = append(args, value.Str(t.text))
			b.WriteByte('$')
			b.WriteString(strconv.Itoa(len(args)))
		case tokDotSep:
			b.WriteString(".")
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), args, explicit, nil
}

// structuralLiteral reports whether the literal at index i shapes the
// plan itself and must therefore stay inline: LIMIT counts and LIKE
// patterns (including NOT LIKE, whose LIKE token still immediately
// precedes the pattern).
func structuralLiteral(toks []token, i int) bool {
	if i == 0 {
		return false
	}
	prev := toks[i-1]
	return prev.kind == tokKeyword && (prev.text == "LIMIT" || prev.text == "LIKE")
}

func numberValue(text string) (value.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Value{}, err
	}
	return value.Int(n), nil
}

func writeStringLit(b *strings.Builder, s string) {
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(s, "'", "''"))
	b.WriteByte('\'')
}
