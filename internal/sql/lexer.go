// Package sql provides a small SQL front end for the engine: a lexer,
// a recursive-descent parser, and a translator producing nested-algebra
// plans (internal/algebra). The dialect covers the subquery constructs
// the paper studies:
//
//	SELECT [DISTINCT] items FROM tables [WHERE pred] [GROUP BY cols]
//
// with predicates over comparisons, AND/OR/NOT, IS [NOT] NULL,
// [NOT] BETWEEN, [NOT] LIKE, [NOT] EXISTS (...), [NOT] IN (...), and
// φ ANY/SOME/ALL (...), plus scalar and aggregate subqueries in the
// right-hand position of a comparison. Blocks additionally support
// derived tables in FROM, HAVING (over SELECT aliases), ORDER BY, and
// LIMIT.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp     // comparison and arithmetic operators, parens, commas
	tokDotSep // '.' between identifiers
	tokParam  // statement placeholder: '?' or '$n'
)

// token is one lexeme with position info for error messages.
type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

// keywords of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "EXISTS": true, "IN": true, "ANY": true, "SOME": true,
	"ALL": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ORDER": true, "LIMIT": true, "HAVING": true, "BETWEEN": true,
	"LIKE": true, "ASC": true, "DESC": true, "STDDEV": true,
	"VARIANCE": true, "UNION": true, "EXCEPT": true, "INTERSECT": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
				}
				if input[j] == '\'' {
					// '' escapes a quote.
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot := false
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case c == '.':
			toks = append(toks, token{kind: tokDotSep, text: ".", pos: i})
			i++
		case strings.ContainsRune("(),*+-/=", c):
			toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
			i++
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "<>", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		case c == '$':
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sql: expected digits after '$' at offset %d", i)
			}
			toks = append(toks, token{kind: tokParam, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
