package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syncBuffer is a concurrency-safe log sink: the handler goroutine
// writes while the test goroutine polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRequestTelemetryEndToEnd drives one request through the whole
// telemetry pipeline and asserts the same request ID shows up at every
// surface: the response header, the JSON body, the structured log
// stream, the slow-query log, and the downloaded trace (where the
// serving-phase spans carry it in their args).
func TestRequestTelemetryEndToEnd(t *testing.T) {
	db := usersDB(t)
	db.EnableObservability(gmdj.ObsConfig{SlowQueryThreshold: 0})
	db.EnableTracing(4096)
	var logs syncBuffer
	s := NewServer(db, Config{
		Admin:  true,
		Logger: slog.New(slog.NewJSONHandler(&logs, nil)),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A client-supplied ID with hostile characters comes back sanitized
	// — same ID everywhere, never two.
	const rawID = "client/rid 42!"
	const rid = "client_rid_42_"
	if got := obs.SanitizeRequestID(rawID); got != rid {
		t.Fatalf("SanitizeRequestID(%q) = %q, want %q", rawID, got, rid)
	}

	body, _ := json.Marshal(map[string]any{"sql": "SELECT name FROM users WHERE score > 15"})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, rawID)
	req.Header.Set(TenantHeader, "acme")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}

	// Surface 1: the echoed response header.
	if got := resp.Header.Get(obs.RequestIDHeader); got != rid {
		t.Errorf("response header %s = %q, want %q", obs.RequestIDHeader, got, rid)
	}

	// Surface 2: the JSON body.
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID != rid {
		t.Errorf("body request_id = %q, want %q", qr.RequestID, rid)
	}
	if qr.Tenant != "acme" {
		t.Errorf("body tenant = %q, want acme", qr.Tenant)
	}

	// Surface 3: the structured log line (written after the response
	// body flushes, so poll).
	waitFor(t, "structured log line", func() bool {
		return strings.Contains(logs.String(), rid)
	})
	var line map[string]any
	for _, l := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var m map[string]any
		if json.Unmarshal([]byte(l), &m) == nil && m["request_id"] == rid {
			line = m
			break
		}
	}
	if line == nil {
		t.Fatalf("no JSON log line with request_id %q in:\n%s", rid, logs.String())
	}
	if line["msg"] != "query" || line["tenant"] != "acme" || line["kind"] != "ok" {
		t.Errorf("log line = %v, want msg=query tenant=acme kind=ok", line)
	}

	// Surface 4: the slow-query log (threshold 0 logs everything); the
	// record carries the ID the engine picked up from the context.
	var slowRaw bytes.Buffer
	if err := db.WriteSlowLog(&slowRaw); err != nil {
		t.Fatal(err)
	}
	var recs []obs.QueryRecord
	if err := json.Unmarshal(slowRaw.Bytes(), &recs); err != nil {
		t.Fatalf("slowlog is not a JSON array: %v", err)
	}
	found := false
	for _, r := range recs {
		if r.RequestID == rid {
			found = true
			if r.Tenant != "acme" || r.Outcome != "ok" {
				t.Errorf("slowlog record = %+v, want tenant=acme outcome=ok", r)
			}
		}
	}
	if !found {
		t.Errorf("no slowlog record with request_id %q: %s", rid, slowRaw.String())
	}

	// Surface 5: the downloaded trace. Server spans and the plan span
	// are tagged with the identity in their args.
	tr, err := srv.Client().Get(srv.URL + "/debug/olap/trace")
	if err != nil {
		t.Fatal(err)
	}
	trRaw, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace download status = %d", tr.StatusCode)
	}
	var traceDoc any
	if err := json.Unmarshal(trRaw, &traceDoc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	trace := string(trRaw)
	if !strings.Contains(trace, "rid="+rid+" tenant=acme") {
		t.Error("trace has no span tagged with the request identity")
	}
	for _, span := range []string{`"request"`, `"tenant-gate"`, `"execute"`, `"serialize"`} {
		if !strings.Contains(trace, span) {
			t.Errorf("trace has no %s span", span)
		}
	}
	if !strings.Contains(trace, `"plan"`) {
		t.Error("trace has no plan span from the DB layer")
	}
}

// TestRequestTelemetryErrorPaths: every error exit carries the request
// ID too — typed query errors, usage errors, and injected faults.
func TestRequestTelemetryErrorPaths(t *testing.T) {
	db := usersDB(t)
	var logs syncBuffer
	s := NewServer(db, Config{
		Faults: govern.NewInjector(map[string]string{SiteAccept: "error@2"}),
		Logger: slog.New(slog.NewJSONHandler(&logs, nil)),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// @2 faults every second request: the first passes, the second
	// fails at the accept site.
	cases := []struct {
		body map[string]any
		kind string
	}{
		{map[string]any{"sql": "SELECT x FROM nope"}, "query"},
		{map[string]any{"sql": "SELECT name FROM users"}, "unavailable"},
		{map[string]any{"sql": "   "}, "usage"},
	}
	for _, c := range cases {
		resp, raw := post(t, srv, "", c.body)
		e := decodeErr(t, raw)
		if e.Kind != c.kind {
			t.Fatalf("kind = %q, want %q (%s)", e.Kind, c.kind, raw)
		}
		if e.RequestID == "" {
			t.Errorf("%s error body has no request_id: %s", c.kind, raw)
		}
		if got := resp.Header.Get(obs.RequestIDHeader); got != e.RequestID {
			t.Errorf("%s: header rid %q != body rid %q", c.kind, got, e.RequestID)
		}
	}
	// The injected fault produced both a request log line and a
	// dedicated fault line, joined by the same request ID.
	waitFor(t, "fault log line", func() bool {
		return strings.Contains(logs.String(), "fault fired")
	})
}

// scrape pulls /metrics, validates the exposition, and returns the
// parsed samples. Safe to call from any goroutine (reports errors, so
// concurrent scrapers use t.Errorf, not Fatal).
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

func scrape(srv *httptest.Server) ([]sample, error) {
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
		return nil, fmt.Errorf("/metrics Content-Type = %q", got)
	}
	if err := obs.ValidateExposition(doc); err != nil {
		return nil, fmt.Errorf("invalid exposition: %v", err)
	}
	var out []sample
	for _, line := range strings.Split(string(doc), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := obs.ParsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q: %v", line, err)
		}
		out = append(out, sample{name, labels, value})
	}
	return out, nil
}

func mustScrape(t *testing.T, srv *httptest.Server) []sample {
	t.Helper()
	samples, err := scrape(srv)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func sumByTenant(samples []sample, name string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range samples {
		if s.name == name {
			out[s.labels["tenant"]] += s.value
		}
	}
	return out
}

// TestMetricsUnderStorm hammers the server from 50 distinct tenants
// (against a label cap of 8) with a mix of outcomes while concurrently
// scraping /metrics. Run under -race this is the collector's torture
// test. Each scrape must be a valid exposition with bounded tenant
// cardinality and monotonic counters; after the storm quiesces, every
// tenant's requests counter must equal its summed responses.
func TestMetricsUnderStorm(t *testing.T) {
	db := usersDB(t)
	s := NewServer(db, Config{
		MaxTenantLabels: 8,
		SLOs:            map[string]SLO{"t00": {Availability: 0.5}},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// postRaw issues one request off the test goroutine (no t.Fatal).
	postRaw := func(tenant, sql string) error {
		raw, _ := json.Marshal(map[string]any{"sql": sql})
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set(TenantHeader, tenant)
		resp, err := srv.Client().Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	const tenants = 50
	const perTenant = 4
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%02d", i)
			for j := 0; j < perTenant; j++ {
				var sql string
				switch j % 3 {
				case 0:
					sql = "SELECT name FROM users"
				case 1:
					sql = "SELECT x FROM nope" // query error
				default:
					sql = " " // usage error
				}
				if err := postRaw(tenant, sql); err != nil {
					t.Errorf("tenant %s: %v", tenant, err)
					return
				}
			}
		}(i)
	}

	// Concurrent scraper: validity, cardinality, and monotonicity under
	// live mutation.
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		lastTotal := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			samples, err := scrape(srv)
			if err != nil {
				t.Error(err)
				return
			}
			perTenantReq := sumByTenant(samples, "olap_requests_total")
			if len(perTenantReq) > 9 { // 8 labels + _other
				t.Errorf("tenant cardinality %d exceeds cap 9: %v", len(perTenantReq), perTenantReq)
				return
			}
			total := 0.0
			for _, v := range perTenantReq {
				total += v
			}
			if total < lastTotal {
				t.Errorf("olap_requests_total went backwards: %v -> %v", lastTotal, total)
				return
			}
			lastTotal = total
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	<-scraped
	if t.Failed() {
		return
	}

	// Quiesced: exact reconciliation per label, all labels assigned,
	// overflow recorded.
	samples := mustScrape(t, srv)
	req := sumByTenant(samples, "olap_requests_total")
	resps := sumByTenant(samples, "olap_responses_total")
	grand := 0.0
	for tenant, n := range req {
		grand += n
		if resps[tenant] != n {
			t.Errorf("tenant %q: requests %v != sum of responses %v", tenant, n, resps[tenant])
		}
	}
	if grand != tenants*perTenant {
		t.Errorf("total requests = %v, want %d", grand, tenants*perTenant)
	}
	if req[OtherTenantLabel] == 0 {
		t.Error("no traffic folded into the _other label despite 50 tenants against cap 8")
	}
	for _, smp := range samples {
		switch smp.name {
		case "olap_tenant_labels":
			if smp.value != 9 {
				t.Errorf("olap_tenant_labels = %v, want 9", smp.value)
			}
		case "olap_tenant_label_overflow_total":
			if smp.value == 0 {
				t.Error("olap_tenant_label_overflow_total = 0, want > 0")
			}
		case "olap_slo_error_budget_burn":
			if smp.labels["tenant"] != "t00" {
				t.Errorf("SLO burn series for unexpected tenant %q", smp.labels["tenant"])
			}
		}
	}
}

// TestMetricsGolden pins the serving-layer exposition byte-for-byte:
// deterministic traffic billed directly to the funnel counters must
// render exactly the committed document. Catches accidental renames,
// reordering, or type changes that would break dashboards silently.
// Regenerate with: go test ./internal/serve/ -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	db := usersDB(t)
	s := NewServer(db, Config{
		MaxTenantLabels: 4,
		SLOs: map[string]SLO{
			"acme": {Availability: 0.99, P99: 250 * time.Millisecond},
		},
	})
	// Deterministic traffic: bill outcomes straight into the funnel.
	_, acme := s.metrics.tenant("acme")
	acme.requests.Add(4)
	acme.countResponse("ok", 10*time.Millisecond)
	acme.countResponse("ok", 20*time.Millisecond)
	acme.countResponse("timeout", 40*time.Millisecond)
	acme.countResponse("internal", 80*time.Millisecond)
	_, beta := s.metrics.tenant("beta")
	beta.requests.Add(1)
	beta.countResponse("query", 5*time.Millisecond)

	p := obs.NewPromWriter()
	s.promCollect(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := p.String()
	if err := obs.ValidateExposition([]byte(got)); err != nil {
		t.Fatalf("golden document is itself invalid: %v", err)
	}

	goldenPath := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("default:avail=0.99,p99=250ms; premium : avail=0.999")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d SLOs, want 2", len(slos))
	}
	if s := slos["default"]; s.Availability != 0.99 || s.P99 != 250*time.Millisecond {
		t.Errorf("default = %+v", s)
	}
	if s := slos["premium"]; s.Availability != 0.999 || s.P99 != 0 {
		t.Errorf("premium = %+v", s)
	}
	if slos, err := ParseSLOs(""); err != nil || len(slos) != 0 {
		t.Errorf("empty spec: %v %v", slos, err)
	}
	for _, bad := range []string{
		"noobjectives",            // no colon
		"t:",                      // no objectives
		"t:avail=1.5",             // out of range
		"t:avail=0",               // out of range
		"t:p99=-5ms",              // negative
		"t:p99=zz",                // unparsable
		"t:latency=5ms",           // unknown key
		"t:avail",                 // no value
		"t:avail=0.9;t:avail=0.8", // duplicate tenant
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
}

func TestEvalSLOBurn(t *testing.T) {
	tm := newTenantMetrics()
	// 8 ok + 1 client-attributed error + 1 server-attributed error out
	// of 10: availability 0.9 (the query error does not burn budget).
	tm.requests.Add(10)
	for i := 0; i < 8; i++ {
		tm.countResponse("ok", time.Millisecond)
	}
	tm.countResponse("query", time.Millisecond)    // client's fault
	tm.countResponse("internal", time.Millisecond) // server's fault

	rep := evalSLO("t", SLO{Availability: 0.95}, tm)
	if rep.requests != 10 || rep.failures != 1 {
		t.Fatalf("requests=%d failures=%d, want 10/1", rep.requests, rep.failures)
	}
	if rep.availability != 0.9 {
		t.Fatalf("availability = %v, want 0.9", rep.availability)
	}
	// Burn: (1-0.9)/(1-0.95) = 2 — spending budget twice as fast as the
	// objective allows.
	if rep.burn < 1.99 || rep.burn > 2.01 {
		t.Fatalf("burn = %v, want 2.0", rep.burn)
	}

	// No traffic: availability 1, burn 0 — an idle tenant never pages.
	idle := evalSLO("idle", SLO{Availability: 0.99}, newTenantMetrics())
	if idle.availability != 1 || idle.burn != 0 {
		t.Fatalf("idle report = %+v", idle)
	}
}
