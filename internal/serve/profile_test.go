package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/obs/profile"
)

// profiledServer wires a server to a live profiler and recorder the
// way olapd does: ring under a temp root, incidents beneath it.
func profiledServer(t *testing.T) (*Server, *profile.Profiler, *profile.Recorder) {
	t.Helper()
	root := t.TempDir()
	p, err := profile.New(profile.Config{Dir: root, Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	rec, err := profile.NewRecorder(profile.RecorderConfig{
		Dir:         filepath.Join(root, profile.IncidentsDirName),
		MinInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	db := usersDB(t)
	db.EnableObservability(gmdj.ObsConfig{})
	s := NewServer(db, Config{Admin: true, Profiler: p, Recorder: rec})
	return s, p, rec
}

func TestProfilesIndexAndForcedIncident(t *testing.T) {
	s, p, _ := profiledServer(t)
	if _, err := p.CaptureNow(0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A query gives the slowlog and live registry something to hold.
	if resp, raw := post(t, srv, "acme", map[string]any{
		"sql": `SELECT name FROM users WHERE score > 15`,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(srv.URL + "/debug/olap/profiles")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiles index status %d: %s", resp.StatusCode, raw)
	}
	var idx struct {
		Ring    []profile.FileInfo `json:"ring"`
		Bundles []string           `json:"bundles"`
	}
	if err := json.Unmarshal(raw, &idx); err != nil {
		t.Fatalf("index not JSON: %v\n%s", err, raw)
	}
	if len(idx.Ring) == 0 {
		t.Fatalf("index lists no ring files: %s", raw)
	}

	// Ring files download through the index handler.
	name := ""
	for _, fi := range idx.Ring {
		if strings.HasPrefix(fi.Name, "heap-") {
			name = fi.Name
		}
	}
	if name == "" {
		t.Fatalf("no heap capture in ring: %v", idx.Ring)
	}
	resp, err = http.Get(srv.URL + "/debug/olap/profiles/" + name)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("ring download status %d, %d bytes", resp.StatusCode, len(body))
	}
	if _, err := profile.ParseProfile(body); err != nil {
		t.Fatalf("downloaded ring profile unparseable: %v", err)
	}

	// Forcing an incident writes one validated, self-contained bundle.
	resp, err = http.Post(srv.URL+"/debug/olap/incident?reason=test", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var forced struct {
		Written bool   `json:"written"`
		Bundle  string `json:"bundle"`
	}
	if err := json.Unmarshal(raw, &forced); err != nil || !forced.Written {
		t.Fatalf("forced incident: %s (err %v)", raw, err)
	}
	required := []string{
		"metrics.prom", "slowlog.json", "trace.json", "config.json",
		"goroutines.txt", "heap.pprof", "goroutine.pprof", "mutex.pprof", "cpu.pprof",
	}
	if err := profile.ValidateBundle(forced.Bundle, required); err != nil {
		t.Fatalf("forced bundle invalid: %v", err)
	}
	if err := profile.CheckCPULabels(forced.Bundle, []string{profile.LabelTenant}); err != nil {
		t.Fatalf("CPU label check: %v", err)
	}

	// Second POST inside the rate-limit window is suppressed.
	resp, err = http.Post(srv.URL+"/debug/olap/incident", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &forced); err != nil || forced.Written {
		t.Fatalf("rate limit did not hold: %s (err %v)", raw, err)
	}

	// GET is rejected.
	resp, err = http.Get(srv.URL + "/debug/olap/incident")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/olap/incident status %d; want 405", resp.StatusCode)
	}
}

// TestMetricsIncludeProfilingFamilies checks the new gated families
// appear on /metrics when a profiler and recorder are attached (the
// golden exposition test pins the families' absence without them).
func TestMetricsIncludeProfilingFamilies(t *testing.T) {
	s, p, rec := profiledServer(t)
	if _, err := p.CaptureNow(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.TriggerSync(profile.TriggerManual, "metrics test"); !ok {
		t.Fatal("bundle not written")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, fam := range []string{
		"olap_profiles_captured_total",
		"olap_profile_errors_total",
		"olap_profile_ring_bytes",
		"olap_incident_bundles_total",
		"olap_incident_triggers_total",
		"olap_incident_suppressed_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam) {
			t.Errorf("/metrics lacks family %s", fam)
		}
	}
	if !strings.Contains(text, `olap_profiles_captured_total{kind="heap"}`) {
		t.Errorf("heap capture not counted:\n%s", grepLines(text, "olap_profiles_captured_total"))
	}
	if !strings.Contains(text, "olap_incident_bundles_total 1") {
		t.Errorf("bundle not counted:\n%s", grepLines(text, "olap_incident"))
	}
}

func grepLines(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
