// Package serve is the engine's network front door: a concurrent
// HTTP/JSON query server layered on gmdj.DB with per-tenant admission
// quotas, per-request deadlines propagated into the governance layer,
// structured error responses carrying the engine's typed-error and
// exit-code taxonomy, retry/backoff hints on overload, and a graceful
// drain state machine for clean shutdown under load.
//
// Overload behavior is honest by construction: a tenant past its
// in-flight quota queues FIFO and is shed with HTTP 429 + Retry-After
// when its admission deadline expires (the same discipline, and the
// same typed error, as the memory pool's admission queue); a draining
// server answers 503 + Retry-After rather than hanging connections;
// and every failure — including faults injected at the serve.accept,
// serve.write, and serve.cancel sites via GMDJ_FAULTS — degrades to a
// typed JSON error, never a panic or a leaked goroutine.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/obs/profile"
	"github.com/olaplab/gmdj/internal/spill"
)

// Fault-injection sites fired by the server (see govern.EnvFaults).
// All three accept the error/panic/delay actions and the @N rate
// suffix; every outcome degrades to a typed error response.
const (
	// SiteAccept fires at request admission, before the tenant gate —
	// a failing accept path (listener pressure, TLS handshake debris).
	SiteAccept = "serve.accept"
	// SiteWrite fires before response serialization — a failing or
	// wedged client connection.
	SiteWrite = "serve.write"
	// SiteCancel fires on each hard-cancel during drain and on client
	// disconnect handling.
	SiteCancel = "serve.cancel"
)

// ErrDraining reports that the server is draining (or stopped) and not
// accepting new queries. Clients should retry against another replica
// or after Retry-After.
var ErrDraining = errors.New("server draining")

// TenantHeader names the request header carrying the tenant identity.
// Absent, the request is billed to DefaultTenant.
const TenantHeader = "X-OLAP-Tenant"

// DefaultTenant is the tenant name used when no header is sent.
const DefaultTenant = "default"

// Exit codes 0-9 follow cmd/olapql's contract; the serving layer
// extends the taxonomy with conditions that only exist once there is a
// server in front of the engine.
const (
	ExitErr       = 1
	ExitUsage     = 2
	ExitTimeout   = 3
	ExitCanceled  = 4
	ExitRowCap    = 5
	ExitMemCap    = 6
	ExitInternal  = 7
	ExitSpillIO   = 8
	ExitAdmission = 9
	// ExitClosed: the DB closed while the query waited for memory
	// admission (gmdj.ErrClosed).
	ExitClosed = 10
	// ExitUnavailable: the server was draining, or an injected/transient
	// serving-layer fault rejected the request before evaluation.
	ExitUnavailable = 11
	// ExitSegmentCorrupt: the query touched a table whose durable
	// segment failed verification and was quarantined
	// (gmdj.ErrSegmentCorrupt). Not retryable — the bytes stay wrong
	// until the table is re-created. (12 is skipped: cmd/olapd reserves
	// it for its own shutdown leak check.)
	ExitSegmentCorrupt = 13
)

// Class is the wire classification of one error: the taxonomy kind,
// the exit code a CLI maps it to, the HTTP status it travels under,
// and whether a client retry can plausibly succeed.
type Class struct {
	Kind       string `json:"kind"`
	ExitCode   int    `json:"exit_code"`
	HTTPStatus int    `json:"http_status"`
	Retryable  bool   `json:"retryable"`
}

// KnownKinds enumerates every kind the server emits. A load driver
// treats any response outside this set as a non-typed error — the
// failure mode the chaos scenarios exist to catch.
func KnownKinds() []string {
	return []string{
		"ok", "usage", "query", "canceled", "timeout", "row_budget",
		"mem_budget", "admission_timeout", "spill_io", "segment_corrupt",
		"internal", "closed", "unavailable",
	}
}

// StatusClientClosedRequest is nginx's non-standard 499: the client
// went away before the response; no standard status fits better.
const StatusClientClosedRequest = 499

// Classify maps a query error onto the wire taxonomy. It extends the
// engine's errKind mapping with the serving-layer conditions and is
// the single source of truth for error -> HTTP status.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Class{Kind: "ok", HTTPStatus: http.StatusOK}
	case errors.Is(err, govern.ErrTimeout):
		return Class{Kind: "timeout", ExitCode: ExitTimeout, HTTPStatus: http.StatusGatewayTimeout}
	case errors.Is(err, govern.ErrCanceled):
		return Class{Kind: "canceled", ExitCode: ExitCanceled, HTTPStatus: StatusClientClosedRequest}
	case errors.Is(err, govern.ErrRowBudget):
		return Class{Kind: "row_budget", ExitCode: ExitRowCap, HTTPStatus: http.StatusUnprocessableEntity}
	case errors.Is(err, govern.ErrMemBudget):
		// The kill regime: memory pressure killed the query. Load-
		// dependent, so a retry after backoff can succeed.
		return Class{Kind: "mem_budget", ExitCode: ExitMemCap, HTTPStatus: http.StatusServiceUnavailable, Retryable: true}
	case errors.Is(err, mem.ErrPoolClosed):
		return Class{Kind: "closed", ExitCode: ExitClosed, HTTPStatus: http.StatusServiceUnavailable}
	case errors.Is(err, mem.ErrAdmissionTimeout):
		return Class{Kind: "admission_timeout", ExitCode: ExitAdmission, HTTPStatus: http.StatusTooManyRequests, Retryable: true}
	case errors.Is(err, gmdj.ErrSegmentCorrupt):
		// Quarantined durable state: unlike spill_io the bytes on disk
		// are wrong and stay wrong, so a retry cannot succeed.
		return Class{Kind: "segment_corrupt", ExitCode: ExitSegmentCorrupt, HTTPStatus: http.StatusInternalServerError}
	case errors.Is(err, spill.ErrSpillIO):
		return Class{Kind: "spill_io", ExitCode: ExitSpillIO, HTTPStatus: http.StatusInternalServerError, Retryable: true}
	case errors.Is(err, ErrDraining):
		return Class{Kind: "unavailable", ExitCode: ExitUnavailable, HTTPStatus: http.StatusServiceUnavailable, Retryable: true}
	case errors.Is(err, govern.ErrInjected):
		// An injected serving-layer fault models a transient
		// infrastructure failure: typed, retryable, 503.
		return Class{Kind: "unavailable", ExitCode: ExitUnavailable, HTTPStatus: http.StatusServiceUnavailable, Retryable: true}
	case errors.Is(err, govern.ErrInternal):
		return Class{Kind: "internal", ExitCode: ExitInternal, HTTPStatus: http.StatusInternalServerError}
	default:
		// Parse errors, unknown tables, bad parameters: the query (not
		// the server) is at fault.
		return Class{Kind: "query", ExitCode: ExitErr, HTTPStatus: http.StatusBadRequest}
	}
}

// Config tunes a Server.
type Config struct {
	// DefaultQuota applies to every tenant without an explicit entry in
	// Tenants (including DefaultTenant).
	DefaultQuota Quota
	// Tenants maps tenant names to explicit quotas.
	Tenants map[string]Quota
	// DefaultTimeout bounds a request that does not carry its own
	// timeout_ms (0 = no server-imposed deadline).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (0 = unclamped).
	MaxTimeout time.Duration
	// DrainGrace is the Retry-After hint handed to clients rejected
	// during drain (default 1s).
	DrainGrace time.Duration
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// Admin mounts the observability dashboard (/debug/olap/*, which
	// includes the /debug/olap/trace download) and the tenant/admission
	// stats (/debug/serve) on the server's mux. The Prometheus /metrics
	// endpoint is always mounted.
	Admin bool
	// Faults injects failures at the serve.* sites (nil = none).
	Faults *govern.Injector
	// Logger receives one structured line per finished request plus
	// lifecycle events (drain, fault fires). Nil disables logging.
	Logger *slog.Logger
	// SLOs declares per-tenant objectives published on /metrics (targets,
	// observed values, error-budget burn). The server never enforces
	// them; asserting on burn is the load driver's job.
	SLOs map[string]SLO
	// MaxTenantLabels caps distinct tenant label values on /metrics
	// (default DefaultMaxTenantLabels); tenants beyond the cap fold into
	// the "_other" series.
	MaxTenantLabels int
	// Profiler is the background cadence profiler (nil = none). With
	// Admin it backs /debug/olap/profiles and the per-tenant CPU/heap
	// attribution families on /metrics. The caller owns its lifecycle.
	Profiler *profile.Profiler
	// Recorder is the incident flight recorder (nil = none). The server
	// registers its bundle sources (metrics scrape, trace, slowlog,
	// config snapshot, active profiles) and the trigger probes below;
	// the caller owns Start/Close.
	Recorder *profile.Recorder
	// IncidentSlowQuery triggers an incident bundle when a query's
	// execute phase exceeds this wall time (0 = off).
	IncidentSlowQuery time.Duration
	// IncidentBurn triggers on SLO error-budget burn at or above this
	// rate for any tenant with a declared objective (0 = off).
	IncidentBurn float64
	// IncidentQueueDepth triggers when any tenant's admission queue
	// reaches this depth (0 = off).
	IncidentQueueDepth int
	// IncidentMemPressure triggers when the memory pool's in-use
	// fraction reaches this threshold in (0, 1] (0 = off).
	IncidentMemPressure float64
}

// Server serves SQL queries over HTTP/JSON on top of one gmdj.DB.
// Handlers are safe for arbitrary concurrency; lifecycle (Drain) may
// be driven from any goroutine.
type Server struct {
	db       *gmdj.DB
	cfg      Config
	faults   *govern.Injector
	mux      *http.ServeMux
	hist     *obs.HistSet
	metrics  *metricsRegistry
	logger   *slog.Logger
	profiler *profile.Profiler
	recorder *profile.Recorder

	mu       sync.Mutex
	draining bool
	gates    map[string]*gate
	inflight map[int64]*inflightQuery
	nextID   int64

	accepted     atomic.Int64
	completed    atomic.Int64
	rejected     atomic.Int64 // drain-time 503s
	hardCanceled atomic.Int64
	faultsFired  atomic.Int64
	panics       atomic.Int64
	tidSeq       atomic.Int64 // trace-timeline row allocator
}

// inflightQuery is one admitted query's drain handle.
type inflightQuery struct {
	tenant string
	cancel context.CancelFunc
}

// NewServer builds a server over db. The DB should have observability
// enabled if the /debug/olap endpoints are wanted (Config.Admin).
func NewServer(db *gmdj.DB, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = time.Second
	}
	s := &Server{
		db:       db,
		cfg:      cfg,
		faults:   cfg.Faults,
		mux:      http.NewServeMux(),
		hist:     obs.NewHistSet(),
		metrics:  newMetricsRegistry(cfg.MaxTenantLabels),
		logger:   cfg.Logger,
		profiler: cfg.Profiler,
		recorder: cfg.Recorder,
		gates:    map[string]*gate{},
		inflight: map[int64]*inflightQuery{},
	}
	// SLO tenants hold label slots from the start so their series exist
	// (at zero) before any traffic arrives.
	sloTenants := make([]string, 0, len(cfg.SLOs))
	for t := range cfg.SLOs {
		sloTenants = append(sloTenants, t)
	}
	sort.Strings(sloTenants)
	for _, t := range sloTenants {
		s.metrics.tenant(t)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Admin {
		s.mux.Handle("/debug/olap/", db.ObsHTTPHandler())
		s.mux.HandleFunc("/debug/serve", s.handleStats)
		// Live pprof endpoints plus the on-disk profile/incident index.
		// Go's label inheritance means a CPU profile fetched here during
		// load carries tenant/rid/strategy labels on query samples.
		s.mux.HandleFunc("/debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		s.mux.Handle("/debug/olap/profiles", profile.IndexHandler(s.profiler, s.recorder))
		s.mux.Handle("/debug/olap/profiles/", profile.IndexHandler(s.profiler, s.recorder))
		if s.recorder != nil {
			s.mux.HandleFunc("/debug/olap/incident", s.handleIncident)
		}
	}
	s.wireRecorder()
	return s
}

// wireRecorder registers the flight recorder's bundle sources and
// trigger probes. Sources freeze the server's observable state at
// incident time; probes are the standing trigger conditions the
// recorder's watch loop polls. The slow-query trigger is inline in
// handleQuery instead — it needs per-request elapsed time.
func (s *Server) wireRecorder() {
	rec := s.recorder
	if rec == nil {
		return
	}
	rec.AddSource("metrics.prom", s.writePromText)
	rec.AddSource("slowlog.json", s.db.WriteSlowLog)
	rec.AddSource("trace.json", func(w io.Writer) error {
		if s.db.Tracer() == nil {
			_, err := io.WriteString(w, "[]")
			return err
		}
		return s.db.WriteTrace(w)
	})
	rec.AddSource("config.json", s.writeConfigSnapshot)
	rec.AddSource("heap.pprof", func(w io.Writer) error { return profile.WriteSnapshotTo("heap", w, 0) })
	rec.AddSource("goroutine.pprof", func(w io.Writer) error { return profile.WriteSnapshotTo("goroutine", w, 0) })
	rec.AddSource("mutex.pprof", func(w io.Writer) error { return profile.WriteSnapshotTo("mutex", w, 0) })
	if s.profiler != nil {
		// The newest ring CPU capture; when the cadence has not produced
		// one yet, sample a short window right now so the bundle still
		// shows where cycles were going at incident time.
		rec.AddSource("cpu.pprof", func(w io.Writer) error {
			if err := s.profiler.CopyLatestTo("cpu", w); err == nil {
				return nil
			}
			if _, err := s.profiler.CaptureNow(500 * time.Millisecond); err != nil {
				return err
			}
			return s.profiler.CopyLatestTo("cpu", w)
		})
	}
	if s.cfg.IncidentBurn > 0 && len(s.cfg.SLOs) > 0 {
		rec.AddProbe(profile.TriggerSLOBurn, func() (bool, string) {
			worst, burn := "", 0.0
			for _, rep := range s.sloReports() {
				if rep.burn > burn {
					worst, burn = rep.tenant, rep.burn
				}
			}
			if burn >= s.cfg.IncidentBurn {
				return true, fmt.Sprintf("tenant %q error-budget burn %.3f >= %.3f", worst, burn, s.cfg.IncidentBurn)
			}
			return false, ""
		})
	}
	if s.cfg.IncidentQueueDepth > 0 {
		rec.AddProbe(profile.TriggerQueueDepth, func() (bool, string) {
			for _, ts := range s.Stats().Tenants {
				if ts.Queued >= s.cfg.IncidentQueueDepth {
					return true, fmt.Sprintf("tenant %q admission queue depth %d >= %d", ts.Tenant, ts.Queued, s.cfg.IncidentQueueDepth)
				}
			}
			return false, ""
		})
	}
	if s.cfg.IncidentMemPressure > 0 {
		rec.AddProbe(profile.TriggerMemPressure, func() (bool, string) {
			if u := s.db.MemPressure(); u >= s.cfg.IncidentMemPressure {
				return true, fmt.Sprintf("memory pool %.0f%% in use >= %.0f%%", u*100, s.cfg.IncidentMemPressure*100)
			}
			return false, ""
		})
	}
}

// configSnapshot is the bundle's config.json: the serving envelope in
// effect when the incident fired, next to the server's own counters.
type configSnapshot struct {
	DefaultQuota        Quota            `json:"default_quota"`
	Tenants             map[string]Quota `json:"tenants,omitempty"`
	DefaultTimeout      string           `json:"default_timeout"`
	MaxTimeout          string           `json:"max_timeout"`
	SLOs                map[string]SLO   `json:"slos,omitempty"`
	MaxTenantLabels     int              `json:"max_tenant_labels"`
	IncidentSlowQuery   string           `json:"incident_slow_query"`
	IncidentBurn        float64          `json:"incident_burn"`
	IncidentQueueDepth  int              `json:"incident_queue_depth"`
	IncidentMemPressure float64          `json:"incident_mem_pressure"`
	Stats               Stats            `json:"stats"`
	Profiler            *profile.Stats   `json:"profiler,omitempty"`
	MemStats            gmdj.MemStats    `json:"mem_stats"`
}

func (s *Server) writeConfigSnapshot(w io.Writer) error {
	snap := configSnapshot{
		DefaultQuota:        s.cfg.DefaultQuota,
		Tenants:             s.cfg.Tenants,
		DefaultTimeout:      s.cfg.DefaultTimeout.String(),
		MaxTimeout:          s.cfg.MaxTimeout.String(),
		SLOs:                s.cfg.SLOs,
		MaxTenantLabels:     s.cfg.MaxTenantLabels,
		IncidentSlowQuery:   s.cfg.IncidentSlowQuery.String(),
		IncidentBurn:        s.cfg.IncidentBurn,
		IncidentQueueDepth:  s.cfg.IncidentQueueDepth,
		IncidentMemPressure: s.cfg.IncidentMemPressure,
		Stats:               s.Stats(),
		MemStats:            s.db.MemStats(),
	}
	if s.profiler != nil {
		st := s.profiler.Stats()
		snap.Profiler = &st
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// handleIncident forces a flight-recorder bundle (POST, admin-only
// mount): the chaos harness's deterministic mid-storm trigger. The
// rate limit still applies; the response reports whether a bundle was
// written and where.
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "manual trigger via /debug/olap/incident"
	}
	dir, written := s.recorder.TriggerSync(profile.TriggerManual, reason)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"written": written, "bundle": dir})
}

// logw emits one structured log line when a logger is configured.
func (s *Server) logw(level slog.Level, msg string, args ...any) {
	if s.logger == nil {
		return
	}
	s.logger.Log(context.Background(), level, msg, args...)
}

// Handler returns the server's mux.
func (s *Server) Handler() http.Handler { return s.mux }

// gate returns (creating on demand) the tenant's admission gate.
func (s *Server) gate(tenant string) *gate {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gates[tenant]
	if g == nil {
		q, ok := s.cfg.Tenants[tenant]
		if !ok {
			q = s.cfg.DefaultQuota
		}
		g = newGate(tenant, q)
		if s.draining {
			g.close()
		}
		s.gates[tenant] = g
	}
	return g
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL       string `json:"sql"`
	Strategy  string `json:"strategy,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Args      []any  `json:"args,omitempty"`
}

// queryResponse is the success body. RequestID echoes the request's
// trace ID (minted or client-supplied) so a client can join its
// response to server-side logs, the slow-query log, and the trace.
type queryResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	ElapsedNs int64    `json:"elapsed_ns"`
	Strategy  string   `json:"strategy"`
	Tenant    string   `json:"tenant"`
	RequestID string   `json:"request_id"`
}

// errorResponse is the structured error body: the message, the typed
// classification, the request ID, and a backoff hint when a retry can
// help.
type errorResponse struct {
	Error string `json:"error"`
	Class
	RequestID    string `json:"request_id"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func parseStrategy(name string) (gmdj.Strategy, error) {
	switch name {
	case "", "gmdj-opt":
		return gmdj.GMDJOpt, nil
	case "gmdj":
		return gmdj.GMDJ, nil
	case "native":
		return gmdj.Native, nil
	case "unnest":
		return gmdj.Unnest, nil
	case "auto":
		return gmdj.Auto, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// serveTidBase offsets the serving layer's trace-timeline rows away
// from the engine's operator rows (the plan span uses tid 1); rows are
// reused modulo serveTidSlots so concurrent requests land on distinct
// timelines without unbounded row growth.
const (
	serveTidBase  = 100
	serveTidSlots = 256
)

// requestWriter is the single exit funnel for one request. Every
// response — success, typed error, usage error, recovered panic —
// flows through exactly one finish() call, which bills the outcome to
// the tenant's /metrics counters, closes the request span, and emits
// the structured log line. That construction is what makes the
// per-tenant reconciliation invariant (requests == sum of responses
// by kind) hold unconditionally.
type requestWriter struct {
	s        *Server
	w        http.ResponseWriter
	tenant   string // real tenant name (gate, context, response body)
	rid      string
	tm       *tenantMetrics // capped label series the outcome bills to
	tid      int64
	start    time.Time
	sql      string
	strategy string
	rows     int
	done     bool
}

// beginRequest resolves identity before anything can fail: the tenant
// (header or default), the request ID (client-supplied X-Request-Id,
// sanitized, or freshly minted), the capped metrics series. The ID is
// set as a response header immediately so even a panic that corrupts
// the body still echoes it.
func (s *Server) beginRequest(w http.ResponseWriter, r *http.Request) *requestWriter {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	}
	rid := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
	if rid == "" {
		rid = obs.NewRequestID()
	}
	_, tm := s.metrics.tenant(tenant)
	tm.requests.Add(1)
	w.Header().Set(obs.RequestIDHeader, rid)
	return &requestWriter{
		s:      s,
		w:      w,
		tenant: tenant,
		rid:    rid,
		tm:     tm,
		tid:    serveTidBase + s.tidSeq.Add(1)%serveTidSlots,
		start:  time.Now(),
		rows:   -1,
	}
}

// span records one serving-phase span onto the engine's trace ring,
// tagged with the request identity so server phases and operator
// events join on one Perfetto timeline. No-op without a tracer.
func (rw *requestWriter) span(name string, start time.Time, extra string) {
	t := rw.s.db.Tracer()
	if t == nil {
		return
	}
	arg := "rid=" + rw.rid + " tenant=" + rw.tenant
	if extra != "" {
		arg += " " + extra
	}
	t.SpanArgs("serve", name, rw.tid, start, time.Since(start), arg)
}

// finish closes the funnel exactly once: outcome counter, latency
// sample, request span, log line.
func (rw *requestWriter) finish(kind string, status int, errText string) {
	if rw.done {
		return
	}
	rw.done = true
	elapsed := time.Since(rw.start)
	rw.tm.countResponse(kind, elapsed)
	rw.span("request", rw.start, "kind="+kind)
	level := slog.LevelInfo
	args := []any{
		"request_id", rw.rid,
		"tenant", rw.tenant,
		"kind", kind,
		"status", status,
		"elapsed_ms", float64(elapsed.Microseconds()) / 1e3,
	}
	if rw.strategy != "" {
		args = append(args, "strategy", rw.strategy)
	}
	if rw.sql != "" {
		args = append(args, "sql", truncateSQL(rw.sql))
	}
	if rw.rows >= 0 {
		args = append(args, "rows", rw.rows)
	}
	if errText != "" {
		level = slog.LevelWarn
		args = append(args, "error", errText)
	}
	rw.s.logw(level, "query", args...)
}

// fail emits the structured error body and closes the funnel.
// retryAfter <= 0 omits the hint and header. A request that already
// finished (panic after a written response) is counted once only.
func (rw *requestWriter) fail(err error, retryAfter time.Duration) {
	if rw.done {
		return
	}
	cl := Classify(err)
	resp := errorResponse{Error: err.Error(), Class: cl, RequestID: rw.rid}
	if cl.Retryable && retryAfter > 0 {
		resp.RetryAfterMS = retryAfter.Milliseconds()
		secs := int64(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		rw.w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	rw.w.Header().Set("Content-Type", "application/json")
	rw.w.WriteHeader(cl.HTTPStatus)
	_ = json.NewEncoder(rw.w).Encode(resp)
	rw.finish(cl.Kind, cl.HTTPStatus, err.Error())
}

// usage is a malformed request (not a query failure): kind "usage",
// HTTP 400, exit 2.
func (rw *requestWriter) usage(msg string) {
	if rw.done {
		return
	}
	rw.w.Header().Set("Content-Type", "application/json")
	rw.w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(rw.w).Encode(errorResponse{
		Error:     msg,
		Class:     Class{Kind: "usage", ExitCode: ExitUsage, HTTPStatus: http.StatusBadRequest},
		RequestID: rw.rid,
	})
	rw.finish("usage", http.StatusBadRequest, msg)
}

// ok serializes the success body (under its own span — serialization
// of a wide result is real work) and closes the funnel.
func (rw *requestWriter) ok(resp *queryResponse) {
	if rw.done {
		return
	}
	serStart := time.Now()
	rw.w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw.w).Encode(resp)
	rw.span("serialize", serStart, "")
	rw.rows = resp.RowCount
	rw.finish("ok", http.StatusOK, "")
}

// fireFault fires an injected fault site, counting and logging a hit.
func (rw *requestWriter) fireFault(site string) error {
	err := rw.s.faults.Fire(site, nil)
	if err != nil {
		rw.s.faultsFired.Add(1)
		rw.s.logw(slog.LevelWarn, "fault fired",
			"request_id", rw.rid, "tenant", rw.tenant, "site", site, "error", err.Error())
	}
	return err
}

func truncateSQL(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 120 {
		return s[:117] + "..."
	}
	return s
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rw := s.beginRequest(w, r)
	// Panic isolation at the serving boundary: a handler panic (e.g. an
	// injected panic at a serve.* site) becomes a typed internal error,
	// never a crashed connection without a body.
	defer func() {
		if p := recover(); p != nil {
			obs.MetricAdd("serve.panics_recovered", 1)
			s.panics.Add(1)
			rw.fail(fmt.Errorf("%w: serving panic: %v", govern.ErrInternal, p), 0)
		}
	}()
	if r.Method != http.MethodPost {
		rw.usage("POST only")
		return
	}
	if s.isDraining() {
		s.rejected.Add(1)
		rw.fail(fmt.Errorf("%w: not accepting queries", ErrDraining), s.cfg.DrainGrace)
		return
	}
	if err := rw.fireFault(SiteAccept); err != nil {
		rw.fail(fmt.Errorf("accepting request: %w", err), s.cfg.DrainGrace)
		return
	}

	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		rw.usage("bad request body: " + err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		rw.usage("empty sql")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		rw.usage(err.Error())
		return
	}
	rw.sql, rw.strategy = req.SQL, strategy.String()

	// Tenant admission: queue FIFO for an in-flight slot, shedding with
	// 429 + Retry-After at the tenant's admission deadline. The request
	// context bounds the wait too, so a disconnected client releases
	// its queue position immediately. The span is the admission wait
	// made visible: on an uncontended server it is microseconds; under
	// a noisy neighbor it is the queue time the tenant actually paid.
	g := s.gate(rw.tenant)
	gateStart := time.Now()
	release, err := g.Enter(r.Context())
	rw.span("tenant-gate", gateStart, "")
	if err != nil {
		rw.fail(err, retryHint(g))
		return
	}
	defer release()

	// Per-request deadline, propagated into the governance layer: the
	// engine's governor sees it as its context deadline, so operator
	// loops abort with ErrTimeout exactly as an engine-level budget.
	// The request identity rides the same context into the engine —
	// registry rows, slow-query log entries, and EXPLAIN ANALYZE trees
	// all pick it up from there.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	base := obs.WithTenant(obs.WithRequestID(r.Context(), rw.rid), rw.tenant)
	ctx, cancel := context.WithCancel(base)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	}
	defer cancel()
	id := s.track(rw.tenant, cancel)
	defer s.untrack(id)
	s.accepted.Add(1)

	execStart := time.Now()
	var res *gmdj.Result
	// Serving-phase pprof labels: the engine re-labels with the
	// strategy and phase=execute inside, so a CPU profile separates
	// handler overhead from engine work per tenant and request.
	pprof.Do(ctx, profile.QueryLabels(rw.tenant, rw.rid, strategy.String(), "serve"), func(lctx context.Context) {
		res, err = s.run(lctx, req, strategy)
	})
	elapsed := time.Since(execStart)
	s.completed.Add(1)
	s.hist.Record("http_ns.all", int64(elapsed))
	s.hist.Record("http_ns."+rw.tenant, int64(elapsed))
	rw.span("execute", execStart, "")
	if s.recorder != nil && s.cfg.IncidentSlowQuery > 0 && elapsed >= s.cfg.IncidentSlowQuery {
		s.recorder.Trigger(profile.TriggerSlowQuery,
			fmt.Sprintf("tenant %q rid %s: execute took %s >= %s", rw.tenant, rw.rid, elapsed, s.cfg.IncidentSlowQuery))
	}
	if err != nil {
		s.hist.Record("http_err_ns."+Classify(err).Kind, int64(elapsed))
		rw.fail(err, retryHint(g))
		return
	}

	if err := rw.fireFault(SiteWrite); err != nil {
		rw.fail(fmt.Errorf("writing response: %w", err), s.cfg.DrainGrace)
		return
	}
	rw.ok(&queryResponse{
		Columns:   res.Columns,
		Rows:      res.Rows,
		RowCount:  res.Len(),
		ElapsedNs: int64(elapsed),
		Strategy:  strategy.String(),
		Tenant:    rw.tenant,
		RequestID: rw.rid,
	})
}

// run evaluates one request: direct for plain SQL, through a prepared
// statement when arguments are supplied.
func (s *Server) run(ctx context.Context, req queryRequest, strategy gmdj.Strategy) (*gmdj.Result, error) {
	if len(req.Args) > 0 {
		st, err := s.db.PrepareStrategy(req.SQL, strategy)
		if err != nil {
			return nil, err
		}
		defer st.Close()
		return st.QueryContext(ctx, normalizeArgs(req.Args)...)
	}
	return s.db.QueryStrategyContext(ctx, req.SQL, strategy)
}

// normalizeArgs maps JSON-decoded argument values onto the engine's
// accepted Go types (JSON numbers arrive as float64; whole ones almost
// always mean integer columns).
func normalizeArgs(args []any) []any {
	out := make([]any, len(args))
	for i, a := range args {
		if f, ok := a.(float64); ok && f == float64(int64(f)) {
			out[i] = int64(f)
			continue
		}
		out[i] = a
	}
	return out
}

// retryHint suggests a client backoff from the tenant's queue depth:
// an empty queue means capacity frees within one admission window; a
// deep queue scales the hint up (clamped to 30s).
func retryHint(g *gate) time.Duration {
	st := g.stats()
	hint := g.admission / 2
	if hint < 100*time.Millisecond {
		hint = 100 * time.Millisecond
	}
	if st.Queued > 0 && st.MaxInFlight > 0 {
		hint = time.Duration(1+st.Queued/st.MaxInFlight) * g.admission
	}
	if hint > 30*time.Second {
		hint = 30 * time.Second
	}
	return hint
}

// track registers an admitted query's cancel for the drain hard phase.
func (s *Server) track(tenant string, cancel context.CancelFunc) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.inflight[s.nextID] = &inflightQuery{tenant: tenant, cancel: cancel}
	return s.nextID
}

func (s *Server) untrack(id int64) {
	s.mu.Lock()
	delete(s.inflight, id)
	s.mu.Unlock()
}

// InFlight reports the number of admitted, still-running queries.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain flips the server into draining mode: new queries are
// rejected with 503 + Retry-After, and every tenant's admission queue
// is shed with a typed ErrDraining. In-flight queries keep running.
// Idempotent.
func (s *Server) StartDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	gates := make([]*gate, 0, len(s.gates))
	for _, g := range s.gates {
		gates = append(gates, g)
	}
	s.mu.Unlock()
	for _, g := range gates {
		g.close()
	}
	obs.MetricAdd("serve.drains", 1)
	s.logw(slog.LevelInfo, "drain started", "in_flight", s.InFlight())
}

// Drain runs the drain state machine: StartDrain, then wait for
// in-flight queries to finish within ctx's deadline (the drain
// budget), then hard-cancel stragglers through their governor contexts
// and wait once more (canceled queries unwind cooperatively within a
// few hundred rows of any operator loop). It returns nil when the
// server is fully quiesced; the returned error reports queries that
// survived even the hard cancel.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	if s.awaitIdle(ctx) {
		return nil
	}
	n := s.hardCancel()
	obs.MetricAdd("serve.hard_cancels", int64(n))
	s.logw(slog.LevelWarn, "drain budget expired", "hard_canceled", n)
	// Post-cancel grace: cooperative abort latency is bounded by the
	// operator tick interval, not the drain budget that just expired.
	grace, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if s.awaitIdle(grace) {
		return nil
	}
	return fmt.Errorf("serve: %d queries still running after hard cancel", s.InFlight())
}

// awaitIdle waits until no queries are in flight or ctx expires.
func (s *Server) awaitIdle(ctx context.Context) bool {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.InFlight() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return s.InFlight() == 0
		case <-tick.C:
		}
	}
}

// hardCancel cancels every in-flight query's context, firing the
// serve.cancel fault site per query. Injected cancel faults (error or
// panic) are contained: the cancel itself always runs.
func (s *Server) hardCancel() int {
	s.mu.Lock()
	pending := make([]*inflightQuery, 0, len(s.inflight))
	for _, q := range s.inflight {
		pending = append(pending, q)
	}
	s.mu.Unlock()
	for _, q := range pending {
		func() {
			defer func() {
				if p := recover(); p != nil {
					obs.MetricAdd("serve.panics_recovered", 1)
				}
			}()
			if err := s.faults.Fire(SiteCancel, nil); err != nil {
				s.faultsFired.Add(1)
			}
		}()
		q.cancel()
		s.hardCanceled.Add(1)
	}
	return len(pending)
}

// healthResponse is GET /healthz.
type healthResponse struct {
	State     string `json:"state"`
	InFlight  int    `json:"in_flight"`
	Accepted  int64  `json:"accepted"`
	Completed int64  `json:"completed"`
	Rejected  int64  `json:"rejected"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "accepting"
	if s.isDraining() {
		state = "draining"
	}
	resp := healthResponse{
		State:     state,
		InFlight:  s.InFlight(),
		Accepted:  s.accepted.Load(),
		Completed: s.completed.Load(),
		Rejected:  s.rejected.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	if state != "accepting" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// Stats is the server-level snapshot served at /debug/serve.
type Stats struct {
	State        string                      `json:"state"`
	InFlight     int                         `json:"in_flight"`
	Accepted     int64                       `json:"accepted"`
	Completed    int64                       `json:"completed"`
	Rejected     int64                       `json:"rejected"`
	HardCanceled int64                       `json:"hard_canceled"`
	FaultsFired  int64                       `json:"faults_fired"`
	Tenants      []TenantStats               `json:"tenants"`
	Latency      map[string]obs.HistSnapshot `json:"latency"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	state := "accepting"
	if s.draining {
		state = "draining"
	}
	gates := make([]*gate, 0, len(s.gates))
	for _, g := range s.gates {
		gates = append(gates, g)
	}
	inFlight := len(s.inflight)
	s.mu.Unlock()
	st := Stats{
		State:        state,
		InFlight:     inFlight,
		Accepted:     s.accepted.Load(),
		Completed:    s.completed.Load(),
		Rejected:     s.rejected.Load(),
		HardCanceled: s.hardCanceled.Load(),
		FaultsFired:  s.faultsFired.Load(),
		Latency:      s.hist.Snapshot(),
	}
	for _, g := range gates {
		st.Tenants = append(st.Tenants, g.stats())
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}
